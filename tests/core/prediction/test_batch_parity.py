"""Batch prediction must be BIT-identical to the scalar path.

The scalar ``predict_features`` is the parity oracle: the vectorized
path exists purely for throughput, so any drift — even one ULP — is a
bug. Hypothesis drives feature pairs across every regime the scalar
code distinguishes: inside the basis hull, above/below the covered
point range (scaled), and outside the clamped aspect band.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction.basis import generate_candidates, select_basis
from repro.core.prediction.model import PerformanceModel
from repro.core.prediction.naive import NaivePointsModel
from repro.errors import PredictionError
from repro.wrf.grid import DomainSpec


def _synthetic_time(aspect: float, points: float) -> float:
    nx = (points * aspect) ** 0.5
    ny = points / nx
    return 1e-5 * points + 2e-3 * (nx + ny)


def _models():
    cands = generate_candidates(200, seed=13)
    basis = select_basis(cands)
    times = [_synthetic_time(b.aspect_ratio, b.points) for b in basis]
    return (
        PerformanceModel.from_measurements(basis, times),
        NaivePointsModel.from_measurements(basis, times),
    )


MODEL, NAIVE = _models()

# Regimes: clamped-low/in-band/clamped-high aspect x scaled-down/
# in-hull/scaled-up points (the basis covers roughly aspect 0.5-1.5,
# points 2e4-2.5e5).
aspects = st.one_of(
    st.floats(0.05, 0.45),
    st.floats(0.5, 1.5),
    st.floats(1.6, 12.0),
)
point_counts = st.one_of(
    st.floats(100.0, 1.5e4),
    st.floats(2.5e4, 2.0e5),
    st.floats(3.0e5, 5.0e6),
)


@given(feats=st.lists(st.tuples(aspects, point_counts), min_size=1, max_size=64))
@settings(max_examples=60, deadline=None)
def test_delaunay_batch_bit_identical_to_scalar(feats):
    a = [f[0] for f in feats]
    p = [f[1] for f in feats]
    batch = MODEL.predict_features_batch(a, p)
    scalar = [MODEL.predict_features(ai, pi) for ai, pi in feats]
    assert batch.tolist() == scalar  # exact equality, not approx


@given(feats=st.lists(st.tuples(aspects, point_counts), min_size=1, max_size=64))
@settings(max_examples=30, deadline=None)
def test_naive_batch_bit_identical_to_scalar(feats):
    a = [f[0] for f in feats]
    p = [f[1] for f in feats]
    batch = NAIVE.predict_features_batch(a, p)
    scalar = [NAIVE.predict_features(ai, pi) for ai, pi in feats]
    assert batch.tolist() == scalar


def test_predict_batch_matches_predict_on_domains():
    specs = [
        DomainSpec(f"n{i}", nx=nx, ny=ny, dx_km=8.0, parent="d01",
                   parent_start=(1, 1), refinement=3, level=1)
        for i, (nx, ny) in enumerate(
            [(120, 96), (90, 120), (300, 310), (451, 212), (64, 512)]
        )
    ]
    for model in (MODEL, NAIVE):
        batch = model.predict_batch(specs)
        assert batch.tolist() == [model.predict(s) for s in specs]


def test_empty_batch():
    out = MODEL.predict_features_batch([], [])
    assert isinstance(out, np.ndarray) and out.size == 0


class TestBatchValidation:
    def test_shape_mismatch(self):
        with pytest.raises(PredictionError, match="congruent"):
            MODEL.predict_features_batch([1.0, 1.0], [1e5])
        with pytest.raises(PredictionError, match="congruent"):
            NAIVE.predict_features_batch([1.0, 1.0], [1e5])

    def test_non_positive_features_rejected_like_scalar(self):
        with pytest.raises(PredictionError, match="must be positive"):
            MODEL.predict_features_batch([1.0, -1.0], [1e5, 1e5])
        with pytest.raises(PredictionError, match="must be positive"):
            MODEL.predict_features_batch([1.0, 1.0], [1e5, 0.0])
        with pytest.raises(PredictionError, match="must be positive"):
            NAIVE.predict_features_batch([1.0], [0.0])
