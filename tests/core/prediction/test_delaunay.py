"""Tests for the from-scratch Bowyer-Watson Delaunay triangulation."""

import math

import numpy as np
import pytest

from repro.core.prediction.delaunay import (
    Triangle,
    delaunay_triangulation,
    _circumcircle_contains,
)
from repro.errors import GeometryError


def triangle_area(pts, tri):
    (x1, y1), (x2, y2), (x3, y3) = (pts[i] for i in tri.vertices())
    return abs((x2 - x1) * (y3 - y1) - (y2 - y1) * (x3 - x1)) / 2.0


class TestBasic:
    def test_three_points_one_triangle(self):
        tri = delaunay_triangulation([(0, 0), (1, 0), (0, 1)])
        assert len(tri.triangles) == 1
        assert sorted(tri.triangles[0].vertices()) == [0, 1, 2]

    def test_square_two_triangles(self):
        tri = delaunay_triangulation([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(tri.triangles) == 2

    def test_triangle_count_formula(self):
        # For points in general position: 2n - 2 - h triangles
        # (h = hull points).
        rng = np.random.default_rng(5)
        pts = [tuple(p) for p in rng.random((20, 2))]
        tri = delaunay_triangulation(pts)
        areas = sum(triangle_area(tri.points, t) for t in tri.triangles)
        # Triangles tile the convex hull: total area equals hull area.
        from scipy.spatial import ConvexHull

        hull = ConvexHull(np.array(pts))
        assert areas == pytest.approx(hull.volume, rel=1e-9)

    def test_rejects_too_few(self):
        with pytest.raises(GeometryError):
            delaunay_triangulation([(0, 0), (1, 1)])

    def test_rejects_duplicates(self):
        with pytest.raises(GeometryError):
            delaunay_triangulation([(0, 0), (0, 0), (1, 1)])

    def test_rejects_collinear(self):
        with pytest.raises(GeometryError):
            delaunay_triangulation([(0, 0), (1, 1), (2, 2), (3, 3)])


class TestDelaunayProperty:
    def test_empty_circumcircle(self):
        rng = np.random.default_rng(11)
        pts = [tuple(p) for p in rng.random((15, 2))]
        tri = delaunay_triangulation(pts)
        for t in tri.triangles:
            for i, p in enumerate(pts):
                if i in t.vertices():
                    continue
                assert not _circumcircle_contains(tri.points, t, p), (
                    f"point {i} inside circumcircle of {t}"
                )

    def test_matches_scipy_edge_count(self):
        from scipy.spatial import Delaunay as SciPyDelaunay

        rng = np.random.default_rng(3)
        pts = [tuple(p) for p in rng.random((25, 2))]
        ours = delaunay_triangulation(pts)
        theirs = SciPyDelaunay(np.array(pts))
        their_edges = set()
        for simplex in theirs.simplices:
            a, b, c = sorted(simplex)
            their_edges.update({(a, b), (a, c), (b, c)})
        assert ours.edge_set() == their_edges


class TestLocate:
    def test_inside(self):
        tri = delaunay_triangulation([(0, 0), (2, 0), (0, 2), (2, 2)])
        found = tri.locate((1.0, 0.5))
        assert found is not None

    def test_on_vertex(self):
        tri = delaunay_triangulation([(0, 0), (2, 0), (0, 2)])
        assert tri.locate((0.0, 0.0)) is not None

    def test_outside(self):
        tri = delaunay_triangulation([(0, 0), (2, 0), (0, 2)])
        assert tri.locate((5.0, 5.0)) is None
        assert not tri.contains((5.0, 5.0))

    def test_contains_centroid(self):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)]
        tri = delaunay_triangulation(pts)
        assert tri.contains((2.0, 2.0))


class TestTriangle:
    def test_edges_canonical(self):
        t = Triangle(3, 1, 2)
        assert set(t.edges()) == {(1, 3), (1, 2), (2, 3)}
