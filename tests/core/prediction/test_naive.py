"""Tests for the naive points-proportional baseline model."""

import pytest

from repro.core.prediction.model import ProfiledDomain
from repro.core.prediction.naive import NaivePointsModel
from repro.errors import PredictionError
from repro.wrf.grid import DomainSpec


def nest(nx, ny):
    return DomainSpec("n", nx, ny, 8.0, parent="p", parent_start=(0, 0), level=1)


class TestFit:
    def test_exact_for_proportional_data(self):
        profiled = [
            ProfiledDomain(1.0, 100.0, 0.5),
            ProfiledDomain(1.2, 200.0, 1.0),
            ProfiledDomain(0.8, 400.0, 2.0),
        ]
        model = NaivePointsModel(profiled)
        assert model.coefficient == pytest.approx(0.005)
        assert model.predict_features(1.0, 300.0) == pytest.approx(1.5)

    def test_least_squares_through_origin(self):
        profiled = [ProfiledDomain(1.0, 1.0, 1.0), ProfiledDomain(1.0, 2.0, 3.0)]
        # c = (1*1 + 2*3) / (1 + 4) = 7/5.
        assert NaivePointsModel(profiled).coefficient == pytest.approx(1.4)

    def test_empty_rejected(self):
        with pytest.raises(PredictionError):
            NaivePointsModel([])

    def test_from_measurements_length_check(self):
        with pytest.raises(PredictionError):
            NaivePointsModel.from_measurements([nest(10, 10)], [1.0, 2.0])


class TestPredict:
    def test_aspect_blind(self):
        """The documented failure mode: nx1*ny1 == nx2*ny2 -> same prediction."""
        model = NaivePointsModel([ProfiledDomain(1.0, 1000.0, 1.0)])
        assert model.predict(nest(200, 400)) == model.predict(nest(400, 200))

    def test_ratios_proportional_to_points(self):
        model = NaivePointsModel([ProfiledDomain(1.0, 1000.0, 1.0)])
        r = model.predict_ratios([nest(10, 10), nest(30, 10)])
        assert r[0] == pytest.approx(0.25)
        assert r[1] == pytest.approx(0.75)

    def test_rejects_nonpositive_points(self):
        model = NaivePointsModel([ProfiledDomain(1.0, 1000.0, 1.0)])
        with pytest.raises(PredictionError):
            model.predict_features(1.0, 0.0)
