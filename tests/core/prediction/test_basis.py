"""Tests for basis candidate generation and selection."""

import pytest

from repro.core.prediction.basis import (
    ASPECT_RANGE,
    BASIS_SIZE,
    MAX_SIZE,
    MIN_SIZE,
    generate_candidates,
    select_basis,
)
from repro.core.prediction.delaunay import delaunay_triangulation
from repro.errors import PredictionError
from repro.wrf.grid import domain_features


class TestGenerate:
    def test_count(self):
        assert len(generate_candidates(50, seed=1)) == 50

    def test_ranges_respected(self):
        lo = MIN_SIZE[0] * MIN_SIZE[1]
        hi = MAX_SIZE[0] * MAX_SIZE[1]
        for d in generate_candidates(200, seed=2):
            assert lo * 0.9 <= d.points <= hi * 1.1  # rounding slack
            assert ASPECT_RANGE[0] * 0.9 <= d.aspect_ratio <= ASPECT_RANGE[1] * 1.1

    def test_custom_range(self):
        cands = generate_candidates(50, seed=3, min_points=55_900, max_points=94_990)
        for d in cands:
            assert 50_000 <= d.points <= 100_000

    def test_deterministic(self):
        a = generate_candidates(10, seed=7)
        b = generate_candidates(10, seed=7)
        assert [(d.nx, d.ny) for d in a] == [(d.nx, d.ny) for d in b]

    def test_rejects_zero(self):
        with pytest.raises(PredictionError):
            generate_candidates(0)


class TestSelect:
    def test_selects_thirteen(self):
        basis = select_basis(generate_candidates(300, seed=4))
        assert len(basis) == BASIS_SIZE == 13

    def test_no_duplicates(self):
        basis = select_basis(generate_candidates(300, seed=5))
        assert len({d.name for d in basis}) == 13

    def test_triangulable(self):
        """Paper: points 'selected in a way that the region formed by them
        could be triangulated well'."""
        basis = select_basis(generate_candidates(300, seed=6))
        feats = [domain_features(d) for d in basis]
        aspects = [f[0] for f in feats]
        points = [f[1] for f in feats]
        norm = [
            ((a - min(aspects)) / (max(aspects) - min(aspects)),
             (p - min(points)) / (max(points) - min(points)))
            for a, p in feats
        ]
        tri = delaunay_triangulation(norm)
        assert len(tri.triangles) >= 13  # well-spread points, no slivers-only hull

    def test_covers_extremes(self):
        cands = generate_candidates(300, seed=8)
        basis = select_basis(cands)
        cand_points = [c.points for c in cands]
        basis_points = [b.points for b in basis]
        span_all = max(cand_points) - min(cand_points)
        span_basis = max(basis_points) - min(basis_points)
        assert span_basis > 0.85 * span_all

    def test_needs_enough_candidates(self):
        with pytest.raises(PredictionError):
            select_basis(generate_candidates(5, seed=1))

    def test_size_below_three_rejected(self):
        with pytest.raises(PredictionError):
            select_basis(generate_candidates(20, seed=1), size=2)
