"""Tests for barycentric interpolation (paper Eqs 1-4)."""

import pytest

from repro.core.prediction.barycentric import barycentric_coordinates, interpolate
from repro.errors import GeometryError

TRI = ((0.0, 0.0), (4.0, 0.0), (0.0, 4.0))


class TestCoordinates:
    def test_vertices_are_unit(self):
        a, b, c = TRI
        assert barycentric_coordinates(a, a, b, c) == pytest.approx((1, 0, 0))
        assert barycentric_coordinates(b, a, b, c) == pytest.approx((0, 1, 0))
        assert barycentric_coordinates(c, a, b, c) == pytest.approx((0, 0, 1))

    def test_centroid(self):
        a, b, c = TRI
        cx = (a[0] + b[0] + c[0]) / 3
        cy = (a[1] + b[1] + c[1]) / 3
        l = barycentric_coordinates((cx, cy), a, b, c)
        assert l == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_sum_to_one_corrected_eq3(self):
        """The paper's Eq (3) typo (l3 = l1 - l2) would break this."""
        a, b, c = TRI
        for p in [(1.0, 1.0), (0.5, 2.5), (3.0, 0.5), (-1.0, 7.0)]:
            l1, l2, l3 = barycentric_coordinates(p, a, b, c)
            assert l1 + l2 + l3 == pytest.approx(1.0)

    def test_negative_outside(self):
        a, b, c = TRI
        l = barycentric_coordinates((-1.0, -1.0), a, b, c)
        assert min(l) < 0.0

    def test_degenerate_triangle_rejected(self):
        with pytest.raises(GeometryError):
            barycentric_coordinates((0, 0), (0, 0), (1, 1), (2, 2))


class TestInterpolate:
    def test_reproduces_vertex_values(self):
        values = [2.0, 5.0, 9.0]
        for vertex, value in zip(TRI, values):
            assert interpolate(vertex, TRI, values) == pytest.approx(value)

    def test_exact_for_linear_functions(self):
        f = lambda x, y: 3.0 * x - 2.0 * y + 1.0
        values = [f(*v) for v in TRI]
        for p in [(1.0, 1.0), (0.1, 0.2), (2.0, 1.5)]:
            assert interpolate(p, TRI, values) == pytest.approx(f(*p))

    def test_eq4_form(self):
        # T_D = l1*T1 + l2*T2 + l3*T3 explicitly.
        p = (1.0, 2.0)
        values = [0.15, 0.3, 0.35]
        l1, l2, l3 = barycentric_coordinates(p, *TRI)
        expected = l1 * values[0] + l2 * values[1] + l3 * values[2]
        assert interpolate(p, TRI, values) == pytest.approx(expected)

    def test_arity_checked(self):
        with pytest.raises(GeometryError):
            interpolate((0, 0), TRI, [1.0, 2.0])
