"""Tests for the Delaunay performance model."""

import pytest

from repro.core.prediction.basis import generate_candidates, select_basis
from repro.core.prediction.model import PerformanceModel, ProfiledDomain
from repro.errors import PredictionError
from repro.wrf.grid import DomainSpec


def synthetic_time(aspect: float, points: float) -> float:
    """A ground-truth cost that depends on both features (like WRF)."""
    # Perimeter-ish term makes aspect matter.
    nx = (points * aspect) ** 0.5
    ny = points / nx
    return 1e-5 * points + 2e-3 * (nx + ny)


def fitted_model(seed=13, n=200):
    cands = generate_candidates(n, seed=seed)
    basis = select_basis(cands)
    times = [synthetic_time(b.aspect_ratio, b.points) for b in basis]
    return PerformanceModel.from_measurements(basis, times), basis


class TestFit:
    def test_basis_size(self):
        model, basis = fitted_model()
        assert model.num_basis == 13
        assert len(basis) == 13

    def test_requires_three(self):
        with pytest.raises(PredictionError):
            PerformanceModel([
                ProfiledDomain(1.0, 100.0, 1.0),
                ProfiledDomain(1.2, 200.0, 2.0),
            ])

    def test_mismatched_lengths(self):
        cands = generate_candidates(5, seed=1)
        with pytest.raises(PredictionError):
            PerformanceModel.from_measurements(cands, [1.0])

    def test_nonpositive_time_rejected(self):
        with pytest.raises(PredictionError):
            ProfiledDomain.from_domain(
                DomainSpec("x", 10, 10, 8.0, parent="p", parent_start=(0, 0), level=1),
                0.0,
            )


class TestPredict:
    def test_interpolates_inside_hull(self):
        model, _ = fitted_model()
        tests = generate_candidates(40, seed=99, min_points=60_000, max_points=90_000)
        for t in tests:
            actual = synthetic_time(t.aspect_ratio, t.points)
            predicted = model.predict(t)
            assert abs(predicted - actual) / actual < 0.06

    def test_beats_naive_on_aspect_variation(self):
        from repro.core.prediction.naive import NaivePointsModel

        model, basis = fitted_model()
        naive = NaivePointsModel(
            [ProfiledDomain(b.aspect_ratio, float(b.points),
                            synthetic_time(b.aspect_ratio, b.points))
             for b in basis]
        )
        # Same point count, very different aspect: naive cannot tell apart.
        wide = DomainSpec("w", 400, 160, 8.0, parent="p", parent_start=(0, 0), level=1)
        square = DomainSpec("s", 253, 253, 8.0, parent="p", parent_start=(0, 0), level=1)
        model_gap = abs(model.predict(wide) - model.predict(square))
        naive_gap = abs(naive.predict(wide) - naive.predict(square))
        # 400x160 and 253x253 have (nearly) identical point counts, so the
        # naive model cannot separate them; ours must.
        assert naive_gap < 0.001 * naive.predict(square)
        assert model_gap > 10 * naive_gap

    def test_out_of_hull_scales_down(self):
        """Paper: larger domains scale into coverage; relative times hold."""
        model, _ = fitted_model()
        big = DomainSpec("b", 925, 850, 8.0, parent="p", parent_start=(0, 0), level=1)
        bigger = DomainSpec("b2", 1200, 1100, 8.0, parent="p", parent_start=(0, 0), level=1)
        t1, t2 = model.predict(big), model.predict(bigger)
        assert t2 > t1 > 0.0
        # First-order: time ratio tracks the point ratio.
        assert t2 / t1 == pytest.approx(bigger.points / big.points, rel=0.1)

    def test_below_range_scales_too(self):
        model, _ = fitted_model()
        tiny = DomainSpec("t", 40, 40, 8.0, parent="p", parent_start=(0, 0), level=1)
        assert model.predict(tiny) > 0.0

    def test_aspect_clamped(self):
        model, _ = fitted_model()
        extreme = DomainSpec("e", 800, 100, 8.0, parent="p", parent_start=(0, 0), level=1)
        assert model.predict(extreme) > 0.0

    def test_rejects_nonpositive_features(self):
        model, _ = fitted_model()
        with pytest.raises(PredictionError):
            model.predict_features(-1.0, 100.0)


class TestPredictRatios:
    def test_normalised(self):
        model, _ = fitted_model()
        specs = generate_candidates(4, seed=3)
        ratios = model.predict_ratios(specs)
        assert sum(ratios) == pytest.approx(1.0)
        assert all(r > 0 for r in ratios)

    def test_bigger_domain_bigger_ratio(self):
        model, _ = fitted_model()
        small = DomainSpec("s", 120, 130, 8.0, parent="p", parent_start=(0, 0), level=1)
        large = DomainSpec("l", 380, 410, 8.0, parent="p", parent_start=(0, 0), level=1)
        r = model.predict_ratios([small, large])
        assert r[1] > r[0]
