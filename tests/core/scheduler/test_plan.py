"""Tests for execution plans."""

import pytest

from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
from repro.errors import ConfigurationError
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.wrf.grid import DomainSpec


@pytest.fixture
def parent():
    return DomainSpec("d01", 286, 307, dx_km=24.0)


@pytest.fixture
def sib():
    return DomainSpec("d02", 120, 96, 8.0, parent="d01", parent_start=(10, 10),
                      refinement=3, level=1)


class TestPlanValidation:
    def test_valid_sequential(self, parent, sib):
        grid = ProcessGrid(8, 8)
        plan = ExecutionPlan(
            grid=grid, parent=parent,
            assignments=(SiblingAssignment(sib, grid.full_rect()),),
            concurrent=False, strategy="sequential",
        )
        assert plan.num_siblings == 1
        assert plan.rects == (grid.full_rect(),)

    def test_rejects_nest_parent(self, sib):
        grid = ProcessGrid(4, 4)
        with pytest.raises(ConfigurationError):
            ExecutionPlan(grid=grid, parent=sib, assignments=(),
                          concurrent=False, strategy="x")

    def test_rejects_rect_outside_grid(self, parent, sib):
        grid = ProcessGrid(4, 4)
        with pytest.raises(ConfigurationError):
            ExecutionPlan(
                grid=grid, parent=parent,
                assignments=(SiblingAssignment(sib, GridRect(0, 0, 5, 4)),),
                concurrent=False, strategy="x",
            )

    def test_concurrent_rejects_overlap(self, parent, sib):
        grid = ProcessGrid(8, 8)
        sib2 = DomainSpec("d03", 90, 90, 8.0, parent="d01", parent_start=(150, 150),
                          refinement=3, level=1)
        with pytest.raises(ConfigurationError):
            ExecutionPlan(
                grid=grid, parent=parent,
                assignments=(
                    SiblingAssignment(sib, GridRect(0, 0, 5, 8)),
                    SiblingAssignment(sib2, GridRect(4, 0, 4, 8)),
                ),
                concurrent=True, strategy="x",
            )

    def test_sequential_allows_same_rect(self, parent, sib):
        grid = ProcessGrid(8, 8)
        sib2 = DomainSpec("d03", 90, 90, 8.0, parent="d01", parent_start=(150, 150),
                          refinement=3, level=1)
        plan = ExecutionPlan(
            grid=grid, parent=parent,
            assignments=(
                SiblingAssignment(sib, grid.full_rect()),
                SiblingAssignment(sib2, grid.full_rect()),
            ),
            concurrent=False, strategy="sequential",
        )
        assert plan.num_siblings == 2

    def test_describe_mentions_domains(self, parent, sib):
        grid = ProcessGrid(8, 8)
        plan = ExecutionPlan(
            grid=grid, parent=parent,
            assignments=(SiblingAssignment(sib, grid.full_rect()),),
            concurrent=False, strategy="sequential",
        )
        text = plan.describe()
        assert "d02" in text and "120x96" in text

    def test_sibling_domains_property(self, parent, sib):
        grid = ProcessGrid(8, 8)
        plan = ExecutionPlan(
            grid=grid, parent=parent,
            assignments=(SiblingAssignment(sib, grid.full_rect()),),
            concurrent=False, strategy="s",
        )
        assert plan.sibling_domains == (sib,)

    def test_assignment_processors(self, sib):
        assert SiblingAssignment(sib, GridRect(0, 0, 4, 6)).processors == 24
