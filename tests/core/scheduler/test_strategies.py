"""Tests for the sequential and parallel scheduling strategies."""

import pytest

from repro.core.scheduler.strategies import (
    ParallelSiblingsStrategy,
    SequentialStrategy,
)
from repro.errors import ConfigurationError
from repro.runtime.process_grid import ProcessGrid
from repro.wrf.grid import DomainSpec


@pytest.fixture
def parent():
    return DomainSpec("d01", 286, 307, dx_km=24.0)


@pytest.fixture
def siblings():
    return [
        DomainSpec("d02", 300, 300, 8.0, parent="d01", parent_start=(10, 10),
                   refinement=3, level=1),
        DomainSpec("d03", 150, 150, 8.0, parent="d01", parent_start=(150, 150),
                   refinement=3, level=1),
    ]


class FakePredictor:
    """Ratios proportional to point counts."""

    def predict_ratios(self, specs):
        total = sum(s.points for s in specs)
        return [s.points / total for s in specs]


class TestSequential:
    def test_all_full_grid(self, parent, siblings):
        grid = ProcessGrid(16, 16)
        plan = SequentialStrategy().plan(grid, parent, siblings)
        assert not plan.concurrent
        assert all(a.rect == grid.full_rect() for a in plan.assignments)
        assert plan.strategy == "sequential"

    def test_requires_siblings(self, parent):
        with pytest.raises(ConfigurationError):
            SequentialStrategy().plan(ProcessGrid(4, 4), parent, [])

    def test_rejects_non_nest_sibling(self, parent):
        other_parent = DomainSpec("dX", 100, 100, dx_km=24.0)
        with pytest.raises(ConfigurationError):
            SequentialStrategy().plan(ProcessGrid(4, 4), parent, [other_parent])


class TestParallel:
    def test_partitions_proportional(self, parent, siblings):
        grid = ProcessGrid(16, 16)
        plan = ParallelSiblingsStrategy(FakePredictor()).plan(grid, parent, siblings)
        assert plan.concurrent
        total = grid.size
        big, small = plan.assignments
        share = big.processors / total
        assert share == pytest.approx(300 * 300 / (300 * 300 + 150 * 150), abs=0.05)

    def test_explicit_ratios_override(self, parent, siblings):
        grid = ProcessGrid(16, 16)
        plan = ParallelSiblingsStrategy().plan(
            grid, parent, siblings, ratios=[1.0, 1.0]
        )
        assert plan.assignments[0].processors == plan.assignments[1].processors

    def test_no_predictor_no_ratios_rejected(self, parent, siblings):
        with pytest.raises(ConfigurationError):
            ParallelSiblingsStrategy().plan(ProcessGrid(8, 8), parent, siblings)

    def test_ratio_arity_checked(self, parent, siblings):
        with pytest.raises(ConfigurationError):
            ParallelSiblingsStrategy().plan(
                ProcessGrid(8, 8), parent, siblings, ratios=[1.0]
            )

    def test_single_sibling_full_grid(self, parent, siblings):
        grid = ProcessGrid(8, 8)
        plan = ParallelSiblingsStrategy().plan(
            grid, parent, siblings[:1], ratios=[1.0]
        )
        assert plan.assignments[0].rect == grid.full_rect()
        assert plan.concurrent

    def test_plan_records_ratios(self, parent, siblings):
        plan = ParallelSiblingsStrategy(FakePredictor()).plan(
            ProcessGrid(16, 16), parent, siblings
        )
        assert plan.ratios is not None
        assert sum(plan.ratios) == pytest.approx(1.0)

    def test_rects_tile_grid(self, parent, siblings):
        grid = ProcessGrid(16, 16)
        plan = ParallelSiblingsStrategy(FakePredictor()).plan(grid, parent, siblings)
        assert sum(a.processors for a in plan.assignments) == grid.size
