"""Tests for the grouped-execution strategy extension."""

import pytest

from repro.core.scheduler.grouped import (
    GroupedStrategy,
    balance_groups,
    simulate_grouped_iteration,
)
from repro.core.scheduler.strategies import (
    ParallelSiblingsStrategy,
    SequentialStrategy,
)
from repro.errors import ConfigurationError
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L


class TestBalanceGroups:
    def test_single_group(self):
        assert balance_groups([1.0, 2.0, 3.0], 1) == [[0, 1, 2]]

    def test_one_item_per_group(self):
        groups = balance_groups([1.0, 2.0], 2)
        assert sorted(map(tuple, groups)) == [(0,), (1,)]

    def test_lpt_balances(self):
        groups = balance_groups([5.0, 4.0, 3.0, 2.0, 1.0, 1.0], 2)
        loads = [sum([5.0, 4.0, 3.0, 2.0, 1.0, 1.0][i] for i in g) for g in groups]
        assert abs(loads[0] - loads[1]) <= 1.0

    def test_more_groups_than_items(self):
        groups = balance_groups([1.0, 2.0], 5)
        assert len(groups) == 2

    def test_all_items_present_once(self):
        groups = balance_groups([3.0, 1.0, 2.0, 2.0], 3)
        flat = sorted(i for g in groups for i in g)
        assert flat == [0, 1, 2, 3]

    def test_invalid_group_count(self):
        with pytest.raises(ConfigurationError):
            balance_groups([1.0], 0)


class TestGroupedStrategy:
    def test_one_group_equals_parallel(self, pacific, table2_siblings):
        grid = ProcessGrid(32, 32)
        ratios = [float(s.points) for s in table2_siblings]
        grouped = GroupedStrategy(1).plan_groups(
            grid, pacific, table2_siblings, ratios=ratios
        )
        parallel = ParallelSiblingsStrategy().plan(
            grid, pacific, table2_siblings, ratios=ratios
        )
        assert len(grouped) == 1
        assert grouped[0].rects == parallel.rects

    def test_k_groups_each_full_grid(self, pacific, table2_siblings):
        grid = ProcessGrid(32, 32)
        plans = GroupedStrategy(4).plan_groups(grid, pacific, table2_siblings)
        assert len(plans) == 4
        for plan in plans:
            assert plan.num_siblings == 1
            assert plan.assignments[0].rect == grid.full_rect()

    def test_two_groups_cover_all_siblings(self, pacific, table2_siblings):
        plans = GroupedStrategy(2).plan_groups(
            ProcessGrid(32, 32), pacific, table2_siblings
        )
        names = sorted(a.domain.name for p in plans for a in p.assignments)
        assert names == sorted(s.name for s in table2_siblings)

    def test_invalid_group_count(self):
        with pytest.raises(ConfigurationError):
            GroupedStrategy(0)


class TestSimulateGrouped:
    def test_extremes_match_existing_strategies(self, pacific, table2_siblings):
        """g=1 prices like the parallel strategy, g=k like sequential."""
        grid = ProcessGrid(32, 32)
        ratios = [float(s.points) for s in table2_siblings]

        par_rep = simulate_iteration(
            ParallelSiblingsStrategy().plan(
                grid, pacific, table2_siblings, ratios=ratios),
            BLUE_GENE_L,
        )
        t1, _ = simulate_grouped_iteration(
            GroupedStrategy(1).plan_groups(
                grid, pacific, table2_siblings, ratios=ratios),
            BLUE_GENE_L,
        )
        assert t1 == pytest.approx(par_rep.integration_time, rel=1e-9)

        seq_rep = simulate_iteration(
            SequentialStrategy().plan(grid, pacific, table2_siblings),
            BLUE_GENE_L,
        )
        tk, _ = simulate_grouped_iteration(
            GroupedStrategy(4).plan_groups(grid, pacific, table2_siblings),
            BLUE_GENE_L,
        )
        # g=k runs each sibling alone on the full grid, like sequential
        # (comm differs slightly: no concurrent sibling contention).
        assert tk == pytest.approx(seq_rep.integration_time, rel=0.02)

    def test_monotone_between_extremes(self, pacific, table2_siblings):
        """At rack scale, more parallelism (fewer groups) is faster."""
        grid = ProcessGrid(32, 32)
        times = []
        for g in (1, 2, 4):
            t, _ = simulate_grouped_iteration(
                GroupedStrategy(g).plan_groups(grid, pacific, table2_siblings),
                BLUE_GENE_L,
            )
            times.append(t)
        assert times[0] < times[1] < times[2]

    def test_empty_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_grouped_iteration([], BLUE_GENE_L)
