"""Tests for the public allocation API."""

import pytest

from repro.core.allocation.partition import (
    Allocation,
    allocation_error,
    partition_grid,
    validate_tiling,
)
from repro.errors import AllocationError
from repro.runtime.process_grid import GridRect, ProcessGrid


class TestPartitionGrid:
    def test_fig3b_shares(self):
        # Fig 3(b): ratios 0.15 : 0.3 : 0.35 : 0.2.
        grid = ProcessGrid(32, 32)
        alloc = partition_grid(grid, [0.15, 0.3, 0.35, 0.2])
        assert alloc.num_siblings == 4
        for i, ratio in enumerate([0.15, 0.3, 0.35, 0.2]):
            assert alloc.share_of(i) == pytest.approx(ratio, abs=0.03)

    def test_ratios_normalised(self):
        grid = ProcessGrid(16, 16)
        a = partition_grid(grid, [1.0, 3.0])
        b = partition_grid(grid, [0.25, 0.75])
        assert a.rects == b.rects
        assert a.ratios == pytest.approx(b.ratios)

    def test_single_sibling(self):
        grid = ProcessGrid(8, 8)
        alloc = partition_grid(grid, [42.0])
        assert alloc.rects == (grid.full_rect(),)

    def test_processors_for(self):
        grid = ProcessGrid(8, 8)
        alloc = partition_grid(grid, [1.0, 1.0])
        assert alloc.processors_for(0) + alloc.processors_for(1) == 64

    def test_empty_ratios_rejected(self):
        with pytest.raises(AllocationError):
            partition_grid(ProcessGrid(4, 4), [])

    def test_nonpositive_sum_rejected(self):
        with pytest.raises(AllocationError):
            partition_grid(ProcessGrid(4, 4), [0.0, 0.0])


class TestValidateTiling:
    def test_accepts_exact_tiling(self):
        grid = ProcessGrid(4, 4)
        validate_tiling(grid, [GridRect(0, 0, 2, 4), GridRect(2, 0, 2, 4)])

    def test_rejects_overlap(self):
        grid = ProcessGrid(4, 4)
        with pytest.raises(AllocationError, match="overlap"):
            validate_tiling(grid, [GridRect(0, 0, 3, 4), GridRect(2, 0, 2, 4)])

    def test_rejects_gap(self):
        grid = ProcessGrid(4, 4)
        with pytest.raises(AllocationError, match="cover"):
            validate_tiling(grid, [GridRect(0, 0, 2, 4)])

    def test_rejects_out_of_bounds(self):
        grid = ProcessGrid(4, 4)
        with pytest.raises(AllocationError, match="exceeds"):
            validate_tiling(grid, [GridRect(0, 0, 5, 4)])


class TestAllocationError:
    def test_zero_for_perfect_split(self):
        grid = ProcessGrid(4, 4)
        alloc = partition_grid(grid, [0.5, 0.5])
        assert allocation_error(alloc) == pytest.approx(0.0)

    def test_positive_for_rounding(self):
        grid = ProcessGrid(3, 3)
        alloc = partition_grid(grid, [0.5, 0.5])
        assert allocation_error(alloc) > 0.0

    def test_bounded_for_reasonable_inputs(self):
        grid = ProcessGrid(32, 32)
        alloc = partition_grid(grid, [0.1, 0.2, 0.3, 0.4])
        assert allocation_error(alloc) < 0.25
