"""Tests for Algorithm 1 (the balanced split-tree)."""

import pytest

from repro.core.allocation.huffman import HuffmanTree
from repro.core.allocation.splittree import (
    partition_squareness,
    proportional_split,
    split_tree_partition,
)
from repro.errors import AllocationError
from repro.runtime.process_grid import GridRect


class TestProportionalSplit:
    def test_even(self):
        assert proportional_split(32, 1.0, 1.0) == 16

    def test_rounding(self):
        assert proportional_split(32, 0.596, 0.404) == 19

    def test_clamps_low(self):
        assert proportional_split(10, 0.001, 0.999) == 1

    def test_clamps_high(self):
        assert proportional_split(10, 0.999, 0.001) == 9

    def test_min_constraints(self):
        assert proportional_split(10, 0.01, 0.99, min_left=3) == 3

    def test_impossible(self):
        with pytest.raises(AllocationError):
            proportional_split(3, 1.0, 1.0, min_left=2, min_right=2)

    def test_zero_weights_rejected(self):
        with pytest.raises(AllocationError):
            proportional_split(10, 0.0, 0.0)


class TestSplitTree:
    def test_single_sibling_gets_everything(self):
        tree = HuffmanTree([1.0])
        rects = split_tree_partition(tree, GridRect(0, 0, 8, 4))
        assert rects == {0: GridRect(0, 0, 8, 4)}

    def test_exact_tiling(self):
        tree = HuffmanTree([0.15, 0.3, 0.35, 0.2])
        rects = split_tree_partition(tree, GridRect(0, 0, 32, 32))
        assert sum(r.area for r in rects.values()) == 1024
        items = list(rects.values())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                assert not a.overlaps(b)

    def test_areas_proportional(self):
        ratios = [0.15, 0.3, 0.35, 0.2]
        tree = HuffmanTree(ratios)
        rects = split_tree_partition(tree, GridRect(0, 0, 32, 32))
        for i, ratio in enumerate(ratios):
            assert rects[i].area / 1024 == pytest.approx(ratio, abs=0.03)

    def test_first_cut_along_longer_dimension(self):
        # A wide grid must be cut vertically first (Fig 4).
        tree = HuffmanTree([0.5, 0.5])
        rects = split_tree_partition(tree, GridRect(0, 0, 16, 4))
        assert {r.shape for r in rects.values()} == {(8, 4)}

    def test_tall_grid_cut_horizontally(self):
        tree = HuffmanTree([0.5, 0.5])
        rects = split_tree_partition(tree, GridRect(0, 0, 4, 16))
        assert {r.shape for r in rects.values()} == {(4, 8)}

    def test_every_sibling_nonempty_with_tiny_ratio(self):
        tree = HuffmanTree([0.999, 0.0005, 0.0005])
        rects = split_tree_partition(tree, GridRect(0, 0, 8, 8))
        assert all(r.area >= 1 for r in rects.values())
        assert sum(r.area for r in rects.values()) == 64

    def test_more_siblings_than_procs_rejected(self):
        tree = HuffmanTree([1.0] * 5)
        with pytest.raises(AllocationError):
            split_tree_partition(tree, GridRect(0, 0, 2, 2))

    def test_exactly_one_proc_each(self):
        tree = HuffmanTree([1.0] * 4)
        rects = split_tree_partition(tree, GridRect(0, 0, 2, 2))
        assert sorted(r.area for r in rects.values()) == [1, 1, 1, 1]

    def test_many_siblings(self):
        weights = [float(i + 1) for i in range(16)]
        tree = HuffmanTree(weights)
        rects = split_tree_partition(tree, GridRect(0, 0, 32, 32))
        assert sum(r.area for r in rects.values()) == 1024
        total = sum(weights)
        # Heaviest sibling gets roughly its proportional share.
        assert rects[15].area / 1024 == pytest.approx(16 / total, rel=0.35)


class TestSquareness:
    def test_perfect_squares(self):
        assert partition_squareness([GridRect(0, 0, 4, 4)]) == 1.0

    def test_mean(self):
        rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 8, 4)]
        assert partition_squareness(rects) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            partition_squareness([])
