"""Tests for the baseline allocation policies."""

import pytest

from repro.core.allocation.baselines import (
    equal_partition,
    naive_strip_partition,
    strip_partition,
)
from repro.core.allocation.partition import validate_tiling
from repro.errors import AllocationError
from repro.runtime.process_grid import ProcessGrid


class TestStripPartition:
    def test_full_height_strips(self):
        grid = ProcessGrid(32, 32)
        alloc = strip_partition(grid, [1.0, 1.0])
        assert all(r.height == 32 for r in alloc.rects)
        assert all(r.y0 == 0 for r in alloc.rects)

    def test_consecutive(self):
        grid = ProcessGrid(32, 32)
        alloc = strip_partition(grid, [1.0, 2.0, 1.0])
        xs = [r.x0 for r in alloc.rects]
        assert xs == sorted(xs)
        validate_tiling(grid, alloc.rects)

    def test_widths_proportional(self):
        grid = ProcessGrid(32, 8)
        alloc = strip_partition(grid, [1.0, 3.0])
        assert alloc.rects[0].width == 8
        assert alloc.rects[1].width == 24

    def test_last_strip_absorbs_remainder(self):
        grid = ProcessGrid(10, 4)
        alloc = strip_partition(grid, [1.0, 1.0, 1.0])
        assert sum(r.width for r in alloc.rects) == 10

    def test_every_strip_nonempty(self):
        grid = ProcessGrid(5, 4)
        alloc = strip_partition(grid, [100.0, 0.001, 0.001, 0.001, 0.001])
        assert all(r.width >= 1 for r in alloc.rects)

    def test_too_many_strips(self):
        with pytest.raises(AllocationError):
            strip_partition(ProcessGrid(3, 4), [1.0] * 4)

    def test_empty_weights(self):
        with pytest.raises(AllocationError):
            strip_partition(ProcessGrid(4, 4), [])


class TestNaiveStripPartition:
    def test_proportional_to_points(self):
        grid = ProcessGrid(32, 32)
        alloc = naive_strip_partition(grid, [100, 300])
        assert alloc.rects[0].area == pytest.approx(1024 * 0.25, abs=32)

    def test_rejects_nonpositive_points(self):
        with pytest.raises(AllocationError):
            naive_strip_partition(ProcessGrid(4, 4), [10, 0])


class TestEqualPartition:
    def test_equal_shares(self):
        grid = ProcessGrid(32, 16)
        alloc = equal_partition(grid, 4)
        assert all(r.area == 128 for r in alloc.rects)

    def test_rejects_zero_siblings(self):
        with pytest.raises(AllocationError):
            equal_partition(ProcessGrid(4, 4), 0)

    def test_strips_worse_squareness_than_splittree(self):
        """The reason the paper uses the split-tree: strips are skewed."""
        from repro.core.allocation.partition import partition_grid
        from repro.core.allocation.splittree import partition_squareness

        grid = ProcessGrid(32, 32)
        ratios = [0.25, 0.25, 0.25, 0.25]
        strips = strip_partition(grid, ratios)
        tree = partition_grid(grid, ratios)
        assert partition_squareness(list(tree.rects)) > partition_squareness(
            list(strips.rects)
        )
