"""Tests for the Huffman tree over execution-time ratios."""

import pytest

from repro.core.allocation.huffman import HuffmanTree
from repro.errors import AllocationError


class TestConstruction:
    def test_single_leaf(self):
        tree = HuffmanTree([1.0])
        assert tree.root.is_leaf
        assert tree.root.item == 0
        assert tree.num_leaves == 1

    def test_two_leaves(self):
        tree = HuffmanTree([0.3, 0.7])
        assert not tree.root.is_leaf
        assert sorted(tree.root.leaves()) == [0, 1]

    def test_weights_copied(self):
        w = [1.0, 2.0]
        tree = HuffmanTree(w)
        tree.weights.append(3.0)
        assert tree.num_leaves == 2

    def test_rejects_empty(self):
        with pytest.raises(AllocationError):
            HuffmanTree([])

    def test_rejects_nonpositive(self):
        with pytest.raises(AllocationError):
            HuffmanTree([1.0, 0.0])
        with pytest.raises(AllocationError):
            HuffmanTree([1.0, -0.5])


class TestStructure:
    def test_root_weight_is_total(self):
        tree = HuffmanTree([0.15, 0.3, 0.35, 0.2])
        assert tree.root.weight == pytest.approx(1.0)

    def test_lightest_pair_merged_first(self):
        # Classic Huffman: 0.1 and 0.2 merge before anything else, so
        # they end up deepest in the tree.
        tree = HuffmanTree([0.1, 0.2, 0.3, 0.4])
        depths = {}

        def walk(node, d):
            if node.is_leaf:
                depths[node.item] = d
            else:
                walk(node.left, d + 1)
                walk(node.right, d + 1)

        walk(tree.root, 0)
        assert depths[0] == max(depths.values())
        assert depths[1] == max(depths.values())

    def test_all_leaves_present(self):
        tree = HuffmanTree([5, 1, 4, 2, 3])
        assert sorted(tree.root.leaves()) == [0, 1, 2, 3, 4]

    def test_internal_nodes_bfs_count(self):
        # A binary tree with k leaves has k-1 internal nodes.
        for k in (1, 2, 3, 7):
            tree = HuffmanTree([float(i + 1) for i in range(k)])
            assert len(list(tree.internal_nodes_bfs())) == k - 1

    def test_bfs_starts_at_root(self):
        tree = HuffmanTree([1.0, 2.0, 3.0])
        first = next(tree.internal_nodes_bfs())
        assert first is tree.root

    def test_subtree_weight(self):
        tree = HuffmanTree([0.25, 0.25, 0.5])
        for node in tree.internal_nodes_bfs():
            assert tree.subtree_weight(node) == pytest.approx(node.weight)

    def test_deterministic(self):
        a = HuffmanTree([1.0, 1.0, 1.0, 1.0])
        b = HuffmanTree([1.0, 1.0, 1.0, 1.0])

        def shape(node):
            if node.is_leaf:
                return node.item
            return (shape(node.left), shape(node.right))

        assert shape(a.root) == shape(b.root)

    def test_balanced_for_equal_weights(self):
        tree = HuffmanTree([1.0] * 8)
        assert tree.root.depth() == 3
