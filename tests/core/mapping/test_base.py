"""Tests for mapping foundations: SlotSpace, Box, Placement."""

import pytest

from repro.core.mapping.base import Box, Placement, SlotSpace
from repro.errors import MappingError
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torus import Torus3D


class TestSlotSpace:
    def test_dims_extend_depth(self):
        space = SlotSpace(Torus3D((8, 8, 8)), 2)
        assert space.dims == (8, 8, 16)
        assert space.num_slots == 1024

    def test_node_of(self):
        space = SlotSpace(Torus3D((4, 4, 2)), 2)
        assert space.node_of((1, 2, 0)) == (1, 2, 0)
        assert space.node_of((1, 2, 1)) == (1, 2, 0)
        assert space.node_of((1, 2, 2)) == (1, 2, 1)

    def test_node_of_out_of_range(self):
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        with pytest.raises(MappingError):
            space.node_of((4, 0, 0))

    def test_slot_index_unique(self):
        space = SlotSpace(Torus3D((3, 2, 2)), 2)
        seen = set()
        X, Y, S = space.dims
        for s in range(S):
            for y in range(Y):
                for x in range(X):
                    seen.add(space.slot_index((x, y, s)))
        assert len(seen) == space.num_slots


class TestBox:
    def test_volume_and_slots(self):
        b = Box(1, 2, 3, 2, 2, 2)
        assert b.volume == 8
        slots = b.slots()
        assert len(slots) == 8
        assert slots[0] == (1, 2, 3)
        assert slots[-1] == (2, 3, 4)

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            Box(0, 0, 0, 0, 1, 1)

    def test_rejects_negative_origin(self):
        with pytest.raises(MappingError):
            Box(-1, 0, 0, 1, 1, 1)


class TestPlacement:
    def test_valid_bijection(self):
        grid = ProcessGrid(2, 2)
        space = SlotSpace(Torus3D((2, 2, 1)), 1)
        slots = ((0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0))
        p = Placement(space=space, grid=grid, slots=slots, name="test")
        assert p.node_of(0) == (0, 0, 0)
        assert p.hops_between(0, 3) == 2

    def test_duplicate_slot_rejected(self):
        grid = ProcessGrid(2, 1)
        space = SlotSpace(Torus3D((2, 1, 1)), 1)
        with pytest.raises(MappingError):
            Placement(space=space, grid=grid,
                      slots=((0, 0, 0), (0, 0, 0)), name="bad")

    def test_wrong_cardinality_rejected(self):
        grid = ProcessGrid(2, 2)
        space = SlotSpace(Torus3D((2, 2, 1)), 1)
        with pytest.raises(MappingError):
            Placement(space=space, grid=grid, slots=((0, 0, 0),), name="bad")

    def test_colocated_ranks_zero_hops(self):
        grid = ProcessGrid(2, 1)
        space = SlotSpace(Torus3D((1, 1, 1)), 2)
        p = Placement(space=space, grid=grid,
                      slots=((0, 0, 0), (0, 0, 1)), name="vn")
        assert p.hops_between(0, 1) == 0

    def test_nodes_list(self):
        grid = ProcessGrid(2, 1)
        space = SlotSpace(Torus3D((2, 1, 1)), 1)
        p = Placement(space=space, grid=grid,
                      slots=((0, 0, 0), (1, 0, 0)), name="t")
        assert p.nodes() == [(0, 0, 0), (1, 0, 0)]
