"""Tests for the partition and multi-level mappings."""

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.metrics import nest_and_parent_metrics
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.errors import MappingError
from repro.runtime.halo import HaloSpec
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.torus import Torus3D


@pytest.fixture
def fig6_setup():
    grid = ProcessGrid(8, 4)
    space = SlotSpace(Torus3D((4, 4, 2)), 1)
    rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
    return grid, space, rects


class TestPartitionMapping:
    def test_bijection(self, fig6_setup):
        grid, space, rects = fig6_setup
        p = PartitionMapping().place(grid, space, rects)
        assert len(set(p.slots)) == grid.size

    def test_nest_neighbours_one_hop(self, fig6_setup):
        """Fig 6(a): neighbouring nest processes are torus neighbours."""
        grid, space, rects = fig6_setup
        p = PartitionMapping().place(grid, space, rects)
        # Ranks 0 and 8 are y-neighbours inside sibling 1.
        assert p.hops_between(0, 8) == 1

    def test_each_partition_contiguous_plane(self, fig6_setup):
        grid, space, rects = fig6_setup
        p = PartitionMapping().place(grid, space, rects)
        sib1 = {p.node_of(r)[2] for r in grid.ranks_in(rects[0])}
        sib2 = {p.node_of(r)[2] for r in grid.ranks_in(rects[1])}
        # Fig 6(a): one sibling per z-plane.
        assert sib1 != sib2
        assert len(sib1) == 1 and len(sib2) == 1

    def test_requires_full_machine(self):
        grid = ProcessGrid(4, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        with pytest.raises(MappingError):
            PartitionMapping().place(grid, space, [GridRect(0, 0, 4, 4)])

    def test_no_rects_single_partition(self):
        grid = ProcessGrid(8, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        p = PartitionMapping().place(grid, space)
        assert len(set(p.slots)) == 32

    def test_beats_oblivious_on_nests(self, fig6_setup):
        grid, space, rects = fig6_setup
        spec = HaloSpec(width=1, levels=1, rounds_per_step=1)
        domains = [(40, 40), (40, 40)]
        obl = nest_and_parent_metrics(
            ObliviousMapping().place(grid, space, rects), (80, 40), domains, rects, spec)
        par = nest_and_parent_metrics(
            PartitionMapping().place(grid, space, rects), (80, 40), domains, rects, spec)
        assert par["nest0"].average_hops < obl["nest0"].average_hops
        assert par["nest1"].average_hops < obl["nest1"].average_hops


class TestMultiLevelMapping:
    def test_reproduces_fig6b_exactly(self, fig6_setup):
        """The paper's worked example, node for node."""
        grid, space, rects = fig6_setup
        p = MultiLevelMapping().place(grid, space, rects)
        expected = [
            (0, 0, 0), (1, 0, 0), (1, 0, 1), (0, 0, 1),
            (3, 0, 1), (2, 0, 1), (2, 0, 0), (3, 0, 0),
        ]
        assert [p.node_of(r) for r in range(8)] == expected

    def test_parent_seam_one_hop(self, fig6_setup):
        """Fig 6(b): processes 3 and 4 are 1 hop apart."""
        grid, space, rects = fig6_setup
        p = MultiLevelMapping().place(grid, space, rects)
        assert p.hops_between(3, 4) == 1

    def test_all_parent_neighbours_one_hop(self, fig6_setup):
        """The universal-mapping property of the multi-level scheme."""
        grid, space, rects = fig6_setup
        p = MultiLevelMapping().place(grid, space, rects)
        for rank in range(grid.size):
            for nbr in grid.neighbors_of(rank):
                assert p.hops_between(rank, nbr) == 1

    def test_at_least_as_good_as_partition_on_parent(self, fig6_setup):
        grid, space, rects = fig6_setup
        spec = HaloSpec(width=1, levels=1, rounds_per_step=1)
        domains = [(40, 40), (40, 40)]
        pm = nest_and_parent_metrics(
            PartitionMapping().place(grid, space, rects), (80, 40), domains, rects, spec)
        ml = nest_and_parent_metrics(
            MultiLevelMapping().place(grid, space, rects), (80, 40), domains, rects, spec)
        assert ml["parent"].average_hops <= pm["parent"].average_hops


class TestLargeConfigurations:
    def test_bgl_rack_four_siblings(self):
        """The Table 2 allocation on a full BG/L rack (VN mode)."""
        grid = ProcessGrid(32, 32)
        space = SlotSpace(Torus3D((8, 8, 8)), 2)
        rects = [
            GridRect(0, 0, 18, 24), GridRect(0, 24, 18, 8),
            GridRect(18, 0, 14, 12), GridRect(18, 12, 14, 20),
        ]
        spec = HaloSpec()
        domains = [(394, 418), (232, 202), (232, 256), (313, 337)]
        obl = ObliviousMapping().place(grid, space, rects)
        for M in (PartitionMapping, MultiLevelMapping):
            p = M().place(grid, space, rects)
            assert len(set(p.slots)) == 1024
            m = nest_and_parent_metrics(p, (286, 307), domains, rects, spec)
            o = nest_and_parent_metrics(obl, (286, 307), domains, rects, spec)
            for key in m:
                assert m[key].average_hops < o[key].average_hops, key

    def test_awkward_areas_still_bijective(self):
        grid = ProcessGrid(32, 32)
        space = SlotSpace(Torus3D((8, 8, 8)), 2)
        rects = [GridRect(0, 0, 21, 32), GridRect(21, 0, 11, 32)]
        for M in (PartitionMapping, MultiLevelMapping):
            p = M().place(grid, space, rects)
            assert len(set(p.slots)) == 1024

    def test_bgp_vn_mode(self):
        grid = ProcessGrid(64, 64)
        space = SlotSpace(Torus3D((8, 8, 16)), 4)
        rects = [GridRect(0, 0, 32, 64), GridRect(32, 0, 32, 64)]
        p = PartitionMapping().place(grid, space, rects)
        assert len(set(p.slots)) == 4096
