"""Hypothesis parity: the array placement pipeline vs the scalar oracle.

Every mapping heuristic must produce a *bit-identical* placement under
``REPRO_PLACEMENT=vector`` and ``REPRO_PLACEMENT=scalar`` — same slot
tuples rank for rank — and every metric must agree exactly (integer hop
sums divided once, so even the floats match to the last bit).
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping.base import Box, Placement, SlotSpace
from repro.core.mapping.metrics import average_hops, evaluate_mapping, hop_bytes
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.errors import MappingError
from repro.runtime.backend import placement_backend
from repro.runtime.halo import HaloSpec, halo_messages
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.torus import Torus3D

MAPPINGS = [ObliviousMapping, TxyzMapping, PartitionMapping, MultiLevelMapping]


@contextmanager
def backend(name):
    saved = os.environ.get("REPRO_PLACEMENT")
    os.environ["REPRO_PLACEMENT"] = name
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_PLACEMENT", None)
        else:
            os.environ["REPRO_PLACEMENT"] = saved


def _split_rects(grid, cuts):
    """Partition *grid* into vertical strips at the given column cuts."""
    edges = sorted({0, grid.px, *cuts})
    return [
        GridRect(a, 0, b - a, grid.py)
        for a, b in zip(edges, edges[1:])
        if b > a
    ]


@st.composite
def placement_case(draw):
    """A random full-machine (grid, space, rects) configuration."""
    x = draw(st.sampled_from([2, 3, 4]))
    y = draw(st.sampled_from([2, 3, 4]))
    z = draw(st.sampled_from([1, 2, 4]))
    rpn = draw(st.sampled_from([1, 2]))
    torus = Torus3D((x, y, z))
    slots = x * y * z * rpn
    # Factor the slot count into a px*py grid (partition mappings need a
    # full machine partition).
    factors = [p for p in range(1, slots + 1) if slots % p == 0]
    px = draw(st.sampled_from(factors))
    py = slots // px
    grid = ProcessGrid(px, py)
    space = SlotSpace(torus, rpn)
    if px >= 2 and draw(st.booleans()):
        n_cuts = draw(st.integers(1, min(3, px - 1)))
        cuts = draw(
            st.lists(
                st.integers(1, px - 1),
                min_size=n_cuts,
                max_size=n_cuts,
                unique=True,
            )
        )
        rects = _split_rects(grid, cuts)
    else:
        rects = None
    return grid, space, rects


@given(placement_case(), st.sampled_from(MAPPINGS))
@settings(max_examples=150, deadline=None)
def test_every_heuristic_bit_identical_across_backends(case, mapping_cls):
    grid, space, rects = case
    with backend("vector"):
        vec = mapping_cls().place(grid, space, rects)
    with backend("scalar"):
        sca = mapping_cls().place(grid, space, rects)
    assert vec.slots == sca.slots
    assert vec.name == sca.name
    assert np.array_equal(vec.slots_array(), sca.slots_array())
    assert np.array_equal(vec.nodes_array(), sca.nodes_array())
    assert vec.nodes() == sca.nodes()


@given(placement_case(), st.sampled_from(MAPPINGS))
@settings(max_examples=60, deadline=None)
def test_metrics_bit_identical_across_backends(case, mapping_cls):
    grid, space, rects = case
    placement = mapping_cls().place(grid, space, rects)
    nx = 8 * grid.px
    ny = 8 * grid.py
    msgs = halo_messages(grid, grid.full_rect(), nx, ny, HaloSpec())
    if not msgs:
        return
    with backend("vector"):
        m_v = evaluate_mapping(placement, msgs)
        ah_v = average_hops(placement, msgs)
        hb_v = hop_bytes(placement, msgs)
    with backend("scalar"):
        m_s = evaluate_mapping(placement, msgs)
        ah_s = average_hops(placement, msgs)
        hb_s = hop_bytes(placement, msgs)
    assert m_v == m_s
    assert ah_v == ah_s
    assert hb_v == hb_s


def test_box_slots_array_matches_tuple_enumeration():
    box = Box(1, 2, 3, w=3, h=2, d=4)
    arr = box.slots_array()
    assert arr.shape == (box.volume, 3)
    assert [tuple(r) for r in arr.tolist()] == list(box.slots())


def test_placement_accepts_array_and_tuple_forms_identically():
    space = SlotSpace(Torus3D((2, 2, 2)), 2)
    grid = ProcessGrid(4, 4)
    p_tuple = ObliviousMapping().place(grid, space)
    arr = np.asarray(p_tuple.slots, dtype=np.int64)
    p_array = Placement(space=space, grid=grid, slots=arr, name="oblivious")
    assert p_array.slots == p_tuple.slots
    assert np.array_equal(p_array.slots_array(), p_tuple.slots_array())


@pytest.mark.parametrize("name", ["vector", "scalar"])
def test_out_of_bounds_slot_message_parity(name):
    space = SlotSpace(Torus3D((2, 2, 1)), 1)
    grid = ProcessGrid(2, 2)
    slots = ((0, 0, 0), (1, 0, 0), (0, 1, 0), (5, 1, 0))
    with backend(name):
        with pytest.raises(MappingError, match=r"slot \(5, 1, 0\) outside slot box"):
            Placement(space=space, grid=grid, slots=slots, name="bad")


@pytest.mark.parametrize("name", ["vector", "scalar"])
def test_duplicate_slot_message_parity(name):
    space = SlotSpace(Torus3D((2, 2, 1)), 1)
    grid = ProcessGrid(2, 2)
    slots = ((0, 0, 0), (1, 0, 0), (0, 0, 0), (1, 1, 0))
    with backend(name):
        with pytest.raises(MappingError, match=r"ranks 0 and 2 both mapped"):
            Placement(space=space, grid=grid, slots=slots, name="bad")


def test_backend_env_validation():
    from repro.errors import ConfigurationError

    with backend("bogus"):
        with pytest.raises(ConfigurationError, match="REPRO_PLACEMENT"):
            placement_backend()
    assert placement_backend() in ("vector", "scalar")
