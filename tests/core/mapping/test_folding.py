"""Tests for the fold/fill primitives."""

import pytest

from repro.core.mapping.base import Box
from repro.core.mapping.folding import (
    chunk_coord,
    fill_rect_into_box,
    fold_coord,
    snake_fill,
    snake_order_box,
    snake_order_box_depth_first,
    snake_order_rect,
)
from repro.errors import MappingError


class TestCoords:
    def test_chunk(self):
        assert chunk_coord(0, 4) == (0, 0)
        assert chunk_coord(3, 4) == (3, 0)
        assert chunk_coord(4, 4) == (0, 1)
        assert chunk_coord(9, 4) == (1, 2)

    def test_fold_reverses_odd_layers(self):
        assert fold_coord(3, 4) == (3, 0)
        assert fold_coord(4, 4) == (3, 1)  # seam: position stays put
        assert fold_coord(7, 4) == (0, 1)
        assert fold_coord(8, 4) == (0, 2)

    def test_fold_seam_adjacency(self):
        """Consecutive indices across a fold seam keep the same position."""
        for a in (2, 3, 5):
            for i in range(3 * a - 1):
                p1, l1 = fold_coord(i, a)
                p2, l2 = fold_coord(i + 1, a)
                assert abs(p1 - p2) + abs(l1 - l2) == 1

    def test_chunk_seam_jumps(self):
        p1, l1 = chunk_coord(3, 4)
        p2, l2 = chunk_coord(4, 4)
        assert abs(p1 - p2) == 3  # the jump folding avoids

    def test_orientation_flips(self):
        assert fold_coord(0, 4, orientation=1) == (3, 0)

    def test_invalid_inputs(self):
        with pytest.raises(MappingError):
            chunk_coord(-1, 4)
        with pytest.raises(MappingError):
            fold_coord(0, 0)


class TestSnakeOrders:
    def test_rect_consecutive_adjacent(self):
        seq = list(snake_order_rect(5, 4))
        assert len(seq) == 20
        assert len(set(seq)) == 20
        for (i1, j1), (i2, j2) in zip(seq, seq[1:]):
            assert abs(i1 - i2) + abs(j1 - j2) == 1

    def test_box_consecutive_adjacent(self):
        box = Box(0, 0, 0, 3, 4, 2)
        seq = snake_order_box(box)
        assert len(seq) == 24
        assert len(set(seq)) == 24
        for a, b in zip(seq, seq[1:]):
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    def test_depth_first_consecutive_adjacent(self):
        box = Box(1, 1, 0, 3, 2, 4)
        seq = snake_order_box_depth_first(box)
        assert len(seq) == 24
        assert len(set(seq)) == 24
        for a, b in zip(seq, seq[1:]):
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    def test_depth_first_runs_share_columns(self):
        box = Box(0, 0, 0, 2, 2, 4)
        seq = snake_order_box_depth_first(box)
        # First 4 slots all in the (0,0) node column.
        assert all(s[:2] == (0, 0) for s in seq[:4])


class TestFillRectIntoBox:
    def test_perfect_plane_fill(self):
        fill = fill_rect_into_box(4, 4, Box(0, 0, 0, 4, 4, 1), style="chunk")
        assert fill is not None
        assert fill[(2, 3)] == (2, 3, 0)

    def test_fold_two_planes_matches_fig6b(self):
        fill = fill_rect_into_box(4, 4, Box(0, 0, 0, 2, 4, 2), style="fold")
        assert fill is not None
        # Row 0 of Fig 6(b) sibling 1: 0 -> (0,0,0), 1 -> (1,0,0),
        # 2 -> (1,0,1), 3 -> (0,0,1).
        assert fill[(0, 0)] == (0, 0, 0)
        assert fill[(1, 0)] == (1, 0, 0)
        assert fill[(2, 0)] == (1, 0, 1)
        assert fill[(3, 0)] == (0, 0, 1)

    def test_fold_orientation_one_matches_fig6b_sibling2(self):
        fill = fill_rect_into_box(4, 4, Box(2, 0, 0, 2, 4, 2),
                                  style="fold", orientation=1)
        assert fill is not None
        # Fig 6(b) sibling 2: 4 -> (3,0,1), 5 -> (2,0,1), 6 -> (2,0,0).
        assert fill[(0, 0)] == (3, 0, 1)
        assert fill[(1, 0)] == (2, 0, 1)
        assert fill[(2, 0)] == (2, 0, 0)
        assert fill[(3, 0)] == (3, 0, 0)

    def test_returns_none_when_unfactorable(self):
        # 14x12 cannot wrap into a 3x8x7 box (needs 5x2 > 7 layers).
        assert fill_rect_into_box(14, 12, Box(0, 0, 0, 3, 8, 7), style="chunk") is None

    def test_injective(self):
        fill = fill_rect_into_box(18, 24, Box(0, 0, 0, 6, 8, 9), style="chunk")
        assert fill is not None
        assert len(set(fill.values())) == 18 * 24

    def test_fold_injective(self):
        fill = fill_rect_into_box(18, 24, Box(0, 0, 0, 6, 8, 9), style="fold")
        assert fill is not None
        assert len(set(fill.values())) == 18 * 24

    def test_volume_mismatch_rejected(self):
        with pytest.raises(MappingError):
            fill_rect_into_box(4, 4, Box(0, 0, 0, 4, 4, 2), style="chunk")

    def test_unknown_style_rejected(self):
        with pytest.raises(MappingError):
            fill_rect_into_box(4, 4, Box(0, 0, 0, 4, 4, 1), style="spiral")


class TestSnakeFill:
    def test_always_succeeds_when_volume_matches(self):
        fill = snake_fill(14, 12, Box(0, 0, 0, 3, 8, 7))
        assert len(set(fill.values())) == 168

    def test_depth_first_variant(self):
        fill = snake_fill(14, 12, Box(0, 0, 0, 3, 8, 7), depth_first=True)
        assert len(set(fill.values())) == 168

    def test_consecutive_rect_positions_on_adjacent_slots(self):
        fill = snake_fill(6, 4, Box(0, 0, 0, 4, 3, 2))
        seq = list(snake_order_rect(6, 4))
        for pos_a, pos_b in zip(seq, seq[1:]):
            a, b = fill[pos_a], fill[pos_b]
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1
