"""Tests for mapping quality metrics."""

import pytest

from repro.core.mapping.base import Placement, SlotSpace
from repro.core.mapping.metrics import average_hops, evaluate_mapping, hop_bytes
from repro.errors import MappingError
from repro.runtime.halo import HaloMessage
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torus import Torus3D


@pytest.fixture
def line_placement():
    """4 ranks in a row on a 4x1x1 ring."""
    grid = ProcessGrid(4, 1)
    space = SlotSpace(Torus3D((4, 1, 1)), 1)
    slots = tuple((x, 0, 0) for x in range(4))
    return Placement(space=space, grid=grid, slots=slots, name="line")


class TestAverageHops:
    def test_neighbours(self, line_placement):
        msgs = [HaloMessage(0, 1, 100), HaloMessage(1, 2, 100)]
        assert average_hops(line_placement, msgs) == 1.0

    def test_wraparound(self, line_placement):
        msgs = [HaloMessage(0, 3, 100)]
        assert average_hops(line_placement, msgs) == 1.0

    def test_mixed(self, line_placement):
        msgs = [HaloMessage(0, 1, 100), HaloMessage(0, 2, 100)]
        assert average_hops(line_placement, msgs) == 1.5

    def test_empty_rejected(self, line_placement):
        with pytest.raises(MappingError):
            average_hops(line_placement, [])


class TestHopBytes:
    def test_weighted(self, line_placement):
        msgs = [HaloMessage(0, 1, 100), HaloMessage(0, 2, 50)]
        assert hop_bytes(line_placement, msgs) == 100 + 2 * 50


class TestEvaluate:
    def test_full_metrics(self, line_placement):
        msgs = [HaloMessage(0, 1, 100), HaloMessage(0, 2, 50), HaloMessage(1, 1, 10)]
        m = evaluate_mapping(line_placement, msgs)
        assert m.num_messages == 3
        assert m.max_hops == 2
        assert m.intra_node_fraction == pytest.approx(1 / 3)
        assert m.hop_bytes == 200.0

    def test_empty_rejected(self, line_placement):
        with pytest.raises(MappingError):
            evaluate_mapping(line_placement, [])
