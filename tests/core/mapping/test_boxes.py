"""Tests for guillotine recovery and box assignment."""

import pytest

from repro.core.mapping.base import Box
from repro.core.mapping.boxes import assign_boxes, find_guillotine_cut
from repro.errors import MappingError
from repro.runtime.process_grid import GridRect


class TestFindGuillotineCut:
    def test_vertical_cut(self):
        rects = [GridRect(0, 0, 4, 8), GridRect(4, 0, 4, 8)]
        assert find_guillotine_cut(rects, [0, 1]) == ("x", 4)

    def test_horizontal_cut(self):
        rects = [GridRect(0, 0, 8, 3), GridRect(0, 3, 8, 5)]
        assert find_guillotine_cut(rects, [0, 1]) == ("y", 3)

    def test_single_rect_no_cut(self):
        rects = [GridRect(0, 0, 4, 4)]
        assert find_guillotine_cut(rects, [0]) is None

    def test_pinwheel_not_guillotine(self):
        # The classic pinwheel tiling has no single through cut.
        rects = [
            GridRect(0, 0, 2, 1),
            GridRect(2, 0, 1, 2),
            GridRect(1, 2, 2, 1),
            GridRect(0, 1, 1, 2),
            GridRect(1, 1, 1, 1),
        ]
        assert find_guillotine_cut(rects, list(range(5))) is None

    def test_subset_cut(self):
        rects = [
            GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 2), GridRect(4, 2, 4, 2),
        ]
        assert find_guillotine_cut(rects, [1, 2]) == ("y", 2)


class TestAssignBoxes:
    def test_two_halves_exact(self):
        rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
        own, shared = assign_boxes(rects, Box(0, 0, 0, 4, 4, 2))
        assert not shared
        assert own[0][0].volume == 16
        assert own[1][0].volume == 16

    def test_orientations_alternate(self):
        rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
        own, _ = assign_boxes(rects, Box(0, 0, 0, 4, 4, 2))
        assert own[0][1] != own[1][1]

    def test_boxes_disjoint(self):
        rects = [
            GridRect(0, 0, 18, 24), GridRect(0, 24, 18, 8),
            GridRect(18, 0, 14, 12), GridRect(18, 12, 14, 20),
        ]
        own, shared = assign_boxes(rects, Box(0, 0, 0, 8, 8, 16))
        all_slots = []
        for idx in range(4):
            if idx in own:
                all_slots.extend(own[idx][0].slots())
        covered = set(all_slots)
        assert len(covered) == len(all_slots)  # no overlap among own boxes

    def test_volume_must_match(self):
        with pytest.raises(MappingError):
            assign_boxes([GridRect(0, 0, 4, 4)], Box(0, 0, 0, 4, 4, 2))

    def test_awkward_volumes_fall_back_to_shared(self):
        # 672/352 do not factor against an 8x8x16 box.
        rects = [GridRect(0, 0, 21, 32), GridRect(21, 0, 11, 32)]
        own, shared = assign_boxes(rects, Box(0, 0, 0, 8, 8, 16))
        assert set(shared) == {0, 1}
        box, group = shared[0]
        assert box.volume == 1024
        assert tuple(group) == (0, 1)

    def test_shared_group_ordered_by_position(self):
        rects = [GridRect(21, 0, 11, 32), GridRect(0, 0, 21, 32)]
        own, shared = assign_boxes(rects, Box(0, 0, 0, 8, 8, 16))
        _, group = shared[0]
        assert list(group) == [1, 0]  # sorted by (y0, x0)

    def test_prefer_depth_cut_slices_planes(self):
        rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
        own, _ = assign_boxes(rects, Box(0, 0, 0, 4, 4, 2), prefer_depth_cut=True)
        assert {own[0][0].extents, own[1][0].extents} == {(4, 4, 1)}

    def test_prefer_horizontal_cut_keeps_depth(self):
        rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
        own, _ = assign_boxes(rects, Box(0, 0, 0, 4, 4, 2), prefer_depth_cut=False)
        assert {own[0][0].extents, own[1][0].extents} == {(2, 4, 2)}
