"""Tests for the prototype 5-D (Blue Gene/Q) folded mapping."""

import pytest

from repro.core.mapping.ndfold import (
    CORE_DIM,
    default_nd_placement,
    fold_mixed_radix,
    folded_nd_placement,
    nd_average_hops,
    split_dims_for_grid,
)
from repro.errors import MappingError
from repro.runtime.halo import HaloSpec, halo_messages
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torusnd import TorusND


class TestFoldMixedRadix:
    def test_bijective(self):
        dims = (3, 2, 4)
        seen = set()
        for i in range(24):
            seen.add(fold_mixed_radix(i, dims))
        assert len(seen) == 24

    def test_adjacent_indices_one_step(self):
        """The defining property: consecutive indices differ by one step
        in exactly one digit."""
        for dims in ((4,), (2, 3), (3, 2, 4), (2, 2, 2, 2)):
            total = 1
            for d in dims:
                total *= d
            prev = fold_mixed_radix(0, dims)
            for i in range(1, total):
                cur = fold_mixed_radix(i, dims)
                diff = [abs(a - b) for a, b in zip(prev, cur)]
                assert sum(diff) == 1, (dims, i, prev, cur)
                prev = cur

    def test_matches_1d_fold(self):
        from repro.core.mapping.folding import fold_coord

        for i in range(12):
            pos, layer = fold_coord(i, 4)
            assert fold_mixed_radix(i, (4, 3)) == (pos, layer)

    def test_out_of_range(self):
        with pytest.raises(MappingError):
            fold_mixed_radix(24, (3, 2, 4))


class TestSplitDims:
    def test_exact_split_found(self):
        torus = TorusND((4, 4, 4, 4, 2))
        split = split_dims_for_grid(torus, 16, 64, 128)
        assert split is not None
        x_group, y_group = split
        def product(group):
            p = 1
            for d in group:
                p *= 16 if d == CORE_DIM else torus.dims[d]
            return p
        assert product(x_group) == 64
        assert product(y_group) == 128

    def test_core_prefers_x_group(self):
        torus = TorusND((4, 4, 4, 4, 2))
        x_group, _ = split_dims_for_grid(torus, 16, 64, 128)
        assert CORE_DIM in x_group

    def test_unfactorable_returns_none(self):
        torus = TorusND((4, 4))
        assert split_dims_for_grid(torus, 1, 2, 8) is None

    def test_grid_volume_checked(self):
        torus = TorusND((4, 4, 2))
        with pytest.raises(MappingError):
            split_dims_for_grid(torus, 1, 8, 8)  # 64 != 32


class TestPlacements:
    @pytest.fixture
    def setup(self):
        torus = TorusND((4, 4, 4, 4, 2))  # 512-node BG/Q midplane
        grid = ProcessGrid(64, 128)       # 8192 ranks at 16/node
        return torus, grid

    def test_default_valid(self, setup):
        torus, grid = setup
        p = default_nd_placement(grid, torus, 16)
        assert len(p.nodes) == 8192

    def test_folded_valid(self, setup):
        torus, grid = setup
        p = folded_nd_placement(grid, torus, 16)
        assert len(p.nodes) == 8192

    def test_folded_all_neighbours_at_most_one_hop(self, setup):
        """The scheme's guarantee for foldable grids."""
        torus, grid = setup
        p = folded_nd_placement(grid, torus, 16)
        import random

        rng = random.Random(1)
        for _ in range(300):
            rank = rng.randrange(grid.size)
            for nbr in grid.neighbors_of(rank):
                assert p.hops_between(rank, nbr) <= 1

    def test_folded_beats_default(self, setup):
        torus, grid = setup
        spec = HaloSpec()
        msgs = halo_messages(grid, grid.full_rect(), 415, 445, spec)
        default = nd_average_hops(default_nd_placement(grid, torus, 16), msgs)
        folded = nd_average_hops(folded_nd_placement(grid, torus, 16), msgs)
        assert folded < default * 0.75

    def test_small_foldable_grid(self):
        torus = TorusND((3, 5))
        p = folded_nd_placement(ProcessGrid(5, 3), torus, 1)
        assert len(p.nodes) == 15

    def test_unfoldable_grid_raises(self):
        # 2x8 on a (4,4) torus: no dimension subset has product 2.
        torus = TorusND((4, 4))
        with pytest.raises(MappingError):
            folded_nd_placement(ProcessGrid(2, 8), torus, 1)

    def test_node_capacity_enforced(self, setup):
        torus, grid = setup
        from repro.core.mapping.ndfold import NdPlacement

        with pytest.raises(MappingError):
            NdPlacement(
                torus=torus, grid=ProcessGrid(2, 1),
                nodes=((0, 0, 0, 0, 0), (0, 0, 0, 0, 0)),
                ranks_per_node=1, name="bad",
            )
