"""Tests for the sequential XYZT and TXYZ mappings."""

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.errors import MappingError
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torus import Torus3D


class TestOblivious:
    def test_fig5b_layout(self):
        """Fig 5(b): ranks 0-3 on the top row of the z=0 plane, etc."""
        grid = ProcessGrid(8, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        p = ObliviousMapping().place(grid, space)
        assert p.node_of(0) == (0, 0, 0)
        assert p.node_of(3) == (3, 0, 0)
        assert p.node_of(4) == (0, 1, 0)
        assert p.node_of(16) == (0, 0, 1)

    def test_fig5_hop_claims(self):
        """Paper: ranks 0 and 8 are 2 hops apart; 8 and 16 are 3 hops."""
        grid = ProcessGrid(8, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        p = ObliviousMapping().place(grid, space)
        assert p.hops_between(0, 8) == 2
        assert p.hops_between(8, 16) == 3

    def test_vn_mode_wraps_to_second_core(self):
        grid = ProcessGrid(8, 8)
        space = SlotSpace(Torus3D((4, 4, 2)), 2)
        p = ObliviousMapping().place(grid, space)
        # Ranks 0 and 32 share node (0,0,0) on different cores.
        assert p.node_of(0) == p.node_of(32)
        assert p.hops_between(0, 32) == 0

    def test_capacity_check(self):
        grid = ProcessGrid(8, 8)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        with pytest.raises(MappingError):
            ObliviousMapping().place(grid, space)

    def test_partial_machine_allowed(self):
        grid = ProcessGrid(4, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        p = ObliviousMapping().place(grid, space)
        assert len(p.slots) == 16


class TestTxyz:
    def test_cores_fastest(self):
        grid = ProcessGrid(8, 8)
        space = SlotSpace(Torus3D((4, 4, 2)), 2)
        p = TxyzMapping().place(grid, space)
        # Ranks 0 and 1 share node (0,0,0); rank 2 moves to (1,0,0).
        assert p.node_of(0) == p.node_of(1) == (0, 0, 0)
        assert p.node_of(2) == (1, 0, 0)

    def test_equals_oblivious_for_one_rank_per_node(self):
        grid = ProcessGrid(8, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)
        a = ObliviousMapping().place(grid, space)
        b = TxyzMapping().place(grid, space)
        assert a.nodes() == b.nodes()

    def test_x_neighbours_colocated_in_vn(self):
        """TXYZ's selling point: consecutive ranks share a node."""
        grid = ProcessGrid(32, 32)
        space = SlotSpace(Torus3D((8, 8, 8)), 2)
        p = TxyzMapping().place(grid, space)
        zero_hop_pairs = sum(
            1 for r in range(0, 1024, 2) if p.hops_between(r, r + 1) == 0
        )
        assert zero_hop_pairs == 512
