"""Property-based tests for the N-D folded mapping."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.mapping.ndfold import (
    default_nd_placement,
    fold_mixed_radix,
    folded_nd_placement,
)
from repro.errors import MappingError
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torusnd import TorusND


class TestFoldMixedRadixProperties:
    @settings(max_examples=60, deadline=None)
    @given(dims=st.lists(st.integers(1, 5), min_size=1, max_size=4))
    def test_bijective_over_full_range(self, dims):
        total = 1
        for d in dims:
            total *= d
        assume(total <= 400)
        seen = {fold_mixed_radix(i, dims) for i in range(total)}
        assert len(seen) == total

    @settings(max_examples=60, deadline=None)
    @given(dims=st.lists(st.integers(1, 5), min_size=1, max_size=4))
    def test_gray_adjacency(self, dims):
        """Consecutive indices differ by exactly one unit step."""
        total = 1
        for d in dims:
            total *= d
        assume(1 < total <= 400)
        prev = fold_mixed_radix(0, dims)
        for i in range(1, total):
            cur = fold_mixed_radix(i, dims)
            assert sum(abs(a - b) for a, b in zip(prev, cur)) == 1
            prev = cur

    @settings(max_examples=40, deadline=None)
    @given(dims=st.lists(st.integers(1, 4), min_size=1, max_size=4))
    def test_digits_within_radix(self, dims):
        total = 1
        for d in dims:
            total *= d
        assume(total <= 300)
        for i in range(total):
            digits = fold_mixed_radix(i, dims)
            assert all(0 <= dig < d for dig, d in zip(digits, dims))


def _pairs_of_divisors(n):
    out = []
    for a in range(1, n + 1):
        if n % a == 0:
            out.append((a, n // a))
    return out


class TestFoldedPlacementProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        dims=st.lists(st.sampled_from([2, 3, 4]), min_size=2, max_size=4),
        rpn=st.sampled_from([1, 2, 4]),
        split=st.integers(0, 10),
    )
    def test_valid_when_foldable(self, dims, rpn, split):
        torus = TorusND(dims)
        total = torus.num_nodes * rpn
        assume(total <= 1024)
        candidates = _pairs_of_divisors(total)
        px, py = candidates[split % len(candidates)]
        grid = ProcessGrid(px, py)
        try:
            placement = folded_nd_placement(grid, torus, rpn)
        except MappingError:
            return  # not foldable for this (px, py) split — allowed
        # Bijection onto slots: every node holds at most rpn ranks, all
        # ranks placed.
        assert len(placement.nodes) == total
        # The <=1-hop guarantee for 2-D neighbours.
        for rank in range(0, total, max(1, total // 64)):
            for nbr in grid.neighbors_of(rank):
                assert placement.hops_between(rank, nbr) <= 1

    @settings(max_examples=15, deadline=None)
    @given(dims=st.lists(st.sampled_from([2, 4]), min_size=2, max_size=3))
    def test_folded_never_worse_than_default_on_neighbours(self, dims):
        torus = TorusND(dims)
        n = torus.num_nodes
        assume(4 <= n <= 256)
        # Pick a near-square foldable grid.
        for px, py in _pairs_of_divisors(n):
            if px >= 2 and py >= 2:
                grid = ProcessGrid(px, py)
                try:
                    folded = folded_nd_placement(grid, torus, 1)
                except MappingError:
                    continue
                default = default_nd_placement(grid, torus, 1)
                f_total = d_total = 0
                for rank in range(grid.size):
                    for nbr in grid.neighbors_of(rank):
                        f_total += folded.hops_between(rank, nbr)
                        d_total += default.hops_between(rank, nbr)
                assert f_total <= d_total
                return
