"""Property tests for processor-rectangle clamping (`effective_rect`).

Clamping a rectangle to what an ``nx x ny`` domain can decompose over
must never *add* ranks, must be idempotent (clamping twice is clamping
once), and must preserve the rectangle's origin.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.perfsim.simulate import effective_rect
from repro.runtime.process_grid import GridRect

rects = st.builds(
    GridRect,
    st.integers(0, 64),   # x0
    st.integers(0, 64),   # y0
    st.integers(1, 200),  # width
    st.integers(1, 200),  # height
)
domains = st.tuples(st.integers(1, 600), st.integers(1, 600))


@given(rects, domains)
def test_clamping_never_increases_area(rect, domain):
    nx, ny = domain
    out = effective_rect(rect, nx, ny)
    assert out.area <= rect.area
    assert out.width == min(rect.width, nx)
    assert out.height == min(rect.height, ny)


@given(rects, domains)
def test_clamping_is_idempotent(rect, domain):
    nx, ny = domain
    once = effective_rect(rect, nx, ny)
    twice = effective_rect(once, nx, ny)
    assert twice == once
    # Idempotence is by identity when nothing needs clamping.
    assert effective_rect(once, nx, ny) is once


@given(rects, domains)
def test_clamping_preserves_origin(rect, domain):
    nx, ny = domain
    out = effective_rect(rect, nx, ny)
    assert (out.x0, out.y0) == (rect.x0, rect.y0)


@given(rects, domains)
def test_unclamped_rect_returned_unchanged(rect, domain):
    nx, ny = domain
    if rect.width <= nx and rect.height <= ny:
        assert effective_rect(rect, nx, ny) is rect
