"""Property-based tests for the runtime, topology, and solver layers."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.allocation.partition import partition_grid
from repro.runtime.decomposition import decompose, split_counts
from repro.runtime.process_grid import ProcessGrid
from repro.topology.routing import path_links
from repro.topology.torus import Torus3D
from repro.wrf.fields import ModelState
from repro.wrf.solver import ShallowWaterSolver, SolverParams


class TestTorusProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        dims=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
        seed=st.integers(0, 1000),
    )
    def test_route_length_equals_distance(self, dims, seed):
        torus = Torus3D(dims)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            a = tuple(int(rng.integers(0, d)) for d in dims)
            b = tuple(int(rng.integers(0, d)) for d in dims)
            assert len(path_links(torus, a, b)) == torus.distance(a, b)

    @settings(max_examples=40, deadline=None)
    @given(
        dims=st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)),
        seed=st.integers(0, 1000),
    )
    def test_distance_is_metric(self, dims, seed):
        torus = Torus3D(dims)
        rng = np.random.default_rng(seed)
        pts = [tuple(int(rng.integers(0, d)) for d in dims) for _ in range(4)]
        for a in pts:
            assert torus.distance(a, a) == 0
            for b in pts:
                assert torus.distance(a, b) == torus.distance(b, a)
                for c in pts:
                    assert torus.distance(a, c) <= (
                        torus.distance(a, b) + torus.distance(b, c)
                    )


class TestDecompositionProperties:
    @given(n=st.integers(1, 2000), parts=st.integers(1, 64))
    def test_split_counts_partition_n(self, n, parts):
        assume(parts <= n)
        counts = split_counts(n, parts)
        assert sum(counts) == n
        assert max(counts) - min(counts) <= 1
        assert min(counts) >= 1

    @given(
        nx=st.integers(8, 500), ny=st.integers(8, 500),
        px=st.integers(1, 8), py=st.integers(1, 8),
    )
    def test_decompose_tiles_domain(self, nx, ny, px, py):
        dec = decompose(nx, ny, px, py)
        assert sum(dec.col_widths) == nx
        assert sum(dec.row_heights) == ny
        assert dec.load_imbalance() >= 0.0


class TestMappingProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        weights=st.lists(st.floats(0.05, 1.0), min_size=1, max_size=5),
        seed=st.integers(0, 100),
    )
    def test_partition_mappings_bijective(self, weights, seed):
        grid = ProcessGrid(16, 16)
        space = SlotSpace(Torus3D((4, 4, 8)), 2)
        alloc = partition_grid(grid, weights)
        for M in (ObliviousMapping, PartitionMapping, MultiLevelMapping):
            placement = M().place(grid, space, list(alloc.rects))
            assert len(set(placement.slots)) == grid.size
            # Every slot maps to a valid node.
            for rank in range(grid.size):
                node = placement.node_of(rank)
                assert space.torus.contains(node)

    @settings(max_examples=10, deadline=None)
    @given(weights=st.lists(st.floats(0.1, 1.0), min_size=2, max_size=4))
    def test_topology_aware_never_much_worse_internally(self, weights):
        """Partition mapping's rect-internal hops never exceed the
        oblivious mapping's by more than a small factor."""
        from repro.core.mapping.metrics import average_hops
        from repro.runtime.halo import HaloSpec, halo_messages

        grid = ProcessGrid(16, 16)
        space = SlotSpace(Torus3D((4, 4, 8)), 2)
        alloc = partition_grid(grid, weights)
        spec = HaloSpec(width=1, levels=1)
        obl = ObliviousMapping().place(grid, space, list(alloc.rects))
        par = PartitionMapping().place(grid, space, list(alloc.rects))
        for rect in alloc.rects:
            if rect.area < 2:
                continue
            msgs = halo_messages(grid, rect, 160, 160, spec)
            if not msgs:
                continue
            assert average_hops(par, msgs) <= average_hops(obl, msgs) * 1.5 + 0.5


class TestTiledSolverProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 500),
        px=st.integers(1, 5),
        py=st.integers(1, 5),
        steps=st.integers(1, 5),
    )
    def test_tiled_equals_global(self, seed, px, py, steps):
        """Any decomposition reproduces the global solve bit for bit."""
        from repro.wrf.parallel import TiledSolver

        params = SolverParams(dx_m=24_000.0)
        state = ModelState.with_disturbances(20, 18, seed=seed, amplitude=0.5)
        solver = ShallowWaterSolver(params)
        dt = solver.stable_dt(state)
        reference = solver.run(state, steps, dt=dt)
        tiled = TiledSolver(ProcessGrid(px, py), params).run(state, steps, dt)
        for f in ("h", "u", "v", "q"):
            assert np.array_equal(getattr(reference, f), getattr(tiled, f))


class TestSolverProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        nx=st.integers(12, 48),
        ny=st.integers(12, 48),
        steps=st.integers(1, 15),
    )
    def test_mass_conservation(self, seed, nx, ny, steps):
        solver = ShallowWaterSolver(SolverParams(dx_m=24_000.0))
        state = ModelState.with_disturbances(nx, ny, seed=seed, amplitude=0.5)
        m0 = state.total_mass()
        out = solver.run(state, steps)
        assert out.total_mass() == pytest.approx(m0, rel=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_determinism(self, seed):
        solver = ShallowWaterSolver(SolverParams(dx_m=24_000.0))
        a = solver.run(ModelState.with_disturbances(24, 24, seed=seed), 5, dt=30.0)
        b = solver.run(ModelState.with_disturbances(24, 24, seed=seed), 5, dt=30.0)
        assert a.allclose(b)
