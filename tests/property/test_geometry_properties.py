"""Property-based tests (hypothesis) for the geometric core.

These pin the invariants the paper's algorithms rely on: barycentric
coordinates, the Delaunay empty-circumcircle property (with scipy as an
independent oracle), exact partition tilings, and fold adjacency.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.allocation.huffman import HuffmanTree
from repro.core.allocation.splittree import split_tree_partition
from repro.core.prediction.barycentric import barycentric_coordinates, interpolate
from repro.core.prediction.delaunay import (
    _circumcircle_contains,
    delaunay_triangulation,
)
from repro.core.mapping.folding import fold_coord, snake_order_rect
from repro.runtime.process_grid import GridRect


coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.tuples(coords, coords)


def tri_area(a, b, c):
    return abs((b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])) / 2


class TestBarycentricProperties:
    @given(p=points, a=points, b=points, c=points)
    def test_coordinates_sum_to_one(self, p, a, b, c):
        assume(tri_area(a, b, c) > 1e-6)
        l1, l2, l3 = barycentric_coordinates(p, a, b, c)
        assert l1 + l2 + l3 == pytest.approx(1.0, abs=1e-6)

    @given(
        a=points, b=points, c=points,
        cx=st.floats(0.1e0, 0.8, allow_nan=False),
        cy=st.floats(0.1, 0.8, allow_nan=False),
        fx=st.floats(-5, 5), fy=st.floats(-5, 5), f0=st.floats(-5, 5),
    )
    def test_linear_reproduction(self, a, b, c, cx, cy, fx, fy, f0):
        """Interpolation is exact for affine functions — the property that
        makes Eq (4) a sound estimator."""
        assume(tri_area(a, b, c) > 1e-3)
        f = lambda x, y: fx * x + fy * y + f0
        # Query point as a convex combination (inside the triangle).
        cz = max(0.0, 1.0 - cx - cy)
        s = cx + cy + cz
        cx, cy, cz = cx / s, cy / s, cz / s
        p = (
            cx * a[0] + cy * b[0] + cz * c[0],
            cx * a[1] + cy * b[1] + cz * c[1],
        )
        got = interpolate(p, (a, b, c), [f(*a), f(*b), f(*c)])
        assert got == pytest.approx(f(*p), abs=1e-5 * (1 + abs(f(*p))))


class TestDelaunayProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 24))
    def test_empty_circumcircle(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = [tuple(p) for p in rng.random((n, 2))]
        assume(len(set(pts)) == n)
        tri = delaunay_triangulation(pts)
        for t in tri.triangles:
            for i, p in enumerate(pts):
                if i in t.vertices():
                    continue
                assert not _circumcircle_contains(tri.points, t, p)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 20))
    def test_matches_scipy_oracle(self, seed, n):
        from scipy.spatial import Delaunay as SciPyDelaunay

        rng = np.random.default_rng(seed)
        pts = [tuple(p) for p in rng.random((n, 2))]
        assume(len(set(pts)) == n)
        ours = delaunay_triangulation(pts)
        theirs = SciPyDelaunay(np.array(pts))
        their_edges = set()
        for simplex in theirs.simplices:
            a, b, c = sorted(simplex)
            their_edges.update({(a, b), (a, c), (b, c)})
        assert ours.edge_set() == their_edges


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=10),
        px=st.integers(4, 40),
        py=st.integers(4, 40),
    )
    def test_exact_tiling(self, weights, px, py):
        assume(len(weights) <= px * py)
        tree = HuffmanTree(weights)
        rects = split_tree_partition(tree, GridRect(0, 0, px, py))
        assert set(rects) == set(range(len(weights)))
        assert sum(r.area for r in rects.values()) == px * py
        items = list(rects.values())
        for i, a in enumerate(items):
            for b in items[i + 1:]:
                assert not a.overlaps(b)
            assert a.x1 <= px and a.y1 <= py

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.lists(st.floats(0.05, 1.0), min_size=2, max_size=6),
        scale=st.integers(4, 8),
    )
    def test_areas_track_weights(self, weights, scale):
        px = py = 2 ** scale // (2 ** (scale - 5) if scale > 5 else 1)
        px = py = 32
        tree = HuffmanTree(weights)
        rects = split_tree_partition(tree, GridRect(0, 0, px, py))
        total = sum(weights)
        for i, w in enumerate(weights):
            share = rects[i].area / (px * py)
            # Integer rounding bounds the deviation by roughly one
            # row/column of the enclosing rectangle at each split.
            assert abs(share - w / total) < 0.20


class TestFoldProperties:
    @given(i=st.integers(0, 500), a=st.integers(1, 50),
           orientation=st.integers(0, 1))
    def test_fold_bijective_positions(self, i, a, orientation):
        pos, layer = fold_coord(i, a, orientation=orientation)
        assert 0 <= pos < a
        assert layer == i // a

    @given(a=st.integers(1, 20), n_layers=st.integers(1, 6),
           orientation=st.integers(0, 1))
    def test_fold_adjacency_everywhere(self, a, n_layers, orientation):
        n = a * n_layers
        for i in range(n - 1):
            p1, l1 = fold_coord(i, a, orientation=orientation)
            p2, l2 = fold_coord(i + 1, a, orientation=orientation)
            assert abs(p1 - p2) + abs(l1 - l2) == 1

    @given(w=st.integers(1, 30), h=st.integers(1, 30))
    def test_snake_visits_every_cell_once(self, w, h):
        seq = list(snake_order_rect(w, h))
        assert len(seq) == w * h
        assert len(set(seq)) == w * h
