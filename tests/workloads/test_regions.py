"""Tests for the Pacific and SE-Asia region generators."""

import pytest

from repro.workloads.regions import (
    pacific_configurations,
    pacific_parent,
    southeast_asia_configurations,
)


class TestPacific:
    def test_parent_matches_paper(self):
        p = pacific_parent()
        assert (p.nx, p.ny) == (286, 307)
        assert p.dx_km == 24.0

    def test_85_configurations(self):
        configs = pacific_configurations()
        assert len(configs) == 85

    def test_sibling_counts_2_to_4(self):
        configs = pacific_configurations(30, seed=5)
        counts = {c.num_siblings for c in configs}
        assert counts <= {2, 3, 4}
        assert len(counts) > 1

    def test_nests_at_8km(self):
        for c in pacific_configurations(5, seed=9):
            for s in c.siblings:
                assert s.dx_km == pytest.approx(8.0)
                assert s.refinement == 3

    def test_deterministic(self):
        a = pacific_configurations(10, seed=3)
        b = pacific_configurations(10, seed=3)
        assert [(s.nx, s.ny) for c in a for s in c.siblings] == [
            (s.nx, s.ny) for c in b for s in c.siblings
        ]

    def test_unique_names(self):
        configs = pacific_configurations(20, seed=1)
        assert len({c.name for c in configs}) == 20


class TestSoutheastAsia:
    def test_eight_configurations(self):
        configs = southeast_asia_configurations()
        assert len(configs) == 8

    def test_three_have_second_level(self):
        configs = southeast_asia_configurations()
        two_level = [c for c in configs if any(s.level == 2 for s in c.siblings)]
        assert len(two_level) == 3

    def test_first_level_at_1p5km(self):
        for c in southeast_asia_configurations():
            for s in c.siblings:
                if s.level == 1:
                    assert s.dx_km == pytest.approx(1.5)

    def test_nest_sizes_within_paper_bounds(self):
        # Paper: min 178x202, max 925x820 across all experiments.
        for c in southeast_asia_configurations():
            for s in c.siblings:
                if s.level == 1:
                    assert 178 * 202 <= s.points <= 925 * 820

    def test_level1_nests_fit_parent(self):
        for c in southeast_asia_configurations():
            for s in c.siblings:
                if s.level == 1:
                    assert s.fits_in(c.parent), (c.name, s.name)

    def test_max_nest_points_property(self):
        c = southeast_asia_configurations()[0]
        assert c.max_nest_points == max(s.points for s in c.siblings)
