"""Tests for the paper's named configurations."""

import pytest

from repro.workloads.paper_configs import (
    fig2_domains,
    fig10_domains,
    fig15_domains,
    table2_domains,
    table2_rects,
    table3_configurations,
    table4_configurations,
    table5_configurations,
)


class TestFig2:
    def test_sizes(self):
        c = fig2_domains()
        assert (c.parent.nx, c.parent.ny) == (286, 307)
        assert len(c.siblings) == 1
        assert (c.siblings[0].nx, c.siblings[0].ny) == (415, 445)

    def test_nest_fits(self):
        c = fig2_domains()
        assert c.siblings[0].fits_in(c.parent)


class TestTable2:
    def test_sibling_sizes(self):
        sizes = [(s.nx, s.ny) for s in table2_domains().siblings]
        assert sizes == [(394, 418), (232, 202), (232, 256), (313, 337)]

    def test_rects_match_paper(self):
        rects = table2_rects()
        assert [(r.width, r.height) for r in rects] == [
            (18, 24), (18, 8), (14, 12), (14, 20)
        ]

    def test_rects_tile_1024(self):
        from repro.core.allocation.partition import validate_tiling
        from repro.runtime.process_grid import ProcessGrid

        validate_tiling(ProcessGrid(32, 32), table2_rects())

    def test_footprints_disjoint(self):
        c = table2_domains()
        sibs = list(c.siblings)
        for i, a in enumerate(sibs):
            ai, aj = a.parent_start
            aw, ah = a.parent_extent()
            for b in sibs[i + 1:]:
                bi, bj = b.parent_start
                bw, bh = b.parent_extent()
                assert (ai + aw <= bi or bi + bw <= ai or
                        aj + ah <= bj or bj + bh <= aj)


class TestFig10:
    def test_large_sibling_sizes(self):
        sizes = [(s.nx, s.ny) for s in fig10_domains().siblings]
        assert sizes == [(586, 643), (856, 919), (925, 850)]

    def test_fit_in_substitute_parent(self):
        c = fig10_domains()
        for s in c.siblings:
            assert s.fits_in(c.parent)


class TestTable3:
    def test_max_sizes(self):
        configs = table3_configurations()
        maxes = [max(c.siblings, key=lambda s: s.points) for c in configs]
        assert [(m.nx, m.ny) for m in maxes] == [
            (205, 223), (394, 418), (925, 820)
        ]

    def test_ordering_by_size(self):
        configs = table3_configurations()
        points = [c.max_nest_points for c in configs]
        assert points == sorted(points)


class TestTables4And5:
    def test_table4_sibling_counts(self):
        counts = [c.num_siblings for c in table4_configurations()]
        assert counts == [2, 2, 2, 3, 4]  # paper: 3x 2-sib, then 3, then 4

    def test_table5_sibling_counts(self):
        counts = [c.num_siblings for c in table5_configurations()]
        assert counts == [4, 4, 3]

    def test_all_nests_fit(self):
        for c in table4_configurations() + table5_configurations():
            for s in c.siblings:
                assert s.fits_in(c.parent), (c.name, s.name)


class TestFig15:
    def test_twin_nests(self):
        c = fig15_domains()
        assert [(s.nx, s.ny) for s in c.siblings] == [(259, 229), (259, 229)]
