"""Tests for the Sec 5 generality scenarios (LAMMPS / ROMS analogies)."""

import pytest

from repro.analysis.experiments.common import grid_for
from repro.core.scheduler.strategies import (
    ParallelSiblingsStrategy,
    SequentialStrategy,
)
from repro.perfsim.simulate import simulate_iteration
from repro.topology.machines import BLUE_GENE_P
from repro.workloads.scenarios import (
    coastal_circulation_configuration,
    coastal_circulation_workload,
    crack_propagation_configuration,
    crack_propagation_workload,
)


class TestCrackPropagation:
    def test_configuration_shape(self):
        cfg = crack_propagation_configuration()
        assert cfg.parent.name == "plate"
        assert len(cfg.siblings) == 3
        for crack in cfg.siblings:
            assert crack.refinement == 10
            assert crack.fits_in(cfg.parent)

    def test_footprints_disjoint(self):
        cfg = crack_propagation_configuration(seed=9)
        sibs = list(cfg.siblings)
        for i, a in enumerate(sibs):
            ai, aj = a.parent_start
            aw, ah = a.parent_extent()
            for b in sibs[i + 1:]:
                bi, bj = b.parent_start
                bw, bh = b.parent_extent()
                assert (ai + aw <= bi or bi + bw <= ai
                        or aj + ah <= bj or bj + bh <= aj)

    def test_workload_md_like(self):
        wl = crack_propagation_workload()
        assert wl.levels == 1
        assert wl.flops_per_cell > 1e6  # force evaluation >> stencil update

    def test_scheduling_improves_throughput(self):
        """The paper's Sec 5 claim: the same machinery pays off for
        multi-crack atomistic/continuum coupling."""
        cfg = crack_propagation_configuration()
        wl = crack_propagation_workload()
        grid = grid_for(4096)
        seq = simulate_iteration(
            SequentialStrategy().plan(grid, cfg.parent, list(cfg.siblings)),
            BLUE_GENE_P, workload=wl,
        )
        par = simulate_iteration(
            ParallelSiblingsStrategy().plan(
                grid, cfg.parent, list(cfg.siblings),
                ratios=[s.points for s in cfg.siblings],
            ),
            BLUE_GENE_P, workload=wl,
        )
        assert par.integration_time < seq.integration_time

    def test_heavy_subcycling(self):
        cfg = crack_propagation_configuration()
        assert all(s.steps_per_parent_step == 10 for s in cfg.siblings)


class TestCoastalCirculation:
    def test_configuration_shape(self):
        cfg = coastal_circulation_configuration()
        assert cfg.parent.name == "basin"
        assert len(cfg.siblings) == 2

    def test_workload_roms_like(self):
        wl = coastal_circulation_workload()
        assert wl.levels == 30
        assert wl.halo.rounds_per_step < 36  # lighter than WRF

    def test_scheduling_improves_throughput(self):
        cfg = coastal_circulation_configuration()
        wl = coastal_circulation_workload()
        grid = grid_for(1024)
        seq = simulate_iteration(
            SequentialStrategy().plan(grid, cfg.parent, list(cfg.siblings)),
            BLUE_GENE_P, workload=wl,
        )
        par = simulate_iteration(
            ParallelSiblingsStrategy().plan(
                grid, cfg.parent, list(cfg.siblings),
                ratios=[s.points for s in cfg.siblings],
            ),
            BLUE_GENE_P, workload=wl,
        )
        assert par.integration_time < seq.integration_time

    def test_deterministic(self):
        a = coastal_circulation_configuration(seed=5)
        b = coastal_circulation_configuration(seed=5)
        assert [(s.nx, s.ny) for s in a.siblings] == [
            (s.nx, s.ny) for s in b.siblings
        ]
