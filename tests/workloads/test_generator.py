"""Tests for random sibling configuration sampling."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generator import NestSizeRange, random_siblings
from repro.wrf.grid import DomainSpec


@pytest.fixture
def parent():
    return DomainSpec("d01", 286, 307, dx_km=24.0)


def footprint(spec):
    i0, j0 = spec.parent_start
    w, h = spec.parent_extent()
    return (i0, j0, w, h)


def overlaps(a, b):
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    return not (ax + aw <= bx or bx + bw <= ax or ay + ah <= by or by + bh <= ay)


class TestRandomSiblings:
    def test_count_and_names(self, parent):
        sibs = random_siblings(parent, 3, seed=1)
        assert [s.name for s in sibs] == ["d02", "d03", "d04"]

    def test_disjoint_footprints(self, parent):
        for seed in range(5):
            sibs = random_siblings(parent, 4, seed=seed)
            fps = [footprint(s) for s in sibs]
            for i, a in enumerate(fps):
                for b in fps[i + 1:]:
                    assert not overlaps(a, b)

    def test_fit_inside_parent(self, parent):
        for seed in range(5):
            for s in random_siblings(parent, 3, seed=seed):
                assert s.fits_in(parent)

    def test_deterministic(self, parent):
        a = random_siblings(parent, 3, seed=42)
        b = random_siblings(parent, 3, seed=42)
        assert [(s.nx, s.ny, s.parent_start) for s in a] == [
            (s.nx, s.ny, s.parent_start) for s in b
        ]

    def test_resolution_follows_refinement(self, parent):
        s = random_siblings(parent, 1, seed=3)[0]
        assert s.dx_km == pytest.approx(8.0)
        assert s.level == 1

    def test_rejects_zero(self, parent):
        with pytest.raises(ConfigurationError):
            random_siblings(parent, 0)

    def test_impossible_raises(self):
        tiny = DomainSpec("d01", 12, 12, dx_km=24.0)
        with pytest.raises(ConfigurationError):
            random_siblings(tiny, 8, seed=1, max_attempts=50)

    def test_size_range_honoured(self, parent):
        rng = NestSizeRange(min_points=10_000, max_points=20_000,
                            min_aspect=0.9, max_aspect=1.1)
        for s in random_siblings(parent, 2, seed=5, size_range=rng):
            assert 8_000 <= s.points <= 25_000
            assert 0.8 <= s.aspect_ratio <= 1.25


class TestNestSizeRange:
    def test_paper_defaults(self):
        r = NestSizeRange()
        assert r.min_points == 94 * 124
        assert r.max_points == 415 * 445
        assert (r.min_aspect, r.max_aspect) == (0.5, 1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NestSizeRange(min_points=10, max_points=5)
        with pytest.raises(ConfigurationError):
            NestSizeRange(min_aspect=2.0, max_aspect=1.0)
