"""Tests for repro.topology.torus."""

import pytest

from repro.errors import TopologyError
from repro.topology.torus import Link, Torus3D


class TestConstruction:
    def test_dims_and_size(self):
        t = Torus3D((4, 4, 2))
        assert t.dims == (4, 4, 2)
        assert t.num_nodes == 32

    def test_rejects_zero_dim(self):
        with pytest.raises(Exception):
            Torus3D((4, 0, 2))

    def test_rejects_wrong_arity(self):
        with pytest.raises(TopologyError):
            Torus3D((4, 4))  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert Torus3D((2, 3, 4)) == Torus3D((2, 3, 4))
        assert Torus3D((2, 3, 4)) != Torus3D((4, 3, 2))
        assert hash(Torus3D((2, 3, 4))) == hash(Torus3D((2, 3, 4)))


class TestRankCoord:
    def test_roundtrip_all(self):
        t = Torus3D((3, 4, 5))
        for rank in range(t.num_nodes):
            assert t.rank_of(t.coord_of(rank)) == rank

    def test_x_fastest_order(self):
        t = Torus3D((4, 4, 2))
        assert t.coord_of(0) == (0, 0, 0)
        assert t.coord_of(1) == (1, 0, 0)
        assert t.coord_of(4) == (0, 1, 0)
        assert t.coord_of(16) == (0, 0, 1)

    def test_out_of_range_rank(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(TopologyError):
            t.coord_of(8)
        with pytest.raises(TopologyError):
            t.coord_of(-1)

    def test_out_of_range_coord(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(TopologyError):
            t.rank_of((2, 0, 0))

    def test_coords_iterates_in_rank_order(self):
        t = Torus3D((2, 3, 2))
        coords = list(t.coords())
        assert len(coords) == 12
        assert [t.rank_of(c) for c in coords] == list(range(12))


class TestDistance:
    def test_wraparound_shorter_way(self):
        t = Torus3D((8, 8, 8))
        # 0 -> 7 along x: one hop around the ring, not seven.
        assert t.distance((0, 0, 0), (7, 0, 0)) == 1

    def test_half_way(self):
        t = Torus3D((8, 8, 8))
        assert t.distance((0, 0, 0), (4, 0, 0)) == 4

    def test_l1_composition(self):
        t = Torus3D((8, 8, 8))
        assert t.distance((0, 0, 0), (2, 3, 1)) == 6

    def test_symmetric(self):
        t = Torus3D((4, 6, 8))
        a, b = (1, 2, 3), (3, 5, 0)
        assert t.distance(a, b) == t.distance(b, a)

    def test_identity(self):
        t = Torus3D((4, 4, 4))
        assert t.distance((1, 1, 1), (1, 1, 1)) == 0

    def test_triangle_inequality_sample(self):
        t = Torus3D((5, 4, 3))
        pts = [(0, 0, 0), (4, 3, 2), (2, 1, 1), (3, 0, 2)]
        for a in pts:
            for b in pts:
                for c in pts:
                    assert t.distance(a, c) <= t.distance(a, b) + t.distance(b, c)


class TestNeighbors:
    def test_six_neighbors_in_big_torus(self):
        t = Torus3D((4, 4, 4))
        nbrs = t.neighbors((1, 1, 1))
        assert len(nbrs) == 6
        assert all(t.distance((1, 1, 1), n) == 1 for n in nbrs)

    def test_dim_of_size_two_dedupes(self):
        t = Torus3D((4, 4, 2))
        nbrs = t.neighbors((0, 0, 0))
        # z+1 and z-1 coincide: 5 distinct neighbours.
        assert len(nbrs) == 5

    def test_dim_of_size_one_has_no_neighbor(self):
        t = Torus3D((4, 4, 1))
        nbrs = t.neighbors((0, 0, 0))
        assert len(nbrs) == 4


class TestShiftAndLinks:
    def test_shift_wraps(self):
        t = Torus3D((4, 4, 2))
        assert t.shift((3, 0, 0), 0, 1) == (0, 0, 0)
        assert t.shift((0, 0, 0), 1, -1) == (0, 3, 0)

    def test_link_dest(self):
        t = Torus3D((4, 4, 2))
        link = t.link((3, 2, 1), 0, 1)
        assert t.link_dest(link) == (0, 2, 1)

    def test_link_in_unit_dim_rejected(self):
        t = Torus3D((4, 4, 1))
        with pytest.raises(TopologyError):
            t.link((0, 0, 0), 2, 1)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(src=(0, 0, 0), dim=3, direction=1)
        with pytest.raises(ValueError):
            Link(src=(0, 0, 0), dim=0, direction=0)

    def test_num_links(self):
        assert Torus3D((2, 2, 2)).num_links() == 8 * 6
        assert Torus3D((4, 4, 1)).num_links() == 16 * 4
