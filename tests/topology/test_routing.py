"""Tests for repro.topology.routing (dimension-ordered torus routing)."""

import pytest

from repro.topology.routing import path_links, route_dimension_ordered
from repro.topology.torus import Torus3D


class TestRouteDimensionOrdered:
    def test_self_route(self):
        t = Torus3D((4, 4, 4))
        assert route_dimension_ordered(t, (1, 2, 3), (1, 2, 3)) == [(1, 2, 3)]

    def test_path_length_equals_distance(self):
        t = Torus3D((5, 4, 3))
        for src in [(0, 0, 0), (2, 3, 1)]:
            for dst in [(4, 2, 2), (1, 0, 1), (2, 3, 1)]:
                path = route_dimension_ordered(t, src, dst)
                assert len(path) - 1 == t.distance(src, dst)

    def test_x_then_y_then_z(self):
        t = Torus3D((4, 4, 4))
        path = route_dimension_ordered(t, (0, 0, 0), (1, 1, 1))
        assert path == [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)]

    def test_wraparound_route(self):
        t = Torus3D((8, 4, 4))
        path = route_dimension_ordered(t, (7, 0, 0), (0, 0, 0))
        assert path == [(7, 0, 0), (0, 0, 0)]

    def test_consecutive_nodes_adjacent(self):
        t = Torus3D((6, 5, 4))
        path = route_dimension_ordered(t, (0, 0, 0), (3, 4, 2))
        for a, b in zip(path, path[1:]):
            assert t.distance(a, b) == 1


class TestPathLinks:
    def test_empty_for_self(self):
        t = Torus3D((4, 4, 4))
        assert path_links(t, (2, 2, 2), (2, 2, 2)) == []

    def test_link_count_equals_distance(self):
        t = Torus3D((4, 6, 8))
        src, dst = (0, 1, 2), (3, 4, 5)
        assert len(path_links(t, src, dst)) == t.distance(src, dst)

    def test_links_chain_to_destination(self):
        t = Torus3D((4, 4, 4))
        src, dst = (0, 0, 0), (2, 3, 1)
        cur = src
        for link in path_links(t, src, dst):
            assert link.src == cur
            cur = t.link_dest(link)
        assert cur == dst

    def test_tie_breaks_positive(self):
        # Exactly half way around an even ring routes forward.
        t = Torus3D((4, 1, 1))
        links = path_links(t, (0, 0, 0), (2, 0, 0))
        assert all(l.direction == 1 for l in links)

    def test_shorter_way_negative(self):
        t = Torus3D((8, 1, 1))
        links = path_links(t, (1, 0, 0), (7, 0, 0))
        assert len(links) == 2
        assert all(l.direction == -1 for l in links)
