"""Tests for the N-dimensional torus and BG/Q constants."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology.bgq import BLUE_GENE_Q
from repro.topology.torus import Torus3D
from repro.topology.torusnd import TorusND, torus_dims_nd_for_nodes


class TestTorusND:
    def test_rank_roundtrip(self):
        t = TorusND((3, 2, 4, 2))
        for rank in range(t.num_nodes):
            assert t.rank_of(t.coord_of(rank)) == rank

    def test_first_axis_fastest(self):
        t = TorusND((4, 4, 2))
        assert t.coord_of(1) == (1, 0, 0)
        assert t.coord_of(4) == (0, 1, 0)

    def test_matches_torus3d_semantics(self):
        """TorusND(3 dims) agrees with Torus3D on ranks and distances."""
        nd = TorusND((4, 3, 5))
        t3 = Torus3D((4, 3, 5))
        for rank in range(nd.num_nodes):
            assert nd.coord_of(rank) == t3.coord_of(rank)
        pairs = [((0, 0, 0), (3, 2, 4)), ((1, 1, 1), (2, 0, 3))]
        for a, b in pairs:
            assert nd.distance(a, b) == t3.distance(a, b)

    def test_wraparound_distance_5d(self):
        t = TorusND((4, 4, 4, 4, 2))
        assert t.distance((0, 0, 0, 0, 0), (3, 0, 0, 0, 1)) == 2

    def test_route_length_equals_distance(self):
        t = TorusND((3, 4, 2, 3))
        a, b = (0, 0, 0, 0), (2, 3, 1, 2)
        assert len(t.route(a, b)) == t.distance(a, b)

    def test_route_chains(self):
        t = TorusND((3, 3, 3))
        cur = (0, 0, 0)
        for link in t.route((0, 0, 0), (2, 1, 2)):
            assert link.src == cur
            cur = t.shift(cur, link.dim, link.direction)
        assert cur == (2, 1, 2)

    def test_neighbors_5d(self):
        t = TorusND((4, 4, 4, 4, 2))
        nbrs = t.neighbors((1, 1, 1, 1, 0))
        assert len(nbrs) == 9  # 2 per big dim + 1 in the E dim of size 2
        assert all(t.distance((1, 1, 1, 1, 0), n) == 1 for n in nbrs)

    def test_validation(self):
        with pytest.raises(TopologyError):
            TorusND(())
        t = TorusND((2, 2))
        with pytest.raises(TopologyError):
            t.rank_of((2, 0))
        with pytest.raises(TopologyError):
            t.shift((0, 0), 2, 1)


class TestBgqShapes:
    def test_midplane_shape(self):
        assert torus_dims_nd_for_nodes(512) == (4, 4, 4, 4, 2)

    def test_rack_shapes(self):
        assert torus_dims_nd_for_nodes(1024) == (8, 4, 4, 4, 2)
        assert torus_dims_nd_for_nodes(2048) == (8, 8, 4, 4, 2)

    def test_product_preserved(self):
        for n in (2, 32, 128, 4096):
            dims = torus_dims_nd_for_nodes(n)
            prod = 1
            for d in dims:
                prod *= d
            assert prod == n
            assert len(dims) == 5

    def test_e_dimension_is_two(self):
        assert torus_dims_nd_for_nodes(256)[-1] == 2

    def test_odd_count_no_fixed_e(self):
        dims = torus_dims_nd_for_nodes(27)
        prod = 1
        for d in dims:
            prod *= d
        assert prod == 27


class TestBlueGeneQ:
    def test_torus_for_nodes(self):
        assert BLUE_GENE_Q.torus_for_nodes(512).dims == (4, 4, 4, 4, 2)

    def test_nodes_for_ranks(self):
        assert BLUE_GENE_Q.nodes_for_ranks(8192) == 512
        assert BLUE_GENE_Q.nodes_for_ranks(8192, ranks_per_node=32) == 256

    def test_ragged_rejected(self):
        with pytest.raises(ConfigurationError):
            BLUE_GENE_Q.nodes_for_ranks(100, ranks_per_node=16)

    def test_too_many_ranks_per_node(self):
        with pytest.raises(ConfigurationError):
            BLUE_GENE_Q.nodes_for_ranks(128, ranks_per_node=128)
