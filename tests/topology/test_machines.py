"""Tests for repro.topology.machines."""

import pytest

from repro.errors import ConfigurationError
from repro.topology.machines import (
    BLUE_GENE_L,
    BLUE_GENE_P,
    ExecutionMode,
    Machine,
    blue_gene_l,
    blue_gene_p,
    torus_dims_for_nodes,
)


class TestTorusDims:
    def test_blue_gene_shapes(self):
        # Real Blue Gene partition shapes.
        assert torus_dims_for_nodes(512) == (8, 8, 8)     # midplane
        assert torus_dims_for_nodes(1024) == (8, 8, 16)   # BG/L rack
        assert torus_dims_for_nodes(2048) == (8, 16, 16)

    def test_small_counts(self):
        assert torus_dims_for_nodes(1) == (1, 1, 1)
        assert torus_dims_for_nodes(8) == (2, 2, 2)
        assert torus_dims_for_nodes(64) == (4, 4, 4)

    def test_prime(self):
        assert torus_dims_for_nodes(7) == (1, 1, 7)

    def test_product_preserved(self):
        for n in (6, 12, 36, 100, 360, 4096):
            x, y, z = torus_dims_for_nodes(n)
            assert x * y * z == n
            assert x <= y <= z

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            torus_dims_for_nodes(0)


class TestBlueGeneL:
    def test_modes(self):
        assert BLUE_GENE_L.mode("CO").ranks_per_node == 1
        assert BLUE_GENE_L.mode("VN").ranks_per_node == 2
        assert BLUE_GENE_L.mode().name == "VN"

    def test_nodes_for_ranks(self):
        assert BLUE_GENE_L.nodes_for_ranks(1024) == 512
        assert BLUE_GENE_L.nodes_for_ranks(1024, "CO") == 1024

    def test_ragged_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            BLUE_GENE_L.nodes_for_ranks(1023)

    def test_torus_for_ranks(self):
        assert BLUE_GENE_L.torus_for_ranks(1024).dims == (8, 8, 8)

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            BLUE_GENE_L.mode("SMP")


class TestBlueGeneP:
    def test_modes(self):
        assert BLUE_GENE_P.mode("SMP").ranks_per_node == 1
        assert BLUE_GENE_P.mode("Dual").ranks_per_node == 2
        assert BLUE_GENE_P.mode("VN").ranks_per_node == 4

    def test_vn_8192_ranks(self):
        assert BLUE_GENE_P.torus_for_ranks(8192).dims == (8, 16, 16)

    def test_faster_than_bgl(self):
        assert BLUE_GENE_P.sustained_flops_per_core > BLUE_GENE_L.sustained_flops_per_core
        assert BLUE_GENE_P.link_bandwidth > BLUE_GENE_L.link_bandwidth


class TestMachineValidation:
    def test_factories_return_fresh_equal_instances(self):
        assert blue_gene_l() == BLUE_GENE_L
        assert blue_gene_p() == BLUE_GENE_P

    def test_bad_default_mode(self):
        with pytest.raises(ConfigurationError):
            Machine(
                name="bad", clock_hz=1e9, cores_per_node=2,
                modes={"A": ExecutionMode("A", 1)}, default_mode="B",
                sustained_flops_per_core=1e8, link_bandwidth=1e8,
                software_latency=1e-6, per_hop_latency=1e-7,
                step_overhead=1e-3, round_skew=1e-3, collective_cost=1e-4,
                io_meta_cost_per_writer=1e-3, io_bandwidth_max=1e9,
                io_per_writer_bandwidth=1e6,
            )

    def test_mode_exceeding_cores(self):
        with pytest.raises(ConfigurationError):
            Machine(
                name="bad", clock_hz=1e9, cores_per_node=2,
                modes={"A": ExecutionMode("A", 4)}, default_mode="A",
                sustained_flops_per_core=1e8, link_bandwidth=1e8,
                software_latency=1e-6, per_hop_latency=1e-7,
                step_overhead=1e-3, round_skew=1e-3, collective_cost=1e-4,
                io_meta_cost_per_writer=1e-3, io_bandwidth_max=1e9,
                io_per_writer_bandwidth=1e6,
            )

    def test_seconds_per_flop(self):
        assert BLUE_GENE_L.seconds_per_flop() == pytest.approx(
            1.0 / BLUE_GENE_L.sustained_flops_per_core
        )
