"""Tests for repro.runtime.communicator."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.communicator import Communicator
from repro.runtime.process_grid import GridRect, ProcessGrid


class TestWorld:
    def test_world_covers_all(self):
        g = ProcessGrid(4, 4)
        world = Communicator.world(g)
        assert world.size == 16
        assert world.world_ranks == list(range(16))
        assert world.rect == g.full_rect()

    def test_translation_identity(self):
        world = Communicator.world(ProcessGrid(4, 2))
        for r in range(8):
            assert world.local_rank(r) == r
            assert world.world_rank(r) == r


class TestSubCommunicator:
    def test_for_rect(self):
        g = ProcessGrid(8, 4)
        comm = Communicator.for_rect(g, GridRect(4, 0, 4, 4), name="sib2")
        assert comm.size == 16
        assert comm.name == "sib2"
        # First local rank is the rect's top-left world rank.
        assert comm.world_rank(0) == g.rank_of(4, 0)

    def test_local_rank_of_nonmember(self):
        g = ProcessGrid(8, 4)
        comm = Communicator.for_rect(g, GridRect(4, 0, 4, 4))
        with pytest.raises(ConfigurationError):
            comm.local_rank(0)

    def test_membership(self):
        g = ProcessGrid(8, 4)
        comm = Communicator.for_rect(g, GridRect(0, 0, 4, 4))
        assert 0 in comm
        assert g.rank_of(4, 0) not in comm

    def test_translate_vector(self):
        g = ProcessGrid(4, 4)
        comm = Communicator(g, [5, 6, 9, 10])
        assert comm.translate([9, 5]) == [2, 0]

    def test_roundtrip(self):
        g = ProcessGrid(6, 6)
        comm = Communicator.for_rect(g, GridRect(2, 2, 3, 3))
        for local in range(comm.size):
            assert comm.local_rank(comm.world_rank(local)) == local


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Communicator(ProcessGrid(2, 2), [])

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            Communicator(ProcessGrid(2, 2), [0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Communicator(ProcessGrid(2, 2), [4])

    def test_world_rank_bounds(self):
        comm = Communicator(ProcessGrid(2, 2), [1, 2])
        with pytest.raises(ConfigurationError):
            comm.world_rank(2)
