"""The memoized decomposition: cache hits, stats, and reset."""

from __future__ import annotations

import pytest

from repro.runtime.decomposition import (
    decompose,
    decompose_cache_stats,
    reset_decompose_cache,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_decompose_cache()
    yield
    reset_decompose_cache()


def test_repeat_lookups_hit_and_share_the_object():
    a = decompose(100, 100, 4, 4)
    b = decompose(100, 100, 4, 4)
    assert a is b
    stats = decompose_cache_stats()
    assert stats.hits == 1 and stats.misses == 1 and stats.entries == 1
    assert stats.hit_rate == 0.5


def test_distinct_keys_miss():
    decompose(100, 100, 4, 4)
    decompose(100, 100, 4, 2)
    decompose(100, 101, 4, 4)
    stats = decompose_cache_stats()
    assert stats.misses == 3 and stats.hits == 0 and stats.entries == 3


def test_reset_clears_entries_and_counters():
    decompose(100, 100, 4, 4)
    decompose(100, 100, 4, 4)
    reset_decompose_cache()
    stats = decompose_cache_stats()
    assert stats.hits == stats.misses == stats.entries == 0


def test_cached_result_matches_fresh_computation():
    a = decompose(123, 77, 8, 4)
    reset_decompose_cache()
    b = decompose(123, 77, 8, 4)
    assert a == b
