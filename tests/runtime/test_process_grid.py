"""Tests for repro.runtime.process_grid."""

import pytest

from repro.errors import GeometryError
from repro.runtime.process_grid import GridRect, ProcessGrid


class TestGridRect:
    def test_basic_properties(self):
        r = GridRect(2, 3, 4, 5)
        assert r.area == 20
        assert r.x1 == 6
        assert r.y1 == 8
        assert r.shape == (4, 5)

    def test_aspect_and_squareness(self):
        assert GridRect(0, 0, 4, 2).aspect_ratio() == 2.0
        assert GridRect(0, 0, 4, 2).squareness() == 0.5
        assert GridRect(0, 0, 3, 3).squareness() == 1.0

    def test_contains(self):
        r = GridRect(1, 1, 2, 2)
        assert r.contains(1, 1)
        assert r.contains(2, 2)
        assert not r.contains(3, 1)
        assert not r.contains(0, 1)

    def test_overlaps(self):
        a = GridRect(0, 0, 4, 4)
        assert a.overlaps(GridRect(3, 3, 2, 2))
        assert not a.overlaps(GridRect(4, 0, 2, 4))  # shares an edge only
        assert not a.overlaps(GridRect(0, 4, 4, 2))

    def test_positions_row_major(self):
        r = GridRect(1, 2, 2, 2)
        assert list(r.positions()) == [(1, 2), (2, 2), (1, 3), (2, 3)]

    def test_split_horizontal(self):
        left, right = GridRect(0, 0, 10, 4).split_horizontal(3)
        assert left == GridRect(0, 0, 3, 4)
        assert right == GridRect(3, 0, 7, 4)

    def test_split_vertical(self):
        top, bottom = GridRect(2, 1, 4, 10).split_vertical(6)
        assert top == GridRect(2, 1, 4, 6)
        assert bottom == GridRect(2, 7, 4, 4)

    def test_split_bounds(self):
        r = GridRect(0, 0, 4, 4)
        with pytest.raises(GeometryError):
            r.split_horizontal(0)
        with pytest.raises(GeometryError):
            r.split_horizontal(4)

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            GridRect(0, 0, 0, 4)

    def test_rejects_negative_origin(self):
        with pytest.raises(GeometryError):
            GridRect(-1, 0, 2, 2)


class TestProcessGrid:
    def test_shape_and_size(self):
        g = ProcessGrid(8, 4)
        assert g.shape == (8, 4)
        assert g.size == 32

    def test_rank_layout_matches_fig5(self):
        # Fig 5(a): ranks 0..7 form the first row of the 8-wide grid.
        g = ProcessGrid(8, 4)
        assert g.rank_of(0, 0) == 0
        assert g.rank_of(7, 0) == 7
        assert g.rank_of(0, 1) == 8
        assert g.position_of(9) == (1, 1)

    def test_roundtrip(self):
        g = ProcessGrid(5, 7)
        for rank in range(g.size):
            assert g.rank_of(*g.position_of(rank)) == rank

    def test_out_of_range(self):
        g = ProcessGrid(4, 4)
        with pytest.raises(GeometryError):
            g.rank_of(4, 0)
        with pytest.raises(GeometryError):
            g.position_of(16)

    def test_neighbors_interior(self):
        g = ProcessGrid(8, 4)
        nbrs = g.neighbors_of(g.rank_of(3, 2))
        assert sorted(nbrs) == sorted(
            [g.rank_of(2, 2), g.rank_of(4, 2), g.rank_of(3, 1), g.rank_of(3, 3)]
        )

    def test_neighbors_corner(self):
        g = ProcessGrid(8, 4)
        assert len(g.neighbors_of(0)) == 2  # open boundaries, no wraparound

    def test_neighbors_within_rect(self):
        # Fig 5(a): rank 3 and 4 are adjacent in the parent's grid but not
        # within sibling 1's 4x4 rectangle.
        g = ProcessGrid(8, 4)
        rect = GridRect(0, 0, 4, 4)
        nbrs = g.neighbors_of(3, within=rect)
        assert g.rank_of(4, 0) not in nbrs
        assert g.rank_of(2, 0) in nbrs

    def test_neighbors_outside_rect_rejected(self):
        g = ProcessGrid(8, 4)
        with pytest.raises(GeometryError):
            g.neighbors_of(7, within=GridRect(0, 0, 4, 4))

    def test_ranks_in_rect(self):
        g = ProcessGrid(8, 4)
        ranks = g.ranks_in(GridRect(0, 0, 4, 4))
        assert ranks[:4] == [0, 1, 2, 3]
        assert ranks[4] == 8  # second row of the rect
        assert len(ranks) == 16

    def test_ranks_in_oversized_rect(self):
        g = ProcessGrid(4, 4)
        with pytest.raises(GeometryError):
            g.ranks_in(GridRect(0, 0, 5, 4))

    def test_equality(self):
        assert ProcessGrid(4, 8) == ProcessGrid(4, 8)
        assert ProcessGrid(4, 8) != ProcessGrid(8, 4)
