"""Tests for repro.runtime.halo."""

import pytest

from repro.runtime.halo import MESSAGES_PER_STEP, HaloMessage, HaloSpec, halo_messages
from repro.runtime.process_grid import GridRect, ProcessGrid


class TestHaloSpec:
    def test_paper_message_count(self):
        # Sec 3.3: 144 messages per step over 4 neighbours = 36 rounds.
        spec = HaloSpec()
        assert MESSAGES_PER_STEP == 144
        assert spec.rounds_per_step == 36

    def test_strip_bytes(self):
        spec = HaloSpec(width=3, levels=35, bytes_per_value=8)
        assert spec.strip_bytes(10) == 10 * 3 * 35 * 8

    def test_validation(self):
        with pytest.raises(Exception):
            HaloSpec(width=0)


class TestHaloMessages:
    def test_interior_rank_sends_four(self):
        g = ProcessGrid(4, 4)
        msgs = halo_messages(g, g.full_rect(), 40, 40, HaloSpec(width=1, levels=1))
        interior = g.rank_of(1, 1)
        assert sum(1 for m in msgs if m.src == interior) == 4

    def test_corner_rank_sends_two(self):
        g = ProcessGrid(4, 4)
        msgs = halo_messages(g, g.full_rect(), 40, 40, HaloSpec(width=1, levels=1))
        assert sum(1 for m in msgs if m.src == 0) == 2

    def test_total_message_count(self):
        # 2 * (px-1) * py east-west pairs + 2 * px * (py-1) north-south.
        g = ProcessGrid(4, 3)
        msgs = halo_messages(g, g.full_rect(), 40, 30, HaloSpec(width=1, levels=1))
        assert len(msgs) == 2 * 3 * 3 + 2 * 4 * 2

    def test_messages_pair_up(self):
        g = ProcessGrid(3, 3)
        msgs = halo_messages(g, g.full_rect(), 30, 30, HaloSpec(width=1, levels=1))
        pairs = {(m.src, m.dst) for m in msgs}
        assert all((d, s) in pairs for s, d in pairs)

    def test_bytes_use_sender_tile_edge(self):
        g = ProcessGrid(2, 1)
        spec = HaloSpec(width=2, levels=5)
        # 10x7 over 2x1: tiles are 5x7 wide; E/W strips carry the height.
        msgs = halo_messages(g, g.full_rect(), 10, 7, spec)
        assert all(m.nbytes == spec.strip_bytes(7) for m in msgs)

    def test_sub_rect_stays_inside(self):
        g = ProcessGrid(8, 4)
        rect = GridRect(4, 0, 4, 4)
        msgs = halo_messages(g, rect, 40, 40, HaloSpec(width=1, levels=1))
        members = set(g.ranks_in(rect))
        assert all(m.src in members and m.dst in members for m in msgs)

    def test_single_rank_no_messages(self):
        g = ProcessGrid(4, 4)
        msgs = halo_messages(g, GridRect(0, 0, 1, 1), 40, 40, HaloSpec())
        assert msgs == []

    def test_ragged_decomposition_bytes_differ(self):
        g = ProcessGrid(3, 1)
        spec = HaloSpec(width=1, levels=1)
        # 10 points over 3 columns: widths 4, 3, 3 -> N/S strips would
        # differ, but with height 1 there are only E/W strips of height 1.
        msgs = halo_messages(g, g.full_rect(), 10, 4, spec)
        assert {m.nbytes for m in msgs} == {spec.strip_bytes(4)}
