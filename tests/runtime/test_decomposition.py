"""Tests for repro.runtime.decomposition."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.decomposition import (
    choose_process_grid,
    decompose,
    split_counts,
    tile_dims,
)


class TestSplitCounts:
    def test_even(self):
        assert split_counts(12, 4) == [3, 3, 3, 3]

    def test_remainder_to_front(self):
        assert split_counts(10, 4) == [3, 3, 2, 2]

    def test_sums_to_n(self):
        for n in (7, 100, 286, 415):
            for parts in (1, 3, 7):
                assert sum(split_counts(n, parts)) == n

    def test_all_nonempty(self):
        assert min(split_counts(5, 5)) == 1

    def test_too_many_parts(self):
        with pytest.raises(ConfigurationError):
            split_counts(3, 4)


class TestTileDims:
    def test_ceil_semantics(self):
        assert tile_dims(415, 445, 32, 32) == (13, 14)

    def test_exact(self):
        assert tile_dims(64, 64, 8, 8) == (8, 8)


class TestDecompose:
    def test_table2_tile(self):
        dec = decompose(394, 418, 18, 24)
        assert dec.max_tile == (22, 18)
        assert sum(dec.col_widths) == 394
        assert sum(dec.row_heights) == 418

    def test_tile_of_origin(self):
        dec = decompose(10, 10, 3, 3)
        i0, j0, w, h = dec.tile_of(0, 0)
        assert (i0, j0) == (0, 0)
        assert (w, h) == (4, 4)  # remainder goes to the first row/col

    def test_tile_of_last(self):
        dec = decompose(10, 10, 3, 3)
        i0, j0, w, h = dec.tile_of(2, 2)
        assert i0 + w == 10 and j0 + h == 10

    def test_tile_of_out_of_range(self):
        dec = decompose(10, 10, 2, 2)
        with pytest.raises(ConfigurationError):
            dec.tile_of(2, 0)

    def test_load_imbalance_zero_when_even(self):
        assert decompose(64, 64, 8, 8).load_imbalance() == 0.0

    def test_load_imbalance_positive_when_ragged(self):
        assert decompose(65, 64, 8, 8).load_imbalance() > 0.0

    def test_min_max_tiles(self):
        dec = decompose(10, 7, 4, 3)
        assert dec.max_tile == (3, 3)
        assert dec.min_tile == (2, 2)


class TestChooseProcessGrid:
    def test_square_counts(self):
        assert choose_process_grid(1024) == (32, 32)
        assert choose_process_grid(64) == (8, 8)

    def test_non_square_power_of_two(self):
        px, py = choose_process_grid(512)
        assert px * py == 512
        assert {px, py} == {16, 32}

    def test_aspect_bias(self):
        # A wide domain prefers a wide grid.
        px, py = choose_process_grid(512, domain_aspect=2.0)
        assert px > py

    def test_aspect_bias_tall(self):
        px, py = choose_process_grid(512, domain_aspect=0.5)
        assert px < py

    def test_prime_count(self):
        assert choose_process_grid(13) in ((1, 13), (13, 1))

    def test_invalid_aspect(self):
        with pytest.raises(ConfigurationError):
            choose_process_grid(16, domain_aspect=0.0)
