"""Hypothesis parity: the vectorized halo builder vs the scalar oracle.

``halo_messages_array`` must reproduce the scalar ``halo_messages``
message-for-message — same (src, dst, nbytes) triples in the same order
— across random grids, rectangles (including 1-wide and 1-tall strips),
domain sizes (including domains smaller than the rectangle, where ranks
idle), and halo specs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.halo import (
    HaloBatch,
    HaloMessage,
    HaloSpec,
    halo_batch,
    halo_messages,
    halo_messages_array,
)
from repro.runtime.process_grid import GridRect, ProcessGrid


@st.composite
def halo_case(draw):
    """A random (grid, rect, nx, ny, spec) halo-exchange case."""
    px = draw(st.integers(1, 10))
    py = draw(st.integers(1, 10))
    grid = ProcessGrid(px, py)
    x0 = draw(st.integers(0, px - 1))
    y0 = draw(st.integers(0, py - 1))
    w = draw(st.integers(1, px - x0))
    h = draw(st.integers(1, py - y0))
    rect = GridRect(x0, y0, w, h)
    # The decomposition needs at least one grid point per rank row/column
    # (upstream, effective_rect clamps rectangles to the domain).
    nx = draw(st.integers(w, 200))
    ny = draw(st.integers(h, 200))
    spec = HaloSpec(
        width=draw(st.integers(1, 5)),
        levels=draw(st.integers(1, 40)),
        bytes_per_value=draw(st.sampled_from([4, 8])),
    )
    return grid, rect, nx, ny, spec


@given(halo_case())
@settings(max_examples=300, deadline=None)
def test_array_builder_matches_scalar_exactly(case):
    grid, rect, nx, ny, spec = case
    msgs = halo_messages(grid, rect, nx, ny, spec)
    batch = halo_messages_array(grid, rect, nx, ny, spec)
    assert len(batch) == len(msgs)
    for i, m in enumerate(msgs):
        assert (int(batch.src[i]), int(batch.dst[i]), int(batch.nbytes[i])) == (
            m.src,
            m.dst,
            m.nbytes,
        )


@given(halo_case())
@settings(max_examples=100, deadline=None)
def test_batch_roundtrip(case):
    grid, rect, nx, ny, spec = case
    msgs = halo_messages(grid, rect, nx, ny, spec)
    batch = HaloBatch.from_messages(msgs)
    assert batch.to_messages() == msgs
    assert len(batch) == len(msgs)


@given(halo_case())
@settings(max_examples=100, deadline=None)
def test_halo_batch_dispatcher_identical_across_backends(case):
    import os

    grid, rect, nx, ny, spec = case
    batches = {}
    saved = os.environ.get("REPRO_PLACEMENT")
    try:
        for backend in ("vector", "scalar"):
            os.environ["REPRO_PLACEMENT"] = backend
            batches[backend] = halo_batch(grid, rect, nx, ny, spec)
    finally:
        if saved is None:
            os.environ.pop("REPRO_PLACEMENT", None)
        else:
            os.environ["REPRO_PLACEMENT"] = saved
    v, s = batches["vector"], batches["scalar"]
    assert np.array_equal(v.src, s.src)
    assert np.array_equal(v.dst, s.dst)
    assert np.array_equal(v.nbytes, s.nbytes)


def test_batch_arrays_read_only():
    grid = ProcessGrid(4, 4)
    batch = halo_batch(grid, grid.full_rect(), 100, 100, HaloSpec())
    with pytest.raises(ValueError):
        batch.src[0] = 99
    with pytest.raises(ValueError):
        batch.nbytes[0] = 99


def test_empty_exchange_single_rank():
    grid = ProcessGrid(1, 1)
    batch = halo_batch(grid, grid.full_rect(), 50, 50, HaloSpec())
    assert len(batch) == 0
    assert batch.to_messages() == []
    assert not batch
