"""Regression tests: benchmark infrastructure fails loudly, never silently.

``benchmarks/`` is not a package, so its conftest is loaded by file path
into a private module name — the same module pytest itself would execute.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

CONFTEST = Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"


def load_bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test", CONFTEST
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_record_creates_dir_and_writes_table(tmp_path, monkeypatch, capsys):
    mod = load_bench_conftest()
    monkeypatch.setattr(mod, "RESULTS_DIR", tmp_path / "results")
    mod.record("demo", "row1")
    written = (tmp_path / "results" / "demo.txt").read_text()
    # Table body, then the process peak-RSS footer every bench reports.
    assert written.startswith("row1\n")
    assert "[peak RSS " in written and written.endswith("MiB]\n")
    out = capsys.readouterr().out
    assert "row1" in out and "[peak RSS " in out


def test_file_squatting_on_results_dir_fails_loudly(tmp_path, monkeypatch):
    mod = load_bench_conftest()
    squatter = tmp_path / "results"
    squatter.write_text("not a directory")
    monkeypatch.setattr(mod, "RESULTS_DIR", squatter)
    with pytest.raises(RuntimeError, match="not writable"):
        mod.ensure_results_dir()


def test_uncreatable_results_dir_fails_loudly(tmp_path, monkeypatch):
    mod = load_bench_conftest()
    parent_file = tmp_path / "file"
    parent_file.write_text("")
    monkeypatch.setattr(mod, "RESULTS_DIR", parent_file / "results")
    with pytest.raises(RuntimeError, match="not writable"):
        mod.ensure_results_dir()


def test_record_propagates_the_failure(tmp_path, monkeypatch):
    # The old behaviour swallowed nothing but also probed nothing: a bad
    # results dir surfaced (if at all) as an OSError deep inside a bench.
    # record() must now refuse up front with the actionable message.
    mod = load_bench_conftest()
    parent_file = tmp_path / "file"
    parent_file.write_text("")
    monkeypatch.setattr(mod, "RESULTS_DIR", parent_file / "results")
    with pytest.raises(RuntimeError, match="refusing to run"):
        mod.record("demo", "row1")


def test_results_dir_fixture_uses_the_loud_path(tmp_path, monkeypatch):
    mod = load_bench_conftest()
    target = tmp_path / "results"
    monkeypatch.setattr(mod, "RESULTS_DIR", target)
    assert mod.ensure_results_dir() == target
    assert target.is_dir()
    # The probe file must not linger between runs.
    assert list(target.iterdir()) == []
