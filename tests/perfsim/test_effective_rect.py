"""Tests for processor-rectangle clamping (small domains at huge scale)."""

import pytest

from repro.core.scheduler.strategies import SequentialStrategy
from repro.perfsim.simulate import effective_rect, simulate_iteration
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_P
from repro.wrf.grid import DomainSpec


class TestEffectiveRect:
    def test_no_clamp_when_domain_large(self):
        rect = GridRect(0, 0, 32, 32)
        assert effective_rect(rect, 400, 400) is rect

    def test_clamps_height(self):
        rect = GridRect(0, 0, 64, 128)
        out = effective_rect(rect, 400, 107)
        assert out.width == 64
        assert out.height == 107

    def test_clamps_both(self):
        out = effective_rect(GridRect(2, 3, 64, 128), 30, 20)
        assert (out.width, out.height) == (30, 20)
        assert (out.x0, out.y0) == (2, 3)  # origin preserved

    def test_small_nest_on_huge_machine_simulates(self):
        """The Fig 13 regression: a 94x124-class nest on 8192 ranks."""
        parent = DomainSpec("d01", 286, 307, dx_km=24.0)
        small = DomainSpec("d02", 120, 107, 8.0, parent="d01",
                           parent_start=(10, 10), refinement=3, level=1)
        plan = SequentialStrategy().plan(ProcessGrid(64, 128), parent, [small])
        rep = simulate_iteration(plan, BLUE_GENE_P)
        # The nest only uses the feasible sub-grid.
        assert rep.siblings[0].ranks == 64 * 107
        assert rep.integration_time > 0


class TestMappingComparisonResult:
    def test_improvement_helpers(self):
        from repro.analysis.experiments.exp_mapping import MappingComparisonResult

        r = MappingComparisonResult(
            machine="BlueGene/L", ranks=1024, config_names=("a",),
            times={"default": (4.0,), "partition": (3.0,)},
            waits={"default": (1.0,), "partition": (0.5,)},
            hops={"default": (2.0,), "partition": (1.0,)},
        )
        assert r.improvement_over_default("partition") == (25.0,)
        assert r.wait_improvement_over_default("partition") == (50.0,)
        assert r.hop_reduction_over_default("partition") == (50.0,)

    def test_zero_baseline_guarded(self):
        from repro.analysis.experiments.exp_mapping import MappingComparisonResult

        r = MappingComparisonResult(
            machine="m", ranks=4, config_names=("a",),
            times={"default": (4.0,), "partition": (3.0,)},
            waits={"default": (0.0,), "partition": (0.0,)},
            hops={"default": (0.0,), "partition": (0.0,)},
        )
        assert r.wait_improvement_over_default("partition") == (0.0,)
        assert r.hop_reduction_over_default("partition") == (0.0,)


class TestSteeringEvent:
    def test_num_moved(self):
        from repro.steering.driver import SteeringEvent
        from repro.steering.mover import NestMove

        event = SteeringEvent(
            iteration=3,
            features=(),
            moves=(
                NestMove("d02", (0, 0), (5, 5)),
                NestMove("d03", (9, 9), (9, 9)),
            ),
            replanned=True,
        )
        assert event.num_moved == 1
