"""Tests for the compute cost model."""

import pytest

from repro.errors import SimulationError
from repro.perfsim.compute import compute_time
from repro.perfsim.params import WorkloadParams
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P

WL = WorkloadParams()


class TestComputeTime:
    def test_scales_inversely_with_ranks(self):
        slow = compute_time(400, 400, 8, 8, BLUE_GENE_L, WL)
        fast = compute_time(400, 400, 16, 16, BLUE_GENE_L, WL)
        assert fast.time < slow.time
        # Not perfectly linear: the overlap frame bites harder when small.
        assert fast.time > slow.time / 4.0

    def test_max_tile_paces(self):
        c = compute_time(415, 445, 32, 32, BLUE_GENE_L, WL)
        assert c.max_tile == (13, 14)

    def test_even_decomposition_no_imbalance(self):
        c = compute_time(64, 64, 8, 8, BLUE_GENE_L, WL)
        assert c.imbalance_wait == pytest.approx(0.0)
        assert c.mean_time == pytest.approx(c.time)

    def test_ragged_decomposition_imbalance(self):
        c = compute_time(65, 65, 8, 8, BLUE_GENE_L, WL)
        assert c.imbalance_wait > 0.0
        assert c.mean_time < c.time

    def test_bgp_faster_core(self):
        l = compute_time(300, 300, 16, 16, BLUE_GENE_L, WL)
        p = compute_time(300, 300, 16, 16, BLUE_GENE_P, WL)
        assert p.time < l.time

    def test_work_scales_with_levels(self):
        thin = WorkloadParams(levels=1)
        thick = WorkloadParams(levels=35)
        a = compute_time(100, 100, 4, 4, BLUE_GENE_L, thin)
        b = compute_time(100, 100, 4, 4, BLUE_GENE_L, thick)
        assert b.time == pytest.approx(35 * a.time)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(SimulationError):
            compute_time(4, 4, 8, 8, BLUE_GENE_L, WL)

    def test_calibration_table2(self):
        """394x418 on 1024 BG/L cores: compute ~0.25 s (t = A/P of the
        paper's own fit, see DESIGN.md Sec 5)."""
        c = compute_time(394, 418, 32, 32, BLUE_GENE_L, WL)
        assert 0.15 < c.time < 0.35
