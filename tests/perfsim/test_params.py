"""Tests for workload/output parameter validation."""

import pytest

from repro.perfsim.params import OutputParams, WorkloadParams
from repro.runtime.halo import HaloSpec
from repro.topology.machines import BLUE_GENE_L


class TestWorkloadParams:
    def test_defaults(self):
        wl = WorkloadParams()
        assert wl.levels == 35
        assert wl.flops_per_cell == 8000.0
        assert wl.halo.rounds_per_step == 36

    def test_halo_levels_kept_consistent(self):
        """The exchanged-field depth follows the compute depth."""
        wl = WorkloadParams(levels=20)
        assert wl.halo.levels == 20

    def test_explicit_halo_preserved_otherwise(self):
        wl = WorkloadParams(halo=HaloSpec(width=5, levels=35))
        assert wl.halo.width == 5

    def test_seconds_per_point(self):
        wl = WorkloadParams()
        expected = 35 * 8000.0 / BLUE_GENE_L.sustained_flops_per_core
        assert wl.seconds_per_point(BLUE_GENE_L.sustained_flops_per_core) == \
            pytest.approx(expected)

    def test_negative_overlap_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(halo_compute_overlap=-1)

    def test_nonpositive_flops_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(flops_per_cell=0.0)


class TestOutputParams:
    def test_defaults(self):
        out = OutputParams()
        assert out.enabled
        assert out.include_parent
        assert out.interval_steps == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            OutputParams(interval_steps=0)
        with pytest.raises(ValueError):
            OutputParams(bytes_per_point=0.0)

    def test_high_frequency_config(self):
        out = OutputParams(interval_steps=4, include_parent=False)
        assert not out.include_parent
