"""Cross-engine regressions on the perfsim comm-cost layer.

Two invariants, each checked under both the vectorized engine and the
scalar oracle (selected via ``REPRO_NETSIM``):

* ``concurrent_comm_costs`` with a single sibling must equal
  ``halo_comm_cost`` — the shared-load accounting adds nothing when
  there is nothing to share with.
* The two engines must produce identical ``CommCost`` values for the
  same configuration (field-exact, floats included).
"""

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.netsim.engine import reset_route_cache
from repro.perfsim.commcost import concurrent_comm_costs, halo_comm_cost
from repro.perfsim.params import WorkloadParams
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.topology.torus import Torus3D

WL = WorkloadParams()

ENGINES = ["vector", "scalar"]


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_route_cache()
    yield
    reset_route_cache()


def setup(grid_shape=(8, 8), torus_dims=(4, 4, 4), rpn=1):
    grid = ProcessGrid(*grid_shape)
    torus = Torus3D(torus_dims)
    placement = ObliviousMapping().place(grid, SlotSpace(torus, rpn))
    return grid, torus, placement.nodes()


@pytest.mark.parametrize("engine", ENGINES)
def test_single_sibling_concurrent_equals_alone(engine, monkeypatch):
    """Shared-load accounting sanity: one sibling shares with nobody."""
    monkeypatch.setenv("REPRO_NETSIM", engine)
    grid, torus, nodes = setup()
    rect = GridRect(0, 0, 8, 4)
    domain = (300, 200)
    alone = halo_comm_cost(grid, rect, *domain, torus, nodes, BLUE_GENE_L, WL)
    (conc,) = concurrent_comm_costs(
        grid, [rect], [domain], torus, nodes, BLUE_GENE_L, WL
    )
    assert conc == alone


@pytest.mark.parametrize("engine", ENGINES)
def test_single_rank_zero_either_engine(engine, monkeypatch):
    monkeypatch.setenv("REPRO_NETSIM", engine)
    grid, torus, nodes = setup()
    c = halo_comm_cost(
        grid, GridRect(0, 0, 1, 1), 100, 100, torus, nodes, BLUE_GENE_L, WL
    )
    assert c.time == 0.0


def test_engines_agree_on_halo_cost(monkeypatch):
    grid, torus, nodes = setup(rpn=1)
    costs = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_NETSIM", engine)
        costs[engine] = halo_comm_cost(
            grid, grid.full_rect(), 415, 445, torus, nodes, BLUE_GENE_L, WL
        )
    assert costs["vector"] == costs["scalar"]


def test_engines_agree_on_concurrent_costs(monkeypatch):
    grid, torus, nodes = setup()
    rects = [GridRect(0, 0, 4, 8), GridRect(4, 0, 4, 8)]
    domains = [(200, 200), (300, 250)]
    results = {}
    for engine in ENGINES:
        monkeypatch.setenv("REPRO_NETSIM", engine)
        results[engine] = concurrent_comm_costs(
            grid, rects, domains, torus, nodes, BLUE_GENE_L, WL
        )
    assert results["vector"] == results["scalar"]
