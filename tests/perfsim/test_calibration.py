"""Calibration tests: the cost model against the paper's own numbers.

These pin the DESIGN.md Sec 5 anchors. If a refactor shifts the cost
model, these tests say by how much the reproduction drifts from the
published measurements.
"""

import pytest

from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
from repro.core.scheduler.strategies import SequentialStrategy
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.workloads.paper_configs import table2_domains, table2_rects


@pytest.fixture
def grid():
    return ProcessGrid(32, 32)


class TestTable2Fig9Calibration:
    """Paper: siblings cost 0.4/0.2/0.2/0.3 s sequentially on 1024 BG/L
    cores (sum 1.1 s) and 0.7/0.6/0.6/0.7 s on their partitions (max 0.7)."""

    def test_sequential_sibling_times(self, grid, bgl):
        config = table2_domains()
        plan = SequentialStrategy().plan(grid, config.parent, list(config.siblings))
        rep = simulate_iteration(plan, bgl)
        times = [s.step.total for s in rep.siblings]
        paper = [0.4, 0.2, 0.2, 0.3]
        for ours, theirs in zip(times, paper):
            assert ours == pytest.approx(theirs, rel=0.30)
        assert sum(times) == pytest.approx(1.1, rel=0.15)

    def test_parallel_sibling_times(self, grid, bgl):
        config = table2_domains()
        plan = ExecutionPlan(
            grid=grid, parent=config.parent,
            assignments=tuple(
                SiblingAssignment(s, r)
                for s, r in zip(config.siblings, table2_rects())
            ),
            concurrent=True, strategy="parallel",
        )
        rep = simulate_iteration(plan, bgl)
        times = [s.step.total for s in rep.siblings]
        paper = [0.7, 0.6, 0.6, 0.7]
        for ours, theirs in zip(times, paper):
            assert ours == pytest.approx(theirs, rel=0.25)
        assert max(times) == pytest.approx(0.7, rel=0.15)

    def test_sibling_phase_gain_near_36pct(self, grid, bgl):
        config = table2_domains()
        seq = SequentialStrategy().plan(grid, config.parent, list(config.siblings))
        seq_rep = simulate_iteration(seq, bgl)
        par = ExecutionPlan(
            grid=grid, parent=config.parent,
            assignments=tuple(
                SiblingAssignment(s, r)
                for s, r in zip(config.siblings, table2_rects())
            ),
            concurrent=True, strategy="parallel",
        )
        par_rep = simulate_iteration(par, bgl)
        seq_phase = sum(s.step.total for s in seq_rep.siblings)
        par_phase = max(s.step.total for s in par_rep.siblings)
        gain = 100 * (seq_phase - par_phase) / seq_phase
        assert gain == pytest.approx(36.0, abs=8.0)


class TestFitStructure:
    """The t(P) = w * points / P + B structure implied by the paper's data."""

    def test_linear_fit_coefficients(self, bgl):
        from repro.perfsim.profiling import profile_step
        from repro.wrf.grid import DomainSpec

        spec = DomainSpec("x", 394, 418, 8.0, parent="p", parent_start=(0, 0), level=1)
        t1024 = profile_step(spec, ProcessGrid(32, 32), bgl).total
        t432 = profile_step(spec, ProcessGrid(18, 24), bgl).total
        # Solve for w and B.
        w = (t432 - t1024) / (spec.points / 432 - spec.points / 1024)
        B = t1024 - w * spec.points / 1024
        # Paper fit: w ~ 1.4e-3 core-s/point, B ~ 0.15 s.
        assert w == pytest.approx(1.4e-3, rel=0.35)
        assert B == pytest.approx(0.15, rel=0.45)

    def test_communication_fraction_reasonable(self, grid, bgl):
        """Paper Sec 3.3: ~40% of WRF execution is communication. Our
        comm + skew + waits land in the same regime (20-50%)."""
        config = table2_domains()
        plan = SequentialStrategy().plan(grid, config.parent, list(config.siblings))
        rep = simulate_iteration(plan, bgl)
        s = rep.siblings[0].step
        comm_like = s.comm.time + s.skew
        assert 0.15 < comm_like / s.total < 0.55
