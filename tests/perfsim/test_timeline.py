"""Tests for the execution-timeline builder."""

import pytest

from repro.core.scheduler.strategies import (
    ParallelSiblingsStrategy,
    SequentialStrategy,
)
from repro.errors import SimulationError
from repro.iosim.model import IoModel
from repro.perfsim.simulate import simulate_iteration
from repro.perfsim.timeline import Segment, build_timeline, render_gantt
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L


@pytest.fixture
def reports(pacific, table2_siblings):
    grid = ProcessGrid(32, 32)
    seq = simulate_iteration(
        SequentialStrategy().plan(grid, pacific, table2_siblings), BLUE_GENE_L
    )
    par = simulate_iteration(
        ParallelSiblingsStrategy().plan(
            grid, pacific, table2_siblings,
            ratios=[s.points for s in table2_siblings],
        ),
        BLUE_GENE_L,
    )
    return seq, par


class TestSegment:
    def test_end(self):
        assert Segment("compute", 1.0, 2.0).end == 3.0

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            Segment("sleep", 0.0, 1.0)

    def test_negative_duration(self):
        with pytest.raises(SimulationError):
            Segment("compute", 0.0, -1.0)


class TestBuildTimeline:
    def test_lane_count(self, reports):
        seq, par = reports
        tl = build_timeline(seq)
        assert len(tl.lanes) == 1 + 4  # parent + four siblings

    def test_total_matches_report(self, reports):
        for rep in reports:
            tl = build_timeline(rep)
            assert tl.total_time == pytest.approx(rep.total_time, rel=1e-9)

    def test_sequential_lanes_stack(self, reports):
        seq, _ = reports
        tl = build_timeline(seq)
        sib_lanes = tl.lanes[1:]
        for earlier, later in zip(sib_lanes, sib_lanes[1:]):
            first_start = min(s.start for s in later.segments)
            assert first_start == pytest.approx(earlier.end, rel=1e-9)

    def test_parallel_lanes_overlap(self, reports):
        _, par = reports
        tl = build_timeline(par)
        parent_end = tl.lanes[0].end
        for lane in tl.lanes[1:]:
            assert min(s.start for s in lane.segments) == pytest.approx(parent_end)

    def test_parallel_sync_waits_align_lanes(self, reports):
        _, par = reports
        tl = build_timeline(par)
        ends = {round(lane.end, 9) for lane in tl.lanes[1:]}
        assert len(ends) == 1  # everyone meets at the feedback sync

    def test_sequential_has_no_wait_segments(self, reports):
        seq, _ = reports
        tl = build_timeline(seq)
        assert all(lane.time_in("wait") == 0.0 for lane in tl.lanes)

    def test_parallel_fast_siblings_wait(self, reports):
        _, par = reports
        tl = build_timeline(par)
        waits = [lane.time_in("wait") for lane in tl.lanes[1:]]
        assert max(waits) > 0.0
        assert min(waits) == 0.0  # the slowest sibling never waits

    def test_io_segment_when_enabled(self, pacific, table2_siblings):
        grid = ProcessGrid(32, 32)
        rep = simulate_iteration(
            SequentialStrategy().plan(grid, pacific, table2_siblings),
            BLUE_GENE_L, io_model=IoModel("split"),
        )
        tl = build_timeline(rep)
        assert any(lane.time_in("io") > 0 for lane in tl.lanes)


class TestRenderGantt:
    def test_renders_all_lanes_and_legend(self, reports):
        _, par = reports
        out = render_gantt(build_timeline(par))
        assert "parent (all ranks)" in out
        assert "# compute" in out
        assert out.count("|") >= 2 * 5

    def test_wait_glyph_visible_for_parallel(self, reports):
        _, par = reports
        out = render_gantt(build_timeline(par), width=100)
        assert "." in out.split("\n")[1] or "." in out  # some lane waits

    def test_zero_duration_rejected(self):
        from repro.perfsim.timeline import IterationTimeline

        with pytest.raises(SimulationError):
            render_gantt(IterationTimeline(lanes=(), total_time=0.0))
