"""Tests for the full iteration simulator."""

import pytest

from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.scheduler.strategies import (
    ParallelSiblingsStrategy,
    SequentialStrategy,
)
from repro.iosim.model import IoModel
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L


@pytest.fixture
def grid():
    return ProcessGrid(32, 32)


@pytest.fixture
def plans(grid, pacific, table2_siblings):
    seq = SequentialStrategy().plan(grid, pacific, table2_siblings)
    par = ParallelSiblingsStrategy().plan(
        grid, pacific, table2_siblings,
        ratios=[s.points for s in table2_siblings],
    )
    return seq, par


class TestSequential:
    def test_nest_phase_is_sum(self, plans, bgl):
        seq, _ = plans
        rep = simulate_iteration(seq, bgl)
        expected = sum(s.phase_time for s in rep.siblings)
        assert rep.nest_phase_time == pytest.approx(expected)

    def test_integration_includes_parent(self, plans, bgl):
        seq, _ = plans
        rep = simulate_iteration(seq, bgl)
        assert rep.integration_time == pytest.approx(
            rep.parent.total + rep.nest_phase_time
        )

    def test_r_steps_per_sibling(self, plans, bgl):
        seq, _ = plans
        rep = simulate_iteration(seq, bgl)
        for s in rep.siblings:
            assert s.steps_per_iteration == 3
            assert s.phase_time == pytest.approx(3 * s.step.total)

    def test_no_sync_wait(self, plans, bgl):
        seq, _ = plans
        rep = simulate_iteration(seq, bgl)
        assert all(s.sync_wait == 0.0 for s in rep.siblings)
        assert rep.waits.sync == 0.0

    def test_all_siblings_full_grid(self, plans, bgl):
        seq, _ = plans
        rep = simulate_iteration(seq, bgl)
        assert all(s.ranks == 1024 for s in rep.siblings)


class TestParallel:
    def test_nest_phase_is_max(self, plans, bgl):
        _, par = plans
        rep = simulate_iteration(par, bgl)
        assert rep.nest_phase_time == pytest.approx(
            max(s.phase_time for s in rep.siblings)
        )

    def test_sync_waits_complementary(self, plans, bgl):
        _, par = plans
        rep = simulate_iteration(par, bgl)
        for s in rep.siblings:
            assert s.sync_wait == pytest.approx(rep.nest_phase_time - s.phase_time)

    def test_parallel_beats_sequential(self, plans, bgl):
        """The headline claim at BG/L rack scale."""
        seq, par = plans
        seq_rep = simulate_iteration(seq, bgl)
        par_rep = simulate_iteration(par, bgl)
        assert par_rep.integration_time < seq_rep.integration_time
        improvement = 100 * (1 - par_rep.integration_time / seq_rep.integration_time)
        assert 15 < improvement < 50  # paper: up to 33% + mapping

    def test_wait_improves(self, plans, bgl):
        seq, par = plans
        assert simulate_iteration(par, bgl).mpi_wait < simulate_iteration(seq, bgl).mpi_wait


class TestMappingsInSimulation:
    def test_topology_aware_helps_parallel(self, plans, bgl):
        _, par = plans
        oblivious = simulate_iteration(par, bgl)
        for mapping in (PartitionMapping(), MultiLevelMapping()):
            aware = simulate_iteration(par, bgl, mapping=mapping)
            assert aware.integration_time < oblivious.integration_time
            assert aware.average_hops < oblivious.average_hops

    def test_mapping_name_recorded(self, plans, bgl):
        _, par = plans
        rep = simulate_iteration(par, bgl, mapping=PartitionMapping())
        assert rep.mapping == "partition"


class TestIo:
    def test_io_disabled_by_default(self, plans, bgl):
        seq, _ = plans
        assert simulate_iteration(seq, bgl).io_time == 0.0

    def test_io_enabled(self, plans, bgl):
        seq, _ = plans
        rep = simulate_iteration(seq, bgl, io_model=IoModel("pnetcdf"))
        assert rep.io_time > 0.0
        assert rep.total_time == pytest.approx(rep.integration_time + rep.io_time)

    def test_parallel_io_cheaper(self, plans, bgl):
        """Fewer writers per sibling file (Sec 4.5)."""
        seq, par = plans
        io = IoModel("pnetcdf")
        seq_rep = simulate_iteration(seq, bgl, io_model=io)
        par_rep = simulate_iteration(par, bgl, io_model=io)
        assert par_rep.io_time < seq_rep.io_time


class TestModes:
    def test_co_mode_uses_more_nodes(self, plans, bgl):
        seq, _ = plans
        vn = simulate_iteration(seq, bgl, mode="VN")
        co = simulate_iteration(seq, bgl, mode="CO")
        # CO mode: 1024 ranks on 1024 nodes (vs 512) — different torus,
        # both must simulate fine.
        assert vn.ranks == co.ranks == 1024
