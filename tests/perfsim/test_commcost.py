"""Tests for the halo communication cost model."""

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.perfsim.commcost import CommCost, concurrent_comm_costs, halo_comm_cost
from repro.perfsim.params import WorkloadParams
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.topology.torus import Torus3D

WL = WorkloadParams()


def setup(grid_shape=(8, 8), torus_dims=(4, 4, 4), rpn=1, mapping=None):
    grid = ProcessGrid(*grid_shape)
    torus = Torus3D(torus_dims)
    space = SlotSpace(torus, rpn)
    placement = (mapping or ObliviousMapping()).place(grid, space)
    return grid, torus, placement.nodes()


class TestHaloCommCost:
    def test_single_rank_no_comm(self):
        grid, torus, nodes = setup()
        c = halo_comm_cost(grid, GridRect(0, 0, 1, 1), 100, 100,
                           torus, nodes, BLUE_GENE_L, WL)
        assert c.time == 0.0
        assert c == CommCost.zero()

    def test_positive_for_real_grid(self):
        grid, torus, nodes = setup()
        c = halo_comm_cost(grid, grid.full_rect(), 200, 200,
                           torus, nodes, BLUE_GENE_L, WL)
        assert c.time > 0.0
        assert c.ideal_time <= c.time
        assert c.average_hops > 0.0

    def test_rounds_multiply(self):
        grid, torus, nodes = setup()
        wl1 = WorkloadParams()
        import dataclasses
        from repro.runtime.halo import HaloSpec

        wl2 = WorkloadParams(halo=HaloSpec(rounds_per_step=72))
        c1 = halo_comm_cost(grid, grid.full_rect(), 200, 200, torus, nodes,
                            BLUE_GENE_L, wl1)
        c2 = halo_comm_cost(grid, grid.full_rect(), 200, 200, torus, nodes,
                            BLUE_GENE_L, wl2)
        assert c2.time == pytest.approx(2 * c1.time)

    def test_bigger_domain_more_bytes(self):
        grid, torus, nodes = setup()
        small = halo_comm_cost(grid, grid.full_rect(), 100, 100, torus, nodes,
                               BLUE_GENE_L, WL)
        large = halo_comm_cost(grid, grid.full_rect(), 400, 400, torus, nodes,
                               BLUE_GENE_L, WL)
        assert large.time > small.time


class TestConcurrentCommCosts:
    def test_matches_isolated_when_disjoint_placement(self):
        """With partition mapping, siblings use disjoint torus regions, so
        concurrency costs (almost) nothing extra."""
        grid = ProcessGrid(8, 8)
        rects = [GridRect(0, 0, 4, 8), GridRect(4, 0, 4, 8)]
        torus = Torus3D((4, 4, 4))
        space = SlotSpace(torus, 1)
        placement = PartitionMapping().place(grid, space, rects)
        nodes = placement.nodes()
        domains = [(200, 200), (200, 200)]
        conc = concurrent_comm_costs(grid, rects, domains, torus, nodes,
                                     BLUE_GENE_L, WL)
        for rect, dom, c in zip(rects, domains, conc):
            alone = halo_comm_cost(grid, rect, *dom, torus, nodes, BLUE_GENE_L, WL)
            assert c.time == pytest.approx(alone.time, rel=0.01)

    def test_oblivious_interleaving_costs_more(self):
        """Under the default mapping sibling regions interleave in the
        torus, so concurrent exchanges contend — the congestion the paper's
        mappings remove."""
        grid, torus, nodes = setup()
        rects = [GridRect(0, 0, 4, 8), GridRect(4, 0, 4, 8)]
        domains = [(300, 300), (300, 300)]
        conc = concurrent_comm_costs(grid, rects, domains, torus, nodes,
                                     BLUE_GENE_L, WL)
        alone = [
            halo_comm_cost(grid, r, *d, torus, nodes, BLUE_GENE_L, WL)
            for r, d in zip(rects, domains)
        ]
        assert sum(c.time for c in conc) >= sum(a.time for a in alone)

    def test_one_cost_per_sibling(self):
        grid, torus, nodes = setup()
        rects = [GridRect(0, 0, 4, 8), GridRect(4, 0, 2, 8), GridRect(6, 0, 2, 8)]
        domains = [(100, 100), (80, 80), (60, 60)]
        conc = concurrent_comm_costs(grid, rects, domains, torus, nodes,
                                     BLUE_GENE_L, WL)
        assert len(conc) == 3
