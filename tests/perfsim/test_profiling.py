"""Tests for the profiling harness."""

import pytest

from repro.perfsim.profiling import profile_step, profile_step_time
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.wrf.grid import DomainSpec


def nest(nx, ny):
    return DomainSpec("n", nx, ny, 8.0, parent="p", parent_start=(0, 0), level=1)


class TestProfileStep:
    def test_breakdown_positive(self):
        sc = profile_step(nest(200, 220), ProcessGrid(16, 16), BLUE_GENE_L)
        assert sc.total > 0
        assert sc.compute.time > 0
        assert sc.comm.time > 0

    def test_more_points_more_time(self):
        grid = ProcessGrid(16, 16)
        small = profile_step(nest(150, 150), grid, BLUE_GENE_L).total
        large = profile_step(nest(400, 400), grid, BLUE_GENE_L).total
        assert large > small

    def test_aspect_matters(self):
        """The reason the paper's model includes aspect ratio."""
        grid = ProcessGrid(16, 16)
        wide = profile_step(nest(400, 100), grid, BLUE_GENE_L).total
        square = profile_step(nest(200, 200), grid, BLUE_GENE_L).total
        assert wide != pytest.approx(square, rel=1e-3)


class TestProfileStepTime:
    def test_grid_chosen_automatically(self):
        t = profile_step_time(nest(300, 300), 512, BLUE_GENE_L)
        assert t > 0.0

    def test_monotone_in_ranks_for_scalable_sizes(self):
        t_small = profile_step_time(nest(400, 440), 128, BLUE_GENE_L)
        t_big = profile_step_time(nest(400, 440), 512, BLUE_GENE_L)
        assert t_big < t_small
