"""Tests for StepCost assembly."""

import math

import pytest

from repro.perfsim.commcost import CommCost
from repro.perfsim.compute import compute_time
from repro.perfsim.iteration import step_cost
from repro.perfsim.params import WorkloadParams
from repro.topology.machines import BLUE_GENE_L

WL = WorkloadParams()


def make_step(ranks=64, comm_time=0.01):
    comp = compute_time(200, 200, 8, 8, BLUE_GENE_L, WL)
    comm = CommCost(
        time=comm_time, ideal_time=comm_time / 2, average_hops=1.5,
        contention_wait=comm_time / 2, max_link_bytes=1000,
    )
    return step_cost(comp, comm, BLUE_GENE_L, WL, ranks)


class TestStepCost:
    def test_total_is_sum_of_parts(self):
        sc = make_step()
        assert sc.total == pytest.approx(
            sc.compute.time + sc.comm.time + sc.overhead + sc.skew + sc.collectives
        )

    def test_fixed_terms(self):
        sc = make_step(ranks=1024)
        assert sc.overhead == BLUE_GENE_L.step_overhead
        assert sc.skew == pytest.approx(BLUE_GENE_L.round_skew * 36)
        assert sc.collectives == pytest.approx(BLUE_GENE_L.collective_cost * 10)

    def test_single_rank_no_skew_or_collectives(self):
        comp = compute_time(100, 100, 1, 1, BLUE_GENE_L, WL)
        sc = step_cost(comp, CommCost.zero(), BLUE_GENE_L, WL, 1)
        assert sc.skew == 0.0
        assert sc.collectives == 0.0

    def test_wait_components(self):
        sc = make_step()
        assert sc.wait == pytest.approx(
            sc.skew + sc.comm.contention_wait + sc.compute.imbalance_wait
        )

    def test_wait_below_total(self):
        sc = make_step()
        assert 0.0 < sc.wait < sc.total

    def test_p_independent_cost_exists(self):
        """The paper's key structural fact: a chunk of the step cost does
        not shrink with more processors (DESIGN.md Sec 5, B ~ 0.1-0.15 s)."""
        small = make_step(ranks=64)
        big = make_step(ranks=1024)
        fixed_small = small.overhead + small.skew
        fixed_big = big.overhead + big.skew
        assert fixed_small == pytest.approx(fixed_big)
        assert 0.05 < fixed_big < 0.25
