"""Shared fixtures for the planning-service test suite."""

from __future__ import annotations

import pytest

from repro.exec.placementcache import (
    reset_placement_cache,
    set_placement_cache_policy,
)
from repro.exec.plancache import reset_plan_cache, set_plan_cache_policy
from repro.netsim.engine import reset_route_cache


def _reset_shared_state() -> None:
    set_plan_cache_policy(ttl_s=None)
    set_placement_cache_policy(ttl_s=None)
    reset_plan_cache()
    reset_placement_cache()
    reset_route_cache()


@pytest.fixture
def fresh_caches():
    """Zeroed shared caches with no TTL policy, restored afterwards."""
    _reset_shared_state()
    yield
    _reset_shared_state()


@pytest.fixture
def server(fresh_caches):
    """A running planning server on an ephemeral loopback port."""
    from repro.service import PlanningServer

    with PlanningServer() as srv:
        yield srv


@pytest.fixture
def client(server):
    """A client bound to the running ``server`` fixture."""
    from repro.service import ServiceClient

    return ServiceClient(server.url)
