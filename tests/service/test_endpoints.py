"""End-to-end HTTP tests: every endpoint, every structured error path.

Drives a real :class:`PlanningServer` on an ephemeral loopback port
through the stdlib client, asserting happy paths, the full catalogue of
400-level error codes, and that an unexpected handler crash surfaces as
a structured ``500 internal-error`` body — never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.service import MAX_BODY_BYTES, SCHEMA_VERSION
from repro.service.schemas import (
    HealthResponse,
    PlanResponse,
    RecommendResponse,
    SimulateResponse,
    VerifyResponse,
    parse_payload,
)


class TestHappyPaths:
    def test_healthz(self, client):
        reply = client.healthz()
        assert reply.status == 200
        health = parse_payload(HealthResponse, reply.json)
        assert health.status == "ok"
        assert health.schema_version == SCHEMA_VERSION

    def test_metrics_exposes_caches_and_registry(self, client):
        client.simulate({"ranks": 64})
        payload = client.metrics()
        assert set(payload["caches"]) == {"plan", "placement", "route"}
        assert "service.simulate.requests" in payload["metrics"]

    def test_recommend(self, client):
        reply = client.recommend({"config": "table2", "max_ranks": 256})
        assert reply.status == 200
        assert reply.headers["X-Repro-Coalesced"] == "0"
        resp = parse_payload(RecommendResponse, reply.json)
        assert resp.options
        assert resp.fastest in resp.options

    def test_recommend_defaults_on_empty_body(self, client):
        reply = client.recommend({})
        assert reply.status == 200
        resp = parse_payload(RecommendResponse, reply.json)
        assert resp.config == "table2"

    def test_simulate(self, client):
        reply = client.simulate({"ranks": 128, "config": "fig2"})
        assert reply.status == 200
        resp = parse_payload(SimulateResponse, reply.json)
        assert resp.ranks == 128
        assert resp.sequential.total_time > 0

    def test_verify(self, client):
        reply = client.verify({"budget": 3, "seed": 5})
        assert reply.status == 200
        resp = parse_payload(VerifyResponse, reply.json)
        assert resp.ok is True
        assert resp.scenarios_run == 3

    def test_plan(self, client):
        reply = client.plan({"config": "fig10", "ranks": 128})
        assert reply.status == 200
        resp = parse_payload(PlanResponse, reply.json)
        assert resp.ranks == 128
        assert resp.strategy == "parallel"
        assert resp.grid_px * resp.grid_py == 128
        assert resp.assignments
        # Parallel plans partition all ranks across the sibling nests.
        assert sum(a.processors for a in resp.assignments) == 128
        assert len(resp.ratios) == len(resp.assignments)

    def test_plan_sequential_strategy(self, client):
        reply = client.plan({"config": "fig10", "ranks": 64,
                             "strategy": "sequential"})
        assert reply.status == 200
        resp = parse_payload(PlanResponse, reply.json)
        assert resp.strategy == "sequential"
        assert resp.concurrent is False
        # Sequential runs every nest over the full grid, one at a time.
        assert all(a.processors == 64 for a in resp.assignments)
        assert resp.ratios == ()

    def test_plan_defaults_on_empty_body(self, client):
        reply = client.plan({})
        assert reply.status == 200
        resp = parse_payload(PlanResponse, reply.json)
        assert resp.config == "table2"
        assert resp.ranks == 256

    def test_plan_rejects_bad_strategy(self, client):
        reply = client.plan({"strategy": "diagonal"})
        assert reply.status == 400
        assert reply.json["error"] == "invalid-choice"

    def test_plan_is_byte_identical_across_calls(self, client):
        payload = {"config": "fig2", "ranks": 256}
        assert client.plan(payload).body == client.plan(payload).body

    def test_responses_are_byte_identical_across_calls(self, client):
        payload = {"config": "fig2", "max_ranks": 256}
        first = client.recommend(payload)
        second = client.recommend(payload)
        assert first.body == second.body

    def test_health_request_counter_advances(self, client):
        before = client.healthz().json["requests_served"]
        client.simulate({"ranks": 64})
        after = client.healthz().json["requests_served"]
        assert after > before


class TestErrorPaths:
    def _assert_error(self, reply, status, code):
        assert reply.status == status
        body = reply.json
        assert body["error"] == code
        assert body["message"]
        assert "Traceback" not in reply.body.decode("utf-8")

    def test_unknown_route_404(self, client):
        self._assert_error(client.get("/nope"), 404, "not-found")

    def test_wrong_method_405(self, client):
        self._assert_error(client.get("/recommend"), 405, "method-not-allowed")
        self._assert_error(client.post("/healthz", {}), 405, "method-not-allowed")

    def test_invalid_json_400(self, client):
        reply = client.post("/recommend", raw=b"{nope")
        self._assert_error(reply, 400, "invalid-json")

    def test_schema_violations_carry_their_codes(self, client):
        cases = [
            ({"config": "mars"}, "invalid-choice"),
            ({"bogus": 1}, "unknown-field"),
            ({"max_ranks": "many"}, "invalid-type"),
            ({"max_ranks": 0}, "out-of-range"),
            ({"min_ranks": 512, "max_ranks": 64}, "invalid-value"),
            ({"schema_version": 999}, "unsupported-schema-version"),
        ]
        for payload, code in cases:
            self._assert_error(client.recommend(payload), 400, code)

    def test_non_object_payload_400(self, client):
        reply = client.post("/simulate", raw=b"[1,2,3]")
        self._assert_error(reply, 400, "invalid-payload")

    def test_unknown_oracle_maps_to_invalid_request(self, client):
        reply = client.verify({"oracles": ["nonsense"]})
        self._assert_error(reply, 400, "invalid-request")
        assert "unknown oracle" in reply.json["message"]

    def test_oversized_body_413(self, client):
        big = b'{"pad":"' + b"x" * MAX_BODY_BYTES + b'"}'
        reply = client.post("/recommend", raw=big)
        self._assert_error(reply, 413, "payload-too-large")

    def test_internal_error_is_structured_500(self, server, client, monkeypatch):
        def explode(req):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(server.state, "simulate", explode)
        reply = client.simulate({"ranks": 64})
        self._assert_error(reply, 500, "internal-error")
        assert reply.json["message"] == "wires crossed"

    def test_errors_count_into_service_errors_metric(self, client):
        snap = client.metrics()["metrics"]
        before = snap.get("service.errors", {}).get("value", 0)
        client.get("/nope")
        after = client.metrics()["metrics"]["service.errors"]["value"]
        assert after >= before + 1


class TestServerLifecycle:
    def test_context_manager_binds_ephemeral_port(self, fresh_caches):
        from repro.service import PlanningServer, ServiceClient

        with PlanningServer() as srv:
            assert srv.port > 0
            assert ServiceClient(srv.url).healthz().status == 200
        # Socket is released: a new server can bind the same port.
        from socket import AF_INET, SOCK_STREAM, socket

        with socket(AF_INET, SOCK_STREAM) as sock:
            sock.bind(("127.0.0.1", srv.port))

    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_metrics_body_is_canonical_json(self, client):
        raw = client.get("/metrics").body.decode("utf-8")
        payload = json.loads(raw)
        recoded = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        assert raw == recoded
