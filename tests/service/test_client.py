"""Keep-alive connection-pool behavior of :class:`ServiceClient`.

The pool is load-bearing twice over: the bench harness measures
throughput through it (reconnect-per-request would swamp the planning
cost being measured), and the sharded router forwards every request
over it (a shard connection per request would serialize the fleet on
connect overhead).
"""

from __future__ import annotations

import threading

import pytest

from repro.service import ServiceClient, ServiceConnectionError
from repro.service.app import PlanningServer


class TestPooling:
    def test_sequential_requests_reuse_one_connection(self, client):
        for _ in range(5):
            assert client.healthz().status == 200
        stats = client.pool_stats()
        assert stats.created == 1
        assert stats.reused == 4
        assert stats.retired == 0
        assert stats.idle == 1

    def test_pool_is_bounded_under_concurrency(self, server, fresh_caches):
        client = ServiceClient(server.url, pool_size=2)
        barrier = threading.Barrier(6)
        failures = []

        def worker():
            try:
                barrier.wait(timeout=30)
                for _ in range(3):
                    assert client.plan({"ranks": 64}).status == 200
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        stats = client.pool_stats()
        # Excess connections are retired on release, never pooled.
        assert stats.idle <= 2
        assert stats.created + stats.reused == 18
        client.close()

    def test_close_drains_idle_and_stops_pooling(self, client):
        client.healthz()
        client.close()
        assert client.pool_stats().idle == 0
        # A closed client still works; it just stops pooling.
        assert client.healthz().status == 200
        assert client.pool_stats().idle == 0

    def test_context_manager_closes(self, server, fresh_caches):
        with ServiceClient(server.url) as client:
            client.healthz()
            assert client.pool_stats().idle == 1
        assert client.pool_stats().idle == 0

    def test_pool_size_validated(self, server):
        with pytest.raises(ValueError, match="pool_size"):
            ServiceClient(server.url, pool_size=0)

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="http"):
            ServiceClient("ftp://example.com")


class _OneShotServer:
    """Serves exactly one HTTP response per TCP connection, then hangs
    up *without* advertising ``Connection: close`` — the stale
    keep-alive race every pooled client must absorb, made deterministic.
    """

    _RESPONSE = (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 2\r\n\r\n{}"
    )

    def __init__(self) -> None:
        import socket

        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.served = 0
        self._closed = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            with conn:
                if self._closed:
                    continue  # hang up without a response
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                if data:
                    conn.sendall(self._RESPONSE)
                    self.served += 1

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()


class TestTransportFailures:
    def test_unreachable_server_raises_connection_error(self):
        # Bind-then-close guarantees a dead port.
        from socket import AF_INET, SOCK_STREAM, socket

        with socket(AF_INET, SOCK_STREAM) as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout_s=5)
        with pytest.raises(ServiceConnectionError):
            client.healthz()

    def test_stale_pooled_connection_retried_once(self):
        server = _OneShotServer()
        client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout_s=10)
        try:
            assert client.healthz().status == 200
            assert client.pool_stats().idle == 1  # pooled: no close header
            # The server already hung up; the reused socket fails and the
            # client must transparently retry on a fresh connection.
            assert client.healthz().status == 200
            stats = client.pool_stats()
            assert stats.reused == 1
            assert stats.retired >= 1  # the stale socket was discarded
            assert server.served == 2
        finally:
            client.close()
            server.close()

    def test_fresh_connection_failure_propagates(self):
        server = _OneShotServer()
        client = ServiceClient(f"http://127.0.0.1:{server.port}", timeout_s=5)
        try:
            assert client.healthz().status == 200
            server.close()
            # Reused socket fails -> retry opens a fresh connection ->
            # connect refused -> the error must propagate (no third try).
            with pytest.raises(ServiceConnectionError):
                client.healthz()
        finally:
            client.close()
