"""Unit tests for :class:`repro.service.state.ServiceState`.

Covers request coalescing (leader/follower sharing one computation),
the route-cache TTL governor with an injected clock, warm-start
preloading, and the endpoint computations themselves.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.exec.placementcache import placement_cache_stats
from repro.exec.plancache import plan_cache_stats
from repro.netsim.engine import route_cache_stats
from repro.obs.metrics import registry
from repro.service.schemas import (
    RecommendRequest,
    SimulateRequest,
    VerifyRequest,
    dump_bytes,
)
from repro.service.state import ServicePolicy, ServiceState


class _FakeClock:
    """A hand-cranked monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def state(fresh_caches):
    st = ServiceState()
    yield st
    st.close()


_REQ = RecommendRequest(config="table2", max_ranks=256)


def _spin_until(predicate, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


class TestCoalescing:
    def test_followers_share_the_leaders_response_object(self, state, monkeypatch):
        leader_entered = threading.Event()
        release = threading.Event()
        real_compute = state._compute_recommend

        def slow_compute(req):
            leader_entered.set()
            assert release.wait(timeout=30)
            return real_compute(req)

        monkeypatch.setattr(state, "_compute_recommend", slow_compute)

        results = []
        lock = threading.Lock()

        def call():
            resp, coalesced = state.recommend(_REQ)
            with lock:
                results.append((resp, coalesced))

        baseline = state._coalesce_hits.value
        leader = threading.Thread(target=call)
        leader.start()
        assert leader_entered.wait(timeout=30)
        followers = [threading.Thread(target=call) for _ in range(4)]
        for t in followers:
            t.start()
        # Followers must be parked on the in-flight entry before release.
        _spin_until(lambda: state._coalesce_hits.value >= baseline + 4)
        release.set()
        leader.join(timeout=30)
        for t in followers:
            t.join(timeout=30)

        assert len(results) == 5
        coalesced_flags = sorted(flag for _, flag in results)
        assert coalesced_flags == [False, True, True, True, True]
        leader_resp = next(r for r, flag in results if not flag)
        for resp, flag in results:
            if flag:
                assert resp is leader_resp  # the same object, not a copy

    def test_leader_error_propagates_to_followers(self, state, monkeypatch):
        entered = threading.Event()
        release = threading.Event()

        def exploding(req):
            entered.set()
            assert release.wait(timeout=30)
            raise RuntimeError("boom")

        monkeypatch.setattr(state, "_compute_recommend", exploding)
        errors = []

        def call():
            try:
                state.recommend(_REQ)
            except RuntimeError as exc:
                errors.append(str(exc))

        baseline = state._coalesce_hits.value
        leader = threading.Thread(target=call)
        leader.start()
        assert entered.wait(timeout=30)
        follower = threading.Thread(target=call)
        follower.start()
        _spin_until(lambda: state._coalesce_hits.value >= baseline + 1)
        release.set()
        leader.join(timeout=30)
        follower.join(timeout=30)
        assert errors == ["boom", "boom"]
        # The failed entry was removed: the next request gets a fresh leader.
        assert state._inflight == {}

    def test_sequential_requests_do_not_coalesce(self, state):
        _, first = state.recommend(_REQ)
        _, second = state.recommend(_REQ)
        assert first is False and second is False

    def test_distinct_requests_use_distinct_keys(self):
        a = dump_bytes(RecommendRequest(config="fig2"))
        b = dump_bytes(RecommendRequest(config="table2"))
        assert a != b


class TestRouteTtlGovernor:
    def test_no_policy_never_flushes(self, fresh_caches):
        clock = _FakeClock()
        st = ServiceState(ServicePolicy(), clock=clock)
        try:
            clock.advance(1e6)
            assert st.maybe_expire() is False
        finally:
            st.close()

    def test_flushes_once_per_ttl_window(self, fresh_caches):
        clock = _FakeClock()
        st = ServiceState(ServicePolicy(route_ttl_s=10.0), clock=clock)
        try:
            st.simulate(SimulateRequest(ranks=64))  # populate route cache
            assert route_cache_stats().entries > 0
            assert st.maybe_expire() is False  # within the window
            clock.advance(10.5)
            assert st.maybe_expire() is True
            assert route_cache_stats().entries == 0
            assert st.maybe_expire() is False  # window restarted
            clock.advance(10.5)
            assert st.maybe_expire() is True
        finally:
            st.close()


class TestEndpoints:
    def test_recommend_is_deterministic(self, state):
        first, _ = state.recommend(_REQ)
        second, _ = state.recommend(_REQ)
        assert dump_bytes(first) == dump_bytes(second)
        assert first.fastest in first.options
        assert first.recommended.efficiency >= _REQ.efficiency_floor

    def test_simulate_reports_both_strategies(self, state):
        resp = state.simulate(SimulateRequest(ranks=128))
        assert resp.sequential.total_time > 0
        assert resp.parallel.total_time > 0
        expected = 100.0 * (
            1.0 - resp.parallel.total_time / resp.sequential.total_time
        )
        assert resp.improvement_percent == pytest.approx(expected)

    def test_verify_runs_the_oracles(self, state):
        resp = state.verify(VerifyRequest(budget=3, seed=11))
        assert resp.ok is True
        assert resp.scenarios_run == 3
        assert resp.seed == 11
        assert resp.oracles

    def test_verify_rejects_unknown_oracle(self, state):
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            state.verify(VerifyRequest(budget=1, oracles=("nonsense",)))

    def test_health_counts_and_uptime(self, fresh_caches):
        clock = _FakeClock()
        st = ServiceState(clock=clock)
        try:
            clock.advance(5.0)
            health = st.health()
            assert health.status == "ok"
            assert health.uptime_s == pytest.approx(5.0)
            assert health.warmed is False
        finally:
            st.close()

    def test_metrics_payload_shape(self, state):
        state.simulate(SimulateRequest(ranks=64))
        payload = state.metrics_payload()
        assert set(payload["caches"]) == {"plan", "placement", "route"}
        for stats in payload["caches"].values():
            assert "hits" in stats and "misses" in stats
        assert isinstance(payload["metrics"], dict)


class TestWarmStart:
    def test_warm_start_populates_all_three_caches(self, state):
        summary = state.warm_start(("table2",), max_ranks=128)
        assert state.warmed is True
        assert summary["configs"] == ["table2"]
        assert summary["plan_cache_entries"] > 0
        assert summary["placement_cache_entries"] > 0
        assert summary["route_cache_entries"] > 0
        assert plan_cache_stats().entries == summary["plan_cache_entries"]
        assert (
            placement_cache_stats().entries
            == summary["placement_cache_entries"]
        )

    def test_warm_start_makes_matching_recommends_cache_hits(self, state):
        state.warm_start(("table2",), max_ranks=128)
        before = plan_cache_stats().hits
        state.recommend(
            RecommendRequest(config="table2", min_ranks=64, max_ranks=128)
        )
        assert plan_cache_stats().hits > before
