"""Schema round-trips and strict-parsing guarantees.

Two contracts, both load-bearing for the service:

* serialize → parse → serialize is **byte-stable** for every
  request/response schema (canonical JSON is the coalescing key and the
  determinism suite compares raw bodies);
* malformed payloads always raise :class:`SchemaError` with a stable
  code — never a ``KeyError``/``TypeError``/traceback.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.schemas import (
    ALL_SCHEMAS,
    CONFIG_NAMES,
    IO_NAMES,
    MACHINE_NAMES,
    MAPPING_NAMES,
    MAX_RANKS,
    SCHEMA_VERSION,
    STRATEGY_NAMES,
    ErrorResponse,
    HealthResponse,
    IterationPayload,
    PlanAssignmentPayload,
    PlanOptionPayload,
    PlanRequest,
    PlanResponse,
    RecommendRequest,
    RecommendResponse,
    SchemaError,
    SimulateRequest,
    SimulateResponse,
    VerifyFailurePayload,
    VerifyRequest,
    VerifyResponse,
    dump_bytes,
    parse_payload,
    to_payload,
)

# ----------------------------------------------------------------------
# Instance strategies, one per schema
# ----------------------------------------------------------------------
# Safe alphabet: no ", " / ": " so the minimal-separator assertion on
# canonical JSON can't be tripped by payload *content*.
_name = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=20
)
_time = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
_frac = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                  allow_infinity=False)


@st.composite
def recommend_requests(draw):
    lo, hi = sorted(
        draw(st.tuples(st.integers(1, MAX_RANKS), st.integers(1, MAX_RANKS)))
    )
    return RecommendRequest(
        config=draw(st.sampled_from(CONFIG_NAMES)),
        machine=draw(st.sampled_from(MACHINE_NAMES)),
        min_ranks=lo,
        max_ranks=hi,
        efficiency_floor=draw(
            st.floats(min_value=0.001, max_value=1.0, allow_nan=False)
        ),
        mapping=draw(st.sampled_from(MAPPING_NAMES)),
        io=draw(st.sampled_from(IO_NAMES)),
    )


@st.composite
def simulate_requests(draw):
    return SimulateRequest(
        config=draw(st.sampled_from(CONFIG_NAMES)),
        machine=draw(st.sampled_from(MACHINE_NAMES)),
        ranks=draw(st.integers(1, MAX_RANKS)),
        mapping=draw(st.sampled_from(MAPPING_NAMES)),
        io=draw(st.sampled_from(IO_NAMES)),
    )


@st.composite
def plan_requests(draw):
    return PlanRequest(
        config=draw(st.sampled_from(CONFIG_NAMES)),
        machine=draw(st.sampled_from(MACHINE_NAMES)),
        ranks=draw(st.integers(1, MAX_RANKS)),
        strategy=draw(st.sampled_from(STRATEGY_NAMES)),
    )


@st.composite
def plan_assignments(draw):
    return PlanAssignmentPayload(
        domain=draw(_name),
        nx=draw(st.integers(1, 10**4)),
        ny=draw(st.integers(1, 10**4)),
        x0=draw(st.integers(0, 100)),
        y0=draw(st.integers(0, 100)),
        width=draw(st.integers(1, 100)),
        height=draw(st.integers(1, 100)),
        processors=draw(st.integers(1, MAX_RANKS)),
    )


@st.composite
def plan_responses(draw):
    return PlanResponse(
        config=draw(st.sampled_from(CONFIG_NAMES)),
        machine=draw(st.sampled_from(MACHINE_NAMES)),
        ranks=draw(st.integers(1, MAX_RANKS)),
        strategy=draw(st.sampled_from(STRATEGY_NAMES)),
        grid_px=draw(st.integers(1, 64)),
        grid_py=draw(st.integers(1, 64)),
        concurrent=draw(st.booleans()),
        parent_nx=draw(st.integers(1, 10**4)),
        parent_ny=draw(st.integers(1, 10**4)),
        assignments=tuple(
            draw(st.lists(plan_assignments(), min_size=1, max_size=4))
        ),
        ratios=tuple(draw(st.lists(_frac, max_size=4))),
    )


@st.composite
def verify_requests(draw):
    return VerifyRequest(
        budget=draw(st.integers(1, 500)),
        seed=draw(st.integers(0, 2**31 - 1)),
        oracles=tuple(draw(st.lists(_name, max_size=3))),
    )


@st.composite
def plan_options(draw):
    return PlanOptionPayload(
        ranks=draw(st.integers(1, MAX_RANKS)),
        strategy=draw(st.sampled_from(("sequential", "parallel"))),
        mapping=draw(st.sampled_from(MAPPING_NAMES)),
        time_per_iteration=draw(_time),
        core_seconds=draw(_time),
        efficiency=draw(_frac),
    )


@st.composite
def recommend_responses(draw):
    options = tuple(draw(st.lists(plan_options(), min_size=1, max_size=4)))
    return RecommendResponse(
        config=draw(st.sampled_from(CONFIG_NAMES)),
        machine=draw(st.sampled_from(MACHINE_NAMES)),
        efficiency_floor=draw(_frac),
        options=options,
        fastest=options[0],
        recommended=options[-1],
    )


@st.composite
def iteration_payloads(draw):
    return IterationPayload(
        total_time=draw(_time),
        integration_time=draw(_time),
        io_time=draw(_time),
        mpi_wait=draw(_time),
        average_hops=draw(_time),
    )


@st.composite
def simulate_responses(draw):
    return SimulateResponse(
        config=draw(st.sampled_from(CONFIG_NAMES)),
        machine=draw(st.sampled_from(MACHINE_NAMES)),
        ranks=draw(st.integers(1, MAX_RANKS)),
        mapping=draw(st.sampled_from(MAPPING_NAMES)),
        io=draw(st.sampled_from(IO_NAMES)),
        sequential=draw(iteration_payloads()),
        parallel=draw(iteration_payloads()),
        improvement_percent=draw(
            st.floats(min_value=-1e3, max_value=100.0, allow_nan=False)
        ),
    )


_params = st.dictionaries(
    st.sampled_from(("machine", "ranks", "mapping", "sibling_seed", "io")),
    st.one_of(st.integers(-10, 2**31), _name, st.booleans()),
    max_size=5,
)


@st.composite
def verify_failures(draw):
    return VerifyFailurePayload(
        oracle=draw(_name),
        message=draw(_name),
        scenario=draw(_params),
        minimized=draw(_params),
    )


@st.composite
def verify_responses(draw):
    failures = tuple(draw(st.lists(verify_failures(), max_size=2)))
    return VerifyResponse(
        ok=not failures,
        budget=draw(st.integers(1, 500)),
        seed=draw(st.integers(0, 2**31 - 1)),
        scenarios_run=draw(st.integers(0, 500)),
        infeasible_skips=draw(st.integers(0, 100)),
        oracles=tuple(draw(st.lists(_name, max_size=3))),
        failures=failures,
    )


@st.composite
def health_responses(draw):
    return HealthResponse(
        status="ok",
        uptime_s=draw(_time),
        requests_served=draw(st.integers(0, 10**9)),
        warmed=draw(st.booleans()),
    )


@st.composite
def error_responses(draw):
    return ErrorResponse(error=draw(_name), message=draw(_name))


INSTANCES = st.one_of(
    recommend_requests(), simulate_requests(), verify_requests(),
    plan_requests(), plan_assignments(), plan_responses(),
    plan_options(), recommend_responses(), iteration_payloads(),
    simulate_responses(), verify_failures(), verify_responses(),
    health_responses(), error_responses(),
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(INSTANCES)
    def test_serialize_parse_serialize_is_byte_stable(self, obj):
        wire = dump_bytes(obj)
        parsed = parse_payload(type(obj), json.loads(wire))
        assert parsed == obj
        assert dump_bytes(parsed) == wire

    @settings(max_examples=50, deadline=None)
    @given(INSTANCES)
    def test_canonical_bytes_are_sorted_and_minimal(self, obj):
        wire = dump_bytes(obj).decode("utf-8")
        assert ": " not in wire and ", " not in wire
        payload = json.loads(wire)
        assert list(payload) == sorted(payload)

    def test_every_schema_embeds_or_accepts_version(self):
        # Requests and top-level responses carry schema_version; nested
        # payloads (options, iterations, failures) ride inside one.
        versioned = [s for s in ALL_SCHEMAS if "schema_version" in s._SPEC]
        assert {s.__name__ for s in versioned} >= {
            "RecommendRequest", "SimulateRequest", "VerifyRequest",
            "PlanRequest", "PlanResponse",
            "RecommendResponse", "SimulateResponse", "VerifyResponse",
            "HealthResponse", "ErrorResponse",
        }
        for cls in versioned:
            obj = parse_payload(cls, json.loads(_minimal_payload(cls)))
            assert obj.schema_version == SCHEMA_VERSION


def _minimal_payload(cls) -> bytes:
    """A smallest valid payload for *cls* (defaults where possible)."""
    samples = {
        "RecommendRequest": RecommendRequest(),
        "SimulateRequest": SimulateRequest(),
        "VerifyRequest": VerifyRequest(),
        "PlanRequest": PlanRequest(),
        "PlanAssignmentPayload": _ASSIGNMENT,
        "PlanResponse": PlanResponse(
            config="table2", machine="bgl", ranks=64, strategy="parallel",
            grid_px=8, grid_py=8, concurrent=True, parent_nx=100,
            parent_ny=100, assignments=(_ASSIGNMENT,), ratios=(0.5, 0.5),
        ),
        "PlanOptionPayload": _OPTION,
        "RecommendResponse": RecommendResponse(
            config="table2", machine="bgl", efficiency_floor=0.5,
            options=(_OPTION,), fastest=_OPTION, recommended=_OPTION,
        ),
        "IterationPayload": _ITER,
        "SimulateResponse": SimulateResponse(
            config="table2", machine="bgl", ranks=64, mapping="oblivious",
            io="none", sequential=_ITER, parallel=_ITER,
            improvement_percent=10.0,
        ),
        "VerifyFailurePayload": VerifyFailurePayload(
            oracle="x", message="m", scenario={}, minimized={},
        ),
        "VerifyResponse": VerifyResponse(
            ok=True, budget=1, seed=7, scenarios_run=1, infeasible_skips=0,
            oracles=(), failures=(),
        ),
        "HealthResponse": HealthResponse(
            status="ok", uptime_s=0.0, requests_served=0, warmed=False,
        ),
        "ErrorResponse": ErrorResponse(error="x", message="m"),
    }
    return dump_bytes(samples[cls.__name__])


_OPTION = PlanOptionPayload(
    ranks=64, strategy="parallel", mapping="multilevel",
    time_per_iteration=1.0, core_seconds=64.0, efficiency=1.0,
)
_ASSIGNMENT = PlanAssignmentPayload(
    domain="d1", nx=100, ny=100, x0=0, y0=0, width=10, height=10,
    processors=16,
)
_ITER = IterationPayload(
    total_time=1.0, integration_time=0.9, io_time=0.1, mpi_wait=0.2,
    average_hops=3.0,
)


# ----------------------------------------------------------------------
# Strict parsing: structured errors, never tracebacks
# ----------------------------------------------------------------------
_JSON = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(), st.floats(),
              st.text(max_size=10)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)


class TestStrictParsing:
    @settings(max_examples=200, deadline=None)
    @given(st.sampled_from(ALL_SCHEMAS), _JSON)
    def test_arbitrary_payloads_never_leak_raw_exceptions(self, cls, payload):
        try:
            parse_payload(cls, payload)
        except SchemaError as exc:
            assert exc.code
            assert str(exc)

    @pytest.mark.parametrize(
        "payload, code, field",
        [
            ([1, 2], "invalid-payload", None),
            ({"bogus": 1}, "unknown-field", "bogus"),
            ({"config": "antarctica"}, "invalid-choice", "config"),
            ({"config": 7}, "invalid-type", "config"),
            ({"max_ranks": True}, "invalid-type", "max_ranks"),
            ({"max_ranks": 0}, "out-of-range", "max_ranks"),
            ({"max_ranks": MAX_RANKS + 1}, "out-of-range", "max_ranks"),
            ({"efficiency_floor": 1.5}, "out-of-range", "efficiency_floor"),
            ({"efficiency_floor": 0.0}, "out-of-range", "efficiency_floor"),
            ({"min_ranks": 512, "max_ranks": 64}, "invalid-value", "max_ranks"),
            ({"schema_version": 99}, "unsupported-schema-version",
             "schema_version"),
        ],
    )
    def test_recommend_request_error_codes(self, payload, code, field):
        with pytest.raises(SchemaError) as err:
            parse_payload(RecommendRequest, payload)
        assert err.value.code == code
        assert err.value.field == field

    def test_missing_required_field(self):
        payload = to_payload(_OPTION)
        del payload["ranks"]
        with pytest.raises(SchemaError) as err:
            parse_payload(PlanOptionPayload, payload)
        assert err.value.code == "missing-field"
        assert err.value.field == "ranks"

    def test_nonfinite_floats_rejected(self):
        payload = to_payload(_ITER)
        payload["total_time"] = float("inf")
        with pytest.raises(SchemaError) as err:
            parse_payload(IterationPayload, payload)
        assert err.value.code == "invalid-value"

    def test_nested_tuple_elements_validated(self):
        payload = json.loads(_minimal_payload(RecommendResponse))
        payload["options"][0]["efficiency"] = 2.0
        with pytest.raises(SchemaError) as err:
            parse_payload(RecommendResponse, payload)
        assert err.value.code == "out-of-range"
        assert "options[0]" in err.value.field

    def test_params_dict_rejects_non_scalars(self):
        payload = {
            "oracle": "x", "message": "m",
            "scenario": {"nested": {"deep": 1}}, "minimized": {},
        }
        with pytest.raises(SchemaError) as err:
            parse_payload(VerifyFailurePayload, payload)
        assert err.value.code == "invalid-type"

    def test_defaults_fill_optional_request_fields(self):
        req = parse_payload(RecommendRequest, {})
        assert req == RecommendRequest()
        assert req.schema_version == SCHEMA_VERSION
