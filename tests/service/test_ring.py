"""Consistent-hash ring properties: balance, stability, minimal remapping.

The ring is the router's shard selector; these properties are what make
it fit for that job:

* **deterministic** — same members, same key, same owner, forever
  (affinity is the whole point);
* **balanced** — at the default 160 virtual nodes per member, no member
  owns a pathological share of the key space;
* **minimal remapping** — adding a member steals keys *only for the new
  member*; removing one reassigns *only its own* keys. Every other
  key keeps its owner — which is why a shard-count change doesn't
  flush the surviving shards' warm caches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.ring import DEFAULT_VNODES, HashRing

_member = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
_members = st.lists(_member, min_size=1, max_size=12, unique=True)
_key = st.binary(min_size=0, max_size=64)


class TestOwnership:
    @settings(max_examples=100, deadline=None)
    @given(_members, _key)
    def test_owner_is_a_member_and_deterministic(self, members, key):
        ring = HashRing(members)
        owner = ring.shard_for(key)
        assert owner in members
        assert HashRing(members).shard_for(key) == owner

    @settings(max_examples=100, deadline=None)
    @given(_members, _key)
    def test_preference_is_a_permutation_starting_at_owner(self, members, key):
        ring = HashRing(members)
        pref = ring.preference(key)
        assert sorted(pref) == sorted(members)
        assert pref[0] == ring.shard_for(key)

    def test_empty_and_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)


class TestBalance:
    # The ring is unseeded and deterministic, so these are fixed facts
    # about blake2b at 160 vnodes — not statistical flakes.
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_owned_share_bounded_at_default_vnodes(self, n):
        ring = HashRing([f"shard-{i}" for i in range(n)])
        shares = ring.owned_share()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        fair = 1.0 / n
        for member, share in shares.items():
            assert 0.5 * fair < share < 1.7 * fair, (member, share, fair)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_empirical_key_balance(self, n):
        ring = HashRing([f"shard-{i}" for i in range(n)], vnodes=DEFAULT_VNODES)
        counts = {m: 0 for m in ring.members}
        total = 4000
        for i in range(total):
            counts[ring.shard_for(f"key-{i}".encode())] += 1
        fair = total / n
        for member, count in counts.items():
            assert 0.5 * fair < count < 1.7 * fair, (member, count, fair)


class TestMinimalRemapping:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 3))
    def test_adding_a_member_steals_only_for_the_newcomer(self, n, salt):
        old = HashRing([f"shard-{i}" for i in range(n)])
        new = HashRing([f"shard-{i}" for i in range(n + 1)])
        keys = [f"key-{salt}-{i}".encode() for i in range(1500)]
        moved = 0
        for key in keys:
            before, after = old.shard_for(key), new.shard_for(key)
            if before != after:
                # Every remapped key lands on the new member — an exact
                # property, not a tolerance.
                assert after == f"shard-{n}", (key, before, after)
                moved += 1
        # Expected moved fraction is ~1/(n+1); allow generous slack.
        assert moved / len(keys) < 2.5 / (n + 1)
        assert moved > 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 8), st.integers(0, 3))
    def test_removing_a_member_remaps_only_its_keys(self, n, salt):
        members = [f"shard-{i}" for i in range(n)]
        full = HashRing(members)
        reduced = HashRing(members[:-1])
        for i in range(1500):
            key = f"key-{salt}-{i}".encode()
            before = full.shard_for(key)
            after = reduced.shard_for(key)
            if before != members[-1]:
                assert after == before, (key, before, after)

    def test_failover_preference_matches_member_removal(self):
        # The router's fail-open path (next member in preference order)
        # must agree with what a ring without the dead member would
        # choose — so failover traffic also lands with affinity.
        members = [f"shard-{i}" for i in range(4)]
        ring = HashRing(members)
        for i in range(300):
            key = f"key-{i}".encode()
            pref = ring.preference(key)
            survivors = [m for m in members if m != pref[0]]
            assert HashRing(survivors).shard_for(key) == pref[1]
