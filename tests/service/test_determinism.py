"""Concurrency-determinism suite: the service's central contract.

Response bodies are a pure function of the request, so a storm of
concurrent clients must produce **byte-identical** bodies to a
single-threaded oracle run — for every request in the workload, at
1, 8, and 32 concurrent clients. Alongside the bodies, the service's
own accounting must reconcile *exactly*: request counters, response
byte totals, and latency histogram counts are all thread-count
invariant (coalescing changes how much work runs, never how many
requests were answered).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import registry
from repro.service import PlanningServer, ServiceClient
from repro.service.schemas import canonical_json

from tests.service.conftest import _reset_shared_state

CLIENT_COUNTS = (1, 8, 32)

#: The mixed workload: each payload appears several times so identical
#: requests genuinely race (and may coalesce) at high concurrency.
_DISTINCT = [
    ("/recommend", {"config": "table2", "max_ranks": 256}),
    ("/recommend", {"config": "fig2", "max_ranks": 256}),
    ("/recommend", {"config": "table2", "machine": "bgp", "max_ranks": 128}),
    ("/recommend", {"config": "fig10", "max_ranks": 128,
                    "efficiency_floor": 0.4}),
    ("/simulate", {"config": "table2", "ranks": 128}),
    ("/simulate", {"config": "fig2", "ranks": 64, "mapping": "multilevel"}),
]
WORKLOAD = _DISTINCT * 6  # 36 requests over 6 distinct payloads


def _key(path, payload) -> str:
    return path + "::" + canonical_json(payload)


def _counter_value(snapshot, name) -> float:
    entry = snapshot.get(name)
    return entry["value"] if entry else 0


def _histogram_count(snapshot, name) -> int:
    entry = snapshot.get(name)
    return entry["count"] if entry else 0


def _run_level(n_clients):
    """Serve WORKLOAD with *n_clients* threads against a fresh server.

    Returns ``(bodies, deltas)``: per-payload response bodies, and the
    exact service-metric deltas attributable to this run.
    """
    _reset_shared_state()
    before = registry().snapshot()
    replies = []
    with PlanningServer() as server:
        client = ServiceClient(server.url)

        def fire(item):
            path, payload = item
            return item, client.post(path, payload)

        if n_clients == 1:
            for item in WORKLOAD:
                replies.append(fire(item))
        else:
            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                replies = list(pool.map(fire, WORKLOAD))
    after = registry().snapshot()
    _reset_shared_state()

    bodies = {}
    total_bytes = 0
    for (path, payload), reply in replies:
        assert reply.status == 200, reply.body
        bodies.setdefault(_key(path, payload), set()).add(reply.body)
        total_bytes += len(reply.body)

    def delta(kind, name):
        fn = _counter_value if kind == "counter" else _histogram_count
        return fn(after, name) - fn(before, name)

    n_rec = sum(1 for path, _ in WORKLOAD if path == "/recommend")
    n_sim = len(WORKLOAD) - n_rec
    deltas = {
        "recommend.requests": delta("counter", "service.recommend.requests"),
        "simulate.requests": delta("counter", "service.simulate.requests"),
        "requests": delta("counter", "service.requests"),
        "errors": delta("counter", "service.errors"),
        "response_bytes": (
            delta("counter", "service.recommend.response_bytes")
            + delta("counter", "service.simulate.response_bytes")
        ),
        "recommend.latency.count": delta(
            "histogram", "service.recommend.latency_s"
        ),
        "simulate.latency.count": delta(
            "histogram", "service.simulate.latency_s"
        ),
        "coalesce.total": (
            delta("counter", "service.coalesce.hits")
            + delta("counter", "service.coalesce.misses")
        ),
        "coalesce.hits": delta("counter", "service.coalesce.hits"),
    }
    return bodies, deltas, {"recommend": n_rec, "simulate": n_sim,
                            "received_bytes": total_bytes}


@pytest.fixture(scope="module")
def level_runs():
    """One workload run per concurrency level, shared by the assertions."""
    return {n: _run_level(n) for n in CLIENT_COUNTS}


class TestByteDeterminism:
    def test_each_payload_yields_one_body_within_a_level(self, level_runs):
        for n, (bodies, _, _) in level_runs.items():
            for key, variants in bodies.items():
                assert len(variants) == 1, (
                    f"{key} produced {len(variants)} distinct bodies "
                    f"at {n} clients"
                )

    def test_concurrent_bodies_match_the_single_threaded_oracle(
        self, level_runs
    ):
        oracle, _, _ = level_runs[1]
        for n in CLIENT_COUNTS[1:]:
            bodies, _, _ = level_runs[n]
            assert bodies.keys() == oracle.keys()
            for key in oracle:
                assert bodies[key] == oracle[key], (
                    f"{key} at {n} clients diverged from the "
                    f"single-threaded oracle"
                )


class TestMetricReconciliation:
    def test_request_counters_reconcile_exactly(self, level_runs):
        for n, (_, deltas, expect) in level_runs.items():
            assert deltas["recommend.requests"] == expect["recommend"], n
            assert deltas["simulate.requests"] == expect["simulate"], n
            assert deltas["requests"] == len(WORKLOAD), n
            assert deltas["errors"] == 0, n

    def test_response_byte_totals_reconcile_exactly(self, level_runs):
        for n, (_, deltas, expect) in level_runs.items():
            assert deltas["response_bytes"] == expect["received_bytes"], n

    def test_latency_histograms_count_every_request(self, level_runs):
        for n, (_, deltas, expect) in level_runs.items():
            assert deltas["recommend.latency.count"] == expect["recommend"], n
            assert deltas["simulate.latency.count"] == expect["simulate"], n

    def test_every_recommend_is_a_coalesce_hit_or_miss(self, level_runs):
        for n, (_, deltas, expect) in level_runs.items():
            assert deltas["coalesce.total"] == expect["recommend"], n

    def test_single_threaded_run_never_coalesces(self, level_runs):
        _, deltas, _ = level_runs[1]
        assert deltas["coalesce.hits"] == 0


class TestCoalescingUnderLoad:
    def test_simultaneous_identical_requests_share_one_computation(
        self, fresh_caches
    ):
        """Pin coalescing down deterministically: park the leader, pile
        followers on the same payload, then release — followers must be
        marked coalesced and byte-identical to the leader."""
        with PlanningServer() as server:
            state = server.state
            entered = threading.Event()
            release = threading.Event()
            real = state._compute_recommend

            def gated(req):
                entered.set()
                assert release.wait(timeout=30)
                return real(req)

            state._compute_recommend = gated
            client = ServiceClient(server.url)
            payload = {"config": "table2", "max_ranks": 128}
            baseline = state._coalesce_hits.value
            with ThreadPoolExecutor(max_workers=9) as pool:
                futures = [
                    pool.submit(client.recommend, payload) for _ in range(9)
                ]
                assert entered.wait(timeout=30)
                # Wait until all other requests are parked as followers.
                pause = threading.Event()
                for _ in range(30000):
                    if state._coalesce_hits.value >= baseline + 8:
                        break
                    pause.wait(0.001)
                release.set()
                replies = [f.result(timeout=60) for f in futures]

        assert all(r.status == 200 for r in replies)
        bodies = {r.body for r in replies}
        assert len(bodies) == 1
        flags = sorted(r.coalesced for r in replies)
        assert flags == [False] + [True] * 8
