"""Sharded service: byte-determinism, failover, exact metrics.

The acceptance contract for the multi-process deployment:

* responses are **byte-identical to a single-process server** at every
  shard count (the ring only decides *where* a request is computed,
  never *what* the answer is);
* a shard crash mid-load loses no requests and produces no malformed
  response — the router fails open to live shards while the supervisor
  restarts the dead one warm;
* the router's merged ``/metrics`` reconciles **exactly** with
  per-shard scrapes, never double-counts across restarts, and scraping
  itself is invisible to the counters being scraped.

These tests spawn real OS processes; they are the slowest files in the
service suite, so shard fleets are kept small and shared per class.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import merge_snapshots
from repro.service import (
    PlanningServer,
    ServiceClient,
    ShardedPlanningService,
)

# A deterministic mixed workload: every endpoint, defaulted and
# explicit payloads, plus requests that must fail with stable error
# bodies (schema violations, malformed JSON) — those must be
# byte-identical through the router too.
WORKLOAD = [
    ("/plan", {"config": "fig10", "ranks": 128}, None),
    ("/plan", {"config": "fig10", "ranks": 128, "strategy": "sequential"}, None),
    ("/plan", {}, None),
    ("/plan", {"strategy": "diagonal"}, None),
    ("/recommend", {"config": "table2", "min_ranks": 64, "max_ranks": 256}, None),
    ("/recommend", {"config": "fig2", "max_ranks": 128}, None),
    ("/recommend", {"config": "mars"}, None),
    ("/simulate", {"config": "fig2", "ranks": 64}, None),
    ("/simulate", {"config": "table2", "ranks": 128, "mapping": "multilevel"}, None),
    ("/simulate", {"ranks": 0}, None),
    ("/verify", {"budget": 2, "seed": 11}, None),
    ("/verify", {"budget": 3, "seed": 5, "oracles": ["conservation"]}, None),
    (None, None, b"{nope"),  # invalid JSON, hashed raw for affinity
    (None, None, b"[1,2,3]"),  # valid JSON, wrong shape
]


def run_workload(client):
    """The workload's (status, body) pairs, in order."""
    results = []
    for path, payload, raw in WORKLOAD:
        if raw is not None:
            reply = client.post("/recommend", raw=raw)
        else:
            reply = client.post(path, payload)
        results.append((reply.status, reply.body))
    return results


@pytest.fixture(scope="module")
def oracle(request):
    """(status, body) pairs from a single-process server."""
    with PlanningServer() as server:
        with ServiceClient(server.url) as client:
            return run_workload(client)


class TestByteDeterminism:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    def test_bodies_identical_to_single_process_oracle(self, oracle, shards):
        with ShardedPlanningService(shards=shards, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                got = run_workload(client)
        for (path, payload, raw), want, have in zip(WORKLOAD, oracle, got):
            assert have == want, (shards, path, payload, raw)

    def test_identical_requests_pin_to_one_shard(self):
        with ShardedPlanningService(shards=4, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                payload = {"config": "fig10", "ranks": 128}
                shards_seen = {
                    client.plan(payload).shard for _ in range(6)
                }
                assert len(shards_seen) == 1
                # Distinct request classes spread over the fleet.
                spread = {
                    client.plan({"config": "fig10", "ranks": 2 ** k}).shard
                    for k in range(4, 10)
                }
                assert len(spread) > 1

    def test_recommend_sweep_windows_share_a_shard(self):
        # /recommend affinity drops the sweep window so overlapping
        # sweeps of one configuration reuse the same warm shard.
        with ShardedPlanningService(shards=4, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                a = client.recommend({"config": "fig2", "max_ranks": 128})
                b = client.recommend(
                    {"config": "fig2", "min_ranks": 64, "max_ranks": 256}
                )
                assert a.shard == b.shard


class TestShardFailure:
    def test_kill_one_shard_mid_load_loses_nothing(self):
        with ShardedPlanningService(shards=2, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                oracle_reply = client.plan({"config": "fig10", "ranks": 128})
                assert oracle_reply.status == 200
                # Seed the supervisor's last-known scrape so the dead
                # generation's counters can be folded, then kill.
                client.metrics()

                stop = threading.Event()
                failures, successes = [], [0]
                lock = threading.Lock()

                def fire():
                    with ServiceClient(svc.url) as c:
                        while not stop.is_set():
                            try:
                                r = c.plan({"config": "fig10", "ranks": 128})
                                if (r.status, r.body) != (
                                    oracle_reply.status, oracle_reply.body
                                ):
                                    failures.append((r.status, r.body[:200]))
                                else:
                                    with lock:
                                        successes[0] += 1
                            except Exception as exc:  # noqa: BLE001
                                failures.append(exc)

                threads = [threading.Thread(target=fire) for _ in range(4)]
                for t in threads:
                    t.start()
                time.sleep(0.5)
                victim = svc.supervisor.handles[0]
                victim.proc.kill()
                # Keep firing through the crash + restart window.
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if victim.proc.restarts >= 1 and victim.up:
                        break
                    time.sleep(0.1)
                time.sleep(0.5)
                stop.set()
                for t in threads:
                    t.join(timeout=30)

                assert not failures, failures[:3]
                assert successes[0] > 0
                assert victim.up, "killed shard never restarted"
                assert victim.proc.restarts == 1
                assert victim.proc.generation == 2

                # The restarted shard serves again (its affinity class).
                r = client.plan({"config": "fig10", "ranks": 128})
                assert (r.status, r.body) == (
                    oracle_reply.status, oracle_reply.body
                )

                # No double-counting: the merged totals never exceed
                # what was actually sent, and settle to an exact value.
                m = client.metrics()
                sent = successes[0] + 2 + 1  # + oracle + post-restart probe
                merged_total = m["metrics"]["service.requests"]["value"]
                assert merged_total <= sent
                # Aggregation is idempotent: scraping again (quiet
                # traffic) returns the same merged counters.
                m2 = client.metrics()
                assert m2["metrics"]["service.requests"]["value"] == merged_total

                # Exactness going forward: K more requests move the
                # merged counter by exactly K.
                for k in range(5):
                    client.plan({"config": "fig10", "ranks": 64 + k})
                m3 = client.metrics()
                assert (
                    m3["metrics"]["service.requests"]["value"]
                    == m2["metrics"]["service.requests"]["value"] + 5
                )
                assert m3["router"]["restarts"] == 1


class TestMetricsFanOut:
    def test_merged_metrics_reconcile_exactly_with_per_shard_scrapes(self):
        with ShardedPlanningService(shards=4, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                for k in range(8):
                    client.plan({"config": "fig10", "ranks": 2 ** (4 + k % 5)})
                client.simulate({"ranks": 64})
                reported = client.metrics()

                # Re-fold from scratch via the supervisor's internal
                # scrapes; with traffic quiet this must match exactly.
                folded = {}
                for handle in svc.supervisor.handles:
                    payload = svc.supervisor.scrape(handle)
                    assert payload is not None
                    folded = merge_snapshots(folded, payload["metrics"])
                assert folded == reported["metrics"]
                assert reported["retired_metrics"] == {}

                # Per-shard requests_served sums to the aggregate.
                assert reported["requests_served"] == sum(
                    info["requests_served"]
                    for info in reported["shards"].values()
                )

    def test_scraping_is_invisible_to_shard_accounting(self):
        with ShardedPlanningService(shards=2, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                client.plan({"ranks": 64})
                first = client.metrics()
                second = client.metrics()
                assert first["metrics"] == second["metrics"]
                assert (
                    first["requests_served"] == second["requests_served"]
                )

    def test_healthz_reflects_fleet(self):
        with ShardedPlanningService(shards=2, warm=False) as svc:
            with ServiceClient(svc.url) as client:
                health = client.healthz().json
                assert health["status"] == "ok"
                assert health["warmed"] is False
                m = client.metrics()
                assert set(m["shards"]) == {"shard-0", "shard-1"}
                assert all(info["up"] for info in m["shards"].values())
                assert m["router"]["live_shards"] == ["shard-0", "shard-1"]
