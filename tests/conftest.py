"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

# Verification options (--update-goldens, --fuzz-budget, --fuzz-seed) and
# their fixtures come from the library's pytest plugin so `repro verify`
# and the test suite share one implementation.
from repro.verify.pytest_plugin import (  # noqa: F401
    fuzz_budget,
    fuzz_seed,
    pytest_addoption,
    update_goldens,
)
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P
from repro.topology.torus import Torus3D
from repro.wrf.grid import DomainSpec


@pytest.fixture
def bgl():
    """The Blue Gene/L machine model."""
    return BLUE_GENE_L


@pytest.fixture
def bgp():
    """The Blue Gene/P machine model."""
    return BLUE_GENE_P


@pytest.fixture
def small_torus():
    """The 4x4x2 torus of the paper's Fig 5/6 example."""
    return Torus3D((4, 4, 2))


@pytest.fixture
def grid_32x32():
    """The 1024-rank virtual process grid of the BG/L experiments."""
    return ProcessGrid(32, 32)


@pytest.fixture
def pacific():
    """The Pacific parent domain (286x307 at 24 km)."""
    return DomainSpec(name="d01", nx=286, ny=307, dx_km=24.0)


@pytest.fixture
def two_siblings(pacific):
    """Two disjoint sibling nests inside the Pacific parent."""
    return [
        DomainSpec("d02", 120, 96, 8.0, parent="d01", parent_start=(10, 10),
                   refinement=3, level=1),
        DomainSpec("d03", 90, 120, 8.0, parent="d01", parent_start=(150, 150),
                   refinement=3, level=1),
    ]


@pytest.fixture
def table2_siblings(pacific):
    """The paper's Table 2 four-sibling configuration."""
    return [
        DomainSpec("d02", 394, 418, 8.0, parent="d01", parent_start=(10, 10),
                   refinement=3, level=1),
        DomainSpec("d03", 232, 202, 8.0, parent="d01", parent_start=(160, 10),
                   refinement=3, level=1),
        DomainSpec("d04", 232, 256, 8.0, parent="d01", parent_start=(10, 160),
                   refinement=3, level=1),
        DomainSpec("d05", 313, 337, 8.0, parent="d01", parent_start=(160, 160),
                   refinement=3, level=1),
    ]
