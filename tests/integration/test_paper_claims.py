"""Integration tests pinning the paper's quantitative claims.

Each test corresponds to a sentence in the paper; tolerances reflect
that our substrate is a calibrated simulator, not the authors' testbed —
the *shape* (who wins, by roughly what factor) is what is asserted.
"""

import pytest

from repro.analysis.experiments import (
    compare_strategies,
    fig5_fig6_mapping_example,
    prediction_error_study,
    sec46_allocation_quality,
    table2_fig9_siblings,
)
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P
from repro.util.stats import mean
from repro.workloads.paper_configs import fig10_domains, table3_configurations
from repro.workloads.regions import pacific_configurations


class TestHeadlineClaims:
    """Abstract: 'up to 33% with topology-oblivious mapping'."""

    def test_improvement_up_to_33pct_bgl(self):
        configs = pacific_configurations(8, seed=2010)
        imps = [compare_strategies(c, 1024, BLUE_GENE_L).improvement
                for c in configs]
        assert max(imps) > 25.0
        assert mean(imps) > 15.0  # paper average: 21.14%

    def test_wait_improvement_up_to_66pct(self):
        """Abstract: 'up to 66% reduction in MPI_Wait times'."""
        configs = pacific_configurations(8, seed=2010)
        imps = [compare_strategies(c, 1024, BLUE_GENE_L).wait_improvement
                for c in configs]
        assert max(imps) > 40.0


class TestSec31Claims:
    def test_prediction_under_6pct(self):
        r = prediction_error_study(num_tests=30)
        assert r.delaunay_mean_error < 6.0

    def test_naive_over_19pct(self):
        r = prediction_error_study(num_tests=30)
        assert r.naive_mean_error > 15.0  # paper: >19% on their testbed


class TestSec43Claims:
    def test_table2_sibling_phase_36pct(self):
        r = table2_fig9_siblings()
        assert r.improvement == pytest.approx(36.0, abs=9.0)

    def test_fig10_improvement_grows_with_scale(self):
        """Fig 10: 1.33% at 1024 -> 20.64% at 8192 for large nests."""
        config = fig10_domains()
        small = compare_strategies(config, 1024, BLUE_GENE_P).improvement
        large = compare_strategies(config, 8192, BLUE_GENE_P).improvement
        assert large > small
        assert large > 15.0

    def test_table3_larger_nests_benefit_less(self):
        configs = table3_configurations()
        imps = [
            mean(compare_strategies(c, r, BLUE_GENE_P).improvement
                 for r in (2048, 8192))
            for c in configs
        ]
        # Monotone decreasing with max nest size.
        assert imps[0] > imps[1] > imps[2]

    def test_more_siblings_more_improvement(self):
        """Sec 4.3.4: 19.43% (2 siblings) vs 24.22% (4 siblings)."""
        from repro.workloads.generator import random_siblings
        from repro.workloads.regions import Configuration, pacific_parent

        parent = pacific_parent()
        imps = {}
        for k in (2, 4):
            vals = []
            for seed in range(4):
                sibs = random_siblings(parent, k, seed=100 + seed)
                cfg = Configuration(f"k{k}", parent, tuple(sibs))
                vals.append(compare_strategies(cfg, 1024, BLUE_GENE_L).improvement)
            imps[k] = mean(vals)
        assert imps[4] > imps[2]


class TestSec44Claims:
    def test_mapping_example_exact(self):
        r = fig5_fig6_mapping_example()
        assert (r.oblivious_0_to_8, r.oblivious_8_to_16) == (2, 3)
        assert r.multilevel_3_to_4 == 1


class TestSec46Claims:
    def test_ours_beats_naive_allocation(self):
        r = sec46_allocation_quality()
        # Paper: naive 9%, ours 17% over default.
        assert r.ours_improvement > r.naive_improvement > 0.0
        assert r.ours_improvement > 15.0
