"""End-to-end determinism contract: ``jobs=N`` is byte-identical to ``jobs=1``.

The acceptance bar for the parallel sweep fabric: the fuzzer, the
capacity planner, and the experiment drivers must produce identical
artifacts — failure lists, rendered reports, result dataclasses, and
merged metrics snapshots — for every worker count. Workers on this
machine may be more numerous than cores; determinism must not depend on
scheduling.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import fig15_speedup
from repro.analysis.planner import recommend
from repro.netsim.engine import reset_route_cache, route_cache_stats
from repro.obs.metrics import registry
from repro.topology.machines import BLUE_GENE_L
from repro.util.rng import make_rng
from repro.verify import fuzz
from repro.verify.fuzzer import _draw_scenarios, failures_for
from repro.workloads.regions import pacific_configurations

BUDGET = 50
SEED = 7


class TestFuzzDeterminism:
    @pytest.fixture(scope="class")
    def reports(self):
        a = fuzz(BUDGET, seed=SEED, jobs=1, collect_metrics=True)
        b = fuzz(BUDGET, seed=SEED, jobs=4, collect_metrics=True)
        return a, b

    def test_identical_failure_lists(self, reports):
        a, b = reports
        assert a.failures == b.failures
        assert a.scenarios_run == b.scenarios_run == BUDGET
        assert a.infeasible_skips == b.infeasible_skips

    def test_identical_renders(self, reports):
        a, b = reports
        assert a.render() == b.render()
        # The render must not leak jobs/metrics — it is part of the
        # cross-worker-count contract.
        assert "jobs" not in a.render()

    def test_identical_merged_metrics_snapshots(self, reports):
        a, b = reports
        assert a.metrics is not None and b.metrics is not None
        assert a.metrics == b.metrics
        assert a.metrics["verify.fuzz.scenarios_run"]["value"] == BUDGET

    def test_merged_route_cache_counters_reconcile(self, reports):
        """Merged worker counters equal a single-process re-run's totals.

        Replays the same scenario stream with the same per-scenario
        reset discipline the capture path uses, accumulating the route
        cache's *internal* hit/miss ints — the merged snapshot's
        registry counters must match them exactly.
        """
        a, _ = reports
        scenarios, _, _ = _draw_scenarios(make_rng(SEED), BUDGET)
        hits = misses = 0
        for scenario in scenarios:
            reset_route_cache()
            registry().reset()
            failures_for(scenario)
            stats = route_cache_stats()
            hits += stats.hits
            misses += stats.misses
        assert a.metrics["netsim.route_cache.hits"]["value"] == hits
        assert a.metrics["netsim.route_cache.misses"]["value"] == misses


class TestPlannerDeterminism:
    def test_recommend_identical_across_jobs(self):
        config = pacific_configurations(1, seed=2010)[0]
        a = recommend(config, BLUE_GENE_L, max_ranks=1024, jobs=1)
        b = recommend(config, BLUE_GENE_L, max_ranks=1024, jobs=2)
        assert a == b
        assert a.render() == b.render()


class TestExperimentDeterminism:
    def test_fig15_identical_across_jobs(self):
        a = fig15_speedup(ranks=(32, 64, 128, 256), jobs=1)
        b = fig15_speedup(ranks=(32, 64, 128, 256), jobs=2)
        assert a == b
        assert a.render() == b.render()
