"""End-to-end pipeline integration tests.

The full paper pipeline: profile -> fit model -> predict -> allocate ->
map -> simulate, plus the numerical model running the same configuration.
"""

import pytest

from repro import (
    BLUE_GENE_L,
    BLUE_GENE_P,
    MultiLevelMapping,
    NestedModel,
    ParallelSiblingsStrategy,
    PerformanceModel,
    ProcessGrid,
    SequentialStrategy,
    simulate_iteration,
)
from repro.core.prediction.basis import generate_candidates, select_basis
from repro.iosim import IoModel
from repro.perfsim.profiling import profile_step_time
from repro.workloads.regions import pacific_configurations


class TestFullPipeline:
    def test_predict_allocate_map_simulate(self):
        """The complete pipeline on one Pacific configuration."""
        # 1. Profile 13 basis domains on a fixed processor count.
        basis = select_basis(generate_candidates(200, seed=7))
        times = [profile_step_time(b, 512, BLUE_GENE_L) for b in basis]
        # 2. Fit the Delaunay model.
        model = PerformanceModel.from_measurements(basis, times)
        # 3. Plan both strategies.
        config = pacific_configurations(1, seed=77)[0]
        grid = ProcessGrid(32, 32)
        seq = SequentialStrategy().plan(grid, config.parent, list(config.siblings))
        par = ParallelSiblingsStrategy(model).plan(
            grid, config.parent, list(config.siblings)
        )
        # 4. Simulate with topology-aware mapping and I/O.
        io = IoModel("split")
        seq_rep = simulate_iteration(seq, BLUE_GENE_L, io_model=io)
        par_rep = simulate_iteration(
            par, BLUE_GENE_L, mapping=MultiLevelMapping(), io_model=io
        )
        assert par_rep.total_time < seq_rep.total_time
        assert par_rep.average_hops < seq_rep.average_hops
        assert par_rep.mpi_wait < seq_rep.mpi_wait

    def test_prediction_drives_balanced_phases(self):
        """Good prediction means siblings finish nearly together — the
        stated goal of the allocation (Sec 1)."""
        basis = select_basis(generate_candidates(200, seed=7))
        times = [profile_step_time(b, 512, BLUE_GENE_L) for b in basis]
        model = PerformanceModel.from_measurements(basis, times)
        config = pacific_configurations(3, seed=5)[2]
        grid = ProcessGrid(32, 32)
        par = ParallelSiblingsStrategy(model).plan(
            grid, config.parent, list(config.siblings)
        )
        rep = simulate_iteration(par, BLUE_GENE_L)
        phases = [s.phase_time for s in rep.siblings]
        assert max(phases) / min(phases) < 1.6

    def test_simulation_and_numerics_agree_on_structure(self):
        """The numerical model and the cost model describe the same run:
        same sibling count, same steps per iteration."""
        config = pacific_configurations(1, seed=123)[0]
        # Scale the domains down so the PDE run is quick.
        parent = config.parent
        small_parent = type(parent)(
            name="d01", nx=72, ny=76, dx_km=parent.dx_km
        )
        small_sibs = []
        for i, s in enumerate(config.siblings):
            small_sibs.append(type(s)(
                name=s.name, nx=30, ny=27, dx_km=s.dx_km, parent="d01",
                parent_start=(2 + 12 * i, 3 + 12 * i), refinement=3, level=1,
            ))
        model = NestedModel(small_parent, small_sibs, seed=5)
        model.run(2)
        grid = ProcessGrid(8, 8)
        plan = SequentialStrategy().plan(grid, small_parent, small_sibs)
        rep = simulate_iteration(plan, BLUE_GENE_L)
        assert len(rep.siblings) == len(model.sibling_names)
        for srep, name in zip(rep.siblings, model.sibling_names):
            assert srep.name == name
            assert srep.steps_per_iteration == model.nests[name].spec.refinement


class TestCrossMachine:
    def test_bgp_faster_than_bgl(self):
        config = pacific_configurations(1, seed=9)[0]
        grid = ProcessGrid(32, 32)
        plan = SequentialStrategy().plan(grid, config.parent, list(config.siblings))
        l = simulate_iteration(plan, BLUE_GENE_L)
        p = simulate_iteration(plan, BLUE_GENE_P)
        assert p.integration_time < l.integration_time

    def test_scaling_reduces_time_up_to_saturation(self):
        config = pacific_configurations(1, seed=10)[0]
        times = []
        for ranks in (64, 256, 1024):
            px = py = int(ranks ** 0.5)
            plan = SequentialStrategy().plan(
                ProcessGrid(px, py), config.parent, list(config.siblings)
            )
            times.append(simulate_iteration(plan, BLUE_GENE_P).integration_time)
        assert times[0] > times[1] > times[2]
