"""Tracing must not change what it measures: Table 1 under the tracer.

Runs the full Table 1 sweep (the same reduced configuration the golden
snapshot pins) with the global tracer enabled, then makes two claims:

1. the published result is unchanged — it diffs against
   ``tests/golden/table1.json`` with **zero relative tolerance** and the
   1e-9 absolute floor, and
2. the trace is sufficient — every (machine, ranks) row of the table can
   be *recomputed from the per-phase profile records alone* to within
   1e-9, because each phase record carries the exact simulator floats.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.report import phase_breakdown
from repro.obs.trace import tracing
from repro.util.stats import mean, percent_improvement
from repro.verify.golden import canonicalize, diff_values

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "table1.json"


def test_traced_table1_matches_golden_and_reconciles():
    from repro.analysis.experiments import table1_wait_improvement

    golden = json.loads(GOLDEN.read_text())
    num_configs = golden["data"]["num_configs"]
    rows = golden["data"]["rows"]

    with tracing() as buf:
        result = table1_wait_improvement(num_configs=num_configs)

    # 1. Tracing does not perturb the experiment result.
    assert diff_values(
        golden["data"], canonicalize(result), rel_tol=0.0, abs_tol=1e-9
    ) == []

    # 2. The trace alone reconstructs the table. compare_strategies runs
    # sequential then parallel per configuration, so profiles pair up in
    # emission order.
    profiles = phase_breakdown(buf.records)
    assert len(profiles) == 2 * num_configs * len(rows)
    improvements = {}
    for seq, par in zip(profiles[0::2], profiles[1::2]):
        assert seq.strategy == "sequential"
        assert par.strategy == "parallel"
        assert (seq.machine, seq.ranks) == (par.machine, par.ranks)
        imp = (
            0.0
            if seq.mpi_wait <= 0
            else percent_improvement(seq.mpi_wait, par.mpi_wait)
        )
        improvements.setdefault((seq.machine, seq.ranks), []).append(imp)

    assert set(improvements) == {(m, r) for m, r, _, _ in rows}
    for machine, ranks, avg, mx in rows:
        imps = improvements[(machine, ranks)]
        assert len(imps) == num_configs
        assert abs(mean(imps) - avg) <= 1e-9
        assert abs(max(imps) - mx) <= 1e-9
