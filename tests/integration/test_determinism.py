"""Determinism guarantees: same inputs, same outputs, every time.

Reproducible scheduling is a practical requirement (the paper's mapfiles
are generated offline and reused across runs), so every stage of the
pipeline must be deterministic.
"""

import pytest

from repro.analysis.experiments.common import fitted_model
from repro.core.mapping.base import SlotSpace
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.scheduler.strategies import ParallelSiblingsStrategy
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.topology.torus import Torus3D
from repro.workloads.paper_configs import table2_domains


@pytest.fixture(scope="module")
def config():
    return table2_domains()


class TestPipelineDeterminism:
    def test_plans_identical(self, config):
        grid = ProcessGrid(32, 32)
        model = fitted_model(BLUE_GENE_L)
        a = ParallelSiblingsStrategy(model).plan(
            grid, config.parent, list(config.siblings))
        b = ParallelSiblingsStrategy(model).plan(
            grid, config.parent, list(config.siblings))
        assert a.rects == b.rects
        assert a.ratios == b.ratios

    def test_mappings_identical(self, config):
        grid = ProcessGrid(32, 32)
        space = SlotSpace(Torus3D((8, 8, 8)), 2)
        plan = ParallelSiblingsStrategy().plan(
            grid, config.parent, list(config.siblings),
            ratios=[s.points for s in config.siblings],
        )
        for M in (PartitionMapping, MultiLevelMapping):
            a = M().place(grid, space, list(plan.rects))
            b = M().place(grid, space, list(plan.rects))
            assert a.slots == b.slots

    def test_simulation_identical(self, config):
        grid = ProcessGrid(32, 32)
        plan = ParallelSiblingsStrategy().plan(
            grid, config.parent, list(config.siblings),
            ratios=[s.points for s in config.siblings],
        )
        a = simulate_iteration(plan, BLUE_GENE_L, mapping=MultiLevelMapping())
        b = simulate_iteration(plan, BLUE_GENE_L, mapping=MultiLevelMapping())
        assert a.integration_time == b.integration_time
        assert a.mpi_wait == b.mpi_wait
        assert a.average_hops == b.average_hops


class TestScaleUpPrediction:
    """Paper Sec 3.1: 'We also tested by scaling up the number of points
    in each sibling, while retaining the aspect ratio' — out-of-hull
    queries must preserve relative times."""

    def test_scaled_siblings_keep_relative_order(self, config):
        model = fitted_model(BLUE_GENE_L)
        siblings = list(config.siblings)
        base = model.predict_ratios(siblings)
        scaled = [s.scaled(4.0) for s in siblings]
        big = model.predict_ratios(scaled)
        # The paper calls the out-of-hull scale-down a "first order
        # estimate": the ranking must survive exactly, and shares stay
        # within ~30% relative (linear extrapolation drops the constant
        # per-step term, over-weighting the largest sibling at 4x).
        assert sorted(range(4), key=lambda i: base[i]) == sorted(
            range(4), key=lambda i: big[i]
        )
        for b, s in zip(base, big):
            assert s == pytest.approx(b, rel=0.30)

    def test_scaled_absolute_times_grow_linearly(self, config):
        model = fitted_model(BLUE_GENE_L)
        sib = config.siblings[0]
        t1 = model.predict(sib)
        t4 = model.predict(sib.scaled(4.0))
        assert t4 / t1 == pytest.approx(4.0, rel=0.15)

    def test_aspect_preserved_under_scaling(self, config):
        sib = config.siblings[0]
        assert sib.scaled(9.0).aspect_ratio == pytest.approx(
            sib.aspect_ratio, rel=0.02
        )
