"""Hypothesis parity: streaming/sparse routing vs one-shot dense vs scalar.

The streaming engine's whole claim is *bit-identicality*: chunked
expansion under any ``max_expand_hops``, sparse accumulation, and the
one-shot dense path must produce the same per-link loads, the same
round estimate, and the same route-cache digests. These suites drive all
of that against random exchanges, plus the overflow guards at the dtype
boundaries (>2^31 widens, never wraps; >=2^53 raises).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.contention import round_time
from repro.netsim.engine import (
    EXACT_BYTES_LIMIT,
    SCALAR,
    VECTOR,
    LinkLoadVector,
    active_backend,
    reset_route_cache,
    route_cache_stats,
    route_exchange_streamed,
)
from repro.runtime.halo import HaloBatch, HaloMessage
from repro.topology.machines import BLUE_GENE_L
from repro.topology.torus import Torus3D


@st.composite
def exchange_case(draw):
    """A random (torus, placement, message set) triple."""
    dims = (
        draw(st.integers(1, 5)),
        draw(st.integers(1, 5)),
        draw(st.integers(1, 6)),
    )
    torus = Torus3D(dims)
    n_ranks = draw(st.integers(1, 16))
    nodes = [
        torus.coord_of(r)
        for r in draw(
            st.lists(
                st.integers(0, torus.num_nodes - 1),
                min_size=n_ranks,
                max_size=n_ranks,
            )
        )
    ]
    rank = st.integers(0, n_ranks - 1)
    msgs = draw(
        st.lists(
            st.builds(HaloMessage, rank, rank, st.integers(1, 10**6)),
            min_size=0,
            max_size=24,
        )
    )
    return torus, nodes, msgs


def one_shot(torus, nodes, msgs):
    """The reference dense one-shot result (hop limit beyond any case)."""
    return route_exchange_streamed(
        torus, nodes, msgs, max_expand_hops=10**9, sparse=False
    )


@given(exchange_case(), st.integers(1, 40), st.booleans())
@settings(max_examples=200, deadline=None)
def test_streamed_loads_bit_identical(case, max_hops, sparse):
    torus, nodes, msgs = case
    _, ref_loads = one_shot(torus, nodes, msgs)
    routed, loads = route_exchange_streamed(
        torus, nodes, msgs, max_expand_hops=max_hops, sparse=sparse
    )
    assert loads.is_sparse == sparse
    assert np.array_equal(loads.array, ref_loads.array)
    assert loads.max_load() == ref_loads.max_load()
    assert loads.total_bytes() == ref_loads.total_bytes()
    assert loads.num_loaded_links() == ref_loads.num_loaded_links()
    assert loads.as_dict() == ref_loads.as_dict()


@given(exchange_case(), st.integers(1, 40), st.booleans())
@settings(max_examples=150, deadline=None)
def test_streamed_round_estimate_bit_identical(case, max_hops, sparse):
    torus, nodes, msgs = case
    ref_routed, ref_loads = one_shot(torus, nodes, msgs)
    ref = VECTOR.round_estimate(ref_routed, ref_loads, BLUE_GENE_L)
    routed, loads = route_exchange_streamed(
        torus, nodes, msgs, max_expand_hops=max_hops, sparse=sparse
    )
    assert VECTOR.round_estimate(routed, loads, BLUE_GENE_L) == ref


@given(exchange_case(), st.integers(1, 40), st.booleans())
@settings(max_examples=100, deadline=None)
def test_streamed_matches_scalar_oracle(case, max_hops, sparse):
    torus, nodes, msgs = case
    routed_s, loads_s = SCALAR.route_exchange(torus, nodes, msgs)
    routed, loads = route_exchange_streamed(
        torus, nodes, msgs, max_expand_hops=max_hops, sparse=sparse
    )
    assert loads.as_dict() == dict(loads_s.items())
    assert round_time(routed_s, loads_s, BLUE_GENE_L) == VECTOR.round_estimate(
        routed, loads, BLUE_GENE_L
    )
    for i, scalar_msg in enumerate(routed_s):
        assert routed.message_links(i) == list(scalar_msg.links)


@given(exchange_case(), st.integers(1, 20))
@settings(max_examples=100, deadline=None)
def test_streamed_chunk_iteration_consistent(case, max_hops):
    """iter_link_chunks re-expansion equals the stored one-shot arrays."""
    torus, nodes, msgs = case
    ref, _ = one_shot(torus, nodes, msgs)
    routed, _ = route_exchange_streamed(
        torus, nodes, msgs, max_expand_hops=max_hops, sparse=False
    )
    chunks = list(routed.iter_link_chunks())
    ids = np.concatenate([c[3] for c in chunks]) if chunks else np.zeros(0)
    assert np.array_equal(ids, ref.pair_link_ids)
    # Chunk boundaries tile the pair range exactly.
    assert chunks[0][0] == 0
    assert chunks[-1][1] == len(routed.pair_hops)
    for (_, hi_a, _, _), (lo_b, _, _, _) in zip(chunks, chunks[1:]):
        assert hi_a == lo_b


def test_backend_env_selects_engine(monkeypatch):
    monkeypatch.setenv("REPRO_NETSIM", "scalar")
    assert active_backend() is SCALAR
    monkeypatch.setenv("REPRO_NETSIM", "vector")
    assert active_backend() is VECTOR


@pytest.mark.parametrize("backend_env", ["vector", "scalar"])
def test_round_time_identical_under_either_backend(monkeypatch, backend_env):
    """The same exchange prices identically whichever engine env picks."""
    monkeypatch.setenv("REPRO_NETSIM", backend_env)
    torus = Torus3D((3, 3, 2))
    nodes = [torus.coord_of(i % torus.num_nodes) for i in range(12)]
    msgs = [HaloMessage(i, (i * 5 + 1) % 12, 1000 + i) for i in range(12)]
    engine = active_backend()
    routed, loads = engine.route_exchange(torus, nodes, msgs)
    est = engine.round_estimate(routed, loads, BLUE_GENE_L)
    ref_r, ref_l = SCALAR.route_exchange(torus, nodes, msgs)
    assert est == round_time(ref_r, ref_l, BLUE_GENE_L)


# ----------------------------------------------------------------------
# Route-cache digests
# ----------------------------------------------------------------------
def test_list_and_batch_share_cache_entries():
    torus = Torus3D((2, 3, 4))
    nodes = [torus.coord_of(i % torus.num_nodes) for i in range(8)]
    msgs = [HaloMessage(i, (i + 3) % 8, 512 * (i + 1)) for i in range(8)]
    batch = HaloBatch.from_messages(msgs)
    reset_route_cache()
    VECTOR.route_exchange(torus, nodes, msgs)
    VECTOR.route_exchange(torus, nodes, batch)
    stats = route_cache_stats()
    assert (stats.hits, stats.misses) == (1, 1)


def test_budget_env_does_not_change_cache_digest(monkeypatch):
    """Streaming knobs change representation, never cache identity."""
    torus = Torus3D((4, 4, 2))
    nodes = [torus.coord_of(i % torus.num_nodes) for i in range(16)]
    msgs = [HaloMessage(i, (i + 5) % 16, 4096) for i in range(16)]
    reset_route_cache()
    VECTOR.route_exchange(torus, nodes, msgs)
    monkeypatch.setenv("REPRO_NETSIM_MEM_MB", "1")
    monkeypatch.setenv("REPRO_NETSIM_SPARSE", "always")
    VECTOR.route_exchange(torus, nodes, msgs)
    stats = route_cache_stats()
    assert (stats.hits, stats.misses) == (1, 1)


# ----------------------------------------------------------------------
# Dtype boundaries and overflow guards
# ----------------------------------------------------------------------
def test_loads_above_int32_widen_never_wrap():
    torus = Torus3D((2, 1, 1))
    nodes = [torus.coord_of(0), torus.coord_of(1)]
    big = 2**32 + 17  # far past int32, exact in int64 and float64
    msgs = [HaloMessage(0, 1, big)]
    for sparse in (False, True):
        _, loads = route_exchange_streamed(
            torus, nodes, msgs, max_expand_hops=1, sparse=sparse
        )
        assert loads.max_load() == big
        assert loads.total_bytes() == big
        assert loads.array.dtype == np.int64


def test_loads_at_exact_limit_raise():
    torus = Torus3D((2, 1, 1))
    nodes = [torus.coord_of(0), torus.coord_of(1)]
    msgs = [HaloMessage(0, 1, EXACT_BYTES_LIMIT)]
    with pytest.raises(OverflowError, match="2\\*\\*53"):
        VECTOR.route_exchange(torus, nodes, msgs)
    with pytest.raises(OverflowError):
        route_exchange_streamed(torus, nodes, msgs, max_expand_hops=1, sparse=True)


def test_loads_just_below_exact_limit_pass():
    torus = Torus3D((2, 1, 1))
    nodes = [torus.coord_of(0), torus.coord_of(1)]
    msgs = [HaloMessage(0, 1, EXACT_BYTES_LIMIT - 1)]
    reset_route_cache()
    _, loads = VECTOR.route_exchange(torus, nodes, msgs)
    assert loads.max_load() == EXACT_BYTES_LIMIT - 1


def test_index_columns_are_narrow():
    """Dtype audit: retained index columns are int32 on small tori."""
    torus = Torus3D((3, 3, 3))
    nodes = [torus.coord_of(i % torus.num_nodes) for i in range(9)]
    msgs = [HaloMessage(i, (i + 2) % 9, 100) for i in range(9)]
    reset_route_cache()
    routed, _ = VECTOR.route_exchange(torus, nodes, msgs)
    assert routed.hops.dtype == np.int32
    assert routed.pair_inverse.dtype == np.int32
    assert routed.pair_hops.dtype == np.int32
    assert routed.pair_link_ids.dtype == np.int32
    # Byte columns stay int64.
    assert routed.nbytes.dtype == np.int64


# ----------------------------------------------------------------------
# Sparse representation behaviour
# ----------------------------------------------------------------------
def test_sparse_dense_merge_mixed():
    torus = Torus3D((2, 2, 2))
    nodes = [torus.coord_of(i) for i in range(8)]
    msgs_a = [HaloMessage(0, 3, 100)]
    msgs_b = [HaloMessage(1, 6, 250)]
    _, dense_a = route_exchange_streamed(torus, nodes, msgs_a, sparse=False)
    _, sparse_b = route_exchange_streamed(torus, nodes, msgs_b, sparse=True)
    _, dense_b = route_exchange_streamed(torus, nodes, msgs_b, sparse=False)

    merged_dense = LinkLoadVector(torus)
    merged_dense.merge(dense_a)
    merged_dense.merge(dense_b)

    merged_mixed = LinkLoadVector.empty(torus, sparse=True)
    merged_mixed.merge(sparse_b)
    merged_mixed.merge(dense_a)  # representation flip: densify

    assert np.array_equal(merged_mixed.array, merged_dense.array)
    assert merged_mixed.total_bytes() == merged_dense.total_bytes()


def test_sparse_lookup_missing_links_are_zero():
    torus = Torus3D((4, 1, 1))
    loads = LinkLoadVector.from_link_totals(
        torus, np.asarray([2, 7], dtype=np.int64), np.asarray([10, 20], dtype=np.int64)
    )
    out = loads.lookup(np.asarray([0, 2, 5, 7, 23], dtype=np.int64))
    assert out.tolist() == [0, 10, 0, 20, 0]
    empty = LinkLoadVector.empty(torus, sparse=True)
    assert empty.lookup(np.asarray([3, 4], dtype=np.int64)).tolist() == [0, 0]
    assert empty.max_load() == 0 and empty.total_bytes() == 0
