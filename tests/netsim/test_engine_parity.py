"""Hypothesis parity: the vectorized engine vs the scalar oracle.

Every shared metric must agree *exactly* — routes link by link, per-link
loads, ``max_link_bytes``, ``average_hops``, and ``round_time`` — across
random tori (including size-1 and even rings), random placements
(including co-located ranks), and random message sets (including
``src == dst`` intra-node messages).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.contention import round_time
from repro.netsim.engine import SCALAR, VECTOR
from repro.netsim.metrics import traffic_metrics
from repro.netsim.traffic import route_messages
from repro.runtime.halo import HaloMessage
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P
from repro.topology.torus import Torus3D


@st.composite
def exchange_case(draw):
    """A random (torus, placement, message set) triple."""
    dims = (
        draw(st.integers(1, 5)),
        draw(st.integers(1, 5)),
        draw(st.integers(1, 6)),
    )
    torus = Torus3D(dims)
    n_ranks = draw(st.integers(1, 16))
    # Ranks land on arbitrary nodes, collisions allowed (co-located ranks).
    nodes = [
        torus.coord_of(r)
        for r in draw(
            st.lists(
                st.integers(0, torus.num_nodes - 1),
                min_size=n_ranks,
                max_size=n_ranks,
            )
        )
    ]
    rank = st.integers(0, n_ranks - 1)
    msgs = draw(
        st.lists(
            st.builds(HaloMessage, rank, rank, st.integers(1, 10**6)),
            min_size=0,
            max_size=24,
        )
    )
    return torus, nodes, msgs


def both_engines(torus, nodes, msgs):
    routed_s, loads_s = SCALAR.route_exchange(torus, nodes, msgs)
    routed_v, loads_v = VECTOR.route_exchange(torus, nodes, msgs)
    return routed_s, loads_s, routed_v, loads_v


@given(exchange_case())
@settings(max_examples=200, deadline=None)
def test_routes_identical_link_by_link(case):
    torus, nodes, msgs = case
    routed_s, _, routed_v, _ = both_engines(torus, nodes, msgs)
    assert routed_v.num_messages == len(routed_s) == len(msgs)
    for i, scalar_msg in enumerate(routed_s):
        links_v = routed_v.message_links(i)
        assert links_v == list(scalar_msg.links)
        # Route length is the minimal torus distance (dimension-ordered
        # routing never detours).
        distance = torus.distance(nodes[msgs[i].src], nodes[msgs[i].dst])
        assert int(routed_v.hops[i]) == scalar_msg.hops == distance


@given(exchange_case())
@settings(max_examples=200, deadline=None)
def test_link_loads_identical(case):
    torus, nodes, msgs = case
    _, loads_s, _, loads_v = both_engines(torus, nodes, msgs)
    assert loads_v.as_dict() == dict(loads_s.items())
    assert loads_v.max_load() == loads_s.max_load()
    assert loads_v.total_bytes() == loads_s.total_bytes()
    assert loads_v.num_loaded_links() == loads_s.num_loaded_links()


@given(exchange_case(), st.sampled_from([BLUE_GENE_L, BLUE_GENE_P]))
@settings(max_examples=200, deadline=None)
def test_round_time_bit_identical(case, machine):
    torus, nodes, msgs = case
    routed_s, loads_s, routed_v, loads_v = both_engines(torus, nodes, msgs)
    est_s = round_time(routed_s, loads_s, machine)
    est_v = VECTOR.round_estimate(routed_v, loads_v, machine)
    # Exact float equality: the vector kernel reproduces the scalar
    # operation order.
    assert est_v == est_s


@given(exchange_case())
@settings(max_examples=200, deadline=None)
def test_traffic_metrics_identical(case):
    torus, nodes, msgs = case
    routed_s, loads_s, routed_v, loads_v = both_engines(torus, nodes, msgs)
    assert traffic_metrics(routed_v, loads_v) == traffic_metrics(routed_s, loads_s)


class TestFuzzedScenarioParity:
    """Parity on exchanges drawn from the verification scenario generator.

    The hypothesis cases above explore tiny hand-bounded tori; these pull
    whole-system scenarios (real machines, mapped placements, plan-shaped
    halo exchanges) from ``repro.verify``, so parity coverage grows with
    the scenario space instead of staying at the hand-picked cases.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_scenario_parity(self, seed):
        import dataclasses

        from repro.verify import random_scenario
        from repro.verify.oracles import check_netsim_parity

        scenario = random_scenario(seed)
        # Cap the rank count so the scalar oracle stays cheap; shapes,
        # machines, mappings, and placements still come from the generator.
        scenario = dataclasses.replace(scenario, ranks=min(scenario.ranks, 256))
        run = scenario.build()
        check_netsim_parity(run)  # raises OracleViolation on divergence

    def test_generated_exchange_metrics_identical(self):
        from repro.netsim.metrics import traffic_metrics
        from repro.runtime.halo import HaloSpec, halo_messages
        from repro.verify import Scenario

        run = Scenario(
            machine="bgp", ranks=64, num_siblings=2, parent_nx=250,
            parent_ny=240, sibling_seed=12, mapping="multilevel",
        ).build()
        torus = run.placement.space.torus
        nodes = run.placement.nodes()
        a = run.par_plan.assignments[0]
        msgs = halo_messages(
            run.grid, a.rect, a.domain.nx, a.domain.ny, HaloSpec()
        )
        routed_s, loads_s = SCALAR.route_exchange(torus, nodes, msgs)
        routed_v, loads_v = VECTOR.route_exchange(torus, nodes, msgs)
        assert traffic_metrics(routed_s, loads_s) == traffic_metrics(
            routed_v, loads_v
        )


class TestKnownCases:
    def test_even_ring_tie_breaks_positive(self):
        """Half way around an even ring routes in the + direction."""
        torus = Torus3D((4, 1, 1))
        nodes = [(0, 0, 0), (2, 0, 0)]
        msgs = [HaloMessage(0, 1, 10)]
        routed_v, _ = VECTOR.route_exchange(torus, nodes, msgs)
        links = routed_v.message_links(0)
        assert [(l.src, l.dim, l.direction) for l in links] == [
            ((0, 0, 0), 0, 1),
            ((1, 0, 0), 0, 1),
        ]
        routed_s, _ = route_messages(torus, nodes, msgs)
        assert links == list(routed_s[0].links)

    def test_intra_node_message_no_links(self):
        torus = Torus3D((3, 3, 3))
        nodes = [(1, 1, 1), (1, 1, 1)]
        routed_v, loads_v = VECTOR.route_exchange(
            torus, nodes, [HaloMessage(0, 1, 99)]
        )
        assert int(routed_v.hops[0]) == 0
        assert loads_v.total_bytes() == 0

    def test_shared_pair_routes_deduplicated(self):
        """Messages between the same node pair share one stored route."""
        torus = Torus3D((4, 4, 4))
        nodes = [(0, 0, 0), (0, 0, 0), (2, 1, 0), (2, 1, 0)]
        msgs = [HaloMessage(0, 2, 10), HaloMessage(1, 3, 20)]
        routed_v, loads_v = VECTOR.route_exchange(torus, nodes, msgs)
        assert len(routed_v.pair_hops) == 1
        assert routed_v.message_links(0) == routed_v.message_links(1)
        # Both messages' bytes accumulate on the shared route.
        assert loads_v.max_load() == 30
