"""Tests for the torus collective cost models."""

import math

import pytest

from repro.netsim.collectives import (
    allreduce_time,
    barrier_time,
    broadcast_time,
    step_collectives_estimate,
    tree_edge_hops,
)
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P
from repro.topology.torus import Torus3D


@pytest.fixture
def midplane():
    return Torus3D((8, 8, 8))


class TestTreeEdgeHops:
    def test_quarter_diameter(self, midplane):
        assert tree_edge_hops(midplane) == pytest.approx(12 / 4)

    def test_at_least_one(self):
        assert tree_edge_hops(Torus3D((2, 1, 1))) == 1.0


class TestBarrier:
    def test_grows_logarithmically(self, midplane):
        t64 = barrier_time(midplane, 64, BLUE_GENE_L)
        t1024 = barrier_time(midplane, 1024, BLUE_GENE_L)
        assert t1024 / t64 == pytest.approx(math.log2(1024) / math.log2(64))

    def test_single_participant_free(self, midplane):
        assert barrier_time(midplane, 1, BLUE_GENE_L) == 0.0


class TestBroadcast:
    def test_payload_matters(self, midplane):
        small = broadcast_time(midplane, 512, 64, BLUE_GENE_L)
        big = broadcast_time(midplane, 512, 1e6, BLUE_GENE_L)
        assert big > small

    def test_zero_bytes_latency_only(self, midplane):
        t = broadcast_time(midplane, 512, 0.0, BLUE_GENE_L)
        rounds = math.ceil(math.log2(512))
        expected = rounds * (
            BLUE_GENE_L.software_latency + 3.0 * BLUE_GENE_L.per_hop_latency
        )
        assert t == pytest.approx(expected)

    def test_negative_bytes_rejected(self, midplane):
        with pytest.raises(ValueError):
            broadcast_time(midplane, 512, -1.0, BLUE_GENE_L)


class TestAllreduce:
    def test_bgp_faster_than_bgl(self, midplane):
        l = allreduce_time(midplane, 1024, 64, BLUE_GENE_L)
        p = allreduce_time(midplane, 1024, 64, BLUE_GENE_P)
        assert p < l

    def test_rounds_scale(self, midplane):
        t2 = allreduce_time(midplane, 2, 64, BLUE_GENE_L)
        t4 = allreduce_time(midplane, 4, 64, BLUE_GENE_L)
        assert t4 == pytest.approx(2 * t2)


class TestCalibrationAgreement:
    def test_matches_calibrated_constant_in_order_of_magnitude(self, midplane):
        """The machine's calibrated collective term and the
        first-principles estimate agree within a factor of ~100 (the
        calibrated term also absorbs load-imbalance effects)."""
        for machine in (BLUE_GENE_L, BLUE_GENE_P):
            calibrated = machine.collective_cost * math.log2(1024)
            estimated = step_collectives_estimate(midplane, 1024, machine)
            assert estimated < calibrated  # pure network is the floor
            assert calibrated / estimated < 200
