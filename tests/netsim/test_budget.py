"""The budget module: env parsing and derived limits."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.budget import (
    DEFAULT_MEM_MB,
    EXPANSION_BYTES_PER_HOP,
    expansion_hop_limit,
    mem_budget_bytes,
    placement_cache_budget_bytes,
    route_cache_budget_bytes,
    sparse_mode,
)


def test_default_budget(monkeypatch):
    monkeypatch.delenv("REPRO_NETSIM_MEM_MB", raising=False)
    assert mem_budget_bytes() == int(DEFAULT_MEM_MB * 2**20)


def test_budget_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_NETSIM_MEM_MB", "64")
    assert mem_budget_bytes() == 64 * 2**20


@pytest.mark.parametrize("raw", ["garbage", "-1", "0", "nan"])
def test_budget_rejects_junk(monkeypatch, raw):
    monkeypatch.setenv("REPRO_NETSIM_MEM_MB", raw)
    with pytest.raises(ConfigurationError):
        mem_budget_bytes()


def test_hop_limit_scales_with_budget():
    small = expansion_hop_limit(2**20)
    large = expansion_hop_limit(2**30)
    assert small < large
    assert large == (2**30 // 2) // EXPANSION_BYTES_PER_HOP


def test_hop_limit_floor():
    # Tiny budgets never chunk below the vectorization floor.
    assert expansion_hop_limit(1) >= 1024


def test_sparse_mode_forced(monkeypatch):
    monkeypatch.setenv("REPRO_NETSIM_SPARSE", "always")
    assert sparse_mode(1)
    monkeypatch.setenv("REPRO_NETSIM_SPARSE", "never")
    assert not sparse_mode(10**12)
    monkeypatch.setenv("REPRO_NETSIM_SPARSE", "bogus")
    with pytest.raises(ConfigurationError):
        sparse_mode(1)


def test_sparse_mode_auto(monkeypatch):
    monkeypatch.delenv("REPRO_NETSIM_SPARSE", raising=False)
    budget = 16 * 2**20
    # Dense vector within its share: stay dense.
    assert not sparse_mode(1000, budget)
    # A dense vector bigger than the share flips sparse.
    assert sparse_mode(10**7, budget)


def test_cache_budgets_derive_from_total(monkeypatch):
    monkeypatch.delenv("REPRO_NETSIM_ROUTE_CACHE_MB", raising=False)
    monkeypatch.delenv("REPRO_PLACEMENT_CACHE_MB", raising=False)
    monkeypatch.setenv("REPRO_NETSIM_MEM_MB", "128")
    assert route_cache_budget_bytes() == 32 * 2**20
    assert placement_cache_budget_bytes() == 16 * 2**20


def test_cache_budget_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_NETSIM_ROUTE_CACHE_MB", "7")
    monkeypatch.setenv("REPRO_PLACEMENT_CACHE_MB", "3")
    assert route_cache_budget_bytes() == 7 * 2**20
    assert placement_cache_budget_bytes() == 3 * 2**20
