"""Tests for message routing and link loads."""

import pytest

from repro.netsim.traffic import LinkLoads, route_messages
from repro.runtime.halo import HaloMessage
from repro.topology.torus import Link, Torus3D


@pytest.fixture
def ring():
    return Torus3D((4, 1, 1))


class TestLinkLoads:
    def test_accumulate(self):
        loads = LinkLoads()
        link = Link((0, 0, 0), 0, 1)
        loads.add(link, 100)
        loads.add(link, 50)
        assert loads.load(link) == 150
        assert loads.max_load() == 150
        assert loads.total_bytes() == 150
        assert loads.num_loaded_links() == 1

    def test_unloaded_link_zero(self):
        loads = LinkLoads()
        assert loads.load(Link((0, 0, 0), 0, 1)) == 0
        assert loads.max_load() == 0

    def test_merge(self):
        a, b = LinkLoads(), LinkLoads()
        link = Link((0, 0, 0), 0, 1)
        a.add(link, 10)
        b.add(link, 20)
        b.add(Link((1, 0, 0), 0, 1), 5)
        a.merge(b)
        assert a.load(link) == 30
        assert a.total_bytes() == 35


class TestRouteMessages:
    def test_neighbour_message_single_link(self, ring):
        placement = [(0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0)]
        routed, loads = route_messages(ring, placement, [HaloMessage(0, 1, 100)])
        assert routed[0].hops == 1
        assert loads.total_bytes() == 100

    def test_intra_node_message_no_traffic(self, ring):
        placement = [(0, 0, 0), (0, 0, 0)]
        routed, loads = route_messages(ring, placement, [HaloMessage(0, 1, 100)])
        assert routed[0].hops == 0
        assert loads.total_bytes() == 0

    def test_multi_hop_loads_every_link(self, ring):
        placement = [(0, 0, 0), (2, 0, 0)]
        routed, loads = route_messages(ring, placement, [HaloMessage(0, 1, 10)])
        assert routed[0].hops == 2
        assert loads.num_loaded_links() == 2
        assert loads.max_load() == 10

    def test_shared_link_accumulates(self, ring):
        placement = [(0, 0, 0), (1, 0, 0), (2, 0, 0)]
        msgs = [HaloMessage(0, 2, 10), HaloMessage(1, 2, 20)]
        routed, loads = route_messages(ring, placement, msgs)
        # The link 1->2 carries both messages.
        shared = Link((1, 0, 0), 0, 1)
        assert loads.load(shared) == 30

    def test_hop_bytes_identity(self, ring):
        placement = [(0, 0, 0), (2, 0, 0), (3, 0, 0)]
        msgs = [HaloMessage(0, 1, 10), HaloMessage(1, 2, 7)]
        routed, loads = route_messages(ring, placement, msgs)
        hop_bytes = sum(m.hops * m.nbytes for m in routed)
        assert loads.total_bytes() == hop_bytes
