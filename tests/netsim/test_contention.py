"""Tests for the contention-aware message/round cost model."""

import pytest

from repro.netsim.contention import message_time, round_time
from repro.netsim.traffic import route_messages
from repro.runtime.halo import HaloMessage
from repro.topology.machines import BLUE_GENE_L
from repro.topology.torus import Torus3D


@pytest.fixture
def ring():
    return Torus3D((8, 1, 1))


def route(ring, placement, msgs):
    return route_messages(ring, placement, msgs)


class TestMessageTime:
    def test_latency_only_for_intra_node(self, ring):
        routed, loads = route(ring, [(0, 0, 0), (0, 0, 0)], [HaloMessage(0, 1, 1000)])
        t = message_time(routed[0], loads, BLUE_GENE_L)
        assert t == pytest.approx(BLUE_GENE_L.software_latency)

    def test_uncontended_bandwidth(self, ring):
        routed, loads = route(ring, [(0, 0, 0), (1, 0, 0)], [HaloMessage(0, 1, 154_000)])
        t = message_time(routed[0], loads, BLUE_GENE_L)
        expected = (
            BLUE_GENE_L.software_latency
            + BLUE_GENE_L.per_hop_latency
            + 154_000 / BLUE_GENE_L.link_bandwidth
        )
        assert t == pytest.approx(expected)

    def test_contention_slows_message(self, ring):
        placement = [(0, 0, 0), (1, 0, 0), (2, 0, 0)]
        msgs = [HaloMessage(0, 2, 10_000), HaloMessage(1, 2, 10_000)]
        routed, loads = route(ring, placement, msgs)
        # Message 0 shares the 1->2 link with message 1.
        t_shared = message_time(routed[0], loads, BLUE_GENE_L)
        routed_alone, loads_alone = route(
            ring, placement, [HaloMessage(0, 2, 10_000)]
        )
        t_alone = message_time(routed_alone[0], loads_alone, BLUE_GENE_L)
        assert t_shared > t_alone

    def test_hop_latency_scales(self, ring):
        far, loads_far = route(ring, [(0, 0, 0), (3, 0, 0)], [HaloMessage(0, 1, 8)])
        near, loads_near = route(ring, [(0, 0, 0), (1, 0, 0)], [HaloMessage(0, 1, 8)])
        assert message_time(far[0], loads_far, BLUE_GENE_L) > message_time(
            near[0], loads_near, BLUE_GENE_L
        )


class TestRoundTime:
    def test_empty_round(self):
        est = round_time([], None, BLUE_GENE_L)  # loads unused when empty
        assert est.time == 0.0
        assert est.average_hops == 0.0

    def test_round_is_max_message(self, ring):
        placement = [(0, 0, 0), (1, 0, 0), (4, 0, 0)]
        msgs = [HaloMessage(0, 1, 1000), HaloMessage(0, 2, 100_000)]
        routed, loads = route(ring, placement, msgs)
        est = round_time(routed, loads, BLUE_GENE_L)
        slowest = max(message_time(m, loads, BLUE_GENE_L) for m in routed)
        assert est.time == pytest.approx(slowest)

    def test_ideal_bounded_by_actual(self, ring):
        placement = [(0, 0, 0), (2, 0, 0), (4, 0, 0)]
        msgs = [HaloMessage(0, 1, 5000), HaloMessage(1, 2, 5000)]
        routed, loads = route(ring, placement, msgs)
        est = round_time(routed, loads, BLUE_GENE_L)
        assert est.ideal_time <= est.time
        assert est.contention_excess >= 0.0

    def test_average_hops(self, ring):
        placement = [(0, 0, 0), (1, 0, 0), (3, 0, 0)]
        msgs = [HaloMessage(0, 1, 10), HaloMessage(0, 2, 10)]
        routed, loads = route(ring, placement, msgs)
        est = round_time(routed, loads, BLUE_GENE_L)
        assert est.average_hops == 2.0

    def test_max_link_bytes(self, ring):
        placement = [(0, 0, 0), (1, 0, 0), (2, 0, 0)]
        msgs = [HaloMessage(0, 2, 100), HaloMessage(1, 2, 300)]
        routed, loads = route(ring, placement, msgs)
        est = round_time(routed, loads, BLUE_GENE_L)
        assert est.max_link_bytes == 400
