"""Unit tests for the vectorized network engine."""

import pytest

from repro.errors import ConfigurationError
from repro.netsim.engine import (
    LINKS_PER_NODE,
    SCALAR,
    VECTOR,
    LinkLoadVector,
    PlacementVector,
    active_backend,
    as_placement,
    link_id_of,
    link_of_id,
    reset_route_cache,
    route_cache_stats,
)
from repro.runtime.halo import HaloMessage
from repro.topology.torus import Link, Torus3D


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_route_cache()
    yield
    reset_route_cache()


class TestLinkIds:
    def test_round_trip_every_link(self):
        torus = Torus3D((2, 3, 4))
        seen = set()
        for coord in torus.coords():
            for dim in range(3):
                for direction in (1, -1):
                    link = Link(src=coord, dim=dim, direction=direction)
                    lid = link_id_of(torus, link)
                    assert 0 <= lid < torus.num_nodes * LINKS_PER_NODE
                    assert link_of_id(torus, lid) == link
                    seen.add(lid)
        assert len(seen) == torus.num_nodes * LINKS_PER_NODE

    def test_encoding_formula(self):
        torus = Torus3D((4, 4, 4))
        link = Link(src=(1, 2, 3), dim=1, direction=-1)
        node = torus.rank_of((1, 2, 3))
        assert link_id_of(torus, link) == (node * 3 + 1) * 2 + 1


class TestPlacementVector:
    def test_wraps_once(self):
        torus = Torus3D((2, 2, 2))
        pv = as_placement(torus, [(0, 0, 0), (1, 1, 1)])
        assert as_placement(torus, pv) is pv
        assert len(pv) == 2
        assert pv.node_ranks.tolist() == [0, 7]

    def test_digest_distinguishes_placements(self):
        torus = Torus3D((2, 2, 2))
        a = PlacementVector(torus, [(0, 0, 0), (1, 0, 0)])
        b = PlacementVector(torus, [(1, 0, 0), (0, 0, 0)])
        assert a.digest != b.digest


class TestLinkLoadVector:
    def test_mirrors_scalar_api(self):
        torus = Torus3D((4, 1, 1))
        nodes = [(0, 0, 0), (2, 0, 0)]
        _, loads = VECTOR.route_exchange(torus, nodes, [HaloMessage(0, 1, 7)])
        assert loads.load(Link((0, 0, 0), 0, 1)) == 7
        assert loads.load(Link((3, 0, 0), 0, 1)) == 0
        assert loads.max_load() == 7
        assert loads.total_bytes() == 14
        assert loads.num_loaded_links() == 2
        assert len(loads) == 2

    def test_merge_accumulates(self):
        torus = Torus3D((4, 1, 1))
        nodes = [(0, 0, 0), (1, 0, 0)]
        _, loads = VECTOR.route_exchange(torus, nodes, [HaloMessage(0, 1, 5)])
        shared = VECTOR.empty_loads(torus)
        shared.merge(loads)
        shared.merge(loads)
        assert shared.max_load() == 10
        # Cached loads stay untouched by merges.
        assert loads.max_load() == 5


class TestRouteCache:
    def test_hit_on_identical_exchange(self):
        torus = Torus3D((4, 4, 4))
        nodes = [(0, 0, 0), (2, 2, 2)]
        msgs = [HaloMessage(0, 1, 100)]
        first = VECTOR.route_exchange(torus, nodes, msgs)
        second = VECTOR.route_exchange(torus, nodes, list(msgs))
        assert second[0] is first[0]
        assert second[1] is first[1]
        stats = route_cache_stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_miss_on_different_placement(self):
        torus = Torus3D((4, 4, 4))
        msgs = [HaloMessage(0, 1, 100)]
        VECTOR.route_exchange(torus, [(0, 0, 0), (2, 2, 2)], msgs)
        VECTOR.route_exchange(torus, [(0, 0, 0), (2, 2, 1)], msgs)
        stats = route_cache_stats()
        assert (stats.hits, stats.misses) == (0, 2)

    def test_miss_on_different_bytes(self):
        torus = Torus3D((4, 4, 4))
        nodes = [(0, 0, 0), (2, 2, 2)]
        VECTOR.route_exchange(torus, nodes, [HaloMessage(0, 1, 100)])
        VECTOR.route_exchange(torus, nodes, [HaloMessage(0, 1, 101)])
        assert route_cache_stats().misses == 2

    def test_reset_clears_counters(self):
        torus = Torus3D((2, 2, 2))
        VECTOR.route_exchange(torus, [(0, 0, 0)], [])
        reset_route_cache()
        stats = route_cache_stats()
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)


class TestBackendSelection:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_NETSIM", raising=False)
        assert active_backend() is VECTOR

    def test_scalar_oracle_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NETSIM", "scalar")
        assert active_backend() is SCALAR

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NETSIM", "fortran")
        with pytest.raises(ConfigurationError):
            active_backend()

    def test_netsim_profile_reports_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_NETSIM", raising=False)
        from repro.perfsim.profiling import netsim_profile

        torus = Torus3D((4, 4, 4))
        nodes = [(0, 0, 0), (2, 2, 2)]
        msgs = [HaloMessage(0, 1, 100)]
        VECTOR.route_exchange(torus, nodes, msgs)
        VECTOR.route_exchange(torus, nodes, msgs)
        profile = netsim_profile()
        assert profile["backend"] == "vector"
        assert profile["route_cache_hits"] == 1
        assert profile["route_cache_misses"] == 1
