"""Tests for aggregate traffic metrics."""

from repro.netsim.metrics import traffic_metrics
from repro.netsim.traffic import route_messages
from repro.runtime.halo import HaloMessage
from repro.topology.torus import Torus3D


class TestTrafficMetrics:
    def test_empty(self):
        m = traffic_metrics([], None)
        assert m.num_messages == 0
        assert m.average_hops == 0.0

    def test_counts(self):
        torus = Torus3D((4, 4, 1))
        placement = [(0, 0, 0), (1, 0, 0), (3, 0, 0)]
        msgs = [HaloMessage(0, 1, 100), HaloMessage(0, 2, 200), HaloMessage(1, 2, 50)]
        routed, loads = route_messages(torus, placement, msgs)
        m = traffic_metrics(routed, loads)
        assert m.num_messages == 3
        assert m.total_bytes == 350
        assert m.max_hops == 2
        assert m.hop_bytes == 100 * 1 + 200 * 1 + 50 * 2
        assert m.average_hops == (1 + 1 + 2) / 3
        assert m.loaded_links >= 2
