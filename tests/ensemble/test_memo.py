"""Tests for the cross-member pricing memo."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ensemble.memo import (
    DIGEST_SIZE,
    VECTOR_LEN,
    CrossMemberMemo,
    MemoStats,
    PricedState,
    SharedMemoTable,
    state_digest,
)
from repro.wrf.grid import DomainSpec


def priced(base=1.0):
    return PricedState(
        seq_total=10.0 * base,
        seq_integration=6.0 * base,
        seq_io=2.0 * base,
        seq_wait=2.0 * base,
        par_total=5.0 * base,
        par_parent=2.0 * base,
        par_nest_phase=1.5 * base,
        par_integration=3.0 * base,
        par_io=1.0 * base,
        par_wait=1.0 * base,
        par_hops=2.5,
    )


def domain(name="d01", nx=100, ny=90, start=None):
    if start is None:
        return DomainSpec(name, nx, ny, dx_km=24.0)
    return DomainSpec(name, nx, ny, 8.0, parent="d01", parent_start=start,
                      refinement=3, level=1)


class TestPricedState:
    def test_vector_roundtrip_is_bit_exact(self):
        p = priced(base=1.0 / 3.0)  # not exactly representable inputs
        vec = p.to_vector()
        assert vec.dtype == np.float64
        assert len(vec) == VECTOR_LEN
        back = PricedState.from_vector(vec)
        assert back == p

    def test_improvement(self):
        assert priced().improvement == pytest.approx(0.5)
        zero = PricedState(*([0.0] * VECTOR_LEN))
        assert zero.improvement == 0.0


class TestStateDigest:
    def test_deterministic_and_sized(self):
        parent = domain()
        sibs = [domain("d02", 30, 24, (10, 10))]
        a = state_digest(("bgp", "", "pnetcdf", "oblivious", 32, 32), parent, sibs)
        b = state_digest(("bgp", "", "pnetcdf", "oblivious", 32, 32), parent, sibs)
        assert a == b
        assert len(a) == DIGEST_SIZE

    def test_sensitive_to_nest_position_and_policy(self):
        parent = domain()
        sig = ("bgp", "", "pnetcdf", "oblivious", 32, 32)
        base = state_digest(sig, parent, [domain("d02", 30, 24, (10, 10))])
        moved = state_digest(sig, parent, [domain("d02", 30, 24, (11, 10))])
        other_sig = state_digest(
            ("bgl", "", "pnetcdf", "oblivious", 32, 32),
            parent, [domain("d02", 30, 24, (10, 10))],
        )
        assert base != moved
        assert base != other_sig


class TestSharedMemoTable:
    def test_put_get_roundtrip(self):
        table = SharedMemoTable.create(slots=64)
        try:
            digest = state_digest(("x",), domain(), [])
            vec = priced(base=1.0 / 7.0).to_vector()
            assert table.get(digest) is None
            assert table.put(digest, vec)
            got = table.get(digest)
            assert got is not None
            assert np.array_equal(got, vec)  # bit-exact
            assert table.entries() == 1
        finally:
            table.release()

    def test_duplicate_put_is_idempotent(self):
        table = SharedMemoTable.create(slots=64)
        try:
            digest = b"\x01" * DIGEST_SIZE
            vec = priced().to_vector()
            assert table.put(digest, vec)
            assert table.put(digest, vec * 2.0)  # loser keeps first value
            assert np.array_equal(table.get(digest), vec)
            assert table.entries() == 1
        finally:
            table.release()

    def test_linear_probe_handles_slot_collisions(self):
        # Digests whose first 8 LE bytes are congruent mod slots all
        # probe from the same start slot.
        table = SharedMemoTable.create(slots=8)
        try:
            digests = [
                (i * 8).to_bytes(8, "little") + bytes(DIGEST_SIZE - 8)
                for i in range(4)
            ]
            for i, digest in enumerate(digests):
                assert table.put(digest, priced(base=float(i + 1)).to_vector())
            for i, digest in enumerate(digests):
                got = table.get(digest)
                assert got is not None
                assert got[0] == priced(base=float(i + 1)).to_vector()[0]
        finally:
            table.release()

    def test_full_table_drops_inserts(self):
        table = SharedMemoTable.create(slots=2)
        try:
            vec = priced().to_vector()
            assert table.put(b"\x00" * DIGEST_SIZE, vec)
            assert table.put(b"\x01" * DIGEST_SIZE, vec)
            assert not table.put(b"\x02" * DIGEST_SIZE, vec)
            assert table.entries() == 2
        finally:
            table.release()

    def test_attach_sees_owner_writes(self):
        table = SharedMemoTable.create(slots=32)
        try:
            digest = b"\x07" * DIGEST_SIZE
            vec = priced(base=2.5).to_vector()
            table.put(digest, vec)
            attached = SharedMemoTable.attach(table.handle, table.lock)
            try:
                got = attached.get(digest)
                assert np.array_equal(got, vec)
            finally:
                attached.close()
        finally:
            table.release()

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            SharedMemoTable.create(slots=0)


class TestCrossMemberMemo:
    def test_local_hit_path(self):
        memo = CrossMemberMemo()
        digest = b"\x03" * DIGEST_SIZE
        assert memo.lookup(digest) is None
        memo.store(digest, priced())
        value, source = memo.lookup(digest)
        assert source == "local"
        assert value == priced()
        assert memo.stats.local_hits == 1
        assert memo.stats.misses == 1
        assert memo.stats.stores == 1
        assert memo.entries() == 1

    def test_shared_hit_promotes_to_local(self):
        table = SharedMemoTable.create(slots=32)
        try:
            producer = CrossMemberMemo(shared=table)
            consumer = CrossMemberMemo(shared=table)
            digest = b"\x05" * DIGEST_SIZE
            producer.store(digest, priced(base=1.0 / 3.0))
            value, source = consumer.lookup(digest)
            assert source == "shared"
            assert value == priced(base=1.0 / 3.0)  # exact roundtrip
            # Second lookup comes from the promoted local copy.
            _, source = consumer.lookup(digest)
            assert source == "local"
            assert consumer.stats.shared_hits == 1
            assert consumer.stats.local_hits == 1
        finally:
            table.release()

    def test_shared_drop_counted(self):
        table = SharedMemoTable.create(slots=1)
        try:
            memo = CrossMemberMemo(shared=table)
            memo.store(b"\x00" * DIGEST_SIZE, priced())
            memo.store(b"\x01" * DIGEST_SIZE, priced())
            assert memo.stats.shared_drops == 1
            # Local front still serves both.
            assert memo.lookup(b"\x01" * DIGEST_SIZE)[1] == "local"
        finally:
            table.release()


class TestMemoStats:
    def test_add_and_rates(self):
        a = MemoStats(local_hits=2, shared_hits=1, misses=1, stores=1)
        b = MemoStats(local_hits=1, misses=2, stores=2, shared_drops=1)
        a.add(b)
        assert a.hits == 4
        assert a.misses == 3
        assert a.hit_rate == pytest.approx(4 / 7)
        assert a.to_json()["shared_drops"] == 1
        assert MemoStats().hit_rate == 0.0
