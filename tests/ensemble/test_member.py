"""Tests for ensemble members: seeding, branching, checkpoint/restore."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ensemble.member import (
    EnsembleMember,
    EnsemblePolicy,
    PricingContext,
    branch_seed,
    default_member_spec,
)
from repro.ensemble.memo import CrossMemberMemo
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def context():
    return PricingContext(EnsemblePolicy(machine="bgp", ranks=1024, io="pnetcdf"))


def small_spec(seed=7, **kw):
    kw.setdefault("parent_nx", 32)
    kw.setdefault("parent_ny", 24)
    kw.setdefault("nests", 2)
    kw.setdefault("nest_px", 8)
    return default_member_spec(seed, **kw)


class TestPolicy:
    def test_validate_rejects_unknowns(self):
        with pytest.raises(ConfigurationError):
            EnsemblePolicy(machine="cray").validate()
        with pytest.raises(ConfigurationError):
            EnsemblePolicy(mapping="zigzag").validate()
        with pytest.raises(ConfigurationError):
            EnsemblePolicy(ranks=0).validate()
        with pytest.raises(ConfigurationError):
            EnsemblePolicy(memo_slots=0).validate()

    def test_context_signature_separates_policies(self):
        a = PricingContext(EnsemblePolicy(machine="bgp", ranks=1024))
        b = PricingContext(EnsemblePolicy(machine="bgl", ranks=1024))
        assert a.sig != b.sig


class TestDefaultMemberSpec:
    def test_nests_fit_and_are_distinct(self):
        spec = small_spec(nests=3)
        assert len(spec.nests) == 3
        names = {n.name for n in spec.nests}
        assert len(names) == 3
        for n in spec.nests:
            assert n.fits_in(spec.parent)

    def test_rejects_oversized_nest(self):
        with pytest.raises(ConfigurationError):
            default_member_spec(1, parent_nx=6, parent_ny=6, nest_px=20,
                                refinement=2)

    def test_rejects_zero_nests(self):
        with pytest.raises(ConfigurationError):
            default_member_spec(1, nests=0)


class TestBranchSeed:
    def test_deterministic_and_positive(self):
        assert branch_seed(7, 0) == branch_seed(7, 0)
        assert branch_seed(7, 0) != branch_seed(7, 1)
        assert branch_seed(7, 0) != branch_seed(8, 0)
        assert branch_seed(7, 0) >= 0

    @given(seed=st.integers(min_value=0, max_value=2**32),
           index=st.integers(min_value=0, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_branch_stream_equals_fresh_member_stream(self, seed, index):
        """ISSUE satellite: branch(member).rng stream == fresh stream
        seeded with the branch key."""
        key = branch_seed(seed, index)
        branched = make_rng(key)
        fresh = make_rng(branch_seed(seed, index))
        assert np.array_equal(branched.random(16), fresh.random(16))


class TestEnsembleMember:
    def test_tick_advances_and_prices(self, context):
        member = EnsembleMember(0, small_spec(), context)
        memo = CrossMemberMemo()
        t = member.tick(0, memo)
        assert t.member_id == 0
        assert t.tick == 0
        assert t.iteration == 1
        assert t.priced.par_total > 0.0
        assert t.sim_time_s == pytest.approx(member.sim_time_s)
        assert t.memo_source == "computed"
        # Deterministic payload excludes wall-side diagnostics.
        det = t.deterministic()
        assert "wall_ns" not in det and "memo_source" not in det
        assert det["priced"] == list(t.priced.to_vector())

    def test_same_seed_same_trajectory(self, context):
        a = EnsembleMember(0, small_spec(seed=11), context)
        b = EnsembleMember(1, small_spec(seed=11), context)
        memo_a, memo_b = CrossMemberMemo(), CrossMemberMemo()
        for tick in range(3):
            ta = a.tick(tick, memo_a)
            tb = b.tick(tick, memo_b)
            assert ta.priced == tb.priced
            assert ta.sim_time_s == tb.sim_time_s
            assert a.state_digest() == b.state_digest()

    def test_memo_hit_returns_identical_bits(self, context):
        """The heart of the dedup determinism argument."""
        memo = CrossMemberMemo()
        a = EnsembleMember(0, small_spec(seed=11), context)
        b = EnsembleMember(1, small_spec(seed=11), context)
        ta = a.tick(0, memo)
        tb = b.tick(0, memo)
        assert ta.memo_source == "computed"
        assert tb.memo_source == "local"
        assert tb.priced == ta.priced
        assert tb.priced.to_vector().tobytes() == ta.priced.to_vector().tobytes()

    def test_checkpoint_restore_is_bit_exact(self, context):
        memo = CrossMemberMemo()
        original = EnsembleMember(0, small_spec(seed=5), context)
        for tick in range(2):
            original.tick(tick, memo)
        checkpoint = original.checkpoint()
        clone = EnsembleMember(9, checkpoint.spec, context,
                               seed=checkpoint.seed, checkpoint=checkpoint)
        assert np.array_equal(clone.run.model.state.h, original.run.model.state.h)
        assert clone.state_digest() == original.state_digest()
        # Both continue identically (fresh memos: prices are recomputed).
        t_orig = original.tick(2, CrossMemberMemo())
        t_clone = clone.tick(2, CrossMemberMemo())
        assert t_orig.priced == t_clone.priced
        assert np.array_equal(clone.run.model.state.h, original.run.model.state.h)

    def test_branch_perturb_diverges_from_child_stream(self, context):
        spec = small_spec(seed=5, branch_perturb=0.01)
        parent = EnsembleMember(0, spec, context)
        parent.tick(0, CrossMemberMemo())
        checkpoint = parent.checkpoint()
        parent.branch_count += 1
        child_seed = branch_seed(checkpoint.seed, checkpoint.branch_count)
        child = EnsembleMember(1, spec, context, seed=child_seed,
                               checkpoint=checkpoint)
        assert not np.array_equal(
            child.run.model.state.h, parent.run.model.state.h
        )
        # The perturbation is exactly what the child's own stream yields.
        expected = checkpoint.steered.state.h.copy()
        expected += make_rng(child_seed).normal(0.0, 0.01, expected.shape)
        assert np.array_equal(child.run.model.state.h, expected)

    def test_next_branch_seed_tracks_count(self, context):
        member = EnsembleMember(0, small_spec(), context)
        first = member.next_branch_seed()
        member.branch_count += 1
        assert member.next_branch_seed() != first
        assert first == branch_seed(member.seed, 0)

    def test_summary(self, context):
        member = EnsembleMember(3, small_spec(seed=5), context)
        member.tick(0, CrossMemberMemo())
        s = member.summary(alive=True)
        assert s.member_id == 3
        assert s.ticks == 1
        assert s.alive
        assert s.to_json()["seed"] == 5
