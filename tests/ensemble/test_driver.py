"""Tests for the ensemble driver: events, determinism, dedup, dashboard."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.ensemble import (
    EnsembleDriver,
    EnsembleEvent,
    EnsemblePolicy,
    default_member_spec,
    parse_event,
    progress_json,
    render_dashboard,
)

POLICY = EnsemblePolicy(machine="bgp", ranks=1024, io="pnetcdf")


def specs(n=4, families=2, seed0=7):
    return [
        default_member_spec(seed0 + (i % families), parent_nx=32, parent_ny=24,
                            nests=2, nest_px=8)
        for i in range(n)
    ]


class TestEvents:
    def test_parse_kill_and_branch(self):
        e = parse_event("kill:3:1")
        assert (e.action, e.tick, e.member) == ("kill", 3, 1)
        e = parse_event("branch:0:2")
        assert (e.action, e.tick, e.member) == ("branch", 0, 2)

    def test_parse_spawn_seed(self):
        e = parse_event("spawn:2:99")
        assert (e.action, e.tick, e.seed, e.member) == ("spawn", 2, 99, None)
        e = parse_event("spawn:2")
        assert e.seed is None

    def test_parse_rejects_malformed(self):
        for text in ("kill", "kill:x", "jump:1:2", "kill:1:2:3"):
            with pytest.raises(ConfigurationError):
                parse_event(text)

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            EnsembleEvent(tick=0, action="kill")  # needs a member
        with pytest.raises(ConfigurationError):
            EnsembleEvent(tick=-1, action="spawn")
        with pytest.raises(ConfigurationError):
            EnsembleEvent(tick=0, action="warp")


class TestDriverBasics:
    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            EnsembleDriver([], policy=POLICY)
        with pytest.raises(ConfigurationError):
            EnsembleDriver(specs(1), policy=POLICY, jobs=0)
        with pytest.raises(ConfigurationError):
            EnsembleDriver(specs(1), policy=POLICY).run(0)

    def test_small_run_accounting(self):
        result = EnsembleDriver(specs(4), policy=POLICY).run(3)
        assert result.member_ticks == 12
        assert len(result.records) == 12
        assert len(result.members) == 4
        assert all(m.alive for m in result.members)
        assert result.metrics["ensemble.member_ticks"]["value"] == 12
        assert result.metrics["ensemble.members.final_alive"]["value"] == 4
        hist = result.metrics["ensemble.tick.par_total_s"]
        assert hist["count"] == 12
        assert sum(hist["counts"]) == 12
        assert result.members_per_s > 0.0

    def test_records_in_canonical_order(self):
        result = EnsembleDriver(specs(4), policy=POLICY).run(2)
        keys = [(r.tick, r.member_id) for r in result.records]
        assert keys == sorted(keys)

    def test_dedup_within_families(self):
        # 4 members, 2 seed families -> every family's twin hits the memo.
        # Pinned to the inline oracle: the hits>0 claim needs the twins
        # on one worker (cross-worker same-wave hits are best-effort).
        result = EnsembleDriver(
            specs(4, families=2), policy=POLICY, jobs=1
        ).run(3)
        assert result.memo.hits > 0
        assert result.dedup_hit_rate > 0.0
        # Twins fold identical priced vectors.
        by_key = {}
        for r in result.records:
            by_key.setdefault((r.tick, r.member_id % 2), set()).add(
                r.priced.to_vector().tobytes()
            )
        assert all(len(v) == 1 for v in by_key.values())

    def test_memo_off_matches_memo_on_deterministically(self):
        on = EnsembleDriver(specs(4), policy=POLICY).run(3)
        off = EnsembleDriver(
            specs(4),
            policy=EnsemblePolicy(machine="bgp", ranks=1024, io="pnetcdf",
                                  memo=False),
        ).run(3)
        assert on.snapshot_json() == off.snapshot_json()
        assert off.memo.hits == 0


class TestRuntimeEvents:
    def test_kill_spawn_branch(self):
        events = [
            EnsembleEvent(tick=1, action="branch", member=0),
            EnsembleEvent(tick=2, action="kill", member=1),
            EnsembleEvent(tick=2, action="spawn", seed=123),
        ]
        result = EnsembleDriver(
            specs(3), policy=POLICY, events=events
        ).run(4)
        metrics = result.metrics
        assert metrics["ensemble.members.initial"]["value"] == 3
        assert metrics["ensemble.members.spawned"]["value"] == 1
        assert metrics["ensemble.members.killed"]["value"] == 1
        assert metrics["ensemble.members.branched"]["value"] == 1
        assert metrics["ensemble.members.final_alive"]["value"] == 4
        by_id = {m.member_id: m for m in result.members}
        assert len(by_id) == 5
        assert not by_id[1].alive
        assert by_id[1].ticks == 2  # killed at start of tick 2
        assert by_id[3].ticks == 4  # branch child lives ticks 1..3 + parent's 1
        assert by_id[4].seed == 123

    def test_branch_child_continues_parent_trajectory(self):
        # With branch_perturb=0 a branch stays bit-identical to its
        # parent as long as steering keeps both on the same path.
        member_specs = [
            default_member_spec(7, parent_nx=32, parent_ny=24, nests=2,
                                nest_px=8)
        ]
        events = [EnsembleEvent(tick=1, action="branch", member=0)]
        result = EnsembleDriver(
            member_specs, policy=POLICY, events=events
        ).run(3)
        parent = [r for r in result.records if r.member_id == 0]
        child = [r for r in result.records if r.member_id == 1]
        assert len(child) == 2
        for p, c in zip(parent[1:], child):
            assert p.tick == c.tick
            assert p.priced == c.priced
            assert p.sim_time_s == c.sim_time_s

    def test_kill_dead_member_rejected(self):
        events = [
            EnsembleEvent(tick=1, action="kill", member=0),
            EnsembleEvent(tick=2, action="kill", member=0),
        ]
        with pytest.raises(ConfigurationError):
            EnsembleDriver(specs(2), policy=POLICY, events=events).run(3)


class TestJobsEquality:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_snapshot_byte_identical_across_jobs(self, jobs):
        events = [
            EnsembleEvent(tick=1, action="branch", member=0),
            EnsembleEvent(tick=2, action="kill", member=1),
            EnsembleEvent(tick=2, action="spawn"),
        ]

        def run(j):
            return EnsembleDriver(
                specs(5), policy=POLICY, jobs=j, events=events
            ).run(3)

        baseline = run(1).snapshot_json()
        assert run(jobs).snapshot_json() == baseline

    def test_shared_memo_used_across_workers(self):
        # Member 3 spawns one tick behind member 0 with the same seed
        # and lands on the other worker (3 % 2 != 0 % 2), so every state
        # it reaches was already priced — and shared — by worker 0 in
        # the previous tick. The cross-worker hit is deterministic: the
        # gather barrier orders tick N's stores before tick N+1's
        # lookups.
        initial = [
            default_member_spec(7 + i, parent_nx=32, parent_ny=24, nests=2,
                                nest_px=8)
            for i in range(3)
        ]
        events = [EnsembleEvent(tick=1, action="spawn", seed=7)]
        result = EnsembleDriver(
            initial, policy=POLICY, jobs=2, events=events
        ).run(3)
        assert result.memo.shared_hits > 0


class TestDashboard:
    def test_progress_frames_and_render(self):
        frames = []
        result = EnsembleDriver(
            specs(3), policy=POLICY, progress=frames.append
        ).run(2)
        assert len(frames) == 2
        last = frames[-1]
        assert last.tick == 1
        assert last.alive == 3
        assert len(last.rows) == 3
        text = render_dashboard(last)
        assert "ensemble tick 2/2" in text
        assert "member-ticks/s" in text
        assert "#" in text  # progress bars
        assert "\x1b" not in text  # pure ASCII, no control codes
        payload = progress_json(last)
        assert json.dumps(payload)  # JSON-able
        assert payload["members"][0]["member"] == 0
        assert result.member_ticks == 6

    def test_render_truncates_rows(self):
        frames = []
        EnsembleDriver(
            specs(6), policy=POLICY, progress=frames.append
        ).run(1)
        text = render_dashboard(frames[-1], max_rows=4)
        assert "(+2 more members)" in text
