"""SweepRunner: ordering, determinism, retries, and metric capture.

Task functions live at module level because they cross the process
boundary when ``jobs > 1``. The worker-death tests use a tmp-file
sentinel so exactly the first execution of the poisoned task kills its
worker and every retry succeeds.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.errors import SweepError
from repro.exec import SweepRunner, run_sweep
from repro.obs.metrics import counter, registry


def _square(x):
    return x * x


def _boom(x):
    if x == 13:
        raise ValueError("unlucky task")
    return x


def _die_once(item):
    """Kill the worker process on first sight of the sentinel file."""
    x, sentinel = item
    if x == 5 and not Path(sentinel).exists():
        Path(sentinel).write_text("died")
        os._exit(1)
    return x


def _die_always(item):
    x, _ = item
    if x == 5:
        os._exit(1)
    return x


def _count_and_square(x):
    counter("test.sweep.pool.calls").inc()
    return x * x


class TestInline:
    def test_results_in_input_order(self):
        out = run_sweep(_square, range(10))
        assert out.results == tuple(x * x for x in range(10))
        assert out.jobs == 1
        assert out.metrics is None

    def test_empty_items(self):
        out = run_sweep(_square, [])
        assert out.results == ()
        assert out.chunks == 0

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="unlucky"):
            run_sweep(_boom, range(20))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(0)
        with pytest.raises(ValueError):
            SweepRunner(2, chunksize=0)
        with pytest.raises(ValueError):
            SweepRunner(2, max_retries=-1)


class TestPool:
    def test_jobs_2_matches_inline(self):
        a = run_sweep(_square, range(23))
        b = run_sweep(_square, range(23), jobs=2)
        assert a.results == b.results
        assert b.jobs == 2
        assert b.chunks > 1

    def test_chunksize_does_not_change_results(self):
        a = run_sweep(_square, range(17), jobs=2, chunksize=1)
        b = run_sweep(_square, range(17), jobs=2, chunksize=7)
        assert a.results == b.results

    def test_task_exception_propagates_from_worker(self):
        with pytest.raises(ValueError, match="unlucky"):
            run_sweep(_boom, range(20), jobs=2)

    def test_worker_death_is_retried(self, tmp_path):
        sentinel = str(tmp_path / "died-once")
        out = run_sweep(
            _die_once, [(x, sentinel) for x in range(8)], jobs=2
        )
        assert out.results == tuple(range(8))
        assert out.retries >= 1

    def test_repeated_worker_death_raises_sweep_error(self, tmp_path):
        with pytest.raises(SweepError, match="worker pool died"):
            run_sweep(
                _die_always,
                [(x, str(tmp_path)) for x in range(8)],
                jobs=2,
                max_retries=1,
            )

    def test_initializer_runs_in_workers(self):
        # The initializer warms a per-process cache; here it just must
        # not break dispatch or ordering.
        out = SweepRunner(2, initializer=_noop_init, initargs=("x",)).map(
            _square, range(6)
        )
        assert out.results == tuple(x * x for x in range(6))


def _noop_init(tag):
    assert tag == "x"


class TestCaptureMetrics:
    def test_merged_snapshot_identical_across_jobs(self):
        a = SweepRunner(1, capture_metrics=True).map(_count_and_square, range(9))
        b = SweepRunner(2, capture_metrics=True).map(_count_and_square, range(9))
        assert a.results == b.results
        assert a.metrics == b.metrics
        assert a.metrics["test.sweep.pool.calls"]["value"] == 9
        assert len(a.task_metrics) == len(b.task_metrics) == 9
        assert a.task_metrics == b.task_metrics

    def test_chunking_does_not_change_merged_snapshot(self):
        a = SweepRunner(2, capture_metrics=True, chunksize=1).map(
            _count_and_square, range(7)
        )
        b = SweepRunner(2, capture_metrics=True, chunksize=5).map(
            _count_and_square, range(7)
        )
        assert a.metrics == b.metrics

    def test_untouched_metrics_are_pruned(self):
        # A metric registered in this process but never touched by the
        # task must not leak into captured deltas (workers would not
        # even have it registered).
        counter("test.sweep.pool.never_touched")
        out = SweepRunner(1, capture_metrics=True).map(_count_and_square, [1])
        assert "test.sweep.pool.never_touched" not in out.metrics
        assert "test.sweep.pool.calls" in out.metrics


def test_sweep_counters_survive_capture_mode():
    registry().reset()
    SweepRunner(1, capture_metrics=True).map(_count_and_square, range(4))
    snap = registry().snapshot("exec.sweep.")
    assert snap["exec.sweep.tasks"]["value"] == 4
    assert snap["exec.sweep.chunks"]["value"] >= 1
