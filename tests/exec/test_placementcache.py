"""The memoized placement cache: hits, keying, LRU bounds, and counters."""

from __future__ import annotations

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.exec.placementcache import (
    _PLACEMENT_CACHE,
    cached_placement,
    placement_cache_stats,
    reset_placement_cache,
)
from repro.obs.metrics import registry
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.torus import Torus3D


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_placement_cache()
    yield
    reset_placement_cache()


def _space(dims=(4, 4, 2), rpn=1):
    return SlotSpace(Torus3D(dims), rpn)


def test_cached_placement_equals_uncached():
    grid = ProcessGrid(8, 4)
    space = _space()
    rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
    assert cached_placement(PartitionMapping(), grid, space, rects) == (
        PartitionMapping().place(grid, space, rects)
    )
    assert cached_placement(ObliviousMapping(), grid, space) == (
        ObliviousMapping().place(grid, space)
    )


def test_repeat_lookups_hit_and_share_the_object():
    grid = ProcessGrid(8, 4)
    space = _space()
    a = cached_placement(ObliviousMapping(), grid, space)
    b = cached_placement(ObliviousMapping(), grid, space)
    assert a is b
    stats = placement_cache_stats()
    assert stats.hits == 1 and stats.misses == 1 and stats.entries == 1
    assert stats.hit_rate == 0.5


def test_instances_of_same_mapping_share_entries():
    grid = ProcessGrid(8, 4)
    space = _space()
    a = cached_placement(MultiLevelMapping(), grid, space)
    b = cached_placement(MultiLevelMapping(), grid, space)
    assert a is b
    assert placement_cache_stats().entries == 1


def test_key_distinguishes_mapping_grid_space_and_rects():
    grid = ProcessGrid(8, 4)
    space = _space()
    rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
    placements = {
        id(cached_placement(m, g, s, r))
        for m, g, s, r in [
            (ObliviousMapping(), grid, space, None),
            (PartitionMapping(), grid, space, None),
            (PartitionMapping(), grid, space, rects),
            (ObliviousMapping(), ProcessGrid(4, 8), space, None),
            (ObliviousMapping(), ProcessGrid(8, 8), _space((4, 4, 2), 2), None),
        ]
    }
    assert len(placements) == 5
    stats = placement_cache_stats()
    assert stats.misses == 5 and stats.hits == 0 and stats.entries == 5


def test_lru_bound_evicts_oldest():
    grid = ProcessGrid(4, 2)
    space = _space((2, 2, 2), 1)
    old_size = _PLACEMENT_CACHE.maxsize
    _PLACEMENT_CACHE.maxsize = 2
    try:
        cached_placement(ObliviousMapping(), grid, space)
        cached_placement(PartitionMapping(), grid, space)
        cached_placement(MultiLevelMapping(), grid, space)
        assert placement_cache_stats().entries == 2
        # The oldest key (oblivious) was evicted and misses again.
        cached_placement(ObliviousMapping(), grid, space)
        assert placement_cache_stats().misses == 4
    finally:
        _PLACEMENT_CACHE.maxsize = old_size


def test_byte_budget_evicts_lru_first(monkeypatch):
    grid = ProcessGrid(4, 2)
    space = _space((2, 2, 2), 1)
    a = cached_placement(ObliviousMapping(), grid, space)
    from repro.exec.placementcache import _placement_nbytes

    one = _placement_nbytes(a)
    # Budget fits exactly two placements of this size.
    monkeypatch.setenv("REPRO_PLACEMENT_CACHE_MB", str(2.5 * one / 2**20))
    reset_placement_cache()
    cached_placement(ObliviousMapping(), grid, space)
    cached_placement(PartitionMapping(), grid, space)
    stats = placement_cache_stats()
    assert stats.entries == 2 and stats.evictions == 0
    assert stats.resident_bytes == 2 * one
    cached_placement(MultiLevelMapping(), grid, space)
    stats = placement_cache_stats()
    assert stats.entries == 2 and stats.evictions == 1
    # LRU-first: the oblivious entry (oldest) went; partition remains hot.
    cached_placement(PartitionMapping(), grid, space)
    assert placement_cache_stats().hits == 1
    snap = registry().snapshot("exec.placement_cache.")
    assert snap["exec.placement_cache.evictions"]["value"] == 1
    assert snap["exec.placement_cache.resident_bytes"]["value"] == 2 * one


def test_oversize_placement_never_retained(monkeypatch):
    grid = ProcessGrid(8, 4)
    space = _space()
    monkeypatch.setenv("REPRO_PLACEMENT_CACHE_MB", "0.0001")
    a = cached_placement(ObliviousMapping(), grid, space)
    b = cached_placement(ObliviousMapping(), grid, space)
    # Both calls produce a placement; neither is cached.
    assert a == b and a is not b
    stats = placement_cache_stats()
    assert stats.entries == 0 and stats.resident_bytes == 0
    assert stats.evictions == 2 and stats.misses == 2


def test_registry_counters_always_equal_stats():
    """The obs counters ARE ``placement_cache_stats()`` at all times."""
    grid = ProcessGrid(8, 4)
    space = _space()
    registry().reset("exec.placement_cache.")
    reset_placement_cache()
    for _ in range(3):
        cached_placement(ObliviousMapping(), grid, space)
        cached_placement(PartitionMapping(), grid, space)
        stats = placement_cache_stats()
        snap = registry().snapshot("exec.placement_cache.")
        assert snap["exec.placement_cache.hits"]["value"] == stats.hits
        assert snap["exec.placement_cache.misses"]["value"] == stats.misses
    assert placement_cache_stats().hits == 4


def test_reset_zeroes_the_metric_side_too():
    grid = ProcessGrid(8, 4)
    space = _space()
    cached_placement(ObliviousMapping(), grid, space)
    reset_placement_cache()
    stats = placement_cache_stats()
    snap = registry().snapshot("exec.placement_cache.")
    assert stats.hits == snap["exec.placement_cache.hits"]["value"] == 0
    assert stats.misses == snap["exec.placement_cache.misses"]["value"] == 0
    assert stats.entries == 0


class TestFuzzedReconciliation:
    """Counters reconcile across fuzzed batches and worker counts."""

    BUDGET = 20
    SEED = 31

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.verify import fuzz

        a = fuzz(self.BUDGET, seed=self.SEED, jobs=1, collect_metrics=True)
        b = fuzz(self.BUDGET, seed=self.SEED, jobs=2, collect_metrics=True)
        return a, b

    def test_metrics_identical_across_jobs(self, reports):
        a, b = reports
        assert a.metrics == b.metrics

    def test_merged_counters_reconcile_with_replay(self, reports):
        """Merged worker counters equal a single-process replay's totals.

        Replays the same scenario stream with the per-task reset
        discipline :func:`repro.exec.pool._reset_task_state` uses,
        accumulating the placement cache's *internal* hit/miss ints —
        the merged snapshot's registry counters must match exactly.
        """
        from repro.util.rng import make_rng
        from repro.verify.fuzzer import _draw_scenarios, failures_for

        a, _ = reports
        scenarios, _, _ = _draw_scenarios(make_rng(self.SEED), self.BUDGET)
        hits = misses = 0
        for scenario in scenarios:
            reset_placement_cache()
            registry().reset()
            failures_for(scenario)
            stats = placement_cache_stats()
            hits += stats.hits
            misses += stats.misses
        assert a.metrics["exec.placement_cache.hits"]["value"] == hits
        assert a.metrics["exec.placement_cache.misses"]["value"] == misses
        assert hits + misses > 0
