"""Cache locking + TTL policies: the reset-during-recommend regression.

Before the planning service, :func:`reset_plan_cache` /
:func:`reset_placement_cache` raced unsynchronised against lookups —
harmless in single-threaded sweeps, a torn-LRU/desynchronised-counter
hazard once request threads share the caches. These tests hammer resets
against concurrent lookups and pin down the TTL policy semantics on an
injected clock.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.exec.placementcache import (
    cached_placement,
    placement_cache_stats,
    reset_placement_cache,
    set_placement_cache_policy,
)
from repro.exec.plancache import (
    plan_cache_stats,
    reset_plan_cache,
    sequential_plan,
    set_plan_cache_policy,
)
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torus import Torus3D


@pytest.fixture(autouse=True)
def _fresh_caches():
    set_plan_cache_policy(ttl_s=None)
    set_placement_cache_policy(ttl_s=None)
    reset_plan_cache()
    reset_placement_cache()
    yield
    set_plan_cache_policy(ttl_s=None)
    set_placement_cache_policy(ttl_s=None)
    reset_plan_cache()
    reset_placement_cache()


class _FakeClock:
    def __init__(self) -> None:
        self.now = 50.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# TTL policy semantics
# ----------------------------------------------------------------------
class TestPlanCacheTtl:
    def test_entries_expire_lazily_on_lookup(self, pacific, two_siblings):
        clock = _FakeClock()
        set_plan_cache_policy(ttl_s=10.0, clock=clock)
        grid = ProcessGrid(16, 16)
        first = sequential_plan(grid, pacific, two_siblings)
        assert sequential_plan(grid, pacific, two_siblings) is first
        clock.advance(10.5)
        second = sequential_plan(grid, pacific, two_siblings)
        assert second is not first  # stale entry was dropped and re-planned
        stats = plan_cache_stats()
        assert stats.expired == 1
        assert stats.misses == 2  # the expiry counted as a miss too
        assert stats.entries == 1  # re-planned entry is resident again

    def test_entries_survive_within_the_ttl(self, pacific, two_siblings):
        clock = _FakeClock()
        set_plan_cache_policy(ttl_s=10.0, clock=clock)
        grid = ProcessGrid(16, 16)
        first = sequential_plan(grid, pacific, two_siblings)
        clock.advance(9.9)
        assert sequential_plan(grid, pacific, two_siblings) is first
        assert plan_cache_stats().expired == 0

    def test_disabling_the_policy_stops_expiry(self, pacific, two_siblings):
        clock = _FakeClock()
        set_plan_cache_policy(ttl_s=10.0, clock=clock)
        grid = ProcessGrid(16, 16)
        first = sequential_plan(grid, pacific, two_siblings)
        set_plan_cache_policy(ttl_s=None)
        clock.advance(1e6)
        assert sequential_plan(grid, pacific, two_siblings) is first

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_s must be > 0"):
            set_plan_cache_policy(ttl_s=0.0)
        with pytest.raises(ValueError, match="ttl_s must be > 0"):
            set_plan_cache_policy(ttl_s=-5.0)


class TestPlacementCacheTtl:
    @staticmethod
    def _lookup():
        return cached_placement(
            ObliviousMapping(), ProcessGrid(8, 4), SlotSpace(Torus3D((4, 4, 2)), 1)
        )

    def test_expiry_releases_the_byte_accounting(self):
        clock = _FakeClock()
        set_placement_cache_policy(ttl_s=10.0, clock=clock)
        first = self._lookup()
        assert self._lookup() is first
        resident = placement_cache_stats().resident_bytes
        assert resident > 0
        clock.advance(10.5)
        second = self._lookup()
        assert second is not first
        stats = placement_cache_stats()
        assert stats.expired == 1
        # Expired bytes were released, then the re-placed entry re-added.
        assert stats.resident_bytes == resident

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError, match="ttl_s must be > 0"):
            set_placement_cache_policy(ttl_s=0.0)


# ----------------------------------------------------------------------
# The reset-during-lookup hammer
# ----------------------------------------------------------------------
def _hammer(lookup, reset, stats, seconds=1.5, workers=4):
    """Run *lookup* loops on threads while the main thread spams *reset*."""
    stop = threading.Event()
    failures = []

    def worker():
        while not stop.is_set():
            try:
                assert lookup() is not None
            except BaseException as exc:  # noqa: BLE001 - recording, not hiding
                failures.append(exc)
                return

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for t in threads:
        t.start()
    import time

    deadline = time.monotonic() + seconds
    resets = 0
    while time.monotonic() < deadline:
        reset()
        stats()  # stats reads must interleave safely too
        resets += 1
    stop.set()
    for t in threads:
        t.join(timeout=30)
    assert not failures, failures[0]
    assert resets > 0
    return resets


class TestResetDuringLookupHammer:
    def test_plan_cache_reset_races_lookups_safely(self, pacific, two_siblings):
        grid = ProcessGrid(16, 16)

        _hammer(
            lambda: sequential_plan(grid, pacific, two_siblings),
            reset_plan_cache,
            plan_cache_stats,
        )
        # Counters are coherent afterwards: a fresh pair of lookups
        # lands exactly one miss then one hit.
        reset_plan_cache()
        sequential_plan(grid, pacific, two_siblings)
        sequential_plan(grid, pacific, two_siblings)
        stats = plan_cache_stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_placement_cache_reset_races_lookups_safely(self):
        grid = ProcessGrid(8, 4)
        space = SlotSpace(Torus3D((4, 4, 2)), 1)

        _hammer(
            lambda: cached_placement(ObliviousMapping(), grid, space),
            reset_placement_cache,
            placement_cache_stats,
        )
        reset_placement_cache()
        cached_placement(ObliviousMapping(), grid, space)
        cached_placement(ObliviousMapping(), grid, space)
        stats = placement_cache_stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_reset_races_a_full_recommend_sweep(self):
        """The service-shaped regression: cache resets mid-recommend
        never corrupt the sweep or change its answer."""
        from repro.analysis.planner import recommend
        from repro.topology.machines import BLUE_GENE_L
        from repro.workloads.paper_configs import table2_domains

        config = table2_domains()
        baseline = recommend(config, BLUE_GENE_L, max_ranks=128, jobs=1)

        result = {}
        done = threading.Event()

        def sweep():
            result["rec"] = recommend(config, BLUE_GENE_L, max_ranks=128, jobs=1)
            done.set()

        t = threading.Thread(target=sweep)
        t.start()
        while not done.is_set():
            reset_plan_cache()
            reset_placement_cache()
        t.join(timeout=60)
        assert result["rec"].fastest == baseline.fastest
        assert result["rec"].recommended == baseline.recommended
        assert [o.time_per_iteration for o in result["rec"].options] == [
            o.time_per_iteration for o in baseline.options
        ]
