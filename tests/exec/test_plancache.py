"""The memoized plan cache: hits, keying, LRU bounds, and plan identity."""

from __future__ import annotations

import pytest

from repro.core.scheduler.strategies import ParallelSiblingsStrategy, SequentialStrategy
from repro.exec.plancache import (
    parallel_plan,
    plan_cache_stats,
    reset_plan_cache,
    sequential_plan,
)
from repro.runtime.process_grid import ProcessGrid
from repro.wrf.grid import DomainSpec


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


@pytest.fixture
def domains(pacific, two_siblings):
    return pacific, two_siblings


def test_cached_plan_equals_uncached(domains):
    parent, siblings = domains
    grid = ProcessGrid(16, 16)
    assert sequential_plan(grid, parent, siblings) == SequentialStrategy().plan(
        grid, parent, list(siblings)
    )
    ratios = [float(s.points) for s in siblings]
    assert parallel_plan(grid, parent, siblings, ratios) == (
        ParallelSiblingsStrategy().plan(grid, parent, list(siblings), ratios=ratios)
    )


def test_repeat_lookups_hit_and_share_the_object(domains):
    parent, siblings = domains
    grid = ProcessGrid(16, 16)
    a = sequential_plan(grid, parent, siblings)
    b = sequential_plan(grid, parent, siblings)
    assert a is b
    stats = plan_cache_stats()
    assert stats.hits == 1 and stats.misses == 1 and stats.entries == 1
    assert stats.hit_rate == 0.5


def test_key_distinguishes_grid_siblings_and_ratios(domains):
    parent, siblings = domains
    g1, g2 = ProcessGrid(16, 16), ProcessGrid(32, 32)
    r1 = [1.0, 2.0]
    r2 = [2.0, 1.0]
    plans = {
        id(parallel_plan(g, parent, siblings, r))
        for g in (g1, g2)
        for r in (r1, r2)
    }
    assert len(plans) == 4
    assert plan_cache_stats().misses == 4
    # One-sibling variant misses too (different signature).
    parallel_plan(g1, parent, siblings[:1], [1.0])
    assert plan_cache_stats().misses == 5


def test_int_and_float_ratios_share_an_entry(domains):
    # The fuzzer passes int point counts, the planner floats — the key
    # digest normalises so both hit one entry.
    parent, siblings = domains
    grid = ProcessGrid(16, 16)
    a = parallel_plan(grid, parent, siblings, [s.points for s in siblings])
    b = parallel_plan(grid, parent, siblings, [float(s.points) for s in siblings])
    assert a is b
    assert plan_cache_stats().hits == 1


def test_reset_clears_entries_and_counters(domains):
    parent, siblings = domains
    grid = ProcessGrid(16, 16)
    sequential_plan(grid, parent, siblings)
    reset_plan_cache()
    stats = plan_cache_stats()
    assert stats == type(stats)(hits=0, misses=0, entries=0)
    assert stats.hit_rate == 0.0


def test_lru_evicts_oldest(domains, monkeypatch):
    from repro.exec import plancache

    parent, siblings = domains
    monkeypatch.setattr(plancache._PLAN_CACHE, "maxsize", 2)
    grids = [ProcessGrid(8, 8), ProcessGrid(16, 16), ProcessGrid(32, 32)]
    for g in grids:
        sequential_plan(g, parent, siblings)
    assert plan_cache_stats().entries == 2
    # The oldest grid was evicted: looking it up again is a miss.
    before = plan_cache_stats().misses
    sequential_plan(grids[0], parent, siblings)
    assert plan_cache_stats().misses == before + 1
