"""Shared-memory message columns: round trips, digests, lifecycle."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.exec.pool import run_sweep
from repro.exec.shm import (
    attach_arrays,
    attach_halo_batch,
    release,
    release_all_shared,
    share_arrays,
    share_halo_batch,
    shm_stats,
)
from repro.netsim.engine import VECTOR, reset_route_cache, route_cache_stats
from repro.runtime.halo import HaloBatch, HaloSpec, halo_messages_array
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torus import Torus3D


@pytest.fixture(autouse=True)
def _clean_segments():
    yield
    release_all_shared()


def _batch(n: int = 64) -> HaloBatch:
    return HaloBatch(
        src=np.arange(n, dtype=np.int64),
        dst=(np.arange(n, dtype=np.int64) + 1) % n,
        nbytes=np.full(n, 6720, dtype=np.int64),
    )


def test_share_attach_round_trip():
    batch = _batch()
    handle = share_halo_batch(batch)
    out = attach_halo_batch(handle)
    assert np.array_equal(out.src, batch.src)
    assert np.array_equal(out.dst, batch.dst)
    assert np.array_equal(out.nbytes, batch.nbytes)


def test_attached_views_are_read_only_and_zero_copy():
    handle = share_halo_batch(_batch())
    a = attach_halo_batch(handle)
    b = attach_halo_batch(handle)
    with pytest.raises(ValueError):
        a.src[0] = 99  # type: ignore[index]
    # Memoised attachment: the same mapping, not a copy.
    assert a.src.base is b.src.base


def test_handle_digest_preseeds_batch_digest():
    batch = _batch()
    handle = share_halo_batch(batch)
    assert handle.digest == batch.digest()
    out = attach_halo_batch(handle)
    # Pre-seeded: available without touching the columns.
    assert object.__getattribute__(out, "_digest") == batch.digest()
    assert out.digest() == batch.digest()


def test_shared_batch_hits_route_cache_of_original():
    grid = ProcessGrid(4, 4)
    batch = halo_messages_array(grid, grid.full_rect(), 64, 64, HaloSpec())
    torus = Torus3D((2, 2, 2))
    nodes = [torus.coord_of(i % torus.num_nodes) for i in range(16)]
    handle = share_halo_batch(batch)
    shared = attach_halo_batch(handle)
    reset_route_cache()
    VECTOR.route_exchange(torus, nodes, batch)
    VECTOR.route_exchange(torus, nodes, shared)
    stats = route_cache_stats()
    assert (stats.hits, stats.misses) == (1, 1)


def test_release_unlinks_and_clears_bookkeeping():
    handle = share_halo_batch(_batch())
    attach_halo_batch(handle)
    assert shm_stats() == {"owned": 1, "attached": 1}
    release(handle)
    assert shm_stats() == {"owned": 0, "attached": 0}


def test_share_requires_content():
    with pytest.raises(ReproError):
        share_arrays({})


def test_attach_halo_batch_rejects_foreign_columns():
    handle = share_arrays({"other": np.zeros(4, dtype=np.int64)})
    with pytest.raises(ReproError, match="halo columns"):
        attach_halo_batch(handle)


def test_share_arrays_generic_round_trip():
    arrays = {
        "a": np.arange(10, dtype=np.int32),
        "b": np.linspace(0, 1, 7),
        "c": np.arange(12, dtype=np.int64).reshape(4, 3),
    }
    handle = share_arrays(arrays)
    views = attach_arrays(handle)
    for name, arr in arrays.items():
        assert np.array_equal(views[name], arr)
        assert views[name].dtype == arr.dtype


def _route_shared_task(item):
    """Worker task: attach the published batch and route it (picklable)."""
    handle, dims, n_ranks = item
    torus = Torus3D(tuple(dims))
    nodes = [torus.coord_of(i % torus.num_nodes) for i in range(n_ranks)]
    batch = attach_halo_batch(handle)
    _, loads = VECTOR.route_exchange(torus, nodes, batch)
    return loads.total_bytes(), batch.digest().hex()


def test_workers_map_shared_columns():
    grid = ProcessGrid(4, 4)
    batch = halo_messages_array(grid, grid.full_rect(), 64, 64, HaloSpec())
    handle = share_halo_batch(batch)
    item = (handle, (2, 2, 2), 16)
    inline = run_sweep(_route_shared_task, [item, item], jobs=1, shared=(handle,))
    pooled = run_sweep(_route_shared_task, [item, item], jobs=2, shared=(handle,))
    assert inline.results == pooled.results
    assert inline.results[0][1] == batch.digest().hex()
