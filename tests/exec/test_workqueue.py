"""Tests for the affinity work queue."""

import os

import pytest

from repro.errors import ConfigurationError, SweepError
from repro.exec.workqueue import AffinityWorkQueue

_STATE = {}


def _init(tag):
    _STATE["tag"] = tag
    _STATE.setdefault("calls", []).clear()


def _init_boom(_tag):
    raise RuntimeError("init exploded")


def _square(x):
    return x * x


def _pid_and_square(x):
    return (os.getpid(), x * x)


def _remember(x):
    _STATE.setdefault("calls", []).append(x)
    return len(_STATE["calls"])


def _tagged(x):
    return (_STATE.get("tag"), x)


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _die(_x):
    os._exit(13)


class TestInline:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            AffinityWorkQueue(0)

    def test_results_in_submission_order(self):
        with AffinityWorkQueue(1) as q:
            for i in (5, 1, 4):
                q.submit(i, _square, i)
            assert q.gather() == [25, 1, 16]

    def test_initializer_runs_inline(self):
        with AffinityWorkQueue(1, initializer=_init, initargs=("solo",)) as q:
            q.submit(0, _tagged, 42)
            assert q.gather() == [("solo", 42)]

    def test_state_persists_between_waves(self):
        with AffinityWorkQueue(1, initializer=_init, initargs=("s",)) as q:
            q.submit(0, _remember, "a")
            assert q.gather() == [1]
            q.submit(0, _remember, "b")
            assert q.gather() == [2]

    def test_exception_propagates(self):
        with AffinityWorkQueue(1) as q:
            q.submit(0, _fail_on_three, 3)
            with pytest.raises(ValueError, match="three"):
                q.gather()

    def test_failure_does_not_leak_into_next_wave(self):
        with AffinityWorkQueue(1) as q:
            q.submit(0, _fail_on_three, 1)
            q.submit(0, _fail_on_three, 3)
            q.submit(0, _fail_on_three, 2)
            with pytest.raises(ValueError):
                q.gather()
            q.submit(0, _square, 4)
            assert q.gather() == [16]

    def test_close_idempotent_and_blocks_submit(self):
        q = AffinityWorkQueue(1)
        q.close()
        q.close()
        with pytest.raises(SweepError):
            q.submit(0, _square, 1)


class TestPool:
    def test_matches_inline_results(self):
        tasks = [(i, i) for i in range(10)]
        with AffinityWorkQueue(1) as q1:
            inline = q1.run_wave(_square, tasks)
        with AffinityWorkQueue(3) as q3:
            pooled = q3.run_wave(_square, tasks)
        assert pooled == inline

    def test_affinity_is_sticky(self):
        with AffinityWorkQueue(2) as q:
            first = q.run_wave(_pid_and_square, [(i, i) for i in range(6)])
            second = q.run_wave(_pid_and_square, [(i, i) for i in range(6)])
        for i in range(6):
            assert first[i][0] == second[i][0]  # same worker both waves
            assert q.worker_for(i) == i % 2
        # Distinct affinities mod jobs land on distinct workers.
        assert first[0][0] != first[1][0]
        assert first[0][0] == first[2][0]

    def test_worker_state_is_per_process(self):
        with AffinityWorkQueue(2, initializer=_init, initargs=("pool",)) as q:
            q.submit(0, _remember, "x")
            q.submit(1, _remember, "y")
            assert sorted(q.gather()) == [1, 1]  # separate states

    def test_exception_propagates_with_traceback(self):
        with AffinityWorkQueue(2) as q:
            q.submit(0, _fail_on_three, 3)
            with pytest.raises(ValueError, match="three") as excinfo:
                q.gather()
            assert isinstance(excinfo.value.__cause__, SweepError)
            assert "three is right out" in str(excinfo.value.__cause__)

    def test_initializer_failure_raises(self):
        with AffinityWorkQueue(2, initializer=_init_boom, initargs=(0,)) as q:
            q.submit(0, _square, 2)
            with pytest.raises(SweepError, match="initializer"):
                q.gather()

    def test_dead_worker_detected(self):
        with AffinityWorkQueue(2) as q:
            q.submit(0, _die, None)
            with pytest.raises(SweepError, match="died"):
                q.gather()
