"""Tests for the depression tracker."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.steering.tracker import find_depressions
from repro.wrf.fields import ModelState


def state_with_lows(nx, ny, centres, depth=10.0, amp=1.0, sigma=3.0):
    state = ModelState.at_rest(nx, ny, depth=depth)
    yy, xx = np.mgrid[0:ny, 0:nx]
    for cx, cy in centres:
        state.h -= amp * np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2))
    return state


class TestFindDepressions:
    def test_finds_single_low(self):
        state = state_with_lows(60, 50, [(20, 25)])
        feats = find_depressions(state)
        assert len(feats) == 1
        assert abs(feats[0].x - 20) <= 1
        assert abs(feats[0].y - 25) <= 1
        assert feats[0].intensity > 0.5

    def test_finds_two_separated_lows(self):
        state = state_with_lows(80, 60, [(20, 20), (60, 40)])
        feats = find_depressions(state)
        assert len(feats) == 2
        centres = sorted((f.x, f.y) for f in feats)
        assert abs(centres[0][0] - 20) <= 1
        assert abs(centres[1][0] - 60) <= 1

    def test_strongest_first(self):
        state = state_with_lows(80, 60, [(20, 20)], amp=2.0)
        state = ModelState(
            state.h
            - 0.5 * np.exp(
                -((np.mgrid[0:60, 0:80][1] - 60) ** 2
                  + (np.mgrid[0:60, 0:80][0] - 40) ** 2) / 18.0
            ),
            state.u, state.v, state.q,
        )
        feats = find_depressions(state)
        assert feats[0].depth <= feats[-1].depth

    def test_min_separation_respected(self):
        # Two lows closer than min_separation: only the deeper survives.
        state = state_with_lows(60, 50, [(20, 25), (26, 25)])
        feats = find_depressions(state, min_separation=15)
        assert len(feats) == 1

    def test_flat_state_no_features(self):
        state = ModelState.at_rest(40, 40)
        assert find_depressions(state) == []

    def test_weak_low_filtered(self):
        state = state_with_lows(60, 50, [(20, 25)], amp=0.01)
        assert find_depressions(state, min_intensity=0.05) == []

    def test_max_count(self):
        centres = [(12, 12), (36, 12), (12, 36), (36, 36)]
        state = state_with_lows(50, 50, centres)
        assert len(find_depressions(state, max_count=2, min_separation=5)) == 2

    def test_tiny_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            find_depressions(ModelState.at_rest(2, 2))


class TestLostFeatures:
    def test_flat_field_has_no_features(self):
        state = ModelState.at_rest(60, 50)
        assert find_depressions(state) == []

    def test_shallow_low_below_intensity_floor_is_lost(self):
        # A depression that decays under min_intensity drops off the
        # tracker's radar entirely.
        state = state_with_lows(60, 50, [(30, 25)], amp=0.04)
        assert find_depressions(state, min_intensity=0.05) == []

    def test_steered_run_with_no_features_is_a_noop(self):
        from repro.runtime.process_grid import ProcessGrid
        from repro.steering.driver import SteeredRun
        from repro.wrf.grid import DomainSpec
        from repro.wrf.model import NestedModel

        parent = DomainSpec("d01", 60, 50, dx_km=24.0)
        nests = [DomainSpec("d02", 24, 24, 8.0, parent="d01",
                            parent_start=(2, 2), refinement=3, level=1)]
        model = NestedModel(parent, nests,
                            initial_state=ModelState.at_rest(60, 50))
        run = SteeredRun(model, ProcessGrid(8, 8))
        before = {n: model.nests[n].spec.parent_start
                  for n in model.sibling_names}
        event = run.steer()
        assert event.features == ()
        assert event.num_moved == 0
        assert not event.replanned
        after = {n: model.nests[n].spec.parent_start
                 for n in model.sibling_names}
        assert after == before
