"""Tests for the steered-run driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.process_grid import ProcessGrid
from repro.steering.driver import SteeredRun
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.model import NestedModel


def make_model(seed=3, nx=80, ny=64):
    parent = DomainSpec("d01", nx, ny, dx_km=24.0)
    initial = ModelState.with_disturbances(nx, ny, num_depressions=2, seed=seed,
                                           amplitude=1.2)
    nests = [
        DomainSpec("d02", 24, 24, 8.0, parent="d01", parent_start=(2, 2),
                   refinement=3, level=1),
        DomainSpec("d03", 24, 24, 8.0, parent="d01", parent_start=(60, 50),
                   refinement=3, level=1),
    ]
    return NestedModel(parent, nests, initial_state=initial)


class TestSteeredRun:
    def test_initial_plan_built(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        assert run.plan.concurrent
        assert run.plan.num_siblings == 2

    def test_steer_moves_nests_toward_depressions(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        event = run.steer()
        assert len(event.features) >= 1
        # Nests started in corners; at least one should move onto a low.
        assert event.num_moved >= 1
        assert event.replanned

    def test_moved_nest_state_respawned(self):
        model = make_model()
        run = SteeredRun(model, ProcessGrid(8, 8))
        old_positions = {
            name: model.nests[name].spec.parent_start
            for name in model.sibling_names
        }
        event = run.steer()
        for move in event.moves:
            if move.moved:
                nest = model.nests[move.name]
                assert nest.spec.parent_start == move.new_start
                assert nest.spec.parent_start != old_positions[move.name]
                assert nest.state is not None
                assert np.isfinite(nest.state.h).all()

    def test_run_steers_on_interval(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=3)
        run.run(7)
        # Steering at iterations 3 and 6.
        assert [e.iteration for e in run.events] == [3, 6]

    def test_small_drift_ignored(self):
        """A feature within min_move_cells of the nest centre is a no-op."""
        model = make_model()
        run = SteeredRun(model, ProcessGrid(8, 8), min_move_cells=10_000)
        event = run.steer()
        assert not event.replanned

    def test_model_keeps_integrating_after_steer(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=2)
        run.run(4)
        assert run.model.iteration == 4
        assert np.isfinite(run.model.state.h).all()

    def test_plan_tracks_current_footprints(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        run.steer()
        current = {
            run.model.nests[n].spec.parent_start for n in run.model.sibling_names
        }
        planned = {a.domain.parent_start for a in run.plan.assignments}
        assert planned == current

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=0)

    def test_negative_iterations(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        with pytest.raises(ConfigurationError):
            run.run(-1)
