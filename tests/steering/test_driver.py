"""Tests for the steered-run driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.process_grid import ProcessGrid
from repro.steering.driver import SteeredRun
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.model import NestedModel


def make_model(seed=3, nx=80, ny=64):
    parent = DomainSpec("d01", nx, ny, dx_km=24.0)
    initial = ModelState.with_disturbances(nx, ny, num_depressions=2, seed=seed,
                                           amplitude=1.2)
    nests = [
        DomainSpec("d02", 24, 24, 8.0, parent="d01", parent_start=(2, 2),
                   refinement=3, level=1),
        DomainSpec("d03", 24, 24, 8.0, parent="d01", parent_start=(60, 50),
                   refinement=3, level=1),
    ]
    return NestedModel(parent, nests, initial_state=initial)


class TestSteeredRun:
    def test_initial_plan_built(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        assert run.plan.concurrent
        assert run.plan.num_siblings == 2

    def test_steer_moves_nests_toward_depressions(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        event = run.steer()
        assert len(event.features) >= 1
        # Nests started in corners; at least one should move onto a low.
        assert event.num_moved >= 1
        assert event.replanned

    def test_moved_nest_state_respawned(self):
        model = make_model()
        run = SteeredRun(model, ProcessGrid(8, 8))
        old_positions = {
            name: model.nests[name].spec.parent_start
            for name in model.sibling_names
        }
        event = run.steer()
        for move in event.moves:
            if move.moved:
                nest = model.nests[move.name]
                assert nest.spec.parent_start == move.new_start
                assert nest.spec.parent_start != old_positions[move.name]
                assert nest.state is not None
                assert np.isfinite(nest.state.h).all()

    def test_run_steers_on_interval(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=3)
        run.run(7)
        # Steering at iterations 3 and 6.
        assert [e.iteration for e in run.events] == [3, 6]

    def test_small_drift_ignored(self):
        """A feature within min_move_cells of the nest centre is a no-op."""
        model = make_model()
        run = SteeredRun(model, ProcessGrid(8, 8), min_move_cells=10_000)
        event = run.steer()
        assert not event.replanned

    def test_model_keeps_integrating_after_steer(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=2)
        run.run(4)
        assert run.model.iteration == 4
        assert np.isfinite(run.model.state.h).all()

    def test_plan_tracks_current_footprints(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        run.steer()
        current = {
            run.model.nests[n].spec.parent_start for n in run.model.sibling_names
        }
        planned = {a.domain.parent_start for a in run.plan.assignments}
        assert planned == current

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=0)

    def test_negative_iterations(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        with pytest.raises(ConfigurationError):
            run.run(-1)


class TestReplanCaching:
    """Satellite: _replan goes through the plan/placement caches and the
    steering.replan.* counters reconcile with the caches' own stats."""

    def setup_method(self):
        from repro.exec.placementcache import reset_placement_cache
        from repro.exec.plancache import reset_plan_cache
        from repro.obs.metrics import registry

        reset_plan_cache()
        reset_placement_cache()
        registry().reset("steering.replan.")

    def test_plan_counters_reconcile_with_plan_cache(self):
        from repro.exec.plancache import plan_cache_stats
        from repro.obs.metrics import registry

        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        run.steer()  # moves nests -> replans a new configuration
        run._replan()  # same configuration again -> pure cache hit
        snap = registry().snapshot("steering.replan.")
        stats = plan_cache_stats()
        assert snap["steering.replan.cache_hit"]["value"] == stats.hits
        assert snap["steering.replan.cache_miss"]["value"] == stats.misses
        assert stats.hits >= 1
        assert stats.misses >= 2  # init plan + post-move plan

    def test_placement_counters_reconcile_with_placement_cache(self):
        from repro.exec.placementcache import placement_cache_stats
        from repro.obs.metrics import registry
        from repro.topology.machines import BLUE_GENE_P

        first = SteeredRun(
            make_model(), ProcessGrid(32, 32), machine=BLUE_GENE_P
        )
        assert first.placement is not None
        # A second run with the same shape re-derives the same placement
        # from the shared cache.
        second = SteeredRun(
            make_model(seed=9), ProcessGrid(32, 32), machine=BLUE_GENE_P
        )
        assert second.placement is not None
        snap = registry().snapshot("steering.replan.")
        stats = placement_cache_stats()
        assert snap["steering.replan.placement_cache_hit"]["value"] == stats.hits
        assert snap["steering.replan.placement_cache_miss"]["value"] == stats.misses
        assert stats.hits >= 1

    def test_unchanged_rects_skip_the_placement_lookup(self):
        from repro.exec.placementcache import placement_cache_stats
        from repro.topology.machines import BLUE_GENE_P

        run = SteeredRun(
            make_model(), ProcessGrid(32, 32), machine=BLUE_GENE_P
        )
        placed = run.placement
        before = placement_cache_stats()
        run.steer()  # moves nests; sizes (hence rects) are unchanged
        after = placement_cache_stats()
        assert run.placement is placed
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_no_machine_means_no_placement(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        assert run.placement is None


class TestSteeringEventTimes:
    """Satellite: events carry the wall/model time split."""

    def test_wall_split_recorded(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        event = run.steer()
        assert event.track_wall_ns > 0
        assert event.replan_wall_ns >= 0
        assert event.steer_wall_ns == event.track_wall_ns + event.replan_wall_ns
        if event.replanned:
            assert event.replan_wall_ns > 0

    def test_steer_model_time_prices_respawns(self):
        run = SteeredRun(
            make_model(), ProcessGrid(8, 8), respawn_cost_s_per_point=1e-6
        )
        event = run.steer()
        assert event.num_moved >= 1
        respawned = sum(
            run.model.nests[m.name].spec.points for m in event.moves if m.moved
        )
        assert event.steer_model_s == pytest.approx(1e-6 * respawned)

    def test_default_steer_cost_is_free(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        event = run.steer()
        assert event.steer_model_s == 0.0

    def test_negative_respawn_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            SteeredRun(
                make_model(), ProcessGrid(8, 8), respawn_cost_s_per_point=-1.0
            )

    def test_steer_phase_traced(self):
        from repro.obs.report import phase_breakdown
        from repro.obs.trace import tracing

        run = SteeredRun(
            make_model(), ProcessGrid(8, 8), respawn_cost_s_per_point=1e-6
        )
        with tracing() as buf:
            event = run.steer()
        phases = [r for r in buf.records if r.get("type") == "phase"]
        assert [p["phase"] for p in phases] == ["steer"]
        assert phases[0]["model_time"] == event.steer_model_s
        assert phases[0]["attrs"]["moved"] == event.num_moved
        (profile,) = phase_breakdown(buf.records)
        assert profile.steer_time == event.steer_model_s


class TestCheckpointRestore:
    """Satellite/tentpole: checkpoint/restore resumes bit-exactly."""

    def test_restore_continues_bit_exactly(self):
        original = SteeredRun(make_model(seed=5), ProcessGrid(8, 8),
                              retrack_interval=2)
        original.run(3)
        checkpoint = original.checkpoint()
        clone = SteeredRun.restore(checkpoint, ProcessGrid(8, 8),
                                   retrack_interval=2)
        assert clone.model.iteration == original.model.iteration
        assert np.array_equal(clone.model.state.h, original.model.state.h)
        for name in original.model.sibling_names:
            assert np.array_equal(
                clone.model.nests[name].state.h,
                original.model.nests[name].state.h,
            )
        original.run(3)
        clone.run(3)
        assert np.array_equal(clone.model.state.h, original.model.state.h)
        for name in original.model.sibling_names:
            assert np.array_equal(
                clone.model.nests[name].state.h,
                original.model.nests[name].state.h,
            )

    def test_checkpoint_preserves_history_and_is_picklable(self):
        import pickle

        run = SteeredRun(make_model(), ProcessGrid(8, 8), retrack_interval=2)
        run.run(4)
        checkpoint = pickle.loads(pickle.dumps(run.checkpoint()))
        clone = SteeredRun.restore(checkpoint, ProcessGrid(8, 8),
                                   retrack_interval=2)
        assert [e.iteration for e in clone.events] == [
            e.iteration for e in run.events
        ]

    def test_checkpoint_is_a_snapshot_not_a_view(self):
        run = SteeredRun(make_model(), ProcessGrid(8, 8))
        checkpoint = run.checkpoint()
        before = checkpoint.state.h.copy()
        run.run(2)
        assert np.array_equal(checkpoint.state.h, before)
