"""Tests for nest relocation planning."""

import pytest

from repro.errors import ConfigurationError
from repro.steering.mover import move_nest_over, plan_moves
from repro.steering.tracker import TrackedFeature
from repro.wrf.grid import DomainSpec


@pytest.fixture
def parent():
    return DomainSpec("d01", 100, 90, dx_km=24.0)


def nest(name, at, nx=30, ny=24):
    return DomainSpec(name, nx, ny, 8.0, parent="d01", parent_start=at,
                      refinement=3, level=1)


def feature(x, y, depth=9.0):
    return TrackedFeature(x=x, y=y, depth=depth, intensity=10.0 - depth)


class TestMoveNestOver:
    def test_centres_on_feature(self, parent):
        moved = move_nest_over(nest("d02", (0, 0)), parent, feature(50, 40))
        w, h = moved.parent_extent()
        assert moved.parent_start == (50 - w // 2, 40 - h // 2)

    def test_clamped_to_parent(self, parent):
        moved = move_nest_over(nest("d02", (0, 0)), parent, feature(99, 89))
        assert moved.fits_in(parent)
        moved = move_nest_over(nest("d02", (50, 50)), parent, feature(0, 0))
        assert moved.parent_start == (0, 0)

    def test_preserves_identity(self, parent):
        original = nest("d02", (10, 10))
        moved = move_nest_over(original, parent, feature(50, 40))
        assert (moved.name, moved.nx, moved.ny, moved.refinement) == (
            original.name, original.nx, original.ny, original.refinement
        )

    def test_rejects_parent(self, parent):
        with pytest.raises(ConfigurationError):
            move_nest_over(parent, parent, feature(10, 10))


class TestPlanMoves:
    def test_each_nest_gets_nearest_feature(self, parent):
        nests = [nest("d02", (5, 5)), nest("d03", (60, 55))]
        feats = [feature(70, 60, depth=8.5), feature(12, 10, depth=9.0)]
        moved, moves = plan_moves(nests, parent, feats)
        # d03 should chase the (70, 60) feature, d02 the (12, 10) one.
        assert moves[1].new_start[0] > 50
        assert moves[0].new_start[0] < 20

    def test_no_features_no_moves(self, parent):
        nests = [nest("d02", (5, 5))]
        moved, moves = plan_moves(nests, parent, [])
        assert moved[0].parent_start == (5, 5)
        assert not moves[0].moved

    def test_collision_cancelled(self, parent):
        # Both nests would land on the same feature region; the second
        # relocation must be cancelled to preserve disjointness.
        nests = [nest("d02", (5, 5)), nest("d03", (60, 55))]
        feats = [feature(30, 30), feature(32, 31)]
        moved, moves = plan_moves(nests, parent, feats)
        a, b = moved
        ai, aj = a.parent_start
        bi, bj = b.parent_start
        aw, ah = a.parent_extent()
        bw, bh = b.parent_extent()
        assert (ai + aw <= bi or bi + bw <= ai or aj + ah <= bj or bj + bh <= aj)

    def test_order_preserved(self, parent):
        nests = [nest("d02", (5, 5)), nest("d03", (60, 55))]
        moved, _ = plan_moves(nests, parent, [feature(50, 40)])
        assert [m.name for m in moved] == ["d02", "d03"]

    def test_displacement_recorded(self, parent):
        nests = [nest("d02", (0, 0))]
        _, moves = plan_moves(nests, parent, [feature(50, 40)])
        assert moves[0].moved
        dx, dy = moves[0].displacement
        assert dx > 0 and dy > 0


class TestEdgeCases:
    def test_move_to_grid_boundary_clamps_and_fits(self, parent):
        # Features right on the parent corners: the planned footprints
        # must clamp to the boundary and stay inside the parent.
        nests = [nest("d02", (40, 40)), nest("d03", (5, 60))]
        feats = [feature(0, 0, depth=8.0), feature(99, 89, depth=9.0)]
        moved, moves = plan_moves(nests, parent, feats)
        assert all(m.moved for m in moves)
        for spec in moved:
            assert spec.fits_in(parent)
            x, y = spec.parent_start
            assert x >= 0 and y >= 0
        starts = {spec.parent_start for spec in moved}
        assert (0, 0) in starts  # corner feature pinned the nest flush

    def test_two_nests_swap_regions_in_one_tick(self, parent):
        # The strongest feature sits between the nests but nearer d03;
        # the second feature sits on d03's old home. Greedy assignment
        # sends d03 toward the middle and d02 across to d03's old
        # region — a positional swap planned in a single pass that must
        # still come out disjoint.
        nests = [nest("d02", (10, 10)), nest("d03", (30, 30))]
        feats = [feature(26, 25, depth=8.0), feature(36, 35, depth=9.0)]
        moved, moves = plan_moves(nests, parent, feats)
        assert all(m.moved for m in moves)
        d02, d03 = moved
        # d02 crossed over d03's old position; d03 moved back toward
        # d02's side.
        assert d02.parent_start[0] > 30
        assert d03.parent_start[0] < 30
        ax, ay = d02.parent_start
        bx, by = d03.parent_start
        aw, ah = d02.parent_extent()
        bw, bh = d03.parent_extent()
        assert (ax + aw <= bx or bx + bw <= ax
                or ay + ah <= by or by + bh <= ay)
