"""Tests for repro.wrf.grid (DomainSpec)."""

import pytest

from repro.errors import ConfigurationError
from repro.wrf.grid import DomainSpec, domain_features


def make_nest(**kw):
    defaults = dict(
        name="d02", nx=120, ny=96, dx_km=8.0, parent="d01",
        parent_start=(10, 10), refinement=3, level=1,
    )
    defaults.update(kw)
    return DomainSpec(**defaults)


class TestDomainSpec:
    def test_features(self):
        d = DomainSpec("d01", nx=286, ny=307, dx_km=24.0)
        assert d.points == 286 * 307
        assert d.aspect_ratio == pytest.approx(286 / 307)
        assert domain_features(d) == (d.aspect_ratio, float(d.points))

    def test_parent_requires_no_start(self):
        with pytest.raises(ConfigurationError):
            DomainSpec("d01", nx=10, ny=10, dx_km=24.0, parent_start=(0, 0))

    def test_nest_requires_start(self):
        with pytest.raises(ConfigurationError):
            DomainSpec("d02", nx=10, ny=10, dx_km=8.0, parent="d01", level=1)

    def test_level_parent_consistency(self):
        with pytest.raises(ConfigurationError):
            DomainSpec("d02", nx=10, ny=10, dx_km=8.0, parent="d01",
                       parent_start=(0, 0), level=0)
        with pytest.raises(ConfigurationError):
            DomainSpec("d01", nx=10, ny=10, dx_km=8.0, level=1)

    def test_parent_extent_ceil(self):
        nest = make_nest(nx=10, ny=9, refinement=3)
        assert nest.parent_extent() == (4, 3)

    def test_parent_extent_on_parent_rejected(self):
        d = DomainSpec("d01", nx=10, ny=10, dx_km=24.0)
        with pytest.raises(ConfigurationError):
            d.parent_extent()

    def test_fits_in(self):
        parent = DomainSpec("d01", nx=100, ny=100, dx_km=24.0)
        assert make_nest(nx=120, ny=96, parent_start=(10, 10)).fits_in(parent)
        assert not make_nest(nx=120, ny=96, parent_start=(70, 10)).fits_in(parent)

    def test_steps_per_parent_step(self):
        assert DomainSpec("d01", nx=10, ny=10, dx_km=24.0).steps_per_parent_step == 1
        assert make_nest(level=1).steps_per_parent_step == 3
        assert make_nest(level=2).steps_per_parent_step == 9

    def test_scaled_preserves_aspect(self):
        nest = make_nest(nx=100, ny=50)
        big = nest.scaled(4.0)
        assert big.points == pytest.approx(4 * nest.points, rel=0.05)
        assert big.aspect_ratio == pytest.approx(nest.aspect_ratio, rel=0.05)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_nest().scaled(0.0)

    def test_frozen(self):
        d = make_nest()
        with pytest.raises(AttributeError):
            d.nx = 5  # type: ignore[misc]
