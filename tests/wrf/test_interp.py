"""Tests for parent<->nest transfer operators."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.wrf.interp import bilinear_sample, nest_coords_in_parent, restrict_mean


class TestNestCoords:
    def test_cell_centre_registration(self):
        xs, ys = nest_coords_in_parent(6, 3, i0=2, j0=1, refinement=3)
        # First fine cell centre sits at parent coord i0 + 0.5/3 - 0.5.
        assert xs[0] == pytest.approx(2 + 0.5 / 3 - 0.5)
        assert len(xs) == 6 and len(ys) == 3

    def test_spacing_is_one_over_r(self):
        xs, _ = nest_coords_in_parent(9, 3, 0, 0, refinement=3)
        assert np.allclose(np.diff(xs), 1.0 / 3.0)


class TestBilinearSample:
    def test_reproduces_linear_fields_exactly(self):
        yy, xx = np.mgrid[0:10, 0:12].astype(float)
        field = 2.0 * xx - 3.0 * yy + 1.0
        xs = np.linspace(0.5, 10.5, 7)
        ys = np.linspace(0.25, 8.75, 5)
        out = bilinear_sample(field, xs, ys)
        expected = 2.0 * xs[np.newaxis, :] - 3.0 * ys[:, np.newaxis] + 1.0
        assert np.allclose(out, expected)

    def test_exact_at_grid_points(self):
        field = np.arange(20.0).reshape(4, 5)
        out = bilinear_sample(field, np.array([0.0, 2.0, 4.0]), np.array([1.0, 3.0]))
        assert np.allclose(out, field[np.ix_([1, 3], [0, 2, 4])])

    def test_clamps_outside(self):
        field = np.arange(16.0).reshape(4, 4)
        out = bilinear_sample(field, np.array([-1.0, 5.0]), np.array([-2.0, 9.0]))
        assert out[0, 0] == field[0, 0]
        assert out[1, 1] == field[-1, -1]

    def test_within_bounds_of_input(self):
        rng = np.random.default_rng(0)
        field = rng.random((8, 8))
        out = bilinear_sample(field, np.linspace(0, 7, 23), np.linspace(0, 7, 19))
        assert out.min() >= field.min() - 1e-12
        assert out.max() <= field.max() + 1e-12

    def test_rejects_1d_field(self):
        with pytest.raises(GeometryError):
            bilinear_sample(np.zeros(5), np.array([0.0]), np.array([0.0]))


class TestRestrictMean:
    def test_exact_blocks(self):
        fine = np.arange(36.0).reshape(6, 6)
        out = restrict_mean(fine, 3)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(fine[:3, :3].mean())
        assert out[1, 1] == pytest.approx(fine[3:, 3:].mean())

    def test_conserves_mean_when_divisible(self):
        rng = np.random.default_rng(1)
        fine = rng.random((12, 9))
        out = restrict_mean(fine, 3)
        assert out.mean() == pytest.approx(fine.mean())

    def test_ragged_edges(self):
        fine = np.ones((7, 8))
        out = restrict_mean(fine, 3)
        assert out.shape == (3, 3)
        assert np.allclose(out, 1.0)

    def test_ragged_values(self):
        fine = np.arange(20.0).reshape(4, 5)
        out = restrict_mean(fine, 3)
        assert out.shape == (2, 2)
        # Right column block covers columns 3..4, rows 0..2.
        assert out[0, 1] == pytest.approx(fine[0:3, 3:5].mean())
        # Bottom-right corner block covers row 3, cols 3..4.
        assert out[1, 1] == pytest.approx(fine[3:, 3:].mean())

    def test_identity_refinement(self):
        fine = np.arange(12.0).reshape(3, 4)
        assert np.allclose(restrict_mean(fine, 1), fine)

    def test_rejects_bad_input(self):
        with pytest.raises(GeometryError):
            restrict_mean(np.zeros(5), 2)
