"""Tests for the state diagnostics."""

import numpy as np
import pytest

from repro.wrf.diagnostics import diagnose
from repro.wrf.fields import ModelState
from repro.wrf.solver import ShallowWaterSolver, SolverParams

PARAMS = SolverParams(dx_m=24_000.0)


class TestDiagnose:
    def test_rest_state(self):
        d = diagnose(ModelState.at_rest(20, 20, depth=10.0), dt=60.0, params=PARAMS)
        assert d.total_mass == pytest.approx(10.0 * 400)
        assert d.kinetic_energy == 0.0
        assert d.potential_energy == 0.0
        assert d.max_wind == 0.0
        assert d.healthy

    def test_kinetic_energy(self):
        state = ModelState.at_rest(4, 4, depth=2.0)
        state.u[:] = 3.0
        d = diagnose(state, dt=10.0, params=PARAMS)
        assert d.kinetic_energy == pytest.approx(0.5 * 2.0 * 9.0 * 16)
        assert d.max_wind == pytest.approx(3.0)

    def test_potential_energy_of_perturbation(self):
        state = ModelState.at_rest(10, 10, depth=10.0)
        state.h[5, 5] += 1.0
        d = diagnose(state, dt=10.0, params=PARAMS)
        assert d.potential_energy > 0.0

    def test_cfl_scaling(self):
        state = ModelState.at_rest(10, 10)
        d1 = diagnose(state, dt=10.0, params=PARAMS)
        d2 = diagnose(state, dt=20.0, params=PARAMS)
        assert d2.cfl == pytest.approx(2 * d1.cfl)

    def test_unhealthy_when_cfl_exceeds_one(self):
        state = ModelState.at_rest(10, 10)
        huge_dt = 10 * PARAMS.dx_m / state.max_wave_speed(PARAMS.gravity)
        assert not diagnose(state, dt=huge_dt, params=PARAMS).healthy

    def test_unhealthy_on_negative_depth(self):
        state = ModelState.at_rest(4, 4)
        state.h[0, 0] = -1.0
        assert not diagnose(state, dt=1.0, params=PARAMS).healthy

    def test_energy_roughly_conserved_over_run(self):
        """Lax-Friedrichs dissipates, so energy must not grow."""
        solver = ShallowWaterSolver(PARAMS)
        state = ModelState.with_disturbances(32, 32, seed=4, amplitude=0.5)
        dt = solver.stable_dt(state)
        e0 = diagnose(state, dt, PARAMS).total_energy
        out = solver.run(state, 20, dt=dt)
        e1 = diagnose(out, dt, PARAMS).total_energy
        assert e1 <= e0 * 1.01
        assert e1 > 0.0

    def test_stable_run_stays_healthy(self):
        solver = ShallowWaterSolver(PARAMS)
        state = ModelState.with_disturbances(24, 24, seed=9)
        dt = solver.stable_dt(state)
        for _ in range(10):
            state = solver.step(state, dt)
            assert diagnose(state, dt, PARAMS).healthy
