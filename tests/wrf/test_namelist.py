"""Tests for the WRF-namelist parser."""

import pytest

from repro.errors import ConfigurationError
from repro.wrf.namelist import Namelist, domains_from_namelist, parse_namelist

SAMPLE = """
! A three-domain configuration like the paper's Pacific runs.
&domains
 max_dom           = 3,
 e_we              = 287, 415, 233,
 e_sn              = 308, 445, 203,
 dx                = 24000,
 parent_id         = 0, 1, 1,
 i_parent_start    = 1, 30, 120,
 j_parent_start    = 1, 40, 80,
 parent_grid_ratio = 1, 3, 3,
/
&time_control
 history_interval = 60,
 io_form_history  = 2,
 restart          = .false.,
/
"""


class TestParse:
    def test_groups(self):
        nl = parse_namelist(SAMPLE)
        assert set(nl.groups) == {"domains", "time_control"}

    def test_scalar_types(self):
        nl = parse_namelist(SAMPLE)
        assert nl.get("time_control", "history_interval") == 60
        assert nl.get("time_control", "restart") is False

    def test_lists(self):
        nl = parse_namelist(SAMPLE)
        assert nl.group("domains")["e_we"] == [287, 415, 233]

    def test_comments_stripped(self):
        nl = parse_namelist("&g\n x = 1, ! trailing comment\n/\n")
        assert nl.get("g", "x") == 1

    def test_strings_and_floats(self):
        nl = parse_namelist("&g\n name = 'pacific',\n ratio = 1.5,\n/\n")
        assert nl.get("g", "name") == "pacific"
        assert nl.get("g", "ratio") == 1.5

    def test_unterminated_group(self):
        with pytest.raises(ConfigurationError):
            parse_namelist("&g\n x = 1,\n")

    def test_assignment_outside_group(self):
        with pytest.raises(ConfigurationError):
            parse_namelist("x = 1\n")

    def test_missing_group_error(self):
        nl = parse_namelist("&g\n/\n")
        with pytest.raises(ConfigurationError, match="domains"):
            nl.group("domains")


class TestDomains:
    def test_builds_specs(self):
        specs = domains_from_namelist(parse_namelist(SAMPLE))
        assert len(specs) == 3
        parent, n1, n2 = specs
        assert parent.name == "d01" and not parent.is_nest
        assert parent.nx == 287 and parent.dx_km == 24.0
        assert n1.parent == "d01" and n1.refinement == 3
        assert n1.dx_km == pytest.approx(8.0)
        assert n1.parent_start == (29, 39)  # 1-based -> 0-based
        assert n2.nx == 233 and n2.level == 1

    def test_second_level_nest(self):
        text = """
&domains
 max_dom = 3,
 e_we = 100, 60, 30,
 e_sn = 100, 60, 30,
 dx = 27000,
 parent_id = 0, 1, 2,
 i_parent_start = 1, 10, 5,
 j_parent_start = 1, 10, 5,
 parent_grid_ratio = 1, 3, 3,
/
"""
        specs = domains_from_namelist(parse_namelist(text))
        assert specs[2].parent == "d02"
        assert specs[2].level == 2
        assert specs[2].dx_km == pytest.approx(3.0)

    def test_bad_parent_id(self):
        text = """
&domains
 max_dom = 2,
 e_we = 100, 60,
 e_sn = 100, 60,
 parent_id = 0, 5,
 parent_grid_ratio = 1, 3,
/
"""
        with pytest.raises(ConfigurationError):
            domains_from_namelist(parse_namelist(text))

    def test_missing_max_dom(self):
        with pytest.raises(ConfigurationError):
            domains_from_namelist(parse_namelist("&domains\n e_we = 10,\n/\n"))

    def test_scalar_broadcast(self):
        text = """
&domains
 max_dom = 2,
 e_we = 100, 60,
 e_sn = 100, 60,
 dx = 24000,
 parent_id = 0, 1,
 i_parent_start = 1, 8,
 j_parent_start = 1, 8,
 parent_grid_ratio = 3,
/
"""
        specs = domains_from_namelist(parse_namelist(text))
        assert specs[1].refinement == 3
