"""Tests for the shallow-water solver."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.wrf.fields import ModelState
from repro.wrf.solver import BoundaryValues, ShallowWaterSolver, SolverParams


@pytest.fixture
def solver():
    return ShallowWaterSolver(SolverParams(dx_m=24_000.0))


class TestStability:
    def test_rest_state_stays_at_rest(self, solver):
        state = ModelState.at_rest(32, 24)
        out = solver.run(state, 10, dt=60.0)
        assert np.allclose(out.h, 10.0)
        assert np.allclose(out.u, 0.0)
        assert np.allclose(out.v, 0.0)

    def test_stable_dt_positive(self, solver):
        state = ModelState.with_disturbances(32, 32, seed=3)
        assert solver.stable_dt(state) > 0.0

    def test_disturbance_run_remains_finite(self, solver):
        state = ModelState.with_disturbances(48, 40, seed=1)
        out = solver.run(state, 50)
        assert np.isfinite(out.h).all()
        assert out.h.min() > 0.0

    def test_oversized_dt_detected(self, solver):
        state = ModelState.with_disturbances(32, 32, seed=2, amplitude=2.0)
        with pytest.raises(SimulationError):
            # Thousands of times the stable step must blow up.
            solver.run(state, 60, dt=solver.stable_dt(state) * 5000)


class TestConservation:
    def test_mass_conserved_periodic(self, solver):
        state = ModelState.with_disturbances(40, 40, seed=5)
        m0 = state.total_mass()
        out = solver.run(state, 30)
        assert out.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_tracer_bounded(self, solver):
        state = ModelState.with_disturbances(40, 40, seed=6)
        hi = state.q.max()
        out = solver.run(state, 20)
        # Lax-Friedrichs is monotone for pure advection of q at low CFL;
        # allow a tiny overshoot from the coupled velocity field.
        assert out.q.max() <= hi * 1.05 + 1e-9


class TestDynamics:
    def test_gravity_wave_spreads(self, solver):
        state = ModelState.at_rest(64, 64)
        state.h[32, 32] += 1.0
        out = solver.run(state, 10)
        # The bump must have radiated: peak decreases, and the
        # disturbance reaches points that started undisturbed.
        assert out.h[32, 32] < 11.0
        # Lax-Friedrichs decouples odd/even points, so probe an even
        # offset from the bump.
        assert abs(out.h[32, 28] - 10.0) > 1e-6

    def test_symmetric_initial_condition_stays_symmetric(self, solver):
        state = ModelState.at_rest(33, 33)
        yy, xx = np.mgrid[0:33, 0:33]
        state.h += np.exp(-((xx - 16) ** 2 + (yy - 16) ** 2) / 8.0)
        out = solver.run(state, 5)
        assert np.allclose(out.h, out.h[:, ::-1], atol=1e-12)
        assert np.allclose(out.h, out.h[::-1, :], atol=1e-12)

    def test_negative_depth_rejected(self, solver):
        state = ModelState.at_rest(8, 8)
        state.h[:] = -1.0
        with pytest.raises(SimulationError):
            solver.step(state, 1.0)


class TestBoundary:
    def test_boundary_ring_imposed(self, solver):
        state = ModelState.at_rest(16, 16)
        bc_state = ModelState.at_rest(16, 16, depth=7.0)
        bc = BoundaryValues(bc_state.h, bc_state.u, bc_state.v, bc_state.q)
        out = solver.step(state, 10.0, boundary=bc)
        assert np.allclose(out.h[0, :], 7.0)
        assert np.allclose(out.h[-1, :], 7.0)
        assert np.allclose(out.h[:, 0], 7.0)
        assert np.allclose(out.h[:, -1], 7.0)
        # Interior keeps the original depth.
        assert np.allclose(out.h[2:-2, 2:-2], 10.0)

    def test_boundary_shape_mismatch(self, solver):
        state = ModelState.at_rest(16, 16)
        wrong = ModelState.at_rest(8, 8)
        bc = BoundaryValues(wrong.h, wrong.u, wrong.v, wrong.q)
        with pytest.raises(SimulationError):
            solver.step(state, 10.0, boundary=bc)


class TestParams:
    def test_cfl_validation(self):
        with pytest.raises(SimulationError):
            SolverParams(cfl=1.0)

    def test_negative_steps_rejected(self, solver):
        with pytest.raises(SimulationError):
            solver.run(ModelState.at_rest(8, 8), -1)
