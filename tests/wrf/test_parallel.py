"""Tests for the tiled (distributed-style) solver engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.process_grid import ProcessGrid
from repro.wrf.fields import ModelState
from repro.wrf.parallel import TiledSolver
from repro.wrf.solver import ShallowWaterSolver, SolverParams

PARAMS = SolverParams(dx_m=24_000.0)


@pytest.fixture
def state():
    return ModelState.with_disturbances(30, 24, seed=7, amplitude=0.6)


class TestScatterGather:
    def test_roundtrip_identity(self, state):
        solver = TiledSolver(ProcessGrid(3, 2), PARAMS)
        tiles = solver.scatter(state)
        back = solver.gather(tiles, state.nx, state.ny)
        assert back.allclose(state, atol=0.0)

    def test_tile_count(self, state):
        solver = TiledSolver(ProcessGrid(3, 2), PARAMS)
        assert len(solver.scatter(state)) == 6

    def test_ragged_tiles(self):
        state = ModelState.with_disturbances(31, 23, seed=1)
        solver = TiledSolver(ProcessGrid(4, 3), PARAMS)
        back = solver.gather(solver.scatter(state), 31, 23)
        assert back.allclose(state, atol=0.0)


class TestBitIdentical:
    """The headline property: tiling never changes the answer."""

    @pytest.mark.parametrize("grid_shape", [(1, 1), (2, 2), (3, 2), (5, 4), (1, 6)])
    def test_matches_global_solver(self, state, grid_shape):
        dt = ShallowWaterSolver(PARAMS).stable_dt(state)
        reference = ShallowWaterSolver(PARAMS).run(state, 5, dt=dt)
        tiled = TiledSolver(ProcessGrid(*grid_shape), PARAMS).run(state, 5, dt)
        for f in ("h", "u", "v", "q"):
            assert np.array_equal(getattr(reference, f), getattr(tiled, f)), (
                f"field {f} diverged on grid {grid_shape}"
            )

    def test_processor_count_invariance(self, state):
        """Two different decompositions give the same answer — the
        property that lets the paper change allocations freely."""
        dt = ShallowWaterSolver(PARAMS).stable_dt(state)
        a = TiledSolver(ProcessGrid(2, 3), PARAMS).run(state, 4, dt)
        b = TiledSolver(ProcessGrid(6, 2), PARAMS).run(state, 4, dt)
        assert a.allclose(b, atol=0.0)

    def test_mass_conserved(self, state):
        dt = ShallowWaterSolver(PARAMS).stable_dt(state)
        out = TiledSolver(ProcessGrid(3, 3), PARAMS).run(state, 10, dt)
        assert out.total_mass() == pytest.approx(state.total_mass(), rel=1e-12)


class TestLedger:
    def test_message_count_per_step(self, state):
        solver = TiledSolver(ProcessGrid(3, 2), PARAMS)
        dt = ShallowWaterSolver(PARAMS).stable_dt(state)
        solver.run(state, 2, dt)
        # 6 tiles x 4 neighbours x 4 fields x 2 steps.
        assert solver.ledger.messages == 6 * 4 * 4 * 2
        assert solver.ledger.steps == 2
        assert solver.ledger.bytes > 0

    def test_bytes_scale_with_perimeter(self):
        small = ModelState.with_disturbances(16, 16, seed=2)
        large = ModelState.with_disturbances(32, 32, seed=2)
        dt = 10.0
        s1 = TiledSolver(ProcessGrid(2, 2), PARAMS)
        s2 = TiledSolver(ProcessGrid(2, 2), PARAMS)
        s1.run(small, 1, dt)
        s2.run(large, 1, dt)
        assert s2.ledger.bytes == 2 * s1.ledger.bytes  # perimeter doubles


class TestValidation:
    def test_too_fine_grid_rejected(self, state):
        with pytest.raises(ConfigurationError):
            TiledSolver(ProcessGrid(64, 2), PARAMS).run(state, 1, 10.0)

    def test_negative_steps_rejected(self, state):
        with pytest.raises(ConfigurationError):
            TiledSolver(ProcessGrid(2, 2), PARAMS).run(state, -1, 10.0)
