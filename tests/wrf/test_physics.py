"""Tests for the toy physics parameterisations."""

import numpy as np
import pytest

from repro.wrf.fields import ModelState
from repro.wrf.physics import PhysicsParams, apply_physics


class TestRelaxation:
    def test_relaxes_toward_reference(self):
        params = PhysicsParams(relaxation_rate=1e-3, reference_depth=10.0)
        state = ModelState.at_rest(8, 8, depth=12.0)
        apply_physics(state, 100.0, params)
        assert (state.h < 12.0).all()
        assert (state.h > 10.0).all()

    def test_reference_is_fixed_point(self):
        params = PhysicsParams()
        state = ModelState.at_rest(8, 8, depth=params.reference_depth)
        before = state.h.copy()
        apply_physics(state, 60.0, params)
        assert np.allclose(state.h, before)


class TestDrag:
    def test_damps_momentum(self):
        params = PhysicsParams(drag_rate=1e-3)
        state = ModelState.at_rest(8, 8)
        state.u[:] = 2.0
        state.v[:] = -1.0
        apply_physics(state, 100.0, params)
        assert (np.abs(state.u) < 2.0).all()
        assert (np.abs(state.v) < 1.0).all()
        # Drag never reverses the wind.
        assert (state.u > 0.0).all()

    def test_huge_dt_clamps_to_zero(self):
        params = PhysicsParams(drag_rate=1.0)
        state = ModelState.at_rest(4, 4)
        state.u[:] = 3.0
        apply_physics(state, 100.0, params)
        assert np.allclose(state.u, 0.0)


class TestConvectiveAdjustment:
    def test_rainout_above_saturation(self):
        params = PhysicsParams(saturation=0.5, rainout_fraction=0.5, latent_factor=0.1)
        state = ModelState.at_rest(4, 4)
        state.q[:] = 0.9
        h_before = state.h.copy()
        apply_physics(state, 1e-9, params)  # dt-independent adjustment
        # Half the 0.4 excess rains out.
        assert np.allclose(state.q, 0.7)
        assert np.allclose(state.h, h_before + 0.1 * 0.2)

    def test_subsaturated_untouched(self):
        params = PhysicsParams(saturation=0.7)
        state = ModelState.at_rest(4, 4)
        state.q[:] = 0.3
        apply_physics(state, 60.0, params)
        assert np.allclose(state.q, 0.3)

    def test_no_negative_tracer(self):
        params = PhysicsParams(saturation=0.1, rainout_fraction=1.0)
        state = ModelState.at_rest(4, 4)
        state.q[:] = 0.5
        apply_physics(state, 60.0, params)
        assert (state.q >= 0.0).all()


class TestParams:
    def test_rainout_fraction_range(self):
        with pytest.raises(ValueError):
            PhysicsParams(rainout_fraction=1.5)

    def test_returns_same_state(self):
        state = ModelState.at_rest(4, 4)
        assert apply_physics(state, 1.0, PhysicsParams()) is state
