"""Tests for repro.wrf.fields."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wrf.fields import ModelState


class TestConstruction:
    def test_at_rest(self):
        s = ModelState.at_rest(12, 8, depth=5.0)
        assert s.shape == (8, 12)
        assert s.nx == 12 and s.ny == 8
        assert np.allclose(s.h, 5.0)
        assert s.total_mass() == pytest.approx(5.0 * 96)

    def test_fields_contiguous_float64(self):
        s = ModelState.at_rest(5, 5)
        for f in (s.h, s.u, s.v, s.q):
            assert f.dtype == np.float64
            assert f.flags["C_CONTIGUOUS"]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelState(
                h=np.zeros((4, 4)), u=np.zeros((4, 5)),
                v=np.zeros((4, 4)), q=np.zeros((4, 4)),
            )

    def test_with_disturbances_deterministic(self):
        a = ModelState.with_disturbances(20, 20, seed=3)
        b = ModelState.with_disturbances(20, 20, seed=3)
        assert a.allclose(b)

    def test_disturbances_lower_pressure(self):
        s = ModelState.with_disturbances(30, 30, seed=1, depth=10.0)
        assert s.h.min() < 10.0
        assert s.q.max() > 0.0


class TestOps:
    def test_copy_is_deep(self):
        a = ModelState.at_rest(4, 4)
        b = a.copy()
        b.h += 1.0
        assert not a.allclose(b)

    def test_max_wave_speed(self):
        s = ModelState.at_rest(4, 4, depth=10.0)
        assert s.max_wave_speed(9.81) == pytest.approx((9.81 * 10.0) ** 0.5)
        s.u[0, 0] = 50.0
        assert s.max_wave_speed(9.81) == pytest.approx(50.0 + (9.81 * 10.0) ** 0.5)

    def test_allclose_tolerance(self):
        a = ModelState.at_rest(4, 4)
        b = a.copy()
        b.h += 1e-14
        assert a.allclose(b)
