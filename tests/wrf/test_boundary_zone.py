"""Tests for the specified+relaxation boundary zone."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.nest import Nest
from repro.wrf.solver import BoundaryValues, ShallowWaterSolver, SolverParams

PARAMS = SolverParams(dx_m=24_000.0)


def make_bc(nx, ny, depth=7.0, zone_width=1):
    s = ModelState.at_rest(nx, ny, depth=depth)
    return BoundaryValues(s.h, s.u, s.v, s.q, zone_width=zone_width)


class TestBoundaryValues:
    def test_zone_width_validated(self):
        with pytest.raises(SimulationError):
            make_bc(8, 8, zone_width=0)

    def test_blend_weights_shape(self):
        bc = make_bc(16, 16, zone_width=4)
        w = bc.blend_weights()
        assert len(w) == 4
        assert w[0] == 1.0
        assert all(w[i] > w[i + 1] for i in range(3))


class TestRelaxationZone:
    def test_width_one_matches_hard_ring(self):
        solver = ShallowWaterSolver(PARAMS)
        state = ModelState.at_rest(16, 16, depth=10.0)
        out = solver.step(state, 10.0, boundary=make_bc(16, 16, zone_width=1))
        assert np.allclose(out.h[0, :], 7.0)
        assert np.allclose(out.h[2:-2, 2:-2], 10.0)

    def test_wider_zone_blends_inward(self):
        solver = ShallowWaterSolver(PARAMS)
        state = ModelState.at_rest(20, 20, depth=10.0)
        out = solver.step(state, 10.0, boundary=make_bc(20, 20, zone_width=3))
        # Offset 0: fully specified.
        assert np.allclose(out.h[0, :], 7.0)
        # Offset 1: partially relaxed toward 7 (between the two values).
        assert 7.0 < out.h[1, 5] < 10.0
        # Offset 2: relaxed less than offset 1.
        assert out.h[1, 5] < out.h[2, 5] < 10.0 + 1e-12
        # Beyond the zone: untouched interior.
        assert np.allclose(out.h[5:-5, 5:-5], 10.0)

    def test_zone_wider_than_domain_safe(self):
        solver = ShallowWaterSolver(PARAMS)
        state = ModelState.at_rest(6, 6, depth=10.0)
        out = solver.step(state, 10.0, boundary=make_bc(6, 6, zone_width=10))
        assert np.isfinite(out.h).all()

    def test_relaxation_damps_boundary_reflections(self):
        """The physical motivation: a wave hitting the nest boundary
        reflects less with a relaxation zone than with a hard ring."""
        solver = ShallowWaterSolver(PARAMS)

        def run(zone_width):
            state = ModelState.at_rest(40, 40, depth=10.0)
            state.h[20, 20] += 1.0  # bump radiating outward
            dt = solver.stable_dt(state)
            bc = make_bc(40, 40, depth=10.0, zone_width=zone_width)
            for _ in range(60):
                state = solver.step(state, dt, boundary=bc)
            # Residual disturbance inside after the wave should have left.
            return float(np.abs(state.h[10:30, 10:30] - 10.0).sum())

        assert run(5) < run(1)


class TestNestZoneOption:
    def test_nest_accepts_zone_width(self):
        parent = DomainSpec("d01", 60, 50, dx_km=24.0)
        spec = DomainSpec("d02", 30, 24, 8.0, parent="d01", parent_start=(5, 5),
                          refinement=3, level=1)
        nest = Nest(spec, parent, boundary_zone_width=4)
        parent_state = ModelState.with_disturbances(60, 50, seed=3)
        nest.spawn(parent_state)
        nest.advance(parent_state, 30.0)
        assert np.isfinite(nest.state.h).all()

    def test_invalid_zone_rejected(self):
        parent = DomainSpec("d01", 60, 50, dx_km=24.0)
        spec = DomainSpec("d02", 30, 24, 8.0, parent="d01", parent_start=(5, 5),
                          refinement=3, level=1)
        with pytest.raises(ConfigurationError):
            Nest(spec, parent, boundary_zone_width=0)

    def test_quiescent_invariance_any_zone(self):
        parent = DomainSpec("d01", 60, 50, dx_km=24.0)
        spec = DomainSpec("d02", 30, 24, 8.0, parent="d01", parent_start=(5, 5),
                          refinement=3, level=1)
        nest = Nest(spec, parent, boundary_zone_width=5)
        parent_state = ModelState.at_rest(60, 50)
        nest.spawn(parent_state)
        nest.advance(parent_state, 30.0)
        assert np.allclose(nest.state.h, 10.0)
