"""Tests for namelist rendering and the domains round trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.wrf.grid import DomainSpec
from repro.wrf.namelist import (
    Namelist,
    domains_from_namelist,
    namelist_from_domains,
    parse_namelist,
    render_namelist,
)


class TestRenderNamelist:
    def test_roundtrip_values(self):
        nl = Namelist({
            "domains": {"max_dom": 2, "e_we": [100, 60], "dx": 24000},
            "time_control": {"restart": False, "name": "pacific",
                             "ratio": 1.5},
        })
        back = parse_namelist(render_namelist(nl))
        assert back.groups == nl.groups

    def test_booleans_fortran_style(self):
        text = render_namelist(Namelist({"g": {"flag": True, "off": False}}))
        assert ".true." in text and ".false." in text

    def test_strings_quoted(self):
        text = render_namelist(Namelist({"g": {"name": "pacific"}}))
        assert "'pacific'" in text


class TestDomainsRoundTrip:
    def test_table2_roundtrip(self):
        from repro.workloads.paper_configs import table2_domains

        cfg = table2_domains()
        specs = [cfg.parent, *cfg.siblings]
        back = domains_from_namelist(
            parse_namelist(render_namelist(namelist_from_domains(specs)))
        )
        assert [(s.nx, s.ny, s.parent_start, s.refinement, s.level)
                for s in back] == [
            (s.nx, s.ny, s.parent_start, s.refinement, s.level) for s in specs
        ]

    def test_two_level_roundtrip(self):
        specs = [
            DomainSpec("d01", 100, 100, 27.0),
            DomainSpec("d02", 60, 60, 9.0, parent="d01", parent_start=(9, 9),
                       refinement=3, level=1),
            DomainSpec("d03", 30, 30, 3.0, parent="d02", parent_start=(4, 4),
                       refinement=3, level=2),
        ]
        back = domains_from_namelist(
            parse_namelist(render_namelist(namelist_from_domains(specs)))
        )
        assert back[2].parent == "d02"
        assert back[2].level == 2
        assert back[2].dx_km == pytest.approx(3.0)

    def test_single_domain(self):
        specs = [DomainSpec("d01", 100, 100, 24.0)]
        back = domains_from_namelist(
            parse_namelist(render_namelist(namelist_from_domains(specs)))
        )
        assert len(back) == 1
        assert not back[0].is_nest

    def test_nest_first_rejected(self):
        nest = DomainSpec("d02", 60, 60, 8.0, parent="d01", parent_start=(0, 0),
                          refinement=3, level=1)
        with pytest.raises(ConfigurationError):
            namelist_from_domains([nest])

    def test_unknown_parent_rejected(self):
        specs = [
            DomainSpec("d01", 100, 100, 24.0),
            DomainSpec("d02", 60, 60, 8.0, parent="dXX", parent_start=(0, 0),
                       refinement=3, level=1),
        ]
        with pytest.raises(ConfigurationError):
            namelist_from_domains(specs)

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(1, 4),
        seed=st.integers(0, 200),
    )
    def test_random_configurations_roundtrip(self, k, seed):
        from repro.workloads.generator import random_siblings
        from repro.workloads.regions import pacific_parent

        parent = pacific_parent()
        specs = [parent, *random_siblings(parent, k, seed=seed)]
        back = domains_from_namelist(
            parse_namelist(render_namelist(namelist_from_domains(specs)))
        )
        assert [(s.nx, s.ny, s.parent_start, s.refinement) for s in back] == [
            (s.nx, s.ny, s.parent_start, s.refinement) for s in specs
        ]
