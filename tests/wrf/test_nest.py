"""Tests for repro.wrf.nest."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.nest import Nest


@pytest.fixture
def parent_spec():
    return DomainSpec("d01", nx=60, ny=50, dx_km=24.0)


@pytest.fixture
def nest_spec():
    return DomainSpec("d02", nx=30, ny=24, dx_km=8.0, parent="d01",
                      parent_start=(5, 5), refinement=3, level=1)


class TestSpawn:
    def test_spawn_interpolates_uniform_exactly(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        nest.spawn(ModelState.at_rest(60, 50, depth=9.0))
        assert nest.state is not None
        assert np.allclose(nest.state.h, 9.0)
        assert nest.state.shape == (24, 30)

    def test_advance_before_spawn_rejected(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        with pytest.raises(ConfigurationError):
            nest.advance(ModelState.at_rest(60, 50), 10.0)
        with pytest.raises(ConfigurationError):
            nest.feedback(ModelState.at_rest(60, 50))

    def test_nest_must_fit(self, parent_spec):
        bad = DomainSpec("d02", nx=300, ny=24, dx_km=8.0, parent="d01",
                         parent_start=(5, 5), refinement=3, level=1)
        with pytest.raises(ConfigurationError):
            Nest(bad, parent_spec)

    def test_wrong_parent_name(self, parent_spec, nest_spec):
        other = DomainSpec("dXX", nx=60, ny=50, dx_km=24.0)
        with pytest.raises(ConfigurationError):
            Nest(nest_spec, other)

    def test_non_nest_rejected(self, parent_spec):
        with pytest.raises(ConfigurationError):
            Nest(parent_spec, parent_spec)


class TestAdvance:
    def test_runs_r_fine_steps(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        parent_state = ModelState.with_disturbances(60, 50, seed=4)
        nest.spawn(parent_state)
        assert nest.advance(parent_state, 30.0) == 3

    def test_fine_dx_is_parent_over_r(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        assert nest.solver.params.dx_m == pytest.approx(24_000.0 / 3)

    def test_quiescent_parent_keeps_nest_quiescent(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        parent_state = ModelState.at_rest(60, 50)
        nest.spawn(parent_state)
        nest.advance(parent_state, 30.0)
        assert np.allclose(nest.state.h, 10.0)
        assert np.allclose(nest.state.u, 0.0)


class TestFeedback:
    def test_feedback_writes_footprint_only(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        parent_state = ModelState.at_rest(60, 50, depth=10.0)
        nest.spawn(parent_state)
        nest.state.h[:] = 20.0
        nest.feedback(parent_state)
        i0, j0 = nest_spec.parent_start
        w, h = nest_spec.parent_extent()
        assert np.allclose(parent_state.h[j0:j0 + h, i0:i0 + w], 20.0)
        # Outside the footprint untouched.
        assert parent_state.h[0, 0] == 10.0
        assert parent_state.h[j0 + h, i0] == 10.0

    def test_feedback_is_block_mean(self, parent_spec, nest_spec):
        nest = Nest(nest_spec, parent_spec)
        parent_state = ModelState.at_rest(60, 50)
        nest.spawn(parent_state)
        rng = np.random.default_rng(0)
        nest.state.h[:] = rng.random(nest.state.h.shape) + 5.0
        nest.feedback(parent_state)
        i0, j0 = nest_spec.parent_start
        assert parent_state.h[j0, i0] == pytest.approx(nest.state.h[:3, :3].mean())
