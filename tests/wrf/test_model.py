"""Tests for the full nested model driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wrf.grid import DomainSpec
from repro.wrf.model import NestedModel
from repro.wrf.physics import PhysicsParams


@pytest.fixture
def specs():
    parent = DomainSpec("d01", nx=60, ny=50, dx_km=24.0)
    s1 = DomainSpec("d02", 30, 24, 8.0, parent="d01", parent_start=(2, 2),
                    refinement=3, level=1)
    s2 = DomainSpec("d03", 24, 30, 8.0, parent="d01", parent_start=(30, 25),
                    refinement=3, level=1)
    return parent, [s1, s2]


class TestConstruction:
    def test_spawns_all_siblings(self, specs):
        parent, sibs = specs
        m = NestedModel(parent, sibs, seed=1)
        assert m.sibling_names == ["d02", "d03"]
        assert all(n.state is not None for n in m.nests.values())

    def test_rejects_overlapping_siblings(self, specs):
        parent, sibs = specs
        bad = DomainSpec("d04", 30, 24, 8.0, parent="d01", parent_start=(3, 3),
                         refinement=3, level=1)
        with pytest.raises(ConfigurationError):
            NestedModel(parent, [sibs[0], bad], seed=1)

    def test_rejects_nest_as_parent(self, specs):
        parent, sibs = specs
        with pytest.raises(ConfigurationError):
            NestedModel(sibs[0], [], seed=1)


class TestAdvance:
    def test_iteration_counter(self, specs):
        parent, sibs = specs
        m = NestedModel(parent, sibs, seed=1)
        m.run(3)
        assert m.iteration == 3

    def test_sibling_order_does_not_change_results(self, specs):
        """The linchpin of the paper: siblings are order-independent,
        so running them in parallel is semantically free."""
        parent, sibs = specs
        a = NestedModel(parent, sibs, seed=7)
        b = NestedModel(parent, sibs, seed=7)
        dt = min(a.stable_dt(), b.stable_dt())
        for _ in range(4):
            a.advance(dt, sibling_order=["d02", "d03"])
            b.advance(dt, sibling_order=["d03", "d02"])
        assert a.state.allclose(b.state)
        for name in a.sibling_names:
            assert a.nests[name].state.allclose(b.nests[name].state)

    def test_invalid_sibling_order(self, specs):
        parent, sibs = specs
        m = NestedModel(parent, sibs, seed=1)
        with pytest.raises(ConfigurationError):
            m.advance(sibling_order=["d02"])

    def test_one_way_nesting_leaves_parent_unchanged_by_nests(self, specs):
        parent, sibs = specs
        two_way = NestedModel(parent, sibs, seed=3, two_way=True)
        one_way = NestedModel(parent, sibs, seed=3, two_way=False)
        dt = min(two_way.stable_dt(), one_way.stable_dt())
        for _ in range(3):
            two_way.advance(dt)
            one_way.advance(dt)
        # With feedback the parent differs from the no-feedback run.
        assert not two_way.state.allclose(one_way.state)

    def test_physics_enabled_changes_solution(self, specs):
        parent, sibs = specs
        plain = NestedModel(parent, sibs, seed=3)
        phys = NestedModel(parent, sibs, seed=3,
                           physics=PhysicsParams(drag_rate=1e-4))
        dt = min(plain.stable_dt(), phys.stable_dt())
        for _ in range(3):
            plain.advance(dt)
            phys.advance(dt)
        assert not plain.state.allclose(phys.state)

    def test_negative_iterations_rejected(self, specs):
        parent, sibs = specs
        with pytest.raises(ConfigurationError):
            NestedModel(parent, sibs, seed=1).run(-2)

    def test_no_siblings_is_valid(self, specs):
        parent, _ = specs
        m = NestedModel(parent, [], seed=1)
        m.run(2)
        assert m.iteration == 2
