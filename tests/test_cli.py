"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_default_run(self, capsys):
        assert main(["simulate", "--ranks", "256"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "parallel" in out
        assert "improvement" in out

    def test_mapping_choice(self, capsys):
        assert main(["simulate", "--ranks", "256", "--mapping", "multilevel"]) == 0
        assert "multilevel" in capsys.readouterr().out

    def test_io_enabled(self, capsys):
        assert main(["simulate", "--ranks", "256", "--io", "pnetcdf"]) == 0
        out = capsys.readouterr().out
        assert "I/O 0.0" in out or "I/O" in out

    def test_timeline_flag(self, capsys):
        assert main(["simulate", "--ranks", "256", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "# compute" in out  # Gantt legend

    def test_builtin_configs(self, capsys):
        for config in ("fig2", "fig15"):
            assert main(["simulate", "--config", config, "--ranks", "256"]) == 0

    def test_namelist_source(self, tmp_path, capsys):
        nl = tmp_path / "namelist.input"
        nl.write_text(
            """
&domains
 max_dom = 2,
 e_we = 100, 60,
 e_sn = 100, 60,
 dx = 24000,
 parent_id = 0, 1,
 i_parent_start = 1, 10,
 j_parent_start = 1, 10,
 parent_grid_ratio = 1, 3,
/
"""
        )
        assert main(["simulate", "--namelist", str(nl), "--ranks", "64"]) == 0

    def test_missing_namelist_errors(self, capsys):
        assert main(["simulate", "--namelist", "/nonexistent", "--ranks", "64"]) == 2
        assert "error" in capsys.readouterr().err

    def test_namelist_without_nests_errors(self, tmp_path, capsys):
        nl = tmp_path / "namelist.input"
        nl.write_text("&domains\n max_dom = 1,\n e_we = 100,\n e_sn = 100,\n/\n")
        assert main(["simulate", "--namelist", str(nl), "--ranks", "64"]) == 2


class TestPlan:
    def test_prints_plan(self, capsys):
        assert main(["plan", "--config", "table2", "--ranks", "1024"]) == 0
        out = capsys.readouterr().out
        assert "plan[parallel]" in out
        assert "d02" in out


class TestProfile:
    def test_breakdown(self, capsys):
        assert main(["profile", "--nx", "200", "--ny", "220", "--ranks", "256"]) == 0
        out = capsys.readouterr().out
        assert "compute" in out
        assert "total step" in out

    def test_bgp_machine(self, capsys):
        assert main(["profile", "--nx", "200", "--ny", "220",
                     "--ranks", "256", "--machine", "bgp"]) == 0
        assert "BlueGene/P" in capsys.readouterr().out


class TestExperiment:
    def test_cheap_experiment(self, capsys):
        assert main(["experiment", "fig3b"]) == 0
        assert "Fig 3(b)" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "hops" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_lists_commands(self):
        help_text = build_parser().format_help()
        for cmd in ("simulate", "plan", "profile", "experiment", "trace"):
            assert cmd in help_text


class TestTrace:
    def test_default_scenario_traces_and_reconciles(self, tmp_path, capsys):
        out = tmp_path / "trace-out"
        assert main(["trace", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "model time per iteration" in text
        assert "reconcile" in text
        records = [
            json.loads(l)
            for l in (out / "trace.jsonl").read_text().splitlines()
            if l
        ]
        assert any(r["type"] == "phase" for r in records)
        chrome = json.loads((out / "trace.chrome.json").read_text())
        assert chrome["traceEvents"]
        profile = json.loads((out / "profile.json").read_text())
        assert [it["strategy"] for it in profile["iterations"]] == [
            "sequential", "parallel",
        ]

    def test_seeded_scenario(self, tmp_path, capsys):
        out = tmp_path / "seeded"
        assert main(["trace", "--seed", "7", "--out", str(out)]) == 0
        assert "scenario:" in capsys.readouterr().out
        assert (out / "profile.json").exists()

    def test_params_file_round_trip(self, tmp_path, capsys):
        from repro.verify.scenarios import Scenario

        params = tmp_path / "params.json"
        params.write_text(json.dumps(Scenario(num_siblings=1).params()))
        out = tmp_path / "from-params"
        assert main(["trace", "--params", str(params), "--out", str(out)]) == 0
        assert "'num_siblings': 1" in capsys.readouterr().out

    def test_trace_flag_on_simulate(self, tmp_path, capsys):
        trace = tmp_path / "sim.jsonl"
        assert main(["simulate", "--ranks", "256", "--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "records" in err
        assert trace.exists()
        assert (tmp_path / "sim.chrome.json").exists()

    def test_trace_flag_on_verify(self, tmp_path, capsys):
        trace = tmp_path / "verify.jsonl"
        assert main(["verify", "--budget", "2", "--seed", "1",
                     "--trace", str(trace)]) == 0
        records = [
            json.loads(l) for l in trace.read_text().splitlines() if l
        ]
        assert any(
            r["type"] == "span" and r["name"] == "verify.fuzz" for r in records
        )

    def test_tracer_left_disabled_after_cli_run(self, tmp_path):
        from repro.obs.trace import tracer

        assert main(["trace", "--out", str(tmp_path / "t")]) == 0
        assert not tracer().enabled


class TestRecommend:
    def test_prints_recommendation(self, capsys):
        assert main(["recommend", "--config", "fig15",
                     "--min-ranks", "128", "--max-ranks", "256"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out
        assert "fastest" in out

    def test_efficiency_floor_flag(self, capsys):
        assert main(["recommend", "--config", "fig15", "--min-ranks", "128",
                     "--max-ranks", "256", "--efficiency-floor", "0.9"]) == 0
        assert "efficiency" in capsys.readouterr().out


class TestReport:
    def test_stdout_report(self, capsys):
        assert main(["report", "fig3b"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "fig3b" in out

    def test_file_output(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["report", "fig3b", "fig4", "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "## fig3b" in text
        assert "## fig4" in text

    def test_rejects_unknown_name(self):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            main(["report", "fig99"])


class TestJobsValidation:
    """Every subcommand that accepts --jobs rejects 0/negative uniformly."""

    @pytest.mark.parametrize("bad", ["0", "-1", "-8"])
    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "fig3b"],
            ["recommend", "--config", "table2", "--max-ranks", "128"],
            ["verify", "--skip-fuzz"],
        ],
        ids=["experiment", "recommend", "verify"],
    )
    def test_nonpositive_jobs_rejected(self, argv, bad, capsys):
        assert main(argv + ["--jobs", bad]) == 2
        err = capsys.readouterr().err
        assert "--jobs must be >= 1" in err
        assert f"got {bad}" in err
        assert "Traceback" not in err

    def test_jobs_one_still_accepted(self, capsys):
        assert main(["verify", "--skip-fuzz", "--jobs", "1"]) == 0

    def test_error_fires_before_any_work(self, capsys, monkeypatch):
        # The validation runs centrally in main(), before dispatch.
        import repro.cli as cli

        def forbidden(args):  # pragma: no cover - must not be reached
            raise AssertionError("dispatched despite invalid --jobs")

        monkeypatch.setattr(cli, "_cmd_recommend", forbidden)
        parser = cli.build_parser()
        args = parser.parse_args(
            ["recommend", "--config", "table2", "--jobs", "0"]
        )
        args.func = forbidden
        with pytest.raises(Exception, match="--jobs must be >= 1"):
            cli._validate_jobs(args)


class TestServe:
    def test_rejects_nonpositive_cache_ttl(self, capsys):
        assert main(["serve", "--port", "0", "--cache-ttl", "0"]) == 2
        assert "--cache-ttl must be > 0" in capsys.readouterr().err

    def test_serve_smoke_start_healthz_shutdown(self):
        """Start `repro serve` in a subprocess, hit /healthz, SIGINT it."""
        import json as _json
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        proc = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.cli import main; raise SystemExit("
             "main(['serve', '--port', '0', '--no-warm']))"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if line.startswith("listening on "):
                    url = line.split("listening on ", 1)[1].strip()
                    break
            assert url, "server never printed its listening line"
            with urllib.request.urlopen(url + "/healthz", timeout=30) as resp:
                body = _json.loads(resp.read())
            assert body["status"] == "ok"
            assert body["warmed"] is False
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
            assert "shutting down" in proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


class TestEnsemble:
    ARGS = ["ensemble", "--members", "4", "--families", "2", "--ticks", "2",
            "--ranks", "1024", "--parent-nx", "32", "--parent-ny", "24",
            "--nest-px", "8"]

    def test_summary_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "4 members" in out
        assert "member-ticks/s" in out
        assert "dedup:" in out

    def test_events_reported(self, capsys):
        assert main(self.ARGS + ["--event", "branch:0:0",
                                 "--event", "kill:1:1",
                                 "--event", "spawn:1:99"]) == 0
        out = capsys.readouterr().out
        assert "+1 spawned" in out
        assert "+1 branched" in out
        assert "-1 killed" in out

    def test_dashboard_frames(self, capsys):
        assert main(self.ARGS + ["--dashboard"]) == 0
        out = capsys.readouterr().out
        assert "ensemble tick 1/2" in out
        assert "ensemble tick 2/2" in out
        assert "progress" in out

    def test_json_stream_and_summary(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(lines) == 3  # one per tick + final
        assert lines[0]["tick"] == 0
        assert lines[-1]["final"] is True
        assert lines[-1]["member_ticks"] == 8
        assert "dedup_hit_rate" in lines[-1]

    def test_no_memo_baseline(self, capsys):
        assert main(self.ARGS + ["--no-memo", "--json"]) == 0
        final = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert final["memo"]["local_hits"] == 0
        assert final["memo"]["shared_hits"] == 0

    def test_rejects_bad_event(self, capsys):
        assert main(self.ARGS + ["--event", "warp:1"]) == 2
        assert "unknown ensemble event action" in capsys.readouterr().err

    def test_rejects_bad_members(self, capsys):
        assert main(["ensemble", "--members", "0"]) == 2
        assert "--members" in capsys.readouterr().err

    def test_jobs_validated(self, capsys):
        assert main(self.ARGS + ["--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err
