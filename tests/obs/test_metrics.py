"""Tests for the metrics registry: boundaries, merging, differentials."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
)
from repro.util.rng import make_rng


# -------------------------------------------------------------- counters
class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("t")
        c.inc()
        c.inc(4)
        c.inc(0)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("t")
        with pytest.raises(ValueError, match="negative"):
            c.inc(-1)
        assert c.value == 0

    def test_reset_and_snapshot(self):
        c = Counter("t")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("t")
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.updates == 2

    def test_set_max_keeps_extreme(self):
        g = Gauge("t")
        g.set_max(3)
        g.set_max(10)
        g.set_max(7)
        assert g.value == 10
        assert g.updates == 3

    def test_set_max_accepts_negative_first_sample(self):
        # The first sample must stick even when it is below the zero
        # initial value — "no samples yet" is not a sample of 0.
        g = Gauge("t")
        g.set_max(-5)
        assert g.value == -5


# ------------------------------------------------------------ histograms
class TestHistogramBoundaries:
    def test_boundary_exact_values_take_the_bucket_they_bound(self):
        h = Histogram("t", [1.0, 2.0, 4.0])
        h.observe(1.0)
        h.observe(2.0)
        h.observe(4.0)
        # Prometheus `le` semantics: value <= bound lands in that bucket.
        assert h.counts == [1, 1, 1, 0]

    def test_interior_and_underflow_values(self):
        h = Histogram("t", [1.0, 2.0, 4.0])
        h.observe(-3.0)
        h.observe(0.5)
        h.observe(1.5)
        h.observe(3.999)
        assert h.counts == [2, 1, 1, 0]
        assert h.count == 4
        assert h.sum == pytest.approx(2.999)

    def test_overflow_bucket_catches_everything_above_the_last_bound(self):
        h = Histogram("t", [1.0, 2.0, 4.0])
        h.observe(4.0000001)
        h.observe(1e308)
        h.observe(float("inf"))
        assert h.counts == [0, 0, 0, 3]
        assert h.count == 3

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="no bucket boundaries"):
            Histogram("t", [])
        with pytest.raises(ValueError, match="finite"):
            Histogram("t", [1.0, float("inf")])
        with pytest.raises(ValueError, match="finite"):
            Histogram("t", [float("nan")])
        with pytest.raises(ValueError, match="ascending"):
            Histogram("t", [1.0, 1.0])
        with pytest.raises(ValueError, match="ascending"):
            Histogram("t", [2.0, 1.0])

    def test_reset_zeroes_counts_in_place(self):
        h = Histogram("t", [1.0, 2.0])
        h.observe(0.5)
        h.observe(9.0)
        h.reset()
        assert h.counts == [0, 0, 0]
        assert h.count == 0
        assert h.sum == 0.0
        assert h.bounds == (1.0, 2.0)


# --------------------------------------------------------------- merging
def _snapshot(counter_v, gauge_v, gauge_updates, hist_obs):
    reg = MetricsRegistry()
    c = reg.counter("m.counter")
    c.inc(counter_v)
    g = reg.gauge("m.gauge")
    for _ in range(gauge_updates):
        g.set_max(gauge_v)
    h = reg.histogram("m.hist", [1.0, 10.0])
    for v in hist_obs:
        h.observe(v)
    return reg.snapshot()


class TestMergeSnapshots:
    def test_counters_add_gauges_max_histograms_bucket_add(self):
        a = _snapshot(3, 5, 1, [0.5, 20.0])
        b = _snapshot(4, 2, 2, [5.0])
        merged = merge_snapshots(a, b)
        assert merged["m.counter"]["value"] == 7
        assert merged["m.gauge"]["value"] == 5
        assert merged["m.gauge"]["updates"] == 3
        assert merged["m.hist"]["counts"] == [1, 1, 1]
        assert merged["m.hist"]["count"] == 3
        assert merged["m.hist"]["sum"] == pytest.approx(25.5)

    def test_associative_and_commutative(self):
        a = _snapshot(1, 9, 1, [0.1])
        b = _snapshot(5, 3, 4, [2.0, 100.0])
        c = _snapshot(2, 11, 2, [])
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_disjoint_names_pass_through(self):
        a = {"only.a": {"type": "counter", "value": 1}}
        b = {"only.b": {"type": "counter", "value": 2}}
        merged = merge_snapshots(a, b)
        assert merged == {
            "only.a": {"type": "counter", "value": 1},
            "only.b": {"type": "counter", "value": 2},
        }

    def test_type_mismatch_rejected(self):
        a = {"m": {"type": "counter", "value": 1}}
        b = {"m": {"type": "gauge", "value": 1, "updates": 1}}
        with pytest.raises(TypeError, match="cannot merge"):
            merge_snapshots(a, b)

    def test_histogram_boundary_mismatch_rejected(self):
        a = {"m": {"type": "histogram", "bounds": [1.0], "counts": [0, 0],
                   "count": 0, "sum": 0.0}}
        b = {"m": {"type": "histogram", "bounds": [2.0], "counts": [0, 0],
                   "count": 0, "sum": 0.0}}
        with pytest.raises(ValueError, match="boundary mismatch"):
            merge_snapshots(a, b)


# -------------------------------------------------------------- registry
class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", [1, 2]) is reg.histogram("h", [1, 2])

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_histogram_boundary_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", [1.0, 3.0])

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("netsim.hits").inc(2)
        reg.counter("iosim.events").inc(1)
        snap = reg.snapshot("netsim.")
        assert list(snap) == ["netsim.hits"]

    def test_reset_preserves_object_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("a.count")
        g = reg.gauge("a.gauge")
        c.inc(7)
        g.set(3)
        reg.reset()
        # Hot paths hold module-level references; reset must zero the
        # very same objects, never replace them.
        assert reg.counter("a.count") is c
        assert c.value == 0
        assert g.value == 0

    def test_reset_prefix_scopes_the_zeroing(self):
        reg = MetricsRegistry()
        reg.counter("a.count").inc(1)
        reg.counter("b.count").inc(1)
        reg.reset("a.")
        assert reg.counter("a.count").value == 0
        assert reg.counter("b.count").value == 1


# ----------------------------------------------------------- differential
class TestNetsimDifferential:
    def test_route_cache_counters_match_stats_over_fuzzed_batch(
        self, monkeypatch
    ):
        """The registry's hit/miss counters ARE `route_cache_stats()`.

        Runs a batch of fuzzed scenarios through the real engine and
        checks the two counting paths agree *after every build*, not just
        at the end — any drift (a miss counted without a metric inc, a
        reset that misses one side) shows up at the first divergence.
        The route cache belongs to the vector engine, so pin the backend
        (under ``REPRO_NETSIM=scalar`` the cache is never touched and
        the reconciliation would be vacuous).
        """
        monkeypatch.setenv("REPRO_NETSIM", "vector")
        from repro.netsim.engine import reset_route_cache, route_cache_stats
        from repro.verify.scenarios import random_scenario

        reset_route_cache()
        registry().reset("netsim.")
        rng = make_rng(1234)
        built = 0
        attempts = 0
        while built < 6 and attempts < 40:
            attempts += 1
            scenario = random_scenario(rng)
            try:
                scenario.build()
            except ConfigurationError:
                continue  # infeasible draw: resample, as the fuzzer does
            built += 1
            stats = route_cache_stats()
            snap = registry().snapshot("netsim.route_cache.")
            assert snap["netsim.route_cache.hits"]["value"] == stats.hits
            assert snap["netsim.route_cache.misses"]["value"] == stats.misses
        assert built == 6
        stats = route_cache_stats()
        assert stats.hits + stats.misses > 0
        # Every cache miss routes one exchange and records its link-load
        # extreme, so the histogram count is the miss count.
        hist = registry().get("netsim.exchange.max_link_bytes")
        assert hist is not None
        assert hist.count == stats.misses

    def test_reset_route_cache_zeroes_the_metric_side_too(self):
        from repro.netsim.engine import reset_route_cache, route_cache_stats

        reset_route_cache()
        stats = route_cache_stats()
        snap = registry().snapshot("netsim.route_cache.")
        assert stats.hits == snap["netsim.route_cache.hits"]["value"] == 0
        assert stats.misses == snap["netsim.route_cache.misses"]["value"] == 0


# ------------------------------------------------------------ process RSS
class TestProcessRss:
    """The proc.rss.* gauges behind the strong-scaling memory assertions."""

    def test_current_rss_is_positive_here(self):
        from repro.obs.metrics import current_rss_bytes

        # A running CPython interpreter is comfortably over a megabyte.
        assert current_rss_bytes() > 2**20

    def test_peak_source_available(self):
        from repro.obs.metrics import peak_rss_bytes

        # ru_maxrss and /proc VmRSS account pages differently, so
        # neither strictly bounds the other; sample_rss() reconciles
        # them with max(). Here we only require the source works.
        assert peak_rss_bytes() > 2**20

    def test_sample_rss_sets_gauges(self):
        from repro.obs.metrics import sample_rss

        registry().reset("proc.rss.")
        out = sample_rss()
        snap = registry().snapshot("proc.rss.")
        assert snap["proc.rss.current_bytes"]["value"] == out["current"]
        assert snap["proc.rss.peak_bytes"]["value"] == out["peak"]
        assert out["peak"] >= out["current"] > 0

    def test_peak_gauge_is_high_water_mark(self):
        from repro.obs.metrics import sample_rss

        registry().reset("proc.rss.")
        first = sample_rss()["peak"]
        # A second sample can only hold or raise the recorded peak.
        sample_rss()
        snap = registry().snapshot("proc.rss.")
        assert snap["proc.rss.peak_bytes"]["value"] >= first

    def test_throttled_sample_skips_within_window(self):
        import repro.obs.metrics as m

        assert m.sample_rss() is not None  # prime the sample clock
        # Within the throttle window: no procfs read, no return value,
        # so traced callers skip their per-sample work too — what keeps
        # traced simulate inside the tracing-overhead budget.
        assert m.sample_rss(throttle_s=3600) is None
        assert m.sample_rss(throttle_s=0.0) is not None

    def test_proc_metrics_excluded_from_task_capture(self):
        """proc.* is process-level: the pool's per-task pruning drops it."""
        from repro.exec.pool import _prune_untouched
        from repro.obs.metrics import sample_rss

        sample_rss()
        pruned = _prune_untouched(registry().snapshot())
        assert not any(name.startswith("proc.") for name in pruned)
