"""Tests for the structured tracer: nesting, ordering, overhead, round-trip.

The deterministic tests inject a :class:`FakeClock` that advances one
tick per read, which makes every duration an exact integer function of
the span tree shape: a span's duration is ``2 * descendants + 1`` ticks
and its self time is ``direct_children + 1`` ticks. The hypothesis test
exploits that to prove span durations always decompose into self time
plus direct children, with no gaps and no overlap.
"""

from __future__ import annotations

import threading
import tracemalloc
from itertools import repeat

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import (
    NULL_SPAN,
    JsonlSink,
    TraceBuffer,
    Tracer,
    read_jsonl,
    tracer,
    tracing,
)


class FakeClock:
    """Deterministic monotonic clock: every read advances one tick."""

    def __init__(self) -> None:
        self.t = 0

    def __call__(self) -> int:
        self.t += 1
        return self.t


def make_tracer():
    buf = TraceBuffer()
    tr = Tracer(buf, clock=FakeClock())
    tr.enabled = True
    return tr, buf


# ------------------------------------------------------------- nesting
class TestNesting:
    def test_ids_parents_and_depths(self):
        tr, buf = make_tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
        names = [r["name"] for r in buf.records]
        assert names == ["c", "b", "a"]  # completion order: innermost first
        by_name = {r["name"]: r for r in buf.records}
        assert by_name["a"]["parent"] == 0
        assert by_name["b"]["parent"] == by_name["a"]["id"]
        assert by_name["c"]["parent"] == by_name["b"]["id"]
        assert [by_name[n]["depth"] for n in "abc"] == [0, 1, 2]
        ids = [r["id"] for r in buf.records]
        assert len(set(ids)) == len(ids)

    def test_siblings_share_parent(self):
        tr, buf = make_tracer()
        with tr.span("root"):
            with tr.span("first"):
                pass
            with tr.span("second"):
                pass
        by_name = {r["name"]: r for r in buf.records}
        root_id = by_name["root"]["id"]
        assert by_name["first"]["parent"] == root_id
        assert by_name["second"]["parent"] == root_id
        assert by_name["first"]["depth"] == by_name["second"]["depth"] == 1

    def test_child_interval_strictly_inside_parent(self):
        tr, buf = make_tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {r["name"]: r for r in buf.records}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] < inner["ts"]
        assert inner["ts"] + inner["dur"] < outer["ts"] + outer["dur"]

    def test_depth_resets_between_roots(self):
        tr, buf = make_tracer()
        with tr.span("first"):
            pass
        with tr.span("second"):
            pass
        assert [r["depth"] for r in buf.records] == [0, 0]
        assert [r["parent"] for r in buf.records] == [0, 0]
        assert tr.current_depth() == 0

    def test_error_recorded_and_stack_unwound(self):
        tr, buf = make_tracer()
        try:
            with tr.span("boom", {"k": 1}):
                raise ValueError("nope")
        except ValueError:
            pass
        (rec,) = buf.records
        assert rec["error"] == "ValueError"
        assert rec["attrs"] == {"k": 1}
        assert tr.current_depth() == 0

    def test_events_and_phases_link_to_enclosing_span(self):
        tr, buf = make_tracer()
        with tr.span("iter"):
            tr.event("mark", {"n": 1})
            tr.phase("parent", 1.25)
        span = next(r for r in buf.records if r["type"] == "span")
        event = next(r for r in buf.records if r["type"] == "event")
        phase = next(r for r in buf.records if r["type"] == "phase")
        assert event["parent"] == span["id"]
        assert phase["parent"] == span["id"]
        assert event["depth"] == phase["depth"] == 1
        assert phase["phase"] == "parent"
        assert phase["model_time"] == 1.25
        assert isinstance(phase["model_time"], float)


# ------------------------------------------------------------- disabled
class TestDisabledFastPath:
    def test_span_is_the_null_singleton(self):
        tr = Tracer(TraceBuffer())
        assert not tr.enabled
        assert tr.span("anything") is NULL_SPAN
        assert tr.span("other", {"ignored": True}) is NULL_SPAN

    def test_disabled_emits_nothing(self):
        buf = TraceBuffer()
        tr = Tracer(buf)
        with tr.span("quiet"):
            tr.event("quiet")
            tr.phase("quiet", 3.0)
        assert buf.records == []

    def test_disabled_mode_zero_allocation(self):
        tr = Tracer(TraceBuffer())
        with tr.span("warmup"):  # touch every code path once before measuring
            pass
        tr.event("warmup")
        tr.phase("warmup", 0.0)
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            current0, _ = tracemalloc.get_traced_memory()
            for _ in repeat(None, 50_000):
                with tr.span("hot"):
                    pass
                tr.event("hot")
                tr.phase("hot", 0.0)
            current1, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # A single hidden per-call allocation (>= 16 bytes) over 50k
        # iterations would show up as >= 800 kB; allow only trivial slack.
        assert current1 - current0 <= 256
        assert peak - current0 <= 4096


# ------------------------------------------------------------ round-trip
class TestJsonlRoundTrip:
    def test_jsonl_matches_in_memory_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        buf = TraceBuffer()
        with open(path, "w") as fh:
            jsonl = JsonlSink(fh)

            def tee(record):
                buf(record)
                jsonl(record)

            tr = Tracer(tee, clock=FakeClock())
            tr.enabled = True
            with tr.span("outer", {"ranks": 256}):
                with tr.span("inner"):
                    pass
                tr.event("mark")
                tr.phase("parent", 0.5, {"machine": "BlueGene/L"})
        assert read_jsonl(path) == buf.records

    def test_one_compact_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fh:
            tr = Tracer(JsonlSink(fh), clock=FakeClock())
            tr.enabled = True
            with tr.span("a"):
                tr.event("b")
        lines = [l for l in path.read_text().splitlines() if l]
        assert len(lines) == 2
        assert all("\n" not in l and ", " not in l for l in lines)


# ------------------------------------------------------------ concurrency
class TestConcurrency:
    def test_threads_nest_independently_into_one_sink(self):
        buf = TraceBuffer()
        tr = Tracer(buf)
        tr.enabled = True
        depth, iters = 3, 50
        barrier = threading.Barrier(2)

        def work(label):
            barrier.wait()
            for i in range(iters):
                with tr.span(f"{label}.outer"):
                    with tr.span(f"{label}.mid"):
                        with tr.span(f"{label}.leaf"):
                            pass

        threads = [threading.Thread(target=work, args=(l,)) for l in ("x", "y")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(buf.records) == 2 * depth * iters
        ids = [r["id"] for r in buf.records]
        assert len(set(ids)) == len(ids)
        by_id = {r["id"]: r for r in buf.records}
        for r in buf.records:
            if r["parent"] == 0:
                assert r["depth"] == 0
                continue
            parent = by_id[r["parent"]]
            # Nesting never crosses threads, and depth follows the stack.
            assert parent["tid"] == r["tid"]
            assert r["depth"] == parent["depth"] + 1
            assert r["name"].split(".")[0] == parent["name"].split(".")[0]


# --------------------------------------------------------- global tracer
class TestGlobalTracer:
    def test_tracing_context_enables_and_restores(self):
        tr = tracer()
        assert not tr.enabled
        with tracing() as buf:
            assert tr.enabled
            with tr.span("inside"):
                pass
        assert not tr.enabled
        assert [r["name"] for r in buf.records] == ["inside"]

    def test_tracing_preserves_empty_buffer_identity(self):
        # Regression: TraceBuffer defines __len__, so an *empty* buffer is
        # falsy; `sink or TraceBuffer()` would silently swap in a hidden
        # fresh buffer and the caller's would stay empty forever.
        buf = TraceBuffer()
        with tracing(buf) as active:
            assert active is buf
            tracer().event("ping")
        assert len(buf) == 1

    def test_constructor_and_configure_keep_empty_buffer(self):
        buf = TraceBuffer()
        tr = Tracer(buf)
        assert tr._sink is buf
        other = TraceBuffer()
        tr.configure(other)
        assert tr._sink is other

    def test_nested_tracing_restores_outer_sink(self):
        outer = TraceBuffer()
        inner = TraceBuffer()
        with tracing(outer):
            tracer().event("one")
            with tracing(inner):
                tracer().event("two")
            tracer().event("three")
        assert [r["name"] for r in outer.records] == ["one", "three"]
        assert [r["name"] for r in inner.records] == ["two"]


# ------------------------------------------------------------- property
#: A span tree: each node is the list of its children's subtrees.
span_trees = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=3),
    max_leaves=12,
)


def _run_tree(tr, tree):
    for child in tree:
        with tr.span("s"):
            _run_tree(tr, child)


def _count(tree) -> int:
    return sum(1 + _count(child) for child in tree)


@settings(max_examples=60, deadline=None)
@given(span_trees)
def test_span_durations_decompose_into_self_plus_children(tree):
    tr, buf = make_tracer()
    _run_tree(tr, tree)
    records = buf.records
    assert len(records) == _count(tree)

    child_dur = {}
    child_count = {}
    emitted = set()
    for r in records:
        # Completion order is a valid post-order: children come first.
        assert r["parent"] not in emitted or r["parent"] == 0
        emitted.add(r["id"])
        child_dur[r["parent"]] = child_dur.get(r["parent"], 0) + r["dur"]
        child_count[r["parent"]] = child_count.get(r["parent"], 0) + 1

    for r in records:
        children = child_dur.get(r["id"], 0)
        self_ticks = r["dur"] - children
        # One tick per boundary clock read: self time is exactly the
        # span's own exit read plus one enter read per direct child, so
        # duration decomposes into self + children with no gap/overlap.
        assert self_ticks == child_count.get(r["id"], 0) + 1
        assert r["dur"] == self_ticks + children
