"""Tests for the profile report layer and Chrome trace export."""

from __future__ import annotations

import json

from repro.obs import TraceSession
from repro.obs.metrics import registry
from repro.obs.report import (
    ITERATION_SPAN,
    aggregate_wall,
    build_report,
    chrome_trace,
    phase_breakdown,
    reconcile,
    write_chrome_trace,
)
from repro.obs.trace import read_jsonl, tracer, tracing
from repro.verify.scenarios import Scenario


def _span(id, parent, name, dur, ts=0, depth=0):
    return {"type": "span", "name": name, "id": id, "parent": parent,
            "depth": depth, "tid": 1, "ts": ts, "dur": dur}


def _phase(parent, phase, model_time, attrs):
    return {"type": "phase", "phase": phase, "model_time": model_time,
            "id": 99, "parent": parent, "depth": 1, "tid": 1, "ts": 0,
            "attrs": attrs}


# ------------------------------------------------------------ wall profile
class TestAggregateWall:
    def test_self_time_subtracts_direct_children_only(self):
        records = [
            _span(3, 2, "leaf", 10),
            _span(2, 1, "mid", 40),
            _span(1, 0, "root", 100),
        ]
        by_name = {a.name: a for a in aggregate_wall(records)}
        assert by_name["root"].self_ns == 60   # 100 - mid(40); leaf is not direct
        assert by_name["mid"].self_ns == 30    # 40 - leaf(10)
        assert by_name["leaf"].self_ns == 10

    def test_groups_by_name_with_min_max(self):
        records = [
            _span(1, 0, "work", 5),
            _span(2, 0, "work", 9),
            _span(3, 0, "other", 100),
        ]
        aggs = aggregate_wall(records)
        assert [a.name for a in aggs] == ["other", "work"]  # heaviest first
        work = aggs[1]
        assert (work.count, work.total_ns, work.min_ns, work.max_ns) == (2, 14, 5, 9)

    def test_non_span_records_ignored(self):
        records = [_phase(1, "parent", 1.0, {}), _span(1, 0, "root", 7)]
        (agg,) = aggregate_wall(records)
        assert agg.name == "root"


# ----------------------------------------------------------- model profile
class TestPhaseBreakdown:
    def test_sequential_iteration_sums_nests(self):
        common = {"strategy": "sequential", "machine": "BlueGene/L",
                  "ranks": 256, "concurrent": False}
        records = [
            _phase(1, "parent", 2.0, {**common, "wait": 0.25}),
            _phase(1, "nest", 1.0, {**common, "sibling": "d02",
                                    "wait_contrib": 0.125, "sync_contrib": 0.0}),
            _phase(1, "nest", 0.5, {**common, "sibling": "d03",
                                    "wait_contrib": 0.0625, "sync_contrib": 0.0}),
            _phase(1, "io", 0.75, common),
        ]
        (p,) = phase_breakdown(records)
        assert p.strategy == "sequential"
        assert not p.concurrent
        assert p.nest_phase_time == 1.5          # sum under the default strategy
        assert p.integration_time == 3.5
        assert p.total_time == 4.25
        assert p.mpi_wait == 0.25 + 0.125 + 0.0625
        assert p.nests == (("d02", 1.0), ("d03", 0.5))

    def test_parallel_iteration_takes_the_slowest_nest(self):
        common = {"strategy": "parallel", "machine": "BlueGene/P",
                  "ranks": 512, "concurrent": True}
        records = [
            _phase(2, "parent", 2.0, {**common, "wait": 0.1}),
            _phase(2, "nest", 1.0, {**common, "sibling": "d02",
                                    "wait_contrib": 0.05, "sync_contrib": 0.01}),
            _phase(2, "nest", 0.4, {**common, "sibling": "d03",
                                    "wait_contrib": 0.02, "sync_contrib": 0.03}),
        ]
        (p,) = phase_breakdown(records)
        assert p.concurrent
        assert p.nest_phase_time == 1.0          # max: siblings run concurrently
        assert p.sync_wait == 0.04
        assert p.mpi_wait == 0.1 + 0.07 + 0.04

    def test_groups_split_by_enclosing_span(self):
        common = {"strategy": "sequential", "machine": "m", "ranks": 1,
                  "concurrent": False}
        records = [
            _phase(1, "parent", 1.0, common),
            _phase(2, "parent", 3.0, common),
        ]
        profiles = phase_breakdown(records)
        assert [p.span_id for p in profiles] == [1, 2]
        assert [p.parent_time for p in profiles] == [1.0, 3.0]


# ------------------------------------------------------------ reconcile
class TestReconcile:
    def test_real_scenario_reconciles_exactly(self):
        scenario = Scenario()  # seeded default: bgl, 256 ranks, 2 siblings
        with tracing() as buf:
            run = scenario.build()
        assert reconcile(buf.records, run.reports) == []

    def test_tampered_model_time_is_reported(self):
        scenario = Scenario(num_siblings=1)
        with tracing() as buf:
            run = scenario.build()
        for r in buf.records:
            if r.get("type") == "phase" and r["phase"] == "parent":
                r["model_time"] += 1e-6
        problems = reconcile(buf.records, run.reports)
        assert problems
        assert any("parent" in p for p in problems)

    def test_count_mismatch_is_reported(self):
        scenario = Scenario(num_siblings=1)
        with tracing() as buf:
            run = scenario.build()
        problems = reconcile(buf.records, list(run.reports) + [run.seq_report])
        assert any("expected 3" in p for p in problems)


# ---------------------------------------------------------- chrome export
class TestChromeTrace:
    def test_valid_trace_event_structure(self):
        with tracing() as buf:
            Scenario(num_siblings=1).build()
        doc = chrome_trace(buf.records)
        json.loads(json.dumps(doc))  # JSON-serialisable round trip
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == {
            "wall clock", "model time (simulated)"
        }
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for e in complete:
            assert isinstance(e["ts"], float) and isinstance(e["dur"], float)

    def test_model_phases_lay_out_sequentially_on_pid_1(self):
        with tracing() as buf:
            Scenario(num_siblings=2).build()
        doc = chrome_trace(buf.records)
        model = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == 1]
        assert model
        cursor = {}
        for e in model:
            tid = e["tid"]
            assert e["ts"] == cursor.get(tid, 0.0)  # no gaps, no overlap
            cursor[tid] = e["ts"] + e["dur"]
        # Two iterations (sequential + parallel) -> two model tracks.
        assert len(cursor) == 2

    def test_write_chrome_trace(self, tmp_path):
        records = [_span(1, 0, "root", 7)]
        path = write_chrome_trace(records, tmp_path / "t.chrome.json")
        assert json.loads(path.read_text())["traceEvents"]


# -------------------------------------------------------------- report
class TestBuildReport:
    def test_report_render_and_json(self):
        with tracing() as buf:
            Scenario(num_siblings=1).build()
        report = build_report(buf.records, registry().snapshot("netsim."))
        doc = report.to_json()
        json.dumps(doc)
        assert doc["iterations"][0]["strategy"] == "sequential"
        assert doc["iterations"][1]["strategy"] == "parallel"
        assert any(w["name"] == ITERATION_SPAN for w in doc["wall"])
        text = report.render()
        assert "model time per iteration" in text
        assert "wall time by span" in text
        assert "sequential" in text and "parallel" in text

    def test_empty_trace_builds_an_empty_report(self):
        report = build_report([])
        assert report.wall == ()
        assert report.iterations == ()
        assert report.render() == ""


# ------------------------------------------------------------- sessions
class TestTraceSession:
    def test_writes_jsonl_and_chrome_and_restores_tracer(self, tmp_path):
        path = tmp_path / "out" / "trace.jsonl"
        assert not tracer().enabled
        with TraceSession(path) as session:
            assert tracer().enabled
            with tracer().span("root"):
                tracer().phase("parent", 1.0)
        assert not tracer().enabled
        assert session.chrome_path == tmp_path / "out" / "trace.chrome.json"
        assert read_jsonl(path) == session.records
        assert len(session.records) == 2
        chrome = json.loads(session.chrome_path.read_text())
        assert chrome["traceEvents"]

    def test_non_jsonl_name_gets_chrome_suffix_appended(self, tmp_path):
        path = tmp_path / "trace.log"
        with TraceSession(path):
            tracer().event("ping")
        assert (tmp_path / "trace.log.chrome.json").exists()


# ------------------------------------------------------------ steer phase
class TestSteerPhase:
    COMMON = {"strategy": "parallel", "machine": "BlueGene/P", "ranks": 1024,
              "concurrent": True}

    def test_steer_time_counted_into_total(self):
        records = [
            _phase(1, "parent", 2.0, {**self.COMMON}),
            _phase(1, "nest", 1.0, {**self.COMMON, "sibling": "d02"}),
            _phase(1, "io", 0.5, {**self.COMMON}),
            _phase(1, "steer", 0.25, {**self.COMMON}),
        ]
        (profile,) = phase_breakdown(records)
        assert profile.steer_time == 0.25
        assert profile.total_time == 2.0 + 1.0 + 0.5 + 0.25
        from repro.obs.report import ProfileReport

        doc = ProfileReport(wall=(), iterations=(profile,)).to_json()
        assert doc["iterations"][0]["steer_time"] == 0.25

    def test_multiple_steer_phases_accumulate(self):
        records = [
            _phase(1, "parent", 2.0, {**self.COMMON}),
            _phase(1, "steer", 0.25, {**self.COMMON}),
            _phase(1, "steer", 0.75, {**self.COMMON}),
        ]
        (profile,) = phase_breakdown(records)
        assert profile.steer_time == 1.0

    def test_profiles_without_steer_default_to_zero(self):
        records = [_phase(1, "parent", 2.0, {**self.COMMON})]
        (profile,) = phase_breakdown(records)
        assert profile.steer_time == 0.0
        assert profile.total_time == 2.0

    def test_reconcile_pairs_steer_with_report_steer_time(self):
        class FakeParent:
            total = 2.0

        class FakeReport:
            strategy = "parallel"
            parent = FakeParent()
            nest_phase_time = 1.0
            integration_time = 3.0
            io_time = 0.5
            total_time = 3.5
            mpi_wait = 0.0
            steer_time = 0.25

        records = [
            _phase(1, "parent", 2.0, {**self.COMMON}),
            _phase(1, "nest", 1.0, {**self.COMMON, "sibling": "d02"}),
            _phase(1, "io", 0.5, {**self.COMMON}),
            _phase(1, "steer", 0.25, {**self.COMMON}),
        ]
        assert reconcile(records, [FakeReport()]) == []
        # A trace that dropped the steer phase is flagged.
        assert reconcile(records[:-1], [FakeReport()])
