"""Golden-table snapshots: committed goldens match, regeneration is stable.

Run ``pytest tests/verify/test_golden.py --update-goldens`` after an
intentional model change to rewrite the snapshots under ``tests/golden/``
(commit them with the change). See ``docs/verification.md``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.verify import GOLDEN_SPECS, check_goldens, regenerate, write_goldens
from repro.verify.golden import diff_values

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


def test_every_golden_is_committed():
    for name in GOLDEN_SPECS:
        assert (GOLDEN_DIR / f"{name}.json").exists(), (
            f"missing golden {name}.json — run "
            "`pytest tests/verify/test_golden.py --update-goldens`"
        )


def test_goldens_cover_the_papers_key_tables():
    assert {"table1", "table4", "table5", "fig15"} <= set(GOLDEN_SPECS)


def test_goldens_match_within_tolerance(update_goldens):
    """The headline check: regenerated tables diff clean vs the goldens."""
    if update_goldens:
        written = write_goldens(GOLDEN_DIR)
        assert len(written) == len(GOLDEN_SPECS)
    problems = check_goldens(GOLDEN_DIR)
    assert problems == [], "\n".join(problems)


def test_regeneration_is_deterministic():
    """Two consecutive regenerations agree exactly (acceptance criterion)."""
    first = regenerate("fig15")
    second = regenerate("fig15")
    assert first == second
    assert diff_values(first, second) == []


def test_snapshot_files_are_canonical_json():
    for name in GOLDEN_SPECS:
        path = GOLDEN_DIR / f"{name}.json"
        data = json.loads(path.read_text())
        assert data["experiment"] == name
        # Canonical serialisation: sorted keys, trailing newline.
        assert path.read_text() == json.dumps(data, indent=2, sort_keys=True) + "\n"


def test_unknown_golden_rejected():
    with pytest.raises(KeyError, match="unknown golden"):
        regenerate("table99")


def test_missing_snapshot_reported(tmp_path):
    problems = check_goldens(tmp_path, names=["fig15"])
    assert len(problems) == 1
    assert "missing snapshot" in problems[0]


def test_update_then_check_round_trips(tmp_path):
    write_goldens(tmp_path, names=["fig15"])
    assert check_goldens(tmp_path, names=["fig15"]) == []


class TestDiffValues:
    def test_within_tolerance_passes(self):
        assert diff_values({"t": 1.0}, {"t": 1.0 + 1e-9}) == []

    def test_beyond_tolerance_fails_with_path(self):
        out = diff_values({"a": {"b": [1.0, 2.0]}}, {"a": {"b": [1.0, 2.1]}})
        assert out == ["$.a.b[1]: expected 2.0, got 2.1"]

    def test_int_compares_exactly(self):
        assert diff_values({"n": 1024}, {"n": 1025}) != []

    def test_int_float_mix_uses_tolerance(self):
        assert diff_values({"n": 25}, {"n": 25.0 + 1e-9}) == []

    def test_bool_is_not_a_number(self):
        assert diff_values({"flag": True}, {"flag": 1}) != []

    def test_structure_changes_flagged(self):
        assert diff_values({"a": 1}, {"b": 1}) == ["$.a: missing", "$.b: unexpected"]
        assert diff_values([1, 2], [1]) == ["$: length changed from 2 to 1"]
        assert diff_values({"a": "x"}, {"a": 3.0}) != []
