"""The seeded fuzzer: bounded tier-1 budget, determinism, and shrinking.

The in-suite budget is intentionally small (``--fuzz-budget``, default
25) — the full 200-scenario sweep runs in CI via ``repro verify``. The
shrinking tests seed a deliberate model break (the parallel pricing path
corrupted the way reverting the one-sibling regression fix would) and
assert the fuzzer both catches it and minimizes the repro dict.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro.verify.scenarios as scenarios_mod
from repro.util.rng import make_rng
from repro.verify import Scenario, fuzz, random_scenario, shrink
from repro.verify.fuzzer import BUILD_CRASH
from repro.verify.oracles import oracle


def test_bounded_fuzz_budget_is_clean(fuzz_budget, fuzz_seed):
    """Tier-1 smoke: every oracle holds over the bounded budget."""
    report = fuzz(fuzz_budget, seed=fuzz_seed)
    assert report.ok, report.render()
    assert report.scenarios_run == fuzz_budget
    assert len(report.oracle_names) >= 6


def test_fuzz_is_deterministic():
    a = fuzz(8, seed=3)
    b = fuzz(8, seed=3)
    assert a.render() == b.render()
    assert [random_scenario(s) for s in range(5)] == [
        random_scenario(s) for s in range(5)
    ]


def test_scenario_params_round_trip():
    rng = make_rng(99)
    for _ in range(10):
        s = random_scenario(rng)
        assert Scenario.from_params(s.params()) == s


def test_budget_must_be_positive():
    with pytest.raises(ValueError):
        fuzz(0)


def _break_parallel_pricing(monkeypatch):
    """Corrupt concurrent reports like a reverted one-sibling fix would."""
    real = scenarios_mod.simulate_iteration

    def broken(plan, machine, **kwargs):
        report = real(plan, machine, **kwargs)
        if plan.concurrent:
            report = dataclasses.replace(
                report, integration_time=report.integration_time * 1.07
            )
        return report

    monkeypatch.setattr(scenarios_mod, "simulate_iteration", broken)


def test_seeded_break_is_caught_and_minimized(monkeypatch):
    _break_parallel_pricing(monkeypatch)
    report = fuzz(30, seed=7, max_failures=2)
    assert not report.ok
    failure = report.failures[0]
    assert failure.oracle == "timeline-consistency"
    # The minimized repro collapsed to the canonical smallest scenario.
    assert failure.minimized["num_siblings"] == 1
    assert failure.minimized["ranks"] == 64
    assert failure.minimized["mapping"] == "oblivious"
    assert failure.minimized["io"] == "none"
    # And it still reproduces on its own.
    from repro.verify import failures_for

    replayed = failures_for(Scenario.from_params(failure.minimized))
    assert any(f.oracle == "timeline-consistency" for f in replayed)


def test_shrink_respects_the_failing_oracle(monkeypatch):
    """Shrinking only tracks the oracle that failed, and reaches a fixpoint."""
    _break_parallel_pricing(monkeypatch)
    start = Scenario(
        machine="bgp", ranks=1024, num_siblings=4, parent_nx=300,
        parent_ny=280, sibling_seed=17, mapping="multilevel", io="split",
    )
    small = shrink(start, "timeline-consistency")
    assert small.num_siblings == 1
    assert small.ranks == 64
    assert small.mapping == "oblivious"


def test_build_crash_reported_with_pseudo_oracle(monkeypatch):
    def exploding(plan, machine, **kwargs):
        raise RuntimeError("kaboom")

    monkeypatch.setattr(scenarios_mod, "simulate_iteration", exploding)
    report = fuzz(3, seed=1, shrink_failures=False, max_failures=1)
    assert not report.ok
    assert report.failures[0].oracle == BUILD_CRASH
    assert "kaboom" in report.failures[0].message


def test_max_failures_stops_early(monkeypatch):
    _break_parallel_pricing(monkeypatch)
    report = fuzz(30, seed=7, max_failures=1, shrink_failures=False)
    assert len(report.failures) == 1
    assert report.scenarios_run < 30


def test_oracle_subset_runs_only_selected():
    report = fuzz(3, seed=5, oracle_names=["report-sanity"])
    assert report.oracle_names == ("report-sanity",)
    assert report.ok


def test_render_mentions_failures(monkeypatch):
    _break_parallel_pricing(monkeypatch)
    report = fuzz(10, seed=7, max_failures=1)
    text = report.render()
    assert "FAILURES" in text
    assert "minimized" in text
