"""Every oracle must catch its deliberately corrupted artifact.

An oracle that only ever passes proves nothing: these tests corrupt a
known-good scenario run — a mutated sync_wait, a duplicated rank in the
partition, a non-bijective placement — and assert the responsible oracle
fails loudly, while the pristine run passes everything.

Corruption bypasses constructor validation on purpose (frozen dataclasses
are edited via ``object.__setattr__``): the oracles exist to re-check
invariants *independently*, not to trust ``__post_init__``.
"""

from __future__ import annotations

import copy
import dataclasses

import pytest

from repro.runtime.process_grid import GridRect
from repro.verify import Scenario, all_oracles, get_oracle, run_oracles
from repro.verify.oracles import OracleViolation, oracle


@pytest.fixture(scope="module")
def good_run():
    """A small, fully-built scenario that satisfies every invariant."""
    return Scenario(
        machine="bgl",
        ranks=64,
        num_siblings=2,
        parent_nx=220,
        parent_ny=200,
        sibling_seed=5,
        mapping="partition",
        io="pnetcdf",
    ).build()


def corrupt(run, **overrides):
    """A shallow copy of *run* with attributes force-overwritten."""
    clone = copy.copy(run)
    for key, value in overrides.items():
        object.__setattr__(clone, key, value)
    return clone


def test_registry_has_the_documented_oracles():
    names = set(all_oracles())
    assert {
        "rank-conservation",
        "timeline-consistency",
        "monotone-scaling",
        "mapping-bijectivity",
        "strategy-bounds",
        "netsim-parity",
        "netsim-streaming-parity",
        "report-sanity",
    } <= names
    assert len(names) >= 6


def test_good_scenario_passes_every_oracle(good_run):
    assert run_oracles(good_run) == []


def test_unknown_oracle_name_rejected(good_run):
    with pytest.raises(KeyError, match="unknown oracle"):
        run_oracles(good_run, ["no-such-oracle"])


# ---------------------------------------------------------- sync_wait
def test_mutated_sync_wait_caught(good_run):
    """A sibling's sync_wait no longer closes the gap to the nest phase."""
    sib = good_run.par_report.siblings[0]
    bad_sib = dataclasses.replace(sib, sync_wait=sib.sync_wait + 0.05)
    bad_report = dataclasses.replace(
        good_run.par_report,
        siblings=(bad_sib,) + good_run.par_report.siblings[1:],
    )
    bad = corrupt(good_run, par_report=bad_report)
    with pytest.raises(OracleViolation, match="sync_wait"):
        get_oracle("timeline-consistency")(bad)


def test_sequential_sync_wait_must_be_zero(good_run):
    sib = good_run.seq_report.siblings[0]
    bad_sib = dataclasses.replace(sib, sync_wait=0.01)
    bad_report = dataclasses.replace(
        good_run.seq_report,
        siblings=(bad_sib,) + good_run.seq_report.siblings[1:],
    )
    bad = corrupt(good_run, seq_report=bad_report)
    failures = run_oracles(bad, ["timeline-consistency", "strategy-bounds"])
    assert failures, "no oracle noticed a sequential sync wait"


# --------------------------------------------------- duplicated rank
def test_duplicated_rank_in_partition_caught(good_run):
    """Two siblings claim the same grid positions: rank conservation."""
    plan = copy.copy(good_run.par_plan)
    first = plan.assignments[0]
    # Clone sibling 1's assignment onto sibling 0's rectangle.
    dup = dataclasses.replace(plan.assignments[1], rect=first.rect)
    object.__setattr__(plan, "assignments", (first, dup) + plan.assignments[2:])
    bad = corrupt(good_run, par_plan=plan)
    with pytest.raises(OracleViolation, match="duplicated rank"):
        get_oracle("rank-conservation")(bad)


def test_oversized_partition_caught(good_run):
    """A rectangle hanging off the grid edge is flagged."""
    plan = copy.copy(good_run.par_plan)
    first = plan.assignments[0]
    huge = dataclasses.replace(
        first, rect=GridRect(0, 0, good_run.grid.px + 2, good_run.grid.py)
    )
    object.__setattr__(plan, "assignments", (huge,) + plan.assignments[1:])
    bad = corrupt(good_run, par_plan=plan)
    failures = run_oracles(bad, ["rank-conservation"])
    assert failures


def test_sequential_partial_grid_caught(good_run):
    """A sequential sibling not on the full grid breaks the strategy's shape."""
    plan = copy.copy(good_run.seq_plan)
    first = plan.assignments[0]
    small = dataclasses.replace(first, rect=GridRect(0, 0, 2, 2))
    object.__setattr__(plan, "assignments", (small,) + plan.assignments[1:])
    bad = corrupt(good_run, seq_plan=plan)
    with pytest.raises(OracleViolation, match="full grid"):
        get_oracle("rank-conservation")(bad)


# ---------------------------------------------- non-bijective mapping
def test_non_bijective_mapping_caught(good_run):
    """Two ranks squeezed onto one slot: the placement is no bijection."""
    placement = copy.copy(good_run.placement)
    slots = list(placement.slots)
    slots[1] = slots[0]
    object.__setattr__(placement, "slots", tuple(slots))
    bad = corrupt(good_run, placement=placement)
    with pytest.raises(OracleViolation, match="not injective"):
        get_oracle("mapping-bijectivity")(bad)


def test_out_of_torus_slot_caught(good_run):
    placement = copy.copy(good_run.placement)
    slots = list(placement.slots)
    slots[0] = (10_000, 0, 0)
    object.__setattr__(placement, "slots", tuple(slots))
    bad = corrupt(good_run, placement=placement)
    with pytest.raises(OracleViolation, match="out-of-box"):
        get_oracle("mapping-bijectivity")(bad)


# ------------------------------------------------------ report fields
def test_negative_io_time_caught(good_run):
    bad_report = dataclasses.replace(good_run.par_report, io_time=-0.5)
    bad = corrupt(good_run, par_report=bad_report)
    with pytest.raises(OracleViolation, match="io_time"):
        get_oracle("report-sanity")(bad)


def test_sibling_rank_mismatch_caught(good_run):
    sib = good_run.par_report.siblings[0]
    bad_sib = dataclasses.replace(sib, ranks=sib.ranks + 3)
    bad_report = dataclasses.replace(
        good_run.par_report,
        siblings=(bad_sib,) + good_run.par_report.siblings[1:],
    )
    bad = corrupt(good_run, par_report=bad_report)
    with pytest.raises(OracleViolation, match="ranks"):
        get_oracle("rank-conservation")(bad)


def test_inflated_nest_phase_caught(good_run):
    """nest_phase != max(sibling phases) breaks the Sec 3.2 structure."""
    bad_report = dataclasses.replace(
        good_run.par_report,
        nest_phase_time=good_run.par_report.nest_phase_time * 2.0,
    )
    bad = corrupt(good_run, par_report=bad_report)
    with pytest.raises(OracleViolation, match="max of sibling phases"):
        get_oracle("strategy-bounds")(bad)


# ----------------------------------------------------- crash handling
def test_oracle_crash_reported_as_failure(good_run):
    @oracle("temp-crasher")
    def crasher(run):
        raise RuntimeError("boom")

    try:
        failures = run_oracles(good_run, ["temp-crasher"])
        assert len(failures) == 1
        assert failures[0].oracle == "temp-crasher"
        assert "crashed" in failures[0].message
        assert failures[0].scenario == good_run.scenario.params()
    finally:
        from repro.verify import oracles as oracle_mod

        del oracle_mod._REGISTRY["temp-crasher"]


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        oracle("rank-conservation")(lambda run: None)
