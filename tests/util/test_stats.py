"""Tests for repro.util.stats."""

import math

import pytest

from repro.util.stats import geometric_mean, mean, percent_improvement, summarize


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_accepts_generator(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestPercentImprovement:
    def test_paper_example(self):
        # 1.1 s -> 0.7 s is ~36% (Fig 9).
        assert percent_improvement(1.1, 0.7) == pytest.approx(36.36, abs=0.01)

    def test_no_change_is_zero(self):
        assert percent_improvement(2.0, 2.0) == 0.0

    def test_regression_is_negative(self):
        assert percent_improvement(1.0, 1.5) == pytest.approx(-50.0)

    def test_rejects_nonpositive_baseline(self):
        with pytest.raises(ValueError):
            percent_improvement(0.0, 1.0)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.stdev == pytest.approx(math.sqrt(2.0 / 3.0))

    def test_single_value(self):
        s = summarize([5.0])
        assert s.stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
