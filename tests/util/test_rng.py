"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import make_rng


class TestMakeRng:
    def test_default_is_deterministic(self):
        a = make_rng().integers(0, 1_000_000, size=8)
        b = make_rng().integers(0, 1_000_000, size=8)
        assert (a == b).all()

    def test_seed_changes_stream(self):
        a = make_rng(1).integers(0, 1_000_000, size=8)
        b = make_rng(2).integers(0, 1_000_000, size=8)
        assert (a != b).any()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(42)
        assert make_rng(gen) is gen

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            make_rng(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            make_rng("seed")

    def test_numpy_int_accepted(self):
        rng = make_rng(np.int32(7))
        assert isinstance(rng, np.random.Generator)
