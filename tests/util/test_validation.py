"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_in_range,
    check_positive_float,
    check_positive_int,
    check_type,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        import numpy as np

        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="ranks"):
            check_positive_int(-1, "ranks")


class TestCheckPositiveFloat:
    def test_accepts_float_and_int(self):
        assert check_positive_float(2.5, "x") == 2.5
        assert check_positive_float(2, "x") == 2.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")

    def test_allow_zero(self):
        assert check_positive_float(0.0, "x", allow_zero=True) == 0.0

    def test_rejects_negative_with_allow_zero(self):
        with pytest.raises(ValueError):
            check_positive_float(-0.1, "x", allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_positive_float(float("nan"), "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_float(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_float("1.0", "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.5, "x", 0.5, 1.5) == 0.5
        assert check_in_range(1.5, "x", 0.5, 1.5) == 1.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.6, "x", 0.5, 1.5)

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_in_range("a", "x", 0, 1)


class TestCheckType:
    def test_accepts_matching(self):
        assert check_type(3, "x", int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type(3.0, "x", (int, float)) == 3.0

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="int"):
            check_type("a", "x", int)
