"""Tests for the ASCII series plot."""

import pytest

from repro.analysis.ascii_plot import ascii_series


class TestAsciiSeries:
    def test_basic_render(self):
        out = ascii_series([1, 2, 4], {"t": [3.0, 2.0, 1.0]}, title="demo")
        assert "demo" in out
        assert "* t" in out
        assert "+" in out  # axis

    def test_two_series_two_markers(self):
        out = ascii_series([1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "* a" in out
        assert "o b" in out

    def test_constant_series_ok(self):
        out = ascii_series([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_series([1, 2], {"a": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series([], {})

    def test_dimensions(self):
        out = ascii_series([1, 2], {"a": [1.0, 2.0]}, width=30, height=5)
        plot_lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len(plot_lines) == 5
        assert all(len(l) == 31 for l in plot_lines)
