"""Tests for the capacity planner."""

import pytest

from repro.analysis.planner import recommend
from repro.errors import ConfigurationError
from repro.topology.machines import BLUE_GENE_L
from repro.workloads.regions import Configuration, pacific_parent
from repro.workloads.generator import random_siblings


@pytest.fixture(scope="module")
def config():
    parent = pacific_parent()
    return Configuration("plan-test", parent,
                         tuple(random_siblings(parent, 3, seed=21)))


@pytest.fixture(scope="module")
def plan(config):
    return recommend(config, BLUE_GENE_L, max_ranks=1024, min_ranks=64)


class TestRecommend:
    def test_sweeps_all_combinations(self, plan):
        # 5 rank counts x 3 (strategy, mapping) combos.
        assert len(plan.options) == 5 * 3

    def test_sorted_by_time(self, plan):
        times = [o.time_per_iteration for o in plan.options]
        assert times == sorted(times)

    def test_fastest_is_first(self, plan):
        assert plan.fastest is plan.options[0]

    def test_recommended_meets_floor(self, plan):
        assert plan.recommended.efficiency >= plan.efficiency_floor

    def test_recommended_not_slower_than_needed(self, plan):
        """Recommended is the fastest among floor-meeting options."""
        qualifying = [o for o in plan.options
                      if o.efficiency >= plan.efficiency_floor]
        assert plan.recommended is qualifying[0]

    def test_parallel_beats_sequential_at_scale(self, plan):
        """At the largest scale, the parallel options dominate."""
        at_max = [o for o in plan.options if o.ranks == 1024]
        best = min(at_max, key=lambda o: o.time_per_iteration)
        assert best.strategy == "parallel"

    def test_efficiency_normalised(self, plan):
        assert max(o.efficiency for o in plan.options) == pytest.approx(1.0)
        assert all(0 < o.efficiency <= 1.0 for o in plan.options)

    def test_core_seconds_consistent(self, plan):
        for o in plan.options:
            assert o.core_seconds == pytest.approx(
                o.time_per_iteration * o.ranks
            )

    def test_render(self, plan):
        out = plan.render()
        assert "recommended" in out
        assert "fastest" in out
        assert "plan-test" in out

    def test_floor_validation(self, config):
        with pytest.raises(ConfigurationError):
            recommend(config, BLUE_GENE_L, efficiency_floor=0.0)

    def test_rank_range_validation(self, config):
        with pytest.raises(ConfigurationError):
            recommend(config, BLUE_GENE_L, max_ranks=32, min_ranks=64)
