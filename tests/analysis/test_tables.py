"""Tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import Table


class TestTable:
    def test_render_contains_everything(self):
        t = Table(["P", "time"], title="Scaling")
        t.add_row([512, 0.654321])
        out = t.render()
        assert "Scaling" in out
        assert "P" in out and "time" in out
        assert "512" in out
        assert "0.6543" in out  # 4 significant digits

    def test_column_alignment(self):
        t = Table(["a", "b"])
        t.add_row(["xxxx", 1])
        t.add_row(["y", 22])
        lines = t.render().splitlines()
        # All data lines have the same width.
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_wrong_arity(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_str_matches_render(self):
        t = Table(["x"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_bool_not_formatted_as_float(self):
        t = Table(["flag"])
        t.add_row([True])
        assert "True" in t.render()
