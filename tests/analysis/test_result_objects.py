"""Tests for experiment result dataclasses and their renderers."""

import pytest

from repro.analysis.experiments.common import (
    StrategyComparison,
    grid_for,
    oblivious_placement,
)
from repro.analysis.experiments.exp_improvement import Fig8Result, Table1Result
from repro.analysis.experiments.exp_io import IoScalingResult
from repro.analysis.experiments.exp_scaling import Fig2Result, Fig15Result
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P


class TestCommonHelpers:
    def test_grid_for_square(self):
        assert grid_for(1024).shape == (32, 32)
        assert grid_for(4096).shape == (64, 64)

    def test_oblivious_placement_cached(self):
        a = oblivious_placement(BLUE_GENE_L, 1024)
        b = oblivious_placement(BLUE_GENE_L, 1024)
        assert a is b

    def test_oblivious_placement_per_machine(self):
        a = oblivious_placement(BLUE_GENE_L, 1024)
        b = oblivious_placement(BLUE_GENE_P, 1024)
        assert a is not b
        # BG/L VN: 512 nodes; BG/P VN: 256 nodes — different tori.
        assert a.space.torus != b.space.torus


class TestFig2Result:
    def test_render_contains_rows(self):
        r = Fig2Result(
            ranks=(32, 64), integration_times=(2.0, 1.2),
            total_times=(2.2, 1.3), saturation_ranks=64,
        )
        out = r.render()
        assert "32" in out and "64" in out
        assert "saturates" in out


class TestFig15Result:
    def test_speedups_relative_to_first(self):
        r = Fig15Result(
            ranks=(32, 64), sequential_times=(10.0, 6.0),
            parallel_times=(9.0, 5.0),
        )
        seq, par = r.speedups()
        assert seq[0] == 1.0
        assert seq[1] == pytest.approx(10 / 6)
        assert par[1] == pytest.approx(2.0)

    def test_render(self):
        r = Fig15Result(ranks=(32,), sequential_times=(10.0,),
                        parallel_times=(9.0,))
        assert "Fig 15" in r.render()


class TestFig8Result:
    def test_render(self):
        r = Fig8Result(
            ranks=(512, 1024),
            improvement_excl_io=(10.0, 20.0),
            improvement_incl_io=(12.0, 25.0),
            num_configs=5,
        )
        out = r.render()
        assert "5" in out
        assert "512" in out


class TestTable1Result:
    def test_render_rows(self):
        r = Table1Result(
            rows=(("BlueGene/L", 1024, 38.4, 66.3),),
            num_configs=85,
        )
        out = r.render()
        assert "1024 on BlueGene/L" in out
        assert "38.4" in out


class TestIoScalingResult:
    @pytest.fixture
    def result(self):
        return IoScalingResult(
            ranks=(512, 1024),
            integration={"sequential": (2.0, 1.5), "parallel": (1.5, 1.0)},
            io={"sequential": (0.5, 1.0), "parallel": (0.1, 0.15)},
            total={"sequential": (2.5, 2.5), "parallel": (1.6, 1.15)},
        )

    def test_io_fraction(self, result):
        frac = result.io_fraction("sequential")
        assert frac[0] == pytest.approx(0.2)
        assert frac[1] == pytest.approx(0.4)

    def test_render_panels(self, result):
        out = result.render()
        assert "integration" in out
        assert "I/O" in out
        assert "Fig 14" in out


class TestStrategyComparison:
    def test_metrics(self, pacific, two_siblings):
        from repro.core.scheduler.strategies import (
            ParallelSiblingsStrategy,
            SequentialStrategy,
        )
        from repro.perfsim.simulate import simulate_iteration
        from repro.runtime.process_grid import ProcessGrid
        from repro.workloads.regions import Configuration

        grid = ProcessGrid(16, 16)
        seq = simulate_iteration(
            SequentialStrategy().plan(grid, pacific, two_siblings), BLUE_GENE_L
        )
        par = simulate_iteration(
            ParallelSiblingsStrategy().plan(
                grid, pacific, two_siblings,
                ratios=[s.points for s in two_siblings],
            ),
            BLUE_GENE_L,
        )
        cfg = Configuration("t", pacific, tuple(two_siblings))
        cmp = StrategyComparison(config=cfg, ranks=256, sequential=seq, parallel=par)
        assert cmp.improvement == pytest.approx(
            100 * (1 - par.integration_time / seq.integration_time)
        )
        assert cmp.improvement_with_io == cmp.improvement  # no I/O model
        assert cmp.wait_improvement != 0
