"""Smoke/shape tests of the experiment drivers at reduced sizes.

Full-size drivers run in the benchmarks; here each driver runs at a
small configuration and its *qualitative* claims are asserted.
"""

import pytest

from repro.analysis.experiments import (
    compare_strategies,
    fig2_scaling,
    fig3a_triangulation,
    fig3b_partition,
    fig4_split_direction,
    fig5_fig6_mapping_example,
    fig15_speedup,
    fitted_model,
    prediction_error_study,
    sec46_allocation_quality,
    table2_fig9_siblings,
)
from repro.topology.machines import BLUE_GENE_L
from repro.workloads.regions import pacific_configurations


class TestFittedModel:
    def test_cached(self):
        a = fitted_model(BLUE_GENE_L)
        b = fitted_model(BLUE_GENE_L)
        assert a is b

    def test_thirteen_basis(self):
        assert fitted_model(BLUE_GENE_L).num_basis == 13


class TestCompareStrategies:
    def test_parallel_wins_at_scale(self):
        config = pacific_configurations(1, seed=11)[0]
        cmp = compare_strategies(config, 1024, BLUE_GENE_L)
        assert cmp.improvement > 0.0
        assert cmp.parallel.integration_time < cmp.sequential.integration_time

    def test_wait_improvement_positive(self):
        config = pacific_configurations(1, seed=12)[0]
        cmp = compare_strategies(config, 1024, BLUE_GENE_L)
        assert cmp.wait_improvement > 0.0


class TestScalingDrivers:
    def test_fig2_monotone_then_flat(self):
        r = fig2_scaling(ranks=(64, 256, 1024))
        assert r.total_times[0] > r.total_times[1] > r.total_times[2]
        assert "saturates" in r.render()

    def test_fig15_concurrent_never_slower(self):
        r = fig15_speedup(ranks=(64, 256, 1024))
        for s, p in zip(r.sequential_times, r.parallel_times):
            assert p <= s * 1.01
        seq_s, par_s = r.speedups()
        assert par_s[-1] > seq_s[-1]


class TestPredictionDrivers:
    def test_fig3a_thirteen_points(self):
        r = fig3a_triangulation()
        assert len(r.points) == 13
        assert len(r.triangles) >= 10
        assert "triangles" in r.render()

    def test_prediction_error_claims(self):
        r = prediction_error_study(num_tests=25)
        # Paper: <6% for ours, >19% for naive.
        assert r.delaunay_mean_error < 6.0
        assert r.naive_mean_error > 12.0
        assert r.delaunay_below_6pct > 0.8
        assert r.delaunay_mean_error < r.naive_mean_error / 2


class TestAllocationDrivers:
    def test_fig3b_shares(self):
        r = fig3b_partition()
        shares = [rect.area / 1024 for rect in r.rects]
        for share, ratio in zip(shares, r.ratios):
            assert share == pytest.approx(ratio, abs=0.03)

    def test_fig4_longer_wins(self):
        r = fig4_split_direction()
        assert r.longer_first_squareness > r.shorter_first_squareness

    def test_sec46_ordering(self):
        """default > naive > ours in execution time (Sec 4.6)."""
        r = sec46_allocation_quality()
        assert r.default_time > r.naive_time > r.ours_time
        assert r.ours_improvement > r.naive_improvement


class TestMappingDrivers:
    def test_fig5_fig6_exact_paper_claims(self):
        r = fig5_fig6_mapping_example()
        assert r.oblivious_0_to_8 == 2
        assert r.oblivious_8_to_16 == 3
        assert r.multilevel_3_to_4 == 1
        assert r.average_hops["multilevel"]["parent"] == pytest.approx(1.0)
        assert r.average_hops["partition"]["nest0"] == pytest.approx(1.0)
        assert r.average_hops["oblivious"]["nest0"] > 1.5


class TestTable2Driver:
    def test_matches_paper_structure(self):
        r = table2_fig9_siblings()
        assert r.sequential_total == pytest.approx(1.1, rel=0.2)
        assert r.parallel_total == pytest.approx(0.7, rel=0.15)
        assert r.improvement == pytest.approx(36.0, abs=9.0)
