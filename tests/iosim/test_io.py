"""Tests for the parallel-I/O cost models."""

import pytest

from repro.errors import ConfigurationError
from repro.iosim.model import IoModel
from repro.iosim.pnetcdf import pnetcdf_write_time
from repro.iosim.split_io import split_write_time
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P


class TestPnetcdf:
    def test_meta_cost_grows_with_writers(self):
        """The paper's central I/O observation: PnetCDF per-iteration time
        *increases* with the number of MPI ranks (Fig 13(b))."""
        nbytes = 50e6
        t512 = pnetcdf_write_time(512, nbytes, BLUE_GENE_P)
        t4096 = pnetcdf_write_time(4096, nbytes, BLUE_GENE_P)
        assert t4096 > t512

    def test_few_writers_bandwidth_bound(self):
        t1 = pnetcdf_write_time(1, 100e6, BLUE_GENE_P)
        t8 = pnetcdf_write_time(8, 100e6, BLUE_GENE_P)
        assert t8 < t1  # more writers -> more aggregate bandwidth at first

    def test_zero_bytes_meta_only(self):
        t = pnetcdf_write_time(64, 0.0, BLUE_GENE_P)
        assert t == pytest.approx(64 * BLUE_GENE_P.io_meta_cost_per_writer)

    def test_bandwidth_ceiling(self):
        # Past the ceiling, doubling writers only adds metadata cost.
        heavy = 1e9
        t_a = pnetcdf_write_time(2048, heavy, BLUE_GENE_P)
        t_b = pnetcdf_write_time(4096, heavy, BLUE_GENE_P)
        meta_diff = 2048 * BLUE_GENE_P.io_meta_cost_per_writer
        assert t_b - t_a == pytest.approx(meta_diff, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            pnetcdf_write_time(0, 100.0, BLUE_GENE_P)
        with pytest.raises(ValueError):
            pnetcdf_write_time(8, -1.0, BLUE_GENE_P)


class TestSplitIo:
    def test_no_writer_count_blowup(self):
        """Split I/O has no coordination cost — the BG/L escape hatch."""
        nbytes = 50e6
        t512 = split_write_time(512, nbytes, BLUE_GENE_L)
        t1024 = split_write_time(1024, nbytes, BLUE_GENE_L)
        # Within a small factor: per-rank volume halves but FS contention
        # doubles; no linear metadata term.
        assert t1024 < 2 * t512

    def test_fixed_overhead_floor(self):
        from repro.iosim.split_io import FILE_OVERHEAD

        assert split_write_time(4, 0.0, BLUE_GENE_L) == FILE_OVERHEAD


class TestIoModel:
    def test_sequential_sums(self):
        model = IoModel("pnetcdf")
        cost = model.event_cost(
            [10e6, 20e6], [256, 256], concurrent=False, machine=BLUE_GENE_P
        )
        assert cost.time == pytest.approx(sum(cost.per_file))

    def test_concurrent_max_of_siblings(self):
        model = IoModel("pnetcdf")
        cost = model.event_cost(
            [10e6, 20e6, 30e6], [1024, 512, 512], concurrent=True,
            machine=BLUE_GENE_P,
        )
        assert cost.time == pytest.approx(cost.per_file[0] + max(cost.per_file[1:]))

    def test_parallel_beats_sequential_for_many_writers(self):
        """Sec 4.5: only a subset of ranks writes each sibling file."""
        model = IoModel("pnetcdf")
        file_bytes = [30e6, 20e6, 20e6, 20e6, 20e6]
        seq = model.event_cost(file_bytes, [4096] * 5, concurrent=False,
                               machine=BLUE_GENE_P)
        par = model.event_cost(file_bytes, [4096, 1024, 1024, 1024, 1024],
                               concurrent=True, machine=BLUE_GENE_P)
        assert par.time < seq.time

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            IoModel("hdf5")

    def test_arity_mismatch_rejected(self):
        model = IoModel("split")
        with pytest.raises(ConfigurationError):
            model.event_cost([1e6], [64, 64], concurrent=False,
                             machine=BLUE_GENE_L)
