"""Fig 2 — scaling of the parent + 415x445-nest simulation on BG/L."""

import pytest

from conftest import record
from repro.analysis.experiments import fig2_scaling
from repro.core.scheduler.strategies import SequentialStrategy
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.workloads.paper_configs import fig2_domains


@pytest.fixture(scope="module")
def result():
    return fig2_scaling()


def test_fig2_regenerate(result, benchmark):
    """Emit the Fig 2 rows and assert the scaling shape."""
    record("fig02_scalability", benchmark(result.render))
    # Time decreases monotonically ...
    assert list(result.total_times) == sorted(result.total_times, reverse=True)
    # ... but efficiency collapses by rack scale (the knee Fig 2 shows).
    base = result.total_times[0] * result.ranks[0]
    eff_1024 = base / (result.total_times[-1] * result.ranks[-1])
    assert eff_1024 < 0.6


def test_fig2_kernel_benchmark(benchmark):
    """Time one cost-simulation of the Fig 2 configuration (512 ranks)."""
    config = fig2_domains()
    plan = SequentialStrategy().plan(
        ProcessGrid(32, 16), config.parent, list(config.siblings)
    )
    rep = benchmark(simulate_iteration, plan, BLUE_GENE_L)
    assert rep.integration_time > 0
