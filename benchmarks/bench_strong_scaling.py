"""Benchmark: memory-bounded strong scaling of the netsim+placement pipeline.

Drives one end-to-end iteration — place the process grid on the torus,
build the halo exchange round, route it, price it — at 4k, 16k, 64k, and
131k BG/P ranks (and once more at 131k ranks on the BG/Q-class machine),
recording time-per-message and peak RSS at every scale into
``BENCH_scaling.json`` at the repo root.

The interesting axis is **memory**, not time: the streaming engine must
hold its route expansion inside ``REPRO_NETSIM_MEM_MB`` no matter the
rank count, so the run asserts the process's peak RSS against the
``REPRO_SCALING_RSS_MB`` ceiling (and a companion test exercises the
budget-exceeded failure mode so the assertion is known to bite).

Environment knobs:

* ``REPRO_SCALING_MAX_RANKS`` — cap the sweep (CI smoke runs 16384).
* ``REPRO_SCALING_RSS_MB`` — peak-RSS ceiling for the whole run
  (default 2048 MB; the ceiling covers interpreter + NumPy baseline
  plus every scale's working set).
* ``REPRO_NETSIM_MEM_MB`` — the engine budget under test. The bench
  defaults it to 64 MB — tight enough that the 64k+ rungs exceed the
  one-shot expansion limit and actually exercise the streaming path —
  with the route-cache budget pinned separately so warm-path caching
  stays representative.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

os.environ.setdefault("REPRO_NETSIM_MEM_MB", "64")
os.environ.setdefault("REPRO_NETSIM_ROUTE_CACHE_MB", "64")

import pytest
from conftest import record

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.exec.shm import attach_halo_batch, release, share_halo_batch
from repro.netsim.budget import mem_budget_bytes
from repro.netsim.engine import (
    VECTOR,
    as_placement,
    reset_route_cache,
    route_cache_stats,
)
from repro.obs.metrics import peak_rss_bytes, sample_rss
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.halo import HaloSpec, halo_messages_array
from repro.runtime.process_grid import ProcessGrid
from repro.topology.bgq import BLUE_GENE_Q_3D
from repro.topology.machines import BLUE_GENE_P

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

#: The strong-scaling ladder (BG/P VN mode: ranks/4 nodes per rung).
RANK_SCALES = (4096, 16384, 65536, 131072)

#: Synthetic global domain large enough that no rung's process grid is
#: clamped (every grid dimension stays below the domain extent).
DOMAIN = (4096, 4096)

MAX_RANKS = int(os.environ.get("REPRO_SCALING_MAX_RANKS", RANK_SCALES[-1]))
RSS_CEILING_MB = float(os.environ.get("REPRO_SCALING_RSS_MB", 2048))


def assert_rss_within(ceiling_mb: float) -> int:
    """Fail with :class:`MemoryError` when peak RSS exceeds *ceiling_mb*.

    The budget-exceeded failure mode of the scaling gate: a loud error
    naming both numbers, never a silently-passing benchmark.
    """
    sample_rss()
    peak = peak_rss_bytes()
    if peak > ceiling_mb * 2**20:
        raise MemoryError(
            f"peak RSS {peak / 2**20:.1f} MiB exceeds the "
            f"{ceiling_mb:.0f} MiB scaling ceiling "
            "(REPRO_SCALING_RSS_MB); the memory budget was not held"
        )
    return peak


def _one_scale(machine, ranks: int) -> dict:
    """Place + route + price one exchange round at *ranks* ranks."""
    px, py = choose_process_grid(ranks)
    grid = ProcessGrid(px, py)
    rpn = machine.mode(None).ranks_per_node
    torus = machine.torus_for_ranks(ranks, None)

    t0 = time.perf_counter()
    placement = ObliviousMapping().place(grid, SlotSpace(torus, rpn))
    placement_s = time.perf_counter() - t0
    pvec = as_placement(torus, placement.nodes_array())

    batch = halo_messages_array(grid, grid.full_rect(), *DOMAIN, HaloSpec())

    reset_route_cache()
    t0 = time.perf_counter()
    routed, loads = VECTOR.route_exchange(torus, pvec, batch)
    estimate = VECTOR.round_estimate(routed, loads, machine)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    routed2, loads2 = VECTOR.route_exchange(torus, pvec, batch)
    VECTOR.round_estimate(routed2, loads2, machine)
    warm_s = time.perf_counter() - t0
    cache = route_cache_stats()

    rss = sample_rss()
    return {
        "machine": machine.name,
        "ranks": ranks,
        "nodes": torus.num_nodes,
        "torus": list(torus.dims),
        "grid": [px, py],
        "messages": len(batch),
        "placement_s": placement_s,
        "route_cold_s": cold_s,
        "route_warm_s": warm_s,
        "time_per_message_us": cold_s / len(batch) * 1e6,
        "streamed": routed.streamed,
        "chunks": routed.num_chunks,
        "sparse_loads": loads.is_sparse,
        "round_time_s": estimate.time,
        "max_link_bytes": estimate.max_link_bytes,
        "route_cache": {
            "hits": cache.hits,
            "evictions": cache.evictions,
            "resident_bytes": cache.resident_bytes,
        },
        "peak_rss_mb": rss["peak"] / 2**20,
    }


def test_strong_scaling():
    budget_mb = mem_budget_bytes() / 2**20
    scales = [r for r in RANK_SCALES if r <= MAX_RANKS]
    assert scales, f"REPRO_SCALING_MAX_RANKS={MAX_RANKS} filters every rung"

    entries = [_one_scale(BLUE_GENE_P, r) for r in scales]
    if scales[-1] == RANK_SCALES[-1]:
        # The BG/Q-class machine packs 16 ranks/node: same 131072 ranks,
        # a quarter of the nodes — a second topology shape at top scale.
        entries.append(_one_scale(BLUE_GENE_Q_3D, RANK_SCALES[-1]))

    # Zero-copy columns at the largest completed scale: publishing the
    # batch and routing the attached view must hit the cache entry the
    # original batch created (the handle carries the digest).
    top = entries[-1]
    px, py = top["grid"]
    grid = ProcessGrid(px, py)
    batch = halo_messages_array(grid, grid.full_rect(), *DOMAIN, HaloSpec())
    t0 = time.perf_counter()
    handle = share_halo_batch(batch)
    shared = attach_halo_batch(handle)
    share_s = time.perf_counter() - t0
    assert shared.digest() == batch.digest()
    release(handle)
    top["shm_share_s"] = share_s

    peak = assert_rss_within(RSS_CEILING_MB)

    payload = {
        "budget_mb": budget_mb,
        "rss_ceiling_mb": RSS_CEILING_MB,
        "max_ranks": scales[-1],
        "scales": entries,
        "peak_rss_mb": peak / 2**20,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    data = {"benchmark": "strong scaling, netsim+placement", "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data["trajectory"].append(payload)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")

    lines = [
        f"strong scaling, budget {budget_mb:.0f} MB "
        f"(ceiling {RSS_CEILING_MB:.0f} MB):",
        f"  {'machine':<14} {'ranks':>7} {'torus':>12} {'msgs':>7} "
        f"{'place':>8} {'cold':>8} {'us/msg':>7} {'strm':>5} {'rss MB':>8}",
    ]
    for e in entries:
        lines.append(
            f"  {e['machine']:<14} {e['ranks']:>7} "
            f"{'x'.join(map(str, e['torus'])):>12} {e['messages']:>7} "
            f"{e['placement_s'] * 1e3:>6.1f}ms {e['route_cold_s'] * 1e3:>6.1f}ms "
            f"{e['time_per_message_us']:>7.3f} "
            f"{str(e['streamed'])[0]:>5} {e['peak_rss_mb']:>8.1f}"
        )
    lines.append(f"  [appended to {BENCH_JSON.name}]")
    record("strong_scaling", "\n".join(lines))

    # The gate: the largest rung completed inside the stated ceiling.
    assert peak <= RSS_CEILING_MB * 2**20


def test_rss_ceiling_failure_mode():
    """The budget-exceeded path must fail loudly, not pass vacuously."""
    with pytest.raises(MemoryError, match="exceeds the 1 MiB"):
        assert_rss_within(1.0)
