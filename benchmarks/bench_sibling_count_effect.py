"""Sec 4.3.4 — more siblings, bigger improvement.

Paper: 19.43% mean improvement with 2 siblings vs 24.22% with 4.
"""

import pytest

from conftest import config_count, record
from repro.analysis.experiments import sibling_count_effect
from repro.workloads.generator import random_siblings
from repro.workloads.regions import pacific_parent


@pytest.fixture(scope="module")
def result():
    return sibling_count_effect(configs_per_count=config_count(20, 8))


def test_sibling_count_regenerate(result, benchmark):
    """Emit the comparison; 4 siblings must out-improve 2."""
    record("sibling_count_effect", benchmark(result.render))
    assert result.improvement_by_count[4] > result.improvement_by_count[2]
    assert result.improvement_by_count[2] == pytest.approx(19.4, abs=10.0)


def test_sibling_generation_kernel_benchmark(benchmark):
    """Time the random-configuration generator used by the sweep."""
    parent = pacific_parent()
    sibs = benchmark(random_siblings, parent, 4, seed=5)
    assert len(sibs) == 4
