"""Table 2 / Fig 9 — the four-sibling configuration on 1024 BG/L cores.

Paper: sequential sibling steps 0.4/0.2/0.2/0.3 s (phase 1.1 s);
parallel 0.7/0.6/0.6/0.7 s on 18x24/18x8/14x12/14x20 rectangles
(phase 0.7 s); 36% sibling-phase gain.
"""

import pytest

from conftest import record
from repro.analysis.experiments import table2_fig9_siblings
from repro.core.scheduler.strategies import SequentialStrategy
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.workloads.paper_configs import table2_domains


@pytest.fixture(scope="module")
def result():
    return table2_fig9_siblings()


def test_table2_fig9_regenerate(result, benchmark):
    """Emit the per-sibling table and assert the paper's numbers."""
    record("table2_fig09_siblings", benchmark(result.render))
    assert result.sequential_total == pytest.approx(1.1, rel=0.2)
    assert result.parallel_total == pytest.approx(0.7, rel=0.15)
    assert result.improvement == pytest.approx(36.0, abs=9.0)


def test_sequential_ordering_matches_paper(result, benchmark):
    """Largest sibling slowest, smallest fastest."""
    times = benchmark(lambda: result.sequential_times)
    assert times[0] == max(times)  # 394x418
    assert min(times) in (times[1], times[2])  # the two small nests


def test_parallel_times_balanced(result, benchmark):
    """Proportional allocation balances the parallel step times."""
    ratio = benchmark(lambda: max(result.parallel_times) / min(result.parallel_times))
    assert ratio < 1.25


def test_table2_kernel_benchmark(benchmark):
    """Time the sequential simulation of the Table 2 configuration."""
    config = table2_domains()
    plan = SequentialStrategy().plan(
        ProcessGrid(32, 32), config.parent, list(config.siblings)
    )
    rep = benchmark(simulate_iteration, plan, BLUE_GENE_L)
    assert len(rep.siblings) == 4
