"""Sec 4.6 — allocation ablation: default vs naive strips vs Algorithm 1.

Paper: default 4.49 s, naive strips 4.08 s (9% better), Huffman
split-tree 3.72 s (17% better).
"""

import pytest

from conftest import record
from repro.analysis.experiments import sec46_allocation_quality
from repro.core.allocation.baselines import naive_strip_partition
from repro.runtime.process_grid import ProcessGrid


@pytest.fixture(scope="module")
def result():
    return sec46_allocation_quality()


def test_sec46_regenerate(result, benchmark):
    """Emit the comparison; the ordering must match the paper."""
    record("sec46_allocation_quality", benchmark(result.render))
    assert result.default_time > result.naive_time > result.ours_time
    assert result.ours_improvement > result.naive_improvement
    assert result.ours_improvement > 15.0  # paper: 17%


def test_equal_split_ablation(benchmark):
    """The Sec 3.2 baseline (equal shares) loses to proportional shares
    when sibling sizes differ."""
    from repro.core.allocation.baselines import equal_partition
    from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
    from repro.perfsim.simulate import simulate_iteration
    from repro.topology.machines import BLUE_GENE_L
    from repro.workloads.paper_configs import table2_domains

    config = table2_domains()
    grid = ProcessGrid(32, 32)
    siblings = list(config.siblings)

    def plan_with(alloc):
        return ExecutionPlan(
            grid=grid, parent=config.parent,
            assignments=tuple(
                SiblingAssignment(s, alloc.rects[i]) for i, s in enumerate(siblings)
            ),
            concurrent=True, strategy="ablation",
        )

    equal = benchmark(
        simulate_iteration, plan_with(equal_partition(grid, len(siblings))), BLUE_GENE_L
    )
    proportional = simulate_iteration(
        plan_with(naive_strip_partition(grid, [s.points for s in siblings])),
        BLUE_GENE_L,
    )
    assert proportional.integration_time < equal.integration_time


def test_sec46_kernel_benchmark(benchmark):
    """Time the naive strip partition (the baseline's kernel)."""
    grid = ProcessGrid(32, 32)
    alloc = benchmark(naive_strip_partition, grid, [164692, 46864, 59392, 105481])
    assert alloc.num_siblings == 4
