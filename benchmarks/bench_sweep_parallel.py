"""Benchmark: the parallel sweep fabric and batched prediction.

Two acceptance floors ride on this module:

* **Batched prediction** — ``predict_features_batch`` must beat the
  scalar ``predict_features`` loop by >= 5x at 1024 queries (it is the
  same arithmetic, vectorized; parity is enforced bit-for-bit by
  ``tests/core/prediction/test_batch_parity.py``).
* **Process-pool sweeps** — planner + fuzz-batch wall-clock at
  ``jobs=N`` vs ``jobs=1`` must clear 2x with >= 4 effective workers
  (relaxed to 1.2x for the 2-worker CI smoke). Runners without enough
  cores skip with a recorded reason instead of asserting noise.

Both trajectories append to ``BENCH_sweep.json`` at the repo root.
Environment knobs: ``REPRO_SWEEP_JOBS`` (worker count, default: all
cores), ``REPRO_SWEEP_BUDGET`` (fuzz scenarios, default 24).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import record

from repro.analysis.planner import recommend
from repro.core.prediction.basis import generate_candidates, select_basis
from repro.core.prediction.model import PerformanceModel
from repro.exec import plan_cache_stats, reset_plan_cache
from repro.topology.machines import BLUE_GENE_P
from repro.util.rng import make_rng
from repro.verify.fuzzer import _draw_scenarios, _fuzz_task
from repro.exec.pool import SweepRunner
from repro.workloads.regions import pacific_configurations

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

BATCH_QUERIES = 1024
BATCH_FLOOR = 5.0

SWEEP_FLOOR_FULL = 2.0  # >= 4 effective workers
SWEEP_FLOOR_SMOKE = 1.2  # 2-3 effective workers (CI --jobs 2 smoke)

JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", os.cpu_count() or 1))
BUDGET = int(os.environ.get("REPRO_SWEEP_BUDGET", "24"))
FUZZ_SEED = 7


def _append(entry: dict) -> None:
    data = {"benchmark": "parallel sweep fabric", "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    data["trajectory"].append(entry)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ------------------------------------------------------- batch prediction
def test_batched_prediction_throughput():
    basis = select_basis(generate_candidates(200, seed=13))
    times = [1e-5 * b.points + 2e-3 * (b.nx + b.ny) for b in basis]
    model = PerformanceModel.from_measurements(basis, times)

    rng = make_rng(99)
    # Mixed regimes: in-hull, scaled points, clamped aspect.
    aspects = rng.uniform(0.2, 3.0, BATCH_QUERIES).tolist()
    points = rng.uniform(5e3, 8e5, BATCH_QUERIES).tolist()

    def scalar():
        return [
            model.predict_features(a, p) for a, p in zip(aspects, points)
        ]

    def batch():
        return model.predict_features_batch(aspects, points)

    assert batch().tolist() == scalar()  # parity before timing

    scalar_s = _best_of(scalar)
    batch_s = _best_of(batch, repeats=5)
    speedup = scalar_s / batch_s

    _append(
        {
            "kind": "batch_prediction",
            "queries": BATCH_QUERIES,
            "scalar_s": scalar_s,
            "batch_s": batch_s,
            "speedup": round(speedup, 2),
        }
    )
    record(
        "sweep_batch_prediction",
        "\n".join(
            [
                f"batched prediction, {BATCH_QUERIES} mixed-regime queries:",
                f"  scalar loop   {scalar_s * 1e3:9.2f} ms",
                f"  batch         {batch_s * 1e3:9.2f} ms   {speedup:6.1f}x",
                f"  [appended to {BENCH_JSON.name}]",
            ]
        ),
    )
    assert speedup >= BATCH_FLOOR, (
        f"batched prediction only {speedup:.1f}x over the scalar loop "
        f"(floor {BATCH_FLOOR}x at {BATCH_QUERIES} queries)"
    )


# ----------------------------------------------------------- pool sweeps
def test_parallel_sweep_speedup():
    cores = os.cpu_count() or 1
    effective = min(JOBS, cores)
    if effective < 2:
        reason = (
            f"parallel sweep needs >= 2 effective workers, have "
            f"{cores} core(s) and REPRO_SWEEP_JOBS="
            f"{os.environ.get('REPRO_SWEEP_JOBS', '<unset>')}"
        )
        _append({"kind": "sweep_skip", "reason": reason, "cores": cores})
        record("sweep_parallel", f"SKIPPED: {reason}")
        pytest.skip(reason)
    floor = SWEEP_FLOOR_FULL if effective >= 4 else SWEEP_FLOOR_SMOKE

    config = pacific_configurations(1, seed=2010)[0]
    scenarios, _, _ = _draw_scenarios(make_rng(FUZZ_SEED), BUDGET)
    items = [(s, None) for s in scenarios]

    def sweep(jobs: int):
        reset_plan_cache()
        recommend(config, BLUE_GENE_P, max_ranks=4096, jobs=jobs)
        SweepRunner(jobs).map(_fuzz_task, items)

    t1 = _best_of(lambda: sweep(1), repeats=1)
    # Plan-cache stats from the inline pass: jobs=N plans in workers,
    # so the parent-side counters only reflect jobs=1.
    cache = plan_cache_stats()
    tn = _best_of(lambda: sweep(JOBS), repeats=2)
    speedup = t1 / tn

    _append(
        {
            "kind": "sweep",
            "jobs": JOBS,
            "cores": cores,
            "budget": BUDGET,
            "jobs1_s": t1,
            "jobsN_s": tn,
            "speedup": round(speedup, 2),
            "floor": floor,
            "plan_cache": {"hits": cache.hits, "misses": cache.misses},
        }
    )
    record(
        "sweep_parallel",
        "\n".join(
            [
                f"parallel sweep (planner + {BUDGET}-scenario fuzz batch), "
                f"{JOBS} workers on {cores} cores:",
                f"  jobs=1      {t1:8.2f} s",
                f"  jobs={JOBS:<2d}     {tn:8.2f} s   {speedup:5.2f}x "
                f"(floor {floor}x)",
                f"  [appended to {BENCH_JSON.name}]",
            ]
        ),
    )
    assert speedup >= floor, (
        f"parallel sweep only {speedup:.2f}x at jobs={JOBS} "
        f"({effective} effective workers; floor {floor}x)"
    )
