"""Figs 5/6 — the 32-process mapping example, hop for hop."""

import pytest

from conftest import record
from repro.analysis.experiments import fig5_fig6_mapping_example
from repro.core.mapping.base import SlotSpace
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.exec.placementcache import placement_cache_stats, reset_placement_cache
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.torus import Torus3D


@pytest.fixture(scope="module")
def result_and_cache():
    reset_placement_cache()
    result = fig5_fig6_mapping_example()
    return result, placement_cache_stats()


@pytest.fixture(scope="module")
def result(result_and_cache):
    return result_and_cache[0]


def test_fig5_6_regenerate(result_and_cache, benchmark):
    """Emit the hop table and assert the paper's exact claims."""
    result, cache = result_and_cache
    record(
        "fig05_06_mapping_hops",
        benchmark(result.render)
        + f"\nplacement cache: {cache.hits} hits / {cache.misses} misses "
        f"({100 * cache.hit_rate:.0f}% hit rate)",
    )
    assert result.oblivious_0_to_8 == 2      # Fig 5: "2 hops apart"
    assert result.oblivious_8_to_16 == 3     # Fig 5: "3 hops away"
    assert result.multilevel_3_to_4 == 1     # Fig 6(b): "1 hop apart"
    assert result.average_hops["multilevel"]["parent"] == pytest.approx(1.0)


def test_ordering_matches_paper(result, benchmark):
    """oblivious > partition >= multilevel on nest hops."""
    benchmark(lambda: dict(result.average_hops))
    for nest in ("nest0", "nest1"):
        assert (result.average_hops["multilevel"][nest]
                <= result.average_hops["partition"][nest]
                < result.average_hops["oblivious"][nest])


def test_fig6_kernel_benchmark(benchmark):
    """Time the multi-level placement of the example."""
    grid = ProcessGrid(8, 4)
    space = SlotSpace(Torus3D((4, 4, 2)), 1)
    rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
    placement = benchmark(MultiLevelMapping().place, grid, space, rects)
    assert len(placement.slots) == 32
