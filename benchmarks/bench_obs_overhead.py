"""Benchmark: tracing overhead on a tier-1 subset (traced vs. untraced).

The observability contract is that instrumentation hides behind cheap
``tracer.enabled`` guards: with tracing *off* the hot paths pay one
attribute read per site, and even with tracing *on* a full scenario
build (both strategies planned, placed, and simulated — the same kernel
the tier-1 suite and the verify fuzzer hammer) must stay within the
overhead budget.

The budget defaults to 5% and can be widened for noisy CI runners via
``REPRO_OBS_OVERHEAD_MAX`` (a ratio: ``0.05`` = 5%).
"""

from __future__ import annotations

import os
import time

from conftest import record

from repro.netsim.engine import reset_route_cache
from repro.obs.trace import TraceBuffer, tracer, tracing
from repro.verify.scenarios import Scenario

#: Maximum tolerated slowdown of the traced run over the untraced one.
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "0.05"))

REPEATS = 9


def _interleaved_best(a, b, repeats: int = REPEATS):
    """Min-of-N for two kernels, alternating A/B every round.

    Timing the arms as two sequential blocks lets ambient load drift
    (another bench finishing, turbo states) bias whichever ran second;
    alternating exposes both arms to the same conditions.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_tracing_overhead_within_budget():
    scenario = Scenario(ranks=1024, num_siblings=2)
    buf = TraceBuffer()

    def untraced():
        assert not tracer().enabled
        scenario.build()

    def traced():
        buf.clear()
        with tracing(buf):
            scenario.build()

    # Warm every cache the kernel touches (route cache, lru placements)
    # so both arms time the same steady-state work.
    reset_route_cache()
    untraced()
    traced()
    assert buf.records, "traced run produced no records"

    untraced_s, traced_s = _interleaved_best(untraced, traced)
    overhead = traced_s / untraced_s - 1.0

    record(
        "obs_overhead",
        "\n".join(
            [
                f"tracing overhead, scenario build at {scenario.ranks} ranks "
                f"({len(buf.records)} records per traced build):",
                f"  untraced   {untraced_s * 1e3:9.3f} ms",
                f"  traced     {traced_s * 1e3:9.3f} ms",
                f"  overhead   {overhead * 100:8.2f} %   "
                f"(budget {MAX_OVERHEAD * 100:.0f}%)",
            ]
        ),
    )

    assert overhead <= MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.2f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% budget "
        "(REPRO_OBS_OVERHEAD_MAX widens it for noisy runners)"
    )


def test_disabled_tracer_emits_nothing_during_simulation():
    assert not tracer().enabled
    buf = TraceBuffer()
    tracer().configure(buf)
    try:
        Scenario(num_siblings=1).build()
    finally:
        tracer().configure(None)
    assert buf.records == []
