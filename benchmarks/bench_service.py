"""Benchmark: the planning service under concurrent load.

Drives thousands of ``POST /recommend`` requests from a pool of client
threads — over **keep-alive pooled connections** — into the planning
service and records what a resident planning daemon actually delivers:

* **latency** — p50 / p99 per request (seconds);
* **throughput** — requests per second over the whole storm;
* **cache economics** — plan/placement cache hit rates after the storm
  (a warm resident process is the whole point of the service);
* **coalescing savings** — the fraction of recommend requests that
  shared another caller's in-flight computation instead of planning;
* **sharded scaling** — the same storm against
  :class:`ShardedPlanningService` at 4 and 8 shards, with the speedup
  over the single-process baseline from the same run.

Every trajectory entry records ``shards`` / ``clients`` / ``pool_size``
so runs are comparable across deployment shapes. The trajectory appends
to ``BENCH_service.json`` at the repo root. Environment knobs:
``REPRO_SERVICE_REQUESTS`` (total requests, default 2000),
``REPRO_SERVICE_CLIENTS`` (concurrent client threads, default 16),
``REPRO_SERVICE_POOL`` (keep-alive connections per client, default 8),
``REPRO_SERVICE_SHARDS`` (comma-separated shard counts, default
``4,8``), ``REPRO_SERVICE_FLOOR`` (override the sharded speedup
floors). CI runs a bounded smoke (see ``.github/workflows/ci.yml``).

Floors are deliberately lenient — shared CI runners are noisy — and a
run on a starved machine skips with a recorded reason instead of
asserting noise: the numbers in the trajectory are the deliverable.
The sharded floors additionally require enough cores to host the
shards; a 1-core container records the entry and skips the assertion.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from conftest import record

from repro.exec import (
    placement_cache_stats,
    plan_cache_stats,
    reset_placement_cache,
    reset_plan_cache,
)
from repro.netsim.engine import reset_route_cache
from repro.obs.metrics import registry
from repro.service import PlanningServer, ServiceClient, ShardedPlanningService

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

REQUESTS = int(os.environ.get("REPRO_SERVICE_REQUESTS", "2000"))
CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "16"))
POOL_SIZE = int(os.environ.get("REPRO_SERVICE_POOL", "8"))
SHARD_COUNTS = [
    int(s) for s in os.environ.get("REPRO_SERVICE_SHARDS", "4,8").split(",")
    if s.strip()
]

#: Lenient floors: a resident warm service must beat these on any
#: machine that can run the suite at all.
P99_CEILING_S = 2.0
THROUGHPUT_FLOOR_RPS = 20.0

#: Sharded speedup floors over the same-run single-process baseline,
#: asserted only when the host has at least `shards` cores.
#: ``REPRO_SERVICE_FLOOR`` overrides both (CI smoke uses 2.0).
_floor_env = os.environ.get("REPRO_SERVICE_FLOOR")
SPEEDUP_FLOORS = (
    {4: float(_floor_env), 8: float(_floor_env)} if _floor_env
    else {4: 3.0, 8: 5.0}
)

#: Single-process baseline throughput, shared within one pytest run so
#: the sharded tests compute speedup against the same machine state.
_BASELINE: dict = {}

#: The request mix: mostly repeats of a handful of distinct plans (the
#: realistic shape — fleets ask the same capacity questions), so cache
#: hits and coalescing both get exercised.
_PAYLOADS = [
    {"config": "table2", "max_ranks": 256},
    {"config": "fig2", "max_ranks": 256},
    {"config": "fig10", "max_ranks": 128},
    {"config": "table2", "machine": "bgp", "max_ranks": 128},
    {"config": "fig15", "max_ranks": 128, "efficiency_floor": 0.4},
]


def _append(entry: dict) -> None:
    data = {"benchmark": "planning service load", "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    data["trajectory"].append(entry)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _counter(snapshot: dict, name: str) -> float:
    entry = snapshot.get(name)
    return entry["value"] if entry else 0


def _percentile(samples, q: float) -> float:
    return statistics.quantiles(samples, n=100)[int(q) - 1]


def _storm(url: str, requests: int, clients: int):
    """Fire the payload mix at *url* from *clients* threads.

    One pooled keep-alive :class:`ServiceClient` per thread — each
    request reuses its thread's persistent connection instead of paying
    a TCP connect, which is both the realistic client shape and the
    thing being measured (connect overhead would swamp planning cost).
    Returns ``(latencies, wall_s, pool_totals)``.
    """
    latencies = []
    failures = []
    pools = []
    lock = threading.Lock()
    local = threading.local()

    def fire(i: int) -> None:
        client = getattr(local, "client", None)
        if client is None:
            client = ServiceClient(url, pool_size=POOL_SIZE)
            local.client = client
            with lock:
                pools.append(client)
        payload = _PAYLOADS[i % len(_PAYLOADS)]
        t0 = time.perf_counter()
        reply = client.recommend(payload)
        elapsed = time.perf_counter() - t0
        if reply.status != 200:
            failures.append(reply.status)
        latencies.append(elapsed)

    t_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(fire, range(requests)))
    wall_s = time.perf_counter() - t_start

    assert not failures, f"{len(failures)} non-200 replies: {failures[:5]}"
    assert len(latencies) == requests
    created = sum(c.pool_stats().created for c in pools)
    reused = sum(c.pool_stats().reused for c in pools)
    for c in pools:
        c.close()
    # Keep-alive must actually be doing the work: connections created
    # should be a sliver of requests served.
    assert created <= clients * (POOL_SIZE + 2), (
        f"{created} connections for {requests} requests — keep-alive broken"
    )
    return latencies, wall_s, {"created": created, "reused": reused}


def test_service_load():
    reset_plan_cache()
    reset_placement_cache()
    reset_route_cache()

    with PlanningServer() as server:
        server.state.warm_start(max_ranks=256)
        before = registry().snapshot()
        latencies, wall_s, pool_totals = _storm(server.url, REQUESTS, CLIENTS)
        after = registry().snapshot()

    p50 = _percentile(latencies, 50)
    p99 = _percentile(latencies, 99)
    throughput = REQUESTS / wall_s
    _BASELINE["throughput_rps"] = throughput
    _BASELINE["p99_s"] = p99

    plan = plan_cache_stats()
    placement = placement_cache_stats()
    hits = _counter(after, "service.coalesce.hits") - _counter(
        before, "service.coalesce.hits"
    )
    misses = _counter(after, "service.coalesce.misses") - _counter(
        before, "service.coalesce.misses"
    )
    assert hits + misses == REQUESTS
    coalesce_rate = hits / REQUESTS

    entry = {
        "requests": REQUESTS,
        "clients": CLIENTS,
        "shards": 1,
        "pool_size": POOL_SIZE,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(throughput, 1),
        "latency_p50_s": round(p50, 6),
        "latency_p99_s": round(p99, 6),
        "plan_cache_hit_rate": round(plan.hit_rate, 4),
        "placement_cache_hit_rate": round(placement.hit_rate, 4),
        "coalesce_rate": round(coalesce_rate, 4),
        "coalesced_requests": int(hits),
        "connections_created": pool_totals["created"],
        "connections_reused": pool_totals["reused"],
    }
    _append(entry)

    lines = [
        "planning service load "
        f"({REQUESTS} requests, {CLIENTS} clients, 1 shard)",
        f"  throughput            {throughput:10.1f} req/s",
        f"  latency p50           {p50 * 1e3:10.2f} ms",
        f"  latency p99           {p99 * 1e3:10.2f} ms",
        f"  plan cache hit rate   {plan.hit_rate:10.1%}",
        f"  placement hit rate    {placement.hit_rate:10.1%}",
        f"  coalesced             {coalesce_rate:10.1%} "
        f"({int(hits)} requests)",
        f"  connections           {pool_totals['created']} created, "
        f"{pool_totals['reused']} reused",
    ]
    record("service_load", "\n".join(lines))

    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"only {cores} core(s): latency/throughput floors would "
            "assert scheduler noise (numbers recorded above)"
        )
    assert p99 <= P99_CEILING_S, (
        f"p99 {p99:.3f}s exceeds {P99_CEILING_S}s on a warm cache"
    )
    assert throughput >= THROUGHPUT_FLOOR_RPS, (
        f"{throughput:.1f} req/s under the {THROUGHPUT_FLOOR_RPS} floor"
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_service_load(shards):
    """The same storm through the consistent-hash router at N shards.

    The shards start cold (``warm=False``) — cache affinity is the
    mechanism under test: the ring pins each request class to one
    shard, so traffic itself warms exactly one copy of each cache
    entry. Speedup floors against the same-run single-process baseline
    are asserted only on hosts with at least `shards` cores; the
    trajectory entry is recorded either way.
    """
    latencies = []
    with ShardedPlanningService(shards=shards, warm=False) as svc:
        latencies, wall_s, pool_totals = _storm(svc.url, REQUESTS, CLIENTS)
        merged = ServiceClient(svc.url).metrics()
        per_shard = {
            shard: info["requests_served"]
            for shard, info in merged["shards"].items()
        }

    p50 = _percentile(latencies, 50)
    p99 = _percentile(latencies, 99)
    throughput = REQUESTS / wall_s
    baseline = _BASELINE.get("throughput_rps")
    speedup = round(throughput / baseline, 2) if baseline else None

    entry = {
        "requests": REQUESTS,
        "clients": CLIENTS,
        "shards": shards,
        "pool_size": POOL_SIZE,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(throughput, 1),
        "latency_p50_s": round(p50, 6),
        "latency_p99_s": round(p99, 6),
        "baseline_throughput_rps": round(baseline, 1) if baseline else None,
        "speedup_vs_single": speedup,
        "per_shard_requests": per_shard,
        "connections_created": pool_totals["created"],
        "connections_reused": pool_totals["reused"],
        "cores": os.cpu_count() or 1,
    }
    _append(entry)

    lines = [
        f"sharded service load "
        f"({REQUESTS} requests, {CLIENTS} clients, {shards} shards)",
        f"  throughput            {throughput:10.1f} req/s",
        f"  latency p50           {p50 * 1e3:10.2f} ms",
        f"  latency p99           {p99 * 1e3:10.2f} ms",
        f"  speedup vs 1 shard    {speedup if speedup else 'n/a':>10}",
        f"  per-shard requests    {per_shard}",
    ]
    record(f"service_load_{shards}shards", "\n".join(lines))

    cores = os.cpu_count() or 1
    if cores < shards:
        pytest.skip(
            f"{cores} core(s) cannot host {shards} shard processes: "
            "speedup floor would assert contention, not scaling "
            "(numbers recorded above)"
        )
    if baseline is None:
        pytest.skip("no single-process baseline in this run")
    floor = SPEEDUP_FLOORS.get(shards, 2.0)
    assert throughput >= floor * baseline, (
        f"{shards} shards: {throughput:.1f} req/s is under "
        f"{floor}x the single-process baseline ({baseline:.1f} req/s)"
    )
    assert p99 <= max(P99_CEILING_S, 2 * _BASELINE.get("p99_s", p99)), (
        f"sharded p99 {p99:.3f}s regressed past the single-process run"
    )


def test_warm_cache_beats_cold_start():
    """The resident-process pitch quantified: request latency on warm
    caches must beat the cold first-request latency."""
    reset_plan_cache()
    reset_placement_cache()
    reset_route_cache()

    payload = {"config": "table2", "max_ranks": 256}
    with PlanningServer() as server:
        client = ServiceClient(server.url)
        t0 = time.perf_counter()
        assert client.recommend(payload).status == 200
        cold_s = time.perf_counter() - t0

        warm_samples = []
        for _ in range(10):
            t0 = time.perf_counter()
            assert client.recommend(payload).status == 200
            warm_samples.append(time.perf_counter() - t0)
        warm_s = statistics.median(warm_samples)

    _append({
        "phase": "warm-vs-cold",
        "shards": 1,
        "clients": 1,
        "pool_size": POOL_SIZE,
        "cold_first_request_s": round(cold_s, 6),
        "warm_median_request_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
    })
    assert warm_s < cold_s, (
        f"warm median {warm_s:.4f}s not below cold start {cold_s:.4f}s"
    )
