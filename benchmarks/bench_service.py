"""Benchmark: the planning service under concurrent load.

Drives thousands of ``POST /recommend`` requests from a pool of client
threads into one :class:`PlanningServer` and records what a resident
planning daemon actually delivers:

* **latency** — p50 / p99 per request (seconds);
* **throughput** — requests per second over the whole storm;
* **cache economics** — plan/placement cache hit rates after the storm
  (a warm resident process is the whole point of the service);
* **coalescing savings** — the fraction of recommend requests that
  shared another caller's in-flight computation instead of planning.

The trajectory appends to ``BENCH_service.json`` at the repo root.
Environment knobs: ``REPRO_SERVICE_REQUESTS`` (total requests, default
2000), ``REPRO_SERVICE_CLIENTS`` (concurrent client threads, default
16). CI runs a bounded smoke (see ``.github/workflows/ci.yml``).

Floors are deliberately lenient — shared CI runners are noisy — and a
run on a starved machine skips with a recorded reason instead of
asserting noise: the numbers in the trajectory are the deliverable.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from conftest import record

from repro.exec import (
    placement_cache_stats,
    plan_cache_stats,
    reset_placement_cache,
    reset_plan_cache,
)
from repro.netsim.engine import reset_route_cache
from repro.obs.metrics import registry
from repro.service import PlanningServer, ServiceClient

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

REQUESTS = int(os.environ.get("REPRO_SERVICE_REQUESTS", "2000"))
CLIENTS = int(os.environ.get("REPRO_SERVICE_CLIENTS", "16"))

#: Lenient floors: a resident warm service must beat these on any
#: machine that can run the suite at all.
P99_CEILING_S = 2.0
THROUGHPUT_FLOOR_RPS = 20.0

#: The request mix: mostly repeats of a handful of distinct plans (the
#: realistic shape — fleets ask the same capacity questions), so cache
#: hits and coalescing both get exercised.
_PAYLOADS = [
    {"config": "table2", "max_ranks": 256},
    {"config": "fig2", "max_ranks": 256},
    {"config": "fig10", "max_ranks": 128},
    {"config": "table2", "machine": "bgp", "max_ranks": 128},
    {"config": "fig15", "max_ranks": 128, "efficiency_floor": 0.4},
]


def _append(entry: dict) -> None:
    data = {"benchmark": "planning service load", "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    data["trajectory"].append(entry)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _counter(snapshot: dict, name: str) -> float:
    entry = snapshot.get(name)
    return entry["value"] if entry else 0


def _percentile(samples, q: float) -> float:
    return statistics.quantiles(samples, n=100)[int(q) - 1]


def test_service_load():
    reset_plan_cache()
    reset_placement_cache()
    reset_route_cache()

    latencies = []
    failures = []

    with PlanningServer() as server:
        client = ServiceClient(server.url)
        server.state.warm_start(max_ranks=256)
        before = registry().snapshot()

        def fire(i: int) -> None:
            payload = _PAYLOADS[i % len(_PAYLOADS)]
            t0 = time.perf_counter()
            reply = client.recommend(payload)
            elapsed = time.perf_counter() - t0
            if reply.status != 200:
                failures.append(reply.status)
            latencies.append(elapsed)

        t_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            list(pool.map(fire, range(REQUESTS)))
        wall_s = time.perf_counter() - t_start
        after = registry().snapshot()

    assert not failures, f"{len(failures)} non-200 replies: {failures[:5]}"
    assert len(latencies) == REQUESTS

    p50 = _percentile(latencies, 50)
    p99 = _percentile(latencies, 99)
    throughput = REQUESTS / wall_s

    plan = plan_cache_stats()
    placement = placement_cache_stats()
    hits = _counter(after, "service.coalesce.hits") - _counter(
        before, "service.coalesce.hits"
    )
    misses = _counter(after, "service.coalesce.misses") - _counter(
        before, "service.coalesce.misses"
    )
    assert hits + misses == REQUESTS
    coalesce_rate = hits / REQUESTS

    entry = {
        "requests": REQUESTS,
        "clients": CLIENTS,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(throughput, 1),
        "latency_p50_s": round(p50, 6),
        "latency_p99_s": round(p99, 6),
        "plan_cache_hit_rate": round(plan.hit_rate, 4),
        "placement_cache_hit_rate": round(placement.hit_rate, 4),
        "coalesce_rate": round(coalesce_rate, 4),
        "coalesced_requests": int(hits),
    }
    _append(entry)

    lines = [
        "planning service load "
        f"({REQUESTS} requests, {CLIENTS} clients)",
        f"  throughput            {throughput:10.1f} req/s",
        f"  latency p50           {p50 * 1e3:10.2f} ms",
        f"  latency p99           {p99 * 1e3:10.2f} ms",
        f"  plan cache hit rate   {plan.hit_rate:10.1%}",
        f"  placement hit rate    {placement.hit_rate:10.1%}",
        f"  coalesced             {coalesce_rate:10.1%} "
        f"({int(hits)} requests)",
    ]
    record("service_load", "\n".join(lines))

    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"only {cores} core(s): latency/throughput floors would "
            "assert scheduler noise (numbers recorded above)"
        )
    assert p99 <= P99_CEILING_S, (
        f"p99 {p99:.3f}s exceeds {P99_CEILING_S}s on a warm cache"
    )
    assert throughput >= THROUGHPUT_FLOOR_RPS, (
        f"{throughput:.1f} req/s under the {THROUGHPUT_FLOOR_RPS} floor"
    )


def test_warm_cache_beats_cold_start():
    """The resident-process pitch quantified: request latency on warm
    caches must beat the cold first-request latency."""
    reset_plan_cache()
    reset_placement_cache()
    reset_route_cache()

    payload = {"config": "table2", "max_ranks": 256}
    with PlanningServer() as server:
        client = ServiceClient(server.url)
        t0 = time.perf_counter()
        assert client.recommend(payload).status == 200
        cold_s = time.perf_counter() - t0

        warm_samples = []
        for _ in range(10):
            t0 = time.perf_counter()
            assert client.recommend(payload).status == 200
            warm_samples.append(time.perf_counter() - t0)
        warm_s = statistics.median(warm_samples)

    _append({
        "phase": "warm-vs-cold",
        "cold_first_request_s": round(cold_s, 6),
        "warm_median_request_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
    })
    assert warm_s < cold_s, (
        f"warm median {warm_s:.4f}s not below cold start {cold_s:.4f}s"
    )
