"""Fig 3(a)/(b) — Delaunay triangulation and proportional partitioning."""

import pytest

from conftest import record
from repro.analysis.experiments import fig3a_triangulation, fig3b_partition
from repro.core.prediction.basis import generate_candidates, select_basis
from repro.core.prediction.delaunay import delaunay_triangulation
from repro.core.allocation.partition import partition_grid
from repro.runtime.process_grid import ProcessGrid


def test_fig3a_regenerate(benchmark):
    """Emit the triangulation of the 13 basis domains."""
    result = fig3a_triangulation()
    record("fig03a_triangulation", benchmark(result.render))
    assert len(result.points) == 13


def test_fig3b_regenerate(benchmark):
    """Emit the 0.15:0.3:0.35:0.2 processor partition."""
    result = fig3b_partition()
    record("fig03b_partition", benchmark(result.render))
    for rect, ratio in zip(result.rects, result.ratios):
        assert rect.area / 1024 == pytest.approx(ratio, abs=0.03)


def test_fig3a_kernel_benchmark(benchmark):
    """Time a 13-point Delaunay construction (the model-fit kernel)."""
    basis = select_basis(generate_candidates(200, seed=7))
    aspects = [b.aspect_ratio for b in basis]
    points = [float(b.points) for b in basis]
    a0, a1 = min(aspects), max(aspects)
    p0, p1 = min(points), max(points)
    norm = [((a - a0) / (a1 - a0), (p - p0) / (p1 - p0))
            for a, p in zip(aspects, points)]
    tri = benchmark(delaunay_triangulation, norm)
    assert len(tri.triangles) >= 10


def test_fig3b_kernel_benchmark(benchmark):
    """Time one Huffman split-tree partition of a 32x32 grid."""
    grid = ProcessGrid(32, 32)
    alloc = benchmark(partition_grid, grid, [0.15, 0.3, 0.35, 0.2])
    assert alloc.num_siblings == 4
