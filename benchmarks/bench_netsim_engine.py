"""Benchmark: vectorized network engine vs the scalar oracle.

Times the routing + round-pricing kernel of one 4096-rank BG/P halo
exchange (the paper's largest per-domain message set) under three
regimes:

* ``scalar`` — the original pure-Python hop-by-hop path (the *before*),
* ``vector cold`` — the NumPy engine with an empty route cache,
* ``vector warm`` — the NumPy engine hitting the placement-keyed route
  cache, the regime every repeated round/timestep/sweep config runs in.

The before/after trajectory is appended to ``BENCH_netsim.json`` at the
repo root; the test asserts the >=10x acceptance floor on the cold path
(warm is orders of magnitude beyond it).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import record

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.netsim.contention import round_time
from repro.netsim.engine import VECTOR, as_placement, reset_route_cache, route_cache_stats
from repro.netsim.traffic import route_messages
from repro.perfsim.profiling import netsim_profile
from repro.runtime.halo import HaloSpec, halo_messages
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_P

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_netsim.json"

#: Acceptance floor: the vectorized kernel must beat the scalar path by
#: at least this factor even with a cold route cache.
SPEEDUP_FLOOR = 10.0

RANKS = 4096
DOMAIN = (415, 445)  # the Pacific 415x445 nest of the paper


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_netsim_engine_speedup():
    grid = ProcessGrid(64, 64)
    machine = BLUE_GENE_P
    torus = machine.torus_for_ranks(RANKS, None)
    rpn = machine.mode(None).ranks_per_node
    nodes = ObliviousMapping().place(grid, SlotSpace(torus, rpn)).nodes()
    # One placement vector per placement, as simulate_iteration builds it.
    placement = as_placement(torus, nodes)
    msgs = halo_messages(grid, grid.full_rect(), *DOMAIN, HaloSpec())

    def scalar_kernel():
        routed, loads = route_messages(torus, nodes, msgs)
        return round_time(routed, loads, machine)

    def vector_kernel():
        routed, loads = VECTOR.route_exchange(torus, placement, msgs)
        return VECTOR.round_estimate(routed, loads, machine)

    def vector_cold():
        reset_route_cache()
        return vector_kernel()

    # Parity before timing: the kernels must price the round identically.
    reset_route_cache()
    assert scalar_kernel() == vector_kernel()

    scalar_s = _best_of(scalar_kernel, repeats=3)
    cold_s = _best_of(vector_cold)
    reset_route_cache()
    vector_kernel()  # prime the cache
    warm_s = _best_of(vector_kernel)
    cache = route_cache_stats()

    speedup_cold = scalar_s / cold_s
    speedup_warm = scalar_s / warm_s
    entry = {
        "ranks": RANKS,
        "machine": machine.name,
        "torus": list(torus.dims),
        "messages": len(msgs),
        "scalar_s": scalar_s,
        "vector_cold_s": cold_s,
        "vector_warm_s": warm_s,
        "speedup_cold": round(speedup_cold, 2),
        "speedup_warm": round(speedup_warm, 2),
        "route_cache": {"hits": cache.hits, "misses": cache.misses},
        "netsim_profile": netsim_profile(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }

    data = {"benchmark": "netsim routing + round pricing", "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data["trajectory"].append(entry)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")

    record(
        "netsim_engine",
        "\n".join(
            [
                f"netsim engine kernel, {RANKS} BG/P ranks, "
                f"{len(msgs)} messages on {torus!r}:",
                f"  scalar oracle    {scalar_s * 1e3:9.2f} ms",
                f"  vector (cold)    {cold_s * 1e3:9.2f} ms   {speedup_cold:8.1f}x",
                f"  vector (warm)    {warm_s * 1e6:9.2f} us   {speedup_warm:8.1f}x",
                f"  [appended to {BENCH_JSON.name}]",
            ]
        ),
    )

    assert speedup_cold >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup_cold:.1f}x over scalar "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    assert speedup_warm >= SPEEDUP_FLOOR
