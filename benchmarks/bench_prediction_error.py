"""Sec 3.1 — prediction accuracy: Delaunay model vs naive baseline.

Paper claims: <6% error for the Delaunay model, >19% for the naive
points-proportional model. This is also the features ablation: the only
difference between the two models is the aspect-ratio feature.
"""

import pytest

from conftest import FULL, record
from repro.analysis.experiments import fitted_model, prediction_error_study
from repro.topology.machines import BLUE_GENE_L
from repro.wrf.grid import DomainSpec


@pytest.fixture(scope="module")
def result():
    return prediction_error_study(num_tests=85 if FULL else 40)


def test_prediction_error_regenerate(result, benchmark):
    """Emit the accuracy table and assert both claims."""
    record("prediction_error", benchmark(result.render))
    assert result.delaunay_mean_error < 6.0, "paper claims <6% error"
    assert result.naive_mean_error > 15.0, "paper claims >19% error"
    assert result.delaunay_below_6pct >= 0.8


def test_prediction_kernel_benchmark(benchmark):
    """Time one model prediction (runs inside every allocation)."""
    model = fitted_model(BLUE_GENE_L)
    spec = DomainSpec("q", 313, 337, 8.0, parent="p", parent_start=(0, 0), level=1)
    t = benchmark(model.predict, spec)
    assert t > 0
