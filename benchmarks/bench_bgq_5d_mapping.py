"""Extension bench — 5-D torus mapping on Blue Gene/Q (paper future work).

The paper's conclusion plans "novel schemes for the 5D torus topology of
Blue Gene/Q". This bench evaluates the mixed-radix folded placement
against the machine-default ABCDE-order placement on a BG/Q midplane:
average halo hops for the Fig 2 nest, plus the foldability ablation.
"""

import pytest

from conftest import record
from repro.analysis.tables import Table
from repro.core.mapping.ndfold import (
    default_nd_placement,
    folded_nd_placement,
    nd_average_hops,
)
from repro.runtime.halo import HaloSpec, halo_messages
from repro.runtime.process_grid import ProcessGrid
from repro.topology.bgq import BLUE_GENE_Q


@pytest.fixture(scope="module")
def result():
    rows = []
    for nodes, (px, py) in ((128, (32, 64)), (512, (64, 128)), (1024, (128, 128))):
        torus = BLUE_GENE_Q.torus_for_nodes(nodes)
        grid = ProcessGrid(px, py)
        msgs = halo_messages(grid, grid.full_rect(), 415, 445, HaloSpec())
        default = nd_average_hops(default_nd_placement(grid, torus, 16), msgs)
        folded = nd_average_hops(folded_nd_placement(grid, torus, 16), msgs)
        rows.append((nodes, torus.dims, px * py, default, folded))
    return rows


def test_bgq_regenerate(result, benchmark):
    """Emit the 5-D mapping comparison; folding must cut hops everywhere."""
    def render():
        t = Table(
            ["BG/Q nodes", "torus", "ranks", "default avg hops",
             "folded avg hops", "reduction %"],
            title="Extension — 5-D folded mapping on Blue Gene/Q (paper future work)",
        )
        for nodes, dims, ranks, default, folded in result:
            t.add_row([
                nodes, "x".join(map(str, dims)), ranks, default, folded,
                100 * (1 - folded / default),
            ])
        return t.render()

    record("bgq_5d_mapping", benchmark(render))
    for _, _, _, default, folded in result:
        assert folded < default


def test_folded_guarantee(result, benchmark):
    """Every 2-D neighbour pair is at most one hop under the folded map."""
    torus = BLUE_GENE_Q.torus_for_nodes(128)
    grid = ProcessGrid(32, 64)
    placement = folded_nd_placement(grid, torus, 16)

    def worst_neighbour_hops():
        worst = 0
        for rank in range(0, grid.size, 7):
            for nbr in grid.neighbors_of(rank):
                worst = max(worst, placement.hops_between(rank, nbr))
        return worst

    assert benchmark(worst_neighbour_hops) <= 1


def test_bgq_kernel_benchmark(benchmark):
    """Time a folded placement of 8192 ranks on a BG/Q midplane."""
    torus = BLUE_GENE_Q.torus_for_nodes(512)
    grid = ProcessGrid(64, 128)
    placement = benchmark(folded_nd_placement, grid, torus, 16)
    assert len(placement.nodes) == 8192
