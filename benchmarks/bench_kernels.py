"""Microbenchmarks of the library's core kernels.

Not tied to a specific paper figure; these keep the building blocks
honest (and show where the simulator spends its time).
"""

import pytest

from repro.core.mapping.base import SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.prediction.delaunay import delaunay_triangulation
from repro.netsim.traffic import route_messages
from repro.runtime.halo import HaloSpec, halo_messages
from repro.runtime.process_grid import ProcessGrid
from repro.topology.routing import path_links
from repro.topology.torus import Torus3D
from repro.wrf.fields import ModelState
from repro.wrf.solver import ShallowWaterSolver, SolverParams


def test_torus_routing(benchmark):
    """Dimension-ordered route on a BG/P-sized torus."""
    torus = Torus3D((8, 16, 16))
    links = benchmark(path_links, torus, (0, 0, 0), (4, 8, 8))
    assert len(links) == 20


def test_halo_message_generation(benchmark):
    """Build one round of halo messages for a 4096-rank grid."""
    grid = ProcessGrid(64, 64)
    msgs = benchmark(
        halo_messages, grid, grid.full_rect(), 415, 445, HaloSpec()
    )
    assert len(msgs) > 10_000


def test_route_full_exchange(benchmark):
    """Route a full 1024-rank halo exchange with contention accounting."""
    grid = ProcessGrid(32, 32)
    space = SlotSpace(Torus3D((8, 8, 8)), 2)
    nodes = ObliviousMapping().place(grid, space).nodes()
    torus = space.torus
    msgs = halo_messages(grid, grid.full_rect(), 415, 445, HaloSpec())

    routed, loads = benchmark(route_messages, torus, nodes, msgs)
    assert loads.total_bytes() > 0


def test_route_full_exchange_vector(benchmark):
    """The same 1024-rank exchange through the vectorized engine."""
    from repro.netsim.engine import VECTOR, as_placement, reset_route_cache

    grid = ProcessGrid(32, 32)
    space = SlotSpace(Torus3D((8, 8, 8)), 2)
    torus = space.torus
    placement = as_placement(torus, ObliviousMapping().place(grid, space).nodes())
    msgs = halo_messages(grid, grid.full_rect(), 415, 445, HaloSpec())

    def cold_route():
        reset_route_cache()
        return VECTOR.route_exchange(torus, placement, msgs)

    routed, loads = benchmark(cold_route)
    assert loads.total_bytes() > 0


def test_solver_step(benchmark):
    """One shallow-water step on a 286x307 grid (the Pacific parent)."""
    solver = ShallowWaterSolver(SolverParams(dx_m=24_000.0))
    state = ModelState.with_disturbances(286, 307, seed=1)
    dt = solver.stable_dt(state)
    out = benchmark(solver.step, state, dt)
    assert out.h.shape == (307, 286)


def test_delaunay_100_points(benchmark):
    """Triangulate 100 points (larger than any basis set)."""
    import numpy as np

    rng = np.random.default_rng(0)
    pts = [tuple(p) for p in rng.random((100, 2))]
    tri = benchmark(delaunay_triangulation, pts)
    assert len(tri.triangles) > 150
