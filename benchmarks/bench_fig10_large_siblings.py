"""Fig 10 — three large siblings: improvement grows with machine scale.

Paper: 1.33% at 1024 BG/P cores rising to 20.64% at 8192.
"""

import pytest

from conftest import record
from repro.analysis.experiments import compare_strategies, fig10_large_siblings
from repro.topology.machines import BLUE_GENE_P
from repro.workloads.paper_configs import fig10_domains


@pytest.fixture(scope="module")
def result():
    return fig10_large_siblings()


def test_fig10_regenerate(result, benchmark):
    """Emit the Fig 10 rows and assert the crossover shape."""
    record("fig10_large_siblings", benchmark(result.render))
    # Small gain at 1024, large gain at 8192 — the figure's message.
    assert result.improvements[0] < result.improvements[-1]
    assert result.improvements[-1] > 15.0
    # Parallel never loses.
    assert all(i > 0 for i in result.improvements)


def test_fig10_parallel_scales_further(result, benchmark):
    """The parallel nest phase keeps shrinking all the way to 8192."""
    par = benchmark(lambda: result.parallel_phase)
    assert list(par) == sorted(par, reverse=True)


def test_fig10_kernel_benchmark(benchmark):
    """Time one large-sibling comparison at 2048 ranks."""
    config = fig10_domains()
    cmp = benchmark(compare_strategies, config, 2048, BLUE_GENE_P)
    assert cmp.improvement > 0
