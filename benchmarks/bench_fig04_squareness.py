"""Fig 4 — ablation: splitting along the longer vs shorter dimension."""

import pytest

from conftest import record
from repro.analysis.experiments import fig4_split_direction
from repro.analysis.experiments.exp_allocation import _shorter_first_partition
from repro.core.allocation.partition import partition_grid
from repro.runtime.process_grid import ProcessGrid


@pytest.fixture(scope="module")
def result():
    return fig4_split_direction()


def test_fig4_regenerate(result, benchmark):
    """Emit the squareness comparison; Algorithm 1's choice must win."""
    record("fig04_squareness", benchmark(result.render))
    assert result.longer_first_squareness > result.shorter_first_squareness


def test_fig4_sweep_many_ratios(benchmark):
    """The longer-dimension rule wins across random ratio sets, not just
    the figure's example."""
    import random

    rng = random.Random(4)
    grid = ProcessGrid(32, 32)
    wins = 0
    trials = 25
    from repro.core.allocation.splittree import partition_squareness

    def sweep():
        w = 0
        r = random.Random(4)
        for _ in range(trials):
            k = r.randint(2, 5)
            ratios = [r.uniform(0.1, 1.0) for _ in range(k)]
            longer = partition_squareness(list(partition_grid(grid, ratios).rects))
            shorter = partition_squareness(_shorter_first_partition(ratios, grid))
            if longer >= shorter:
                w += 1
        return w

    wins = benchmark(sweep)
    assert wins >= trials * 0.8


def test_fig4_kernel_benchmark(benchmark):
    """Time the k=3 partition the figure illustrates."""
    grid = ProcessGrid(32, 32)
    alloc = benchmark(partition_grid, grid, [0.4, 0.35, 0.25])
    assert alloc.num_siblings == 3
