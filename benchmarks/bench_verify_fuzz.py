"""Verification fuzz throughput: scenarios/second through all oracles.

The fuzzer's usefulness scales with how many scenarios a CI budget can
afford, so this benchmark tracks end-to-end throughput (generation +
both-strategy simulation + all seven oracles, including the scalar
netsim parity leg) and records it next to the paper tables.
"""

import time

import pytest

from conftest import record
from repro.verify import all_oracles, fuzz


@pytest.fixture(scope="module")
def fuzz_report():
    start = time.perf_counter()
    report = fuzz(30, seed=7)
    elapsed = time.perf_counter() - start
    return report, elapsed


def test_fuzz_clean_and_recorded(fuzz_report):
    report, elapsed = fuzz_report
    assert report.ok, report.render()
    rate = report.scenarios_run / elapsed
    record(
        "verify_fuzz",
        f"{report.scenarios_run} scenarios x {len(report.oracle_names)} "
        f"oracles in {elapsed:.2f}s ({rate:.1f} scenarios/s)\n"
        f"oracles: {', '.join(report.oracle_names)}",
    )
    # Floor: a 200-scenario CI budget must stay inside a couple of minutes.
    assert rate > 2.0, f"fuzz throughput collapsed: {rate:.2f} scenarios/s"


def test_fuzz_kernel_benchmark(benchmark):
    """Time a single-scenario verification through every oracle."""
    from repro.verify import Scenario, failures_for

    scenario = Scenario(
        machine="bgl", ranks=256, num_siblings=3, parent_nx=286,
        parent_ny=307, sibling_seed=42, mapping="partition",
    )
    failures = benchmark(failures_for, scenario)
    assert failures == []


def test_oracle_registry_complete():
    assert len(all_oracles()) >= 6
