"""Fig 15 — scalability and speedup, two 259x229 siblings, 32..1024 cores.

Paper: both strategies saturate similarly; the concurrent strategy is
faster at every processor count, with the speedup gap widening at scale.
"""

import pytest

from conftest import record
from repro.analysis.experiments import fig15_speedup
from repro.core.scheduler.strategies import ParallelSiblingsStrategy
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.workloads.paper_configs import fig15_domains


@pytest.fixture(scope="module")
def result():
    return fig15_speedup()


def test_fig15_regenerate(result, benchmark):
    """Emit the scalability/speedup table and assert the figure's claims."""
    record("fig15_speedup", benchmark(result.render))
    # Concurrent never slower than sequential.
    for s, p in zip(result.sequential_times, result.parallel_times):
        assert p <= s * 1.01


def test_fig15_gap_widens_at_scale(result, benchmark):
    """'Our strategy shows better speedup at a higher number of
    processors' — and about equal at low counts."""
    gaps = benchmark(lambda: [
        (s - p) / s
        for s, p in zip(result.sequential_times, result.parallel_times)
    ])
    assert gaps[-1] > gaps[0]
    assert gaps[0] < 0.12  # near-equal at 32 processors

    seq_speedup, par_speedup = result.speedups()
    assert par_speedup[-1] > seq_speedup[-1]


def test_fig15_saturation(result, benchmark):
    """Both curves flatten: the last doubling gains far less than the
    first."""
    t = benchmark(lambda: result.sequential_times)
    first_gain = 1 - t[1] / t[0]
    last_gain = 1 - t[-1] / t[-2]
    assert last_gain < first_gain


def test_fig15_kernel_benchmark(benchmark):
    """Time the concurrent simulation at 1024 ranks."""
    config = fig15_domains()
    plan = ParallelSiblingsStrategy().plan(
        ProcessGrid(32, 32), config.parent, list(config.siblings),
        ratios=[s.points for s in config.siblings],
    )
    rep = benchmark(simulate_iteration, plan, BLUE_GENE_L)
    assert rep.nest_phase_time > 0
