"""Figs 13/14 — high-frequency output: integration/I/O/total vs cores.

Paper: sequential per-iteration I/O time rises steadily with processor
count (PnetCDF degradation) until it dominates; the parallel-siblings
strategy keeps I/O low because each sibling file has few writers.
"""

import pytest

from conftest import config_count, record
from repro.analysis.experiments import fig13_fig14_io_scaling
from repro.iosim.pnetcdf import pnetcdf_write_time
from repro.topology.machines import BLUE_GENE_P


@pytest.fixture(scope="module")
def result():
    return fig13_fig14_io_scaling(num_configs=config_count(8, 4))


def test_fig13_regenerate(result, benchmark):
    """Emit the three Fig 13 panels + Fig 14 fractions."""
    record("fig13_14_io_scaling", benchmark(result.render))
    seq_io = result.io["sequential"]
    # Sequential I/O time per iteration rises steadily (Fig 13(b)).
    assert list(seq_io) == sorted(seq_io)
    # Parallel I/O stays well below sequential everywhere.
    for s, p in zip(seq_io, result.io["parallel"]):
        assert p < s


def test_fig13_total_scalability(result, benchmark):
    """Fig 13(c): the parallel total keeps improving; the sequential
    total stalls (or reverses) once I/O dominates."""
    par_total = benchmark(lambda: result.total["parallel"])
    assert par_total[-1] < par_total[0]
    seq_total = result.total["sequential"]
    # Sequential gains from the first to last point are much smaller.
    seq_gain = 1 - seq_total[-1] / seq_total[0]
    par_gain = 1 - par_total[-1] / par_total[0]
    assert par_gain > seq_gain


def test_fig14_fractions(result, benchmark):
    """Fig 14: the sequential I/O fraction grows with processors and
    exceeds the parallel fraction everywhere."""
    seq_frac = benchmark(lambda: result.io_fraction("sequential"))
    par_frac = result.io_fraction("parallel")
    assert seq_frac[-1] > seq_frac[0]
    for s, p in zip(seq_frac, par_frac):
        assert p < s


def test_io_kernel_benchmark(benchmark):
    """Time one PnetCDF write estimate (the I/O model kernel)."""
    t = benchmark(pnetcdf_write_time, 4096, 50e6, BLUE_GENE_P)
    assert t > 0
