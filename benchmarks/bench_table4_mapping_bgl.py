"""Table 4 / Fig 11 — mapping comparison on 1024 BG/L cores.

Paper: default > topology-oblivious > partition >= multi-level, with the
topology-aware mappings also beating the stock TXYZ mapping, up to 7%
additional gain over oblivious, and 50%+ MPI_Wait improvements.
"""

import pytest

from conftest import record
from repro.analysis.experiments import table4_fig11_mappings_bgl
from repro.analysis.experiments.common import fitted_model
from repro.core.mapping.base import SlotSpace
from repro.core.mapping.partition_map import PartitionMapping
from repro.exec.placementcache import placement_cache_stats, reset_placement_cache
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_L
from repro.topology.torus import Torus3D
from repro.workloads.paper_configs import table2_rects


@pytest.fixture(scope="module")
def result_and_cache():
    # Fitting the model profiles the 13 basis domains through the
    # placement cache; warm it first so the recorded hit rate counts
    # only the driver's own placements, whatever ran before.
    fitted_model(BLUE_GENE_L)
    reset_placement_cache()
    result = table4_fig11_mappings_bgl()
    return result, placement_cache_stats()


@pytest.fixture(scope="module")
def result(result_and_cache):
    return result_and_cache[0]


def test_table4_regenerate(result_and_cache, benchmark):
    """Emit the Table 4 grid plus the Fig 11 improvement tables."""
    result, cache = result_and_cache
    record(
        "table4_fig11_mapping_bgl",
        benchmark(result.render)
        + f"\nplacement cache: {cache.hits} hits / {cache.misses} misses "
        f"({100 * cache.hit_rate:.0f}% hit rate)",
    )
    for i in range(len(result.config_names)):
        default = result.times["default"][i]
        oblivious = result.times["oblivious"][i]
        partition = result.times["partition"][i]
        multilevel = result.times["multilevel"][i]
        assert oblivious < default
        assert partition < oblivious
        assert multilevel <= oblivious


def test_topology_aware_beats_txyz(result, benchmark):
    """Paper: 'our mappings outperform the existing TXYZ mapping'."""
    def count():
        better = 0
        for i in range(len(result.config_names)):
            best_ours = min(result.times["partition"][i], result.times["multilevel"][i])
            if best_ours <= result.times["txyz"][i] * 1.005:
                better += 1
        return better

    assert benchmark(count) >= len(result.config_names) - 1


def test_additional_gain_over_oblivious(result, benchmark):
    """Paper: up to ~7% additional improvement from topology awareness."""
    gains = benchmark(lambda: [
        100 * (1 - result.times["partition"][i] / result.times["oblivious"][i])
        for i in range(len(result.config_names))
    ])
    assert max(gains) > 4.0
    assert all(g > 0 for g in gains)


def test_wait_improvements_in_paper_range(result, benchmark):
    """Fig 11(b): topology-aware waits improve by roughly 40-70%."""
    benchmark(lambda: result.wait_improvement_over_default("partition"))
    for col in ("partition", "multilevel"):
        imps = result.wait_improvement_over_default(col)
        assert max(imps) > 45.0
        assert min(imps) > 20.0


def test_table4_kernel_benchmark(benchmark):
    """Time a partition-mapping placement at BG/L rack scale."""
    grid = ProcessGrid(32, 32)
    space = SlotSpace(Torus3D((8, 8, 8)), 2)
    placement = benchmark(PartitionMapping().place, grid, space, table2_rects())
    assert len(placement.slots) == 1024
