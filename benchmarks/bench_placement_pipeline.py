"""Benchmark: the array placement & halo pipeline vs the scalar oracle.

Two acceptance floors ride on this module:

* **Mapping-metrics sweep** — the Table 5 metric pipeline (halo build +
  hop metrics for every mapping's placement) at 4096 BG/P ranks must
  beat the scalar oracle by >= 8x (floor 4x). Parity is enforced
  bit-for-bit by ``tests/core/mapping/test_placement_parity.py`` and
  asserted here before timing.
* **Warm ``simulate_iteration``** — with no pre-supplied placement, the
  array backend plus a warm placement cache must beat the scalar
  backend (placement cache cleared per call, as a cold heuristic rerun)
  by >= 3x (floor 1.5x).

Both trajectories append to ``BENCH_placement.json`` at the repo root.
Runners too slow to finish the scalar probe inside the time budget skip
with a recorded reason instead of asserting noise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import record

from repro.analysis.experiments.common import fitted_model, grid_for
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.core.mapping.metrics import nest_and_parent_metrics
from repro.core.mapping.base import SlotSpace
from repro.core.scheduler.strategies import ParallelSiblingsStrategy
from repro.exec.placementcache import placement_cache_stats, reset_placement_cache
from repro.perfsim.profiling import placement_profile
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.halo import HaloSpec
from repro.topology.machines import BLUE_GENE_P
from repro.workloads.paper_configs import table5_configurations

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_placement.json"

RANKS = 4096
METRICS_FLOOR = 4.0  # target >= 8x
SIMULATE_FLOOR = 1.5  # target >= 3x
#: A single scalar probe pass slower than this marks the runner too
#: small for a meaningful ratio; skip with the reason on record.
PROBE_BUDGET_S = 60.0


def _append(entry: dict) -> None:
    data = {"benchmark": "placement & halo pipeline", "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    data["trajectory"].append(entry)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class _backend:
    """Temporarily pin ``REPRO_PLACEMENT`` (restores the prior value)."""

    def __init__(self, name: str):
        self.name = name

    def __enter__(self):
        self.saved = os.environ.get("REPRO_PLACEMENT")
        os.environ["REPRO_PLACEMENT"] = self.name

    def __exit__(self, *exc):
        if self.saved is None:
            os.environ.pop("REPRO_PLACEMENT", None)
        else:
            os.environ["REPRO_PLACEMENT"] = self.saved


def _skip(kind: str, reason: str) -> None:
    _append({"kind": f"{kind}_skip", "reason": reason})
    record(f"placement_{kind}", f"SKIPPED: {reason}")
    pytest.skip(reason)


# ------------------------------------------------- mapping-metrics sweep
def test_mapping_metrics_sweep_speedup():
    machine = BLUE_GENE_P
    grid = grid_for(RANKS)
    rpn = machine.mode(None).ranks_per_node
    torus = machine.torus_for_ranks(RANKS, None)
    space = SlotSpace(torus, rpn)
    config = table5_configurations()[0]
    plan = ParallelSiblingsStrategy(fitted_model(machine)).plan(
        grid, config.parent, list(config.siblings)
    )
    parent_domain = (config.parent.nx, config.parent.ny)
    nest_domains = [(a.domain.nx, a.domain.ny) for a in plan.assignments]
    spec = HaloSpec()

    mappings = [ObliviousMapping(), TxyzMapping(), PartitionMapping(), MultiLevelMapping()]
    placements = [m.place(grid, space, plan.rects) for m in mappings]

    def sweep():
        return [
            nest_and_parent_metrics(
                p, parent_domain, nest_domains, plan.rects, spec
            )
            for p in placements
        ]

    with _backend("vector"):
        vector_out = sweep()
    with _backend("scalar"):
        t0 = time.perf_counter()
        scalar_out = sweep()
        probe = time.perf_counter() - t0
    assert vector_out == scalar_out  # parity before timing
    if probe > PROBE_BUDGET_S:
        _skip(
            "metrics",
            f"scalar metrics probe took {probe:.0f}s "
            f"(budget {PROBE_BUDGET_S:.0f}s); runner too small for a "
            f"meaningful ratio",
        )

    with _backend("scalar"):
        scalar_s = _best_of(sweep, repeats=2)
    with _backend("vector"):
        vector_s = _best_of(sweep, repeats=3)
    speedup = scalar_s / vector_s

    _append(
        {
            "kind": "mapping_metrics_sweep",
            "ranks": RANKS,
            "machine": machine.name,
            "torus": list(torus.dims),
            "mappings": [m.name for m in mappings],
            "scalar_s": scalar_s,
            "vector_s": vector_s,
            "speedup": round(speedup, 2),
            "floor": METRICS_FLOOR,
        }
    )
    record(
        "placement_metrics",
        "\n".join(
            [
                f"mapping-metrics sweep (Table 5 pipeline), {RANKS} BG/P "
                f"ranks, {len(mappings)} mappings x "
                f"{1 + len(nest_domains)} exchanges:",
                f"  scalar oracle  {scalar_s * 1e3:9.2f} ms",
                f"  vector         {vector_s * 1e3:9.2f} ms   {speedup:6.1f}x",
                f"  [appended to {BENCH_JSON.name}]",
            ]
        ),
    )
    assert speedup >= METRICS_FLOOR, (
        f"array metrics pipeline only {speedup:.1f}x over the scalar "
        f"oracle (floor {METRICS_FLOOR}x at {RANKS} ranks)"
    )


# --------------------------------------------- warm simulate_iteration
def test_warm_simulate_iteration_speedup():
    machine = BLUE_GENE_P
    grid = grid_for(RANKS)
    config = table5_configurations()[0]
    plan = ParallelSiblingsStrategy(fitted_model(machine)).plan(
        grid, config.parent, list(config.siblings)
    )
    mapping = MultiLevelMapping()

    def iterate():
        return simulate_iteration(plan, machine, mapping=mapping)

    def scalar_cold():
        # A fresh heuristic run per call: what every sweep iteration
        # paid before the placement cache existed.
        reset_placement_cache()
        return iterate()

    with _backend("vector"):
        reset_placement_cache()
        vector_report = iterate()  # prime the placement cache
    with _backend("scalar"):
        t0 = time.perf_counter()
        scalar_report = scalar_cold()
        probe = time.perf_counter() - t0
    assert vector_report == scalar_report  # parity before timing
    if probe > PROBE_BUDGET_S:
        _skip(
            "simulate",
            f"scalar simulate probe took {probe:.0f}s "
            f"(budget {PROBE_BUDGET_S:.0f}s); runner too small for a "
            f"meaningful ratio",
        )

    with _backend("scalar"):
        scalar_s = _best_of(scalar_cold, repeats=2)
    with _backend("vector"):
        iterate()  # re-prime after the scalar passes cleared the cache
        warm_s = _best_of(iterate, repeats=3)
        cache = placement_cache_stats()
        profile = placement_profile()
    speedup = scalar_s / warm_s

    _append(
        {
            "kind": "warm_simulate_iteration",
            "ranks": RANKS,
            "machine": machine.name,
            "mapping": mapping.name,
            "scalar_cold_s": scalar_s,
            "vector_warm_s": warm_s,
            "speedup": round(speedup, 2),
            "floor": SIMULATE_FLOOR,
            "placement_cache": {"hits": cache.hits, "misses": cache.misses},
            "placement_profile": profile,
        }
    )
    record(
        "placement_simulate",
        "\n".join(
            [
                f"simulate_iteration, {RANKS} BG/P ranks, "
                f"{mapping.name} mapping, no pre-supplied placement:",
                f"  scalar, cold cache  {scalar_s * 1e3:9.2f} ms",
                f"  vector, warm cache  {warm_s * 1e3:9.2f} ms   "
                f"{speedup:6.1f}x",
                f"  placement cache: {cache.hits} hits / "
                f"{cache.misses} misses",
                f"  [appended to {BENCH_JSON.name}]",
            ]
        ),
    )
    assert speedup >= SIMULATE_FLOOR, (
        f"warm simulate_iteration only {speedup:.1f}x over the scalar "
        f"cold path (floor {SIMULATE_FLOOR}x at {RANKS} ranks)"
    )
