"""Table 5 / Fig 12 — mapping comparison on 4096 BG/P cores.

Paper: large default -> oblivious gain (5.43 -> 3.94 s), small further
gain from topology awareness, >50% MPI_Wait improvements, and ~50%
average-hop reduction for the topology-aware mappings.
"""

import pytest

from conftest import record
from repro.analysis.experiments import table5_fig12_mappings_bgp
from repro.analysis.experiments.common import fitted_model
from repro.core.mapping.base import SlotSpace
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.exec.placementcache import placement_cache_stats, reset_placement_cache
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_P
from repro.topology.torus import Torus3D


@pytest.fixture(scope="module")
def result_and_cache():
    # Fitting the model profiles the 13 basis domains through the
    # placement cache; warm it first so the recorded hit rate counts
    # only the driver's own placements, whatever ran before.
    fitted_model(BLUE_GENE_P)
    reset_placement_cache()
    result = table5_fig12_mappings_bgp()
    return result, placement_cache_stats()


@pytest.fixture(scope="module")
def result(result_and_cache):
    return result_and_cache[0]


def test_table5_regenerate(result_and_cache, benchmark):
    """Emit the Table 5 grid plus the Fig 12 tables."""
    result, cache = result_and_cache
    record(
        "table5_fig12_mapping_bgp",
        benchmark(result.render)
        + f"\nplacement cache: {cache.hits} hits / {cache.misses} misses "
        f"({100 * cache.hit_rate:.0f}% hit rate)",
    )
    for i in range(len(result.config_names)):
        assert result.times["oblivious"][i] < result.times["default"][i]
        assert result.times["partition"][i] <= result.times["oblivious"][i] * 1.01
        assert result.times["multilevel"][i] <= result.times["oblivious"][i] * 1.01


def test_fig12_wait_improvements(result, benchmark):
    """Fig 12(a): MPI_Wait decreases by more than 50% on average for the
    oblivious and topology-aware parallel mappings."""
    from repro.util.stats import mean

    benchmark(lambda: result.wait_improvement_over_default("partition"))
    for col in ("partition", "multilevel"):
        assert mean(result.wait_improvement_over_default(col)) > 40.0


def test_fig12_hop_reduction(result, benchmark):
    """Fig 12(b): topology-aware mappings cut average hops (~50% in the
    paper) relative to the default placement."""
    from repro.util.stats import mean

    benchmark(lambda: result.hop_reduction_over_default("partition"))
    for col in ("partition", "multilevel"):
        assert mean(result.hop_reduction_over_default(col)) > 20.0


def test_table5_kernel_benchmark(benchmark):
    """Time a multi-level placement at 4096 BG/P ranks."""
    grid = ProcessGrid(64, 64)
    space = SlotSpace(Torus3D((8, 8, 16)), 4)
    rects = [GridRect(0, 0, 32, 64), GridRect(32, 0, 32, 64)]
    placement = benchmark(MultiLevelMapping().place, grid, space, rects)
    assert len(placement.slots) == 4096
