"""Fig 8 — mean improvement incl./excl. I/O on up to 4096 BG/P cores."""

import pytest

from conftest import config_count, record
from repro.analysis.experiments import compare_strategies, fig8_improvement_with_io
from repro.iosim.model import IoModel
from repro.topology.machines import BLUE_GENE_P
from repro.workloads.regions import pacific_configurations


@pytest.fixture(scope="module")
def result():
    return fig8_improvement_with_io(num_configs=config_count(30, 8))


def test_fig8_regenerate(result, benchmark):
    """Emit the Fig 8 rows and assert the figure's two properties."""
    record("fig08_improvement_io", benchmark(result.render))
    # Improvement including I/O exceeds improvement excluding it at every
    # processor count (the PnetCDF effect the figure highlights).
    for excl, incl in zip(result.improvement_excl_io, result.improvement_incl_io):
        assert incl > excl
    # Both improvements are positive and grow toward rack scale.
    assert all(v > 0 for v in result.improvement_excl_io)
    assert result.improvement_excl_io[-1] > result.improvement_excl_io[0]


def test_fig8_kernel_benchmark(benchmark):
    """Time one strategy comparison with I/O (the Fig 8 inner loop)."""
    config = pacific_configurations(1, seed=808)[0]
    io = IoModel("pnetcdf")
    cmp = benchmark(compare_strategies, config, 512, BLUE_GENE_P, io_model=io)
    assert cmp.improvement_with_io != 0
