"""Extension ablation — the sequential/parallel spectrum.

The paper compares two extremes: all siblings sequential (g = k) vs all
concurrent (g = 1). The grouped strategy interpolates; this ablation
shows *when* full parallelism wins: at rack scale always, but for the
Fig 10 large-nest configuration at modest scale the intermediate points
reveal how much of the gain comes from eliminating the per-step fixed
cost vs from better scaling regions.
"""

import pytest

from conftest import record
from repro.analysis.tables import Table
from repro.core.scheduler.grouped import (
    GroupedStrategy,
    simulate_grouped_iteration,
)
from repro.analysis.experiments.common import grid_for
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P
from repro.workloads.paper_configs import fig10_domains, table2_domains


@pytest.fixture(scope="module")
def result():
    rows = []
    cases = [
        ("table2 @1024 BG/L", table2_domains(), 1024, BLUE_GENE_L),
        ("fig10 @2048 BG/P", fig10_domains(), 2048, BLUE_GENE_P),
    ]
    for label, config, ranks, machine in cases:
        grid = grid_for(ranks)
        siblings = list(config.siblings)
        k = len(siblings)
        times = {}
        for g in range(1, k + 1):
            plans = GroupedStrategy(g).plan_groups(grid, config.parent, siblings)
            t, _ = simulate_grouped_iteration(plans, machine)
            times[g] = t
        rows.append((label, k, times))
    return rows


def test_grouping_ablation_regenerate(result, benchmark):
    """Emit the spectrum; full parallelism must win at these scales."""
    def render():
        t = Table(
            ["configuration", "#groups", "s/iteration", "vs sequential %"],
            title="Ablation — grouped execution between the paper's two extremes",
        )
        for label, k, times in result:
            basis = times[k]
            for g in sorted(times):
                t.add_row([
                    label if g == 1 else "", g, times[g],
                    100 * (1 - times[g] / basis),
                ])
        return t.render()

    record("ablation_grouping", benchmark(render))
    for _, k, times in result:
        # Monotone: fewer groups (more parallelism) never slower here.
        ordered = [times[g] for g in sorted(times)]
        assert ordered == sorted(ordered)


def test_most_gain_from_first_halving(result, benchmark):
    """Going from k groups to ceil(k/2) captures a large share of the
    total gain — the fixed-cost elimination dominates."""
    benchmark(lambda: None)
    for _, k, times in result:
        if k < 3:
            continue
        total_gain = times[k] - times[1]
        half = -(-k // 2)
        first_gain = times[k] - times[half]
        assert first_gain > 0.35 * total_gain


def test_grouping_kernel_benchmark(benchmark):
    """Time a two-group plan + pricing of the Table 2 configuration."""
    config = table2_domains()
    grid = grid_for(1024)

    def run():
        plans = GroupedStrategy(2).plan_groups(
            grid, config.parent, list(config.siblings)
        )
        return simulate_grouped_iteration(plans, BLUE_GENE_L)

    t, w = benchmark(run)
    assert t > 0 and w > 0
