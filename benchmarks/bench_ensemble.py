"""Benchmark: the runtime ensemble fabric at 1000 concurrent members.

Drives a 1000-member steered ensemble — seeds clustered into 32
families so members visit ~32 distinct nest states per tick — twice:
once with the cross-member memo disabled (every member prices its own
replan) and once with it enabled (one pricing pass per distinct
scheduling state).  The recorded speedup is the dedup claim of the
ensemble fabric and is asserted against a floor; both legs must fold to
byte-identical snapshots, so the speedup is free of behaviour drift.

A second harness replays the 100-member CI smoke with runtime
``kill``/``spawn``/``branch`` events at 1, 2, and ``REPRO_ENSEMBLE_JOBS``
workers and asserts the merged snapshots are byte-identical — the
determinism contract under the affinity work queue.

Results append to ``BENCH_ensemble.json`` at the repo root.

Environment knobs:

* ``REPRO_ENSEMBLE_MEMBERS`` — ensemble size for the dedup run
  (default 1000; CI smoke uses 100).
* ``REPRO_ENSEMBLE_FAMILIES`` — seed families, i.e. distinct nest
  states the members cluster into (default 32).
* ``REPRO_ENSEMBLE_TICKS`` — ticks per leg (default 6).
* ``REPRO_ENSEMBLE_RANKS`` — machine allocation each member prices
  (default 131072 BG/P ranks; pricing cost scales with this).
* ``REPRO_ENSEMBLE_FLOOR`` — minimum dedup speedup (default 5.0 at the
  1000-member default; scale it down with the member count, the memo's
  cold misses amortise over members per family).
* ``REPRO_ENSEMBLE_JOBS`` — worker count for the jobs-equality smoke
  (default 4).
* ``REPRO_ENSEMBLE_RSS_MB`` — peak-RSS ceiling for the whole run
  (default 2048 MB).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import record

from repro.ensemble import (
    EnsembleDriver,
    EnsembleEvent,
    EnsemblePolicy,
    default_member_spec,
)
from repro.obs.metrics import peak_rss_bytes, sample_rss

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_ensemble.json"

MEMBERS = int(os.environ.get("REPRO_ENSEMBLE_MEMBERS", 1000))
FAMILIES = int(os.environ.get("REPRO_ENSEMBLE_FAMILIES", 32))
TICKS = int(os.environ.get("REPRO_ENSEMBLE_TICKS", 6))
RANKS = int(os.environ.get("REPRO_ENSEMBLE_RANKS", 131072))
FLOOR = float(os.environ.get("REPRO_ENSEMBLE_FLOOR", 5.0))
JOBS = int(os.environ.get("REPRO_ENSEMBLE_JOBS", 4))
RSS_CEILING_MB = float(os.environ.get("REPRO_ENSEMBLE_RSS_MB", 2048))


def assert_rss_within(ceiling_mb: float) -> int:
    """Fail with :class:`MemoryError` when peak RSS exceeds *ceiling_mb*."""
    sample_rss()
    peak = peak_rss_bytes()
    if peak > ceiling_mb * 2**20:
        raise MemoryError(
            f"peak RSS {peak / 2**20:.1f} MiB exceeds the "
            f"{ceiling_mb:.0f} MiB ensemble ceiling "
            "(REPRO_ENSEMBLE_RSS_MB); the memory budget was not held"
        )
    return peak


def _specs(n: int, families: int, seed0: int = 7):
    """*n* members whose seeds cluster into *families* nest states.

    The bench configuration is deliberately small on the model side
    (20x16 parent, one 6-cell nest) and large on the scheduling side
    (131k-rank pricing): the dedup claim is about scheduling work, and
    this shape puts the pricing pass — the thing the memo removes —
    squarely in the no-dedup leg's critical path.
    """
    return [
        default_member_spec(
            seed0 + (i % families),
            parent_nx=20,
            parent_ny=16,
            nests=1,
            nest_px=6,
            refinement=3,
            amplitude=2.0,
        )
        for i in range(n)
    ]


def _events(n: int):
    """The runtime-event storyline every leg replays identically."""
    return [
        EnsembleEvent(tick=1, action="branch", member=0),
        EnsembleEvent(tick=2, action="kill", member=1 % n),
        EnsembleEvent(tick=2, action="spawn", seed=9001),
    ]


def _policy(memo: bool) -> EnsemblePolicy:
    return EnsemblePolicy(machine="bgp", ranks=RANKS, io="pnetcdf", memo=memo)


def _leg(memo: bool, n: int, families: int, jobs: int = 1):
    driver = EnsembleDriver(
        _specs(n, families), policy=_policy(memo), jobs=jobs,
        events=_events(n),
    )
    t0 = time.perf_counter()
    result = driver.run(TICKS)
    return time.perf_counter() - t0, result


def test_dedup_floor():
    families = min(FAMILIES, MEMBERS)

    # No-dedup leg first: the baseline must pay full price before the
    # memo leg can claim a speedup over it.
    t_off, off = _leg(False, MEMBERS, families)
    t_on, on = _leg(True, MEMBERS, families)
    speedup = t_off / t_on

    # Same trajectory bit-for-bit: the memo changes wall time only.
    assert on.snapshot_json() == off.snapshot_json()
    assert off.memo.hits == 0
    assert on.memo.hits > 0

    peak = assert_rss_within(RSS_CEILING_MB)

    payload = {
        "members": MEMBERS,
        "families": families,
        "ticks": TICKS,
        "ranks": RANKS,
        "member_ticks": on.member_ticks,
        "events": {"branched": 1, "killed": 1, "spawned": 1},
        "no_dedup_s": t_off,
        "dedup_s": t_on,
        "speedup": speedup,
        "floor": FLOOR,
        "dedup_hit_rate": on.dedup_hit_rate,
        "memo": on.memo.to_json(),
        "members_per_s": on.member_ticks / t_on,
        "no_dedup_members_per_s": off.member_ticks / t_off,
        "peak_rss_mb": peak / 2**20,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    data = {"benchmark": "ensemble fabric, cross-member dedup",
            "trajectory": []}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data["trajectory"].append(payload)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")

    record(
        "ensemble",
        "\n".join(
            [
                f"ensemble fabric, {MEMBERS} members in {families} families, "
                f"{TICKS} ticks at {RANKS} ranks:",
                f"  no-dedup  {t_off:>8.2f}s  "
                f"{off.member_ticks / t_off:>8.1f} member-ticks/s",
                f"  dedup     {t_on:>8.2f}s  "
                f"{on.member_ticks / t_on:>8.1f} member-ticks/s",
                f"  speedup   {speedup:>7.2f}x  (floor {FLOOR:.1f}x)",
                f"  hit rate  {on.dedup_hit_rate:>8.2f}  "
                f"(local {on.memo.local_hits}, shared {on.memo.shared_hits}, "
                f"misses {on.memo.misses})",
                f"  snapshots byte-identical: True",
                f"  [appended to {BENCH_JSON.name}]",
            ]
        ),
    )

    assert speedup >= FLOOR, (
        f"dedup speedup {speedup:.2f}x is below the {FLOOR:.1f}x floor "
        "(REPRO_ENSEMBLE_FLOOR)"
    )


def test_events_and_jobs_equality():
    """100-member smoke: kill/spawn/branch at jobs=1/2/N fold identically."""
    n = min(MEMBERS, 100)
    families = min(FAMILIES, n)

    _, baseline = _leg(True, n, families, jobs=1)
    metrics = baseline.metrics
    assert metrics["ensemble.members.branched"]["value"] == 1
    assert metrics["ensemble.members.killed"]["value"] == 1
    assert metrics["ensemble.members.spawned"]["value"] == 1

    expected = baseline.snapshot_json()
    for jobs in sorted({2, JOBS}):
        _, parallel_run = _leg(True, n, families, jobs=jobs)
        assert parallel_run.snapshot_json() == expected, (
            f"snapshot at jobs={jobs} diverged from jobs=1"
        )

    assert_rss_within(RSS_CEILING_MB)


def test_rss_ceiling_failure_mode():
    """The budget-exceeded path must fail loudly, not pass vacuously."""
    with pytest.raises(MemoryError, match="exceeds the 1 MiB"):
        assert_rss_within(1.0)
