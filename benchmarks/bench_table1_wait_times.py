"""Table 1 — MPI_Wait improvements on BG/L and BG/P.

Paper values: averages 27-38%, maxima 44-66% across 85 configurations.
"""

import pytest

from conftest import config_count, record
from repro.analysis.experiments import compare_strategies, table1_wait_improvement
from repro.topology.machines import BLUE_GENE_L
from repro.workloads.regions import pacific_configurations


@pytest.fixture(scope="module")
def result():
    return table1_wait_improvement(num_configs=config_count(85, 10))


def test_table1_regenerate(result, benchmark):
    """Emit Table 1 rows and assert the paper's ranges loosely."""
    record("table1_wait_times", benchmark(result.render))
    for machine, ranks, avg, mx in result.rows:
        assert 15.0 < avg < 70.0, (machine, ranks, avg)
        assert mx > avg
        assert mx < 90.0


def test_table1_bgl_row_near_paper(result, benchmark):
    """Paper: 38.42% average / 66.30% max on 1024 BG/L cores."""
    bgl_rows = benchmark(lambda: [r for r in result.rows if "L" in r[0]])
    assert bgl_rows
    _, _, avg, mx = bgl_rows[0]
    assert avg == pytest.approx(38.4, abs=15.0)
    assert mx == pytest.approx(66.3, abs=20.0)


def test_table1_kernel_benchmark(benchmark):
    """Time one wait-improvement evaluation."""
    config = pacific_configurations(1, seed=11)[0]

    def one():
        return compare_strategies(config, 1024, BLUE_GENE_L).wait_improvement

    imp = benchmark(one)
    assert imp > 0
