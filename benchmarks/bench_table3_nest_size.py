"""Table 3 — improvement shrinks as the maximum nest size grows.

Paper: 25.62% (205x223) / 21.87% (394x418) / 10.11% (925x820) on up to
8192 BG/P cores.
"""

import pytest

from conftest import record
from repro.analysis.experiments import compare_strategies, table3_nest_size_effect
from repro.topology.machines import BLUE_GENE_P
from repro.workloads.paper_configs import table3_configurations


@pytest.fixture(scope="module")
def result():
    return table3_nest_size_effect()


def test_table3_regenerate(result, benchmark):
    """Emit Table 3 and assert the monotone size effect."""
    record("table3_nest_size", benchmark(result.render))
    imps = list(result.improvements)
    assert imps[0] > imps[1] > imps[2], "bigger nests must benefit less"
    assert all(i > 0 for i in imps)


def test_table3_kernel_benchmark(benchmark):
    """Time the small-nest configuration at 2048 ranks."""
    config = table3_configurations()[0]
    cmp = benchmark(compare_strategies, config, 2048, BLUE_GENE_P)
    assert cmp.improvement > 0
