"""Shared infrastructure for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper:
the experiment driver runs once (module-scoped fixture), its rendered
rows/series are written to ``benchmarks/results/<name>.txt`` and echoed
to the terminal section, and a representative kernel of the experiment
is timed with pytest-benchmark.

Set ``REPRO_FULL=1`` to run the paper-sized configuration counts (85
Pacific configurations etc.); defaults are scaled down so the whole
benchmark suite completes in minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-size vs quick configuration counts.
FULL = bool(int(os.environ.get("REPRO_FULL", "0")))


def config_count(full_size: int, quick_size: int) -> int:
    """Number of random configurations to sweep."""
    return full_size if FULL else quick_size


def ensure_results_dir() -> Path:
    """Create ``benchmarks/results``, failing loudly when impossible.

    Benchmark tables are the before/after record of every perf PR; a
    results directory that cannot be written (wrong permissions, a stray
    file squatting on the path) must abort the run with a clear error,
    never let results silently evaporate.
    """
    try:
        RESULTS_DIR.mkdir(exist_ok=True)
        # Probe an actual write: permission bits alone lie to root, and
        # exist_ok=True masks a directory that is there but read-only.
        probe = RESULTS_DIR / ".write-probe"
        probe.write_text("")
        probe.unlink()
    except OSError as exc:
        raise RuntimeError(
            f"benchmark results directory {RESULTS_DIR} is not writable: "
            f"{exc}. Benchmarks persist their rendered tables there; "
            "refusing to run and silently drop results."
        ) from exc
    return RESULTS_DIR


def record(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it.

    Every recorded table gets a peak-RSS footer: memory is a first-class
    benchmark output since the streaming netsim (the strong-scaling
    acceptance gate is stated in bytes, not seconds), so each harness
    reports the high-water mark of the process that produced its table.
    """
    from repro.obs.metrics import peak_rss_bytes, sample_rss

    sample_rss()
    footer = f"[peak RSS {peak_rss_bytes() / 2**20:.1f} MiB]"
    path = ensure_results_dir() / f"{name}.txt"
    path.write_text(text + "\n" + footer + "\n")
    print(f"\n{'=' * 72}\n{text}\n{footer}\n[written to {path}]")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    return ensure_results_dir()
