"""Shared infrastructure for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper:
the experiment driver runs once (module-scoped fixture), its rendered
rows/series are written to ``benchmarks/results/<name>.txt`` and echoed
to the terminal section, and a representative kernel of the experiment
is timed with pytest-benchmark.

Set ``REPRO_FULL=1`` to run the paper-sized configuration counts (85
Pacific configurations etc.); defaults are scaled down so the whole
benchmark suite completes in minutes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-size vs quick configuration counts.
FULL = bool(int(os.environ.get("REPRO_FULL", "0")))


def config_count(full_size: int, quick_size: int) -> int:
    """Number of random configurations to sweep."""
    return full_size if FULL else quick_size


def record(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
