"""Legacy setup shim: enables `python setup.py develop` on toolchains
without PEP 660 support (no `wheel` package available offline)."""
from setuptools import setup

setup()
