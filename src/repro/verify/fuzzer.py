"""Seeded scenario fuzzing with greedy failure minimization.

:func:`fuzz` draws *budget* random scenarios from one seed, builds each,
and runs every registered invariant oracle against it. Failures are then
*shrunk*: the fuzzer repeatedly edits the scenario's repro dict toward a
canonical small form (fewer siblings, fewer ranks, smaller parent, the
oblivious mapping, no I/O) and keeps any edit that still reproduces a
failure of the same oracle. The result is a minimal repro dict —
``Scenario.from_params(...)`` away from a debugger.

Scenario *generation* infeasibility (rejection sampling cannot place the
requested disjoint nests) is not a failure: the draw is skipped and
replaced, and the skip is counted in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.pool import SweepRunner
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import merge_snapshots
from repro.obs.trace import tracer
from repro.util.rng import make_rng
from repro.verify.oracles import OracleFailure, all_oracles, run_oracles
from repro.verify.scenarios import Scenario, ScenarioRun, random_scenario

__all__ = ["FuzzFailure", "FuzzReport", "fuzz", "shrink", "failures_for"]

#: Pseudo-oracle name for scenarios whose *build* raises unexpectedly.
BUILD_CRASH = "no-crash"

#: Upper bound on shrink candidate evaluations per failure.
MAX_SHRINK_STEPS = 60

# Observability: fuzzing throughput and outcomes. Bound once at import;
# registry resets zero them in place.
_FUZZ_SCENARIOS = _obs_counter("verify.fuzz.scenarios_run")
_FUZZ_SKIPS = _obs_counter("verify.fuzz.infeasible_skips")
_FUZZ_FAILURES = _obs_counter("verify.fuzz.failures")


@dataclass(frozen=True)
class FuzzFailure:
    """One minimized oracle failure found during a fuzz run."""

    oracle: str
    message: str
    scenario: Dict[str, object]
    minimized: Dict[str, object]

    def render(self) -> str:
        """Failure block with the original and minimized repro dicts."""
        return (
            f"[{self.oracle}] {self.message}\n"
            f"  found with: {self.scenario}\n"
            f"  minimized : {self.minimized}"
        )


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz run."""

    budget: int
    seed: int
    scenarios_run: int
    infeasible_skips: int
    oracle_names: Tuple[str, ...]
    failures: Tuple[FuzzFailure, ...]
    #: Worker processes used to evaluate scenarios.
    jobs: int = 1
    #: Merged per-scenario metrics snapshot (``collect_metrics`` only).
    #: Deliberately absent from :meth:`render` — the rendered report is
    #: part of the determinism contract across worker counts.
    metrics: Optional[Dict[str, Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        """Whether every scenario passed every oracle."""
        return not self.failures

    def render(self) -> str:
        """Human-readable run summary."""
        lines = [
            f"verify: {self.scenarios_run} scenarios (seed {self.seed}, "
            f"budget {self.budget}, {self.infeasible_skips} infeasible skips) "
            f"x {len(self.oracle_names)} oracles "
            f"[{', '.join(self.oracle_names)}]"
        ]
        if self.ok:
            lines.append("all invariants held")
        else:
            lines.append(f"{len(self.failures)} FAILURES")
            for f in self.failures:
                lines.append(f.render())
        return "\n".join(lines)


def failures_for(
    scenario: Scenario, oracle_names: Optional[Sequence[str]] = None
) -> List[OracleFailure]:
    """Build *scenario* and run the oracles, folding build crashes in.

    Returns an empty list when the scenario is infeasible to generate
    (:class:`ConfigurationError` from rejection sampling) — infeasible
    is not a verdict about the system under test.
    """
    try:
        run = scenario.build()
    except ConfigurationError:
        return []
    except Exception as exc:  # noqa: BLE001 — build crashes are findings
        return [
            OracleFailure(
                BUILD_CRASH,
                f"scenario build crashed: {type(exc).__name__}: {exc}",
                scenario.params(),
            )
        ]
    return run_oracles(run, oracle_names)


def _is_feasible(scenario: Scenario) -> bool:
    try:
        scenario.domains()
    except ConfigurationError:
        return False
    return True


# ------------------------------------------------------------- shrinking
def _shrink_moves(s: Scenario) -> List[Scenario]:
    """Candidate one-step simplifications of *s*, most aggressive first."""
    moves: List[Scenario] = []
    if s.num_siblings > 1:
        moves.append(replace(s, num_siblings=1))
        moves.append(replace(s, num_siblings=s.num_siblings - 1))
    if s.ranks > 64:
        moves.append(replace(s, ranks=64))
        moves.append(replace(s, ranks=max(64, s.ranks // 2)))
    if s.parent_nx > 80 or s.parent_ny > 80:
        moves.append(
            replace(s, parent_nx=max(80, s.parent_nx // 2),
                    parent_ny=max(80, s.parent_ny // 2))
        )
        moves.append(
            replace(s, parent_nx=max(80, (s.parent_nx * 3) // 4),
                    parent_ny=max(80, (s.parent_ny * 3) // 4))
        )
    if s.mapping != "oblivious":
        moves.append(replace(s, mapping="oblivious"))
    if s.io != "none":
        moves.append(replace(s, io="none"))
    if s.sibling_seed != 0:
        moves.append(replace(s, sibling_seed=0))
    return moves


def shrink(
    scenario: Scenario,
    oracle_name: str,
    *,
    max_steps: int = MAX_SHRINK_STEPS,
) -> Scenario:
    """Greedily minimize *scenario* while *oracle_name* still fails.

    Each accepted move restarts the move list (a smaller scenario may
    unlock further shrinks); the loop stops at a fixpoint or after
    *max_steps* candidate evaluations. Only the failing oracle is
    re-evaluated on candidates — shrinking must not be derailed by an
    unrelated oracle tripping on the smaller scenario.
    """
    names = None if oracle_name == BUILD_CRASH else [oracle_name]

    def still_fails(candidate: Scenario) -> bool:
        return any(f.oracle == oracle_name for f in failures_for(candidate, names))

    current = scenario
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _shrink_moves(current):
            steps += 1
            if steps > max_steps:
                break
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


# ----------------------------------------------------------------- fuzz
def _fuzz_task(item: Tuple[Scenario, Tuple[str, ...]]) -> Tuple[OracleFailure, ...]:
    """Evaluate one drawn scenario — the pool task for parallel fuzzing.

    Counter increments live *inside* the task so that per-task metric
    capture (:class:`~repro.exec.pool.SweepRunner` with
    ``capture_metrics``) attributes them to the scenario's delta.
    """
    scenario, selected = item
    tr = tracer()
    with tr.span(
        "verify.scenario", scenario.params() if tr.enabled else None
    ):
        found = failures_for(scenario, selected)
    _FUZZ_SCENARIOS.inc()
    _FUZZ_FAILURES.inc(len(found))
    return tuple(found)


def _draw_scenarios(
    rng, budget: int
) -> Tuple[List[Scenario], List[int], int]:
    """Draw *budget* feasible scenarios plus per-draw skip bookkeeping.

    Returns ``(scenarios, skips_before, total_skips)`` where
    ``skips_before[i]`` is the number of infeasible draws that preceded
    scenario *i* — what the interleaved draw/evaluate loop would have
    counted at the moment scenario *i* ran, needed to keep early-stop
    reports identical to the historical (and ``jobs=1``) behavior.
    """
    scenarios: List[Scenario] = []
    skips_before: List[int] = []
    skipped = 0
    attempts = 0
    max_attempts = budget * 3
    while len(scenarios) < budget and attempts < max_attempts:
        attempts += 1
        scenario = random_scenario(rng)
        if not _is_feasible(scenario):
            skipped += 1
            _FUZZ_SKIPS.inc()
            continue
        skips_before.append(skipped)
        scenarios.append(scenario)
    return scenarios, skips_before, skipped


def fuzz(
    budget: int = 200,
    *,
    seed: int = 7,
    oracle_names: Optional[Sequence[str]] = None,
    shrink_failures: bool = True,
    max_failures: int = 10,
    on_scenario: Optional[Callable[[int, Scenario], None]] = None,
    jobs: int = 1,
    collect_metrics: bool = False,
) -> FuzzReport:
    """Run every registered oracle over *budget* random scenarios.

    Parameters
    ----------
    budget:
        Number of scenarios to build and check (infeasible draws are
        replaced and counted separately).
    seed:
        Master seed; the whole run is a pure function of it.
    oracle_names:
        Restrict to a subset of registered oracles (default: all).
    shrink_failures:
        Minimize each failure's scenario before reporting.
    max_failures:
        Stop early after this many failures (keeps a badly broken tree
        from burning the whole budget on shrinking).
    on_scenario:
        Progress callback ``(index, scenario)`` invoked per evaluated
        scenario, in order.
    jobs:
        Worker processes for scenario evaluation. Scenarios are always
        drawn in the parent from one RNG stream, so the failure list,
        the report's :meth:`~FuzzReport.render`, and (with
        *collect_metrics*) the merged metrics snapshot are identical
        for every worker count. Shrinking always runs in the parent.
    collect_metrics:
        Capture a per-scenario metrics delta and fold them, in scenario
        order, into :attr:`FuzzReport.metrics`. Each scenario then runs
        against a zeroed registry and route cache; with ``jobs=1`` that
        zeroing happens in the calling process.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    rng = make_rng(seed)
    selected = tuple(oracle_names) if oracle_names is not None else tuple(
        sorted(all_oracles())
    )
    tr = tracer()
    failures: List[FuzzFailure] = []
    ran = 0
    metrics: Optional[Dict[str, Dict[str, Any]]] = None

    def note_failures(scenario: Scenario, found: Sequence[OracleFailure]) -> None:
        for failure in found:
            if tr.enabled:
                tr.event(
                    "verify.failure",
                    {"oracle": failure.oracle, "message": failure.message,
                     **scenario.params()},
                )
            minimized = scenario
            if shrink_failures:
                minimized = shrink(scenario, failure.oracle)
            failures.append(
                FuzzFailure(
                    oracle=failure.oracle,
                    message=failure.message,
                    scenario=scenario.params(),
                    minimized=minimized.params(),
                )
            )

    with tr.span(
        "verify.fuzz",
        {"budget": budget, "seed": seed, "jobs": jobs}
        if tr.enabled
        else None,
    ):
        scenarios, skips_before, skipped = _draw_scenarios(rng, budget)

        if jobs == 1 and not collect_metrics:
            # Inline path: evaluate lazily so max_failures stops early
            # without paying for the rest of the budget.
            for idx, scenario in enumerate(scenarios):
                if on_scenario is not None:
                    on_scenario(idx, scenario)
                found = _fuzz_task((scenario, selected))
                ran = idx + 1
                note_failures(scenario, found)
                if len(failures) >= max_failures:
                    skipped = skips_before[idx]
                    break
        else:
            # Pool path: evaluate the whole budget (results arrive in
            # draw order), then consume until max_failures.
            runner = SweepRunner(jobs, capture_metrics=True)
            sweep = runner.map(
                _fuzz_task, [(s, selected) for s in scenarios]
            )
            merged: Dict[str, Dict[str, Any]] = {}
            for idx, found in enumerate(sweep.results):
                scenario = scenarios[idx]
                if on_scenario is not None:
                    on_scenario(idx, scenario)
                merged = merge_snapshots(merged, sweep.task_metrics[idx])
                ran = idx + 1
                note_failures(scenario, found)
                if len(failures) >= max_failures:
                    skipped = skips_before[idx]
                    break
            if collect_metrics:
                metrics = merged

    return FuzzReport(
        budget=budget,
        seed=seed,
        scenarios_run=ran,
        infeasible_skips=skipped,
        oracle_names=selected,
        failures=tuple(failures),
        jobs=jobs,
        metrics=metrics,
    )
