"""Pytest integration for the verification subsystem.

Re-exported by ``tests/conftest.py`` so the tier-1 suite gains:

* ``--update-goldens`` — regenerate the golden snapshots instead of
  diffing against them (commit the result);
* ``--fuzz-budget N`` — scenarios the in-suite fuzz smoke runs (default
  keeps tier-1 fast; CI and ``repro verify`` run the full budget);
* ``--fuzz-seed N`` — master seed of the in-suite fuzz smoke.
"""

from __future__ import annotations

import pytest

__all__ = ["pytest_addoption", "update_goldens", "fuzz_budget", "fuzz_seed"]

DEFAULT_FUZZ_BUDGET = 25
DEFAULT_FUZZ_SEED = 7


def pytest_addoption(parser) -> None:
    """Register the verification options on the pytest CLI."""
    group = parser.getgroup("repro-verify")
    group.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate golden snapshots under tests/golden/ instead of "
             "diffing against them",
    )
    group.addoption(
        "--fuzz-budget",
        type=int,
        default=DEFAULT_FUZZ_BUDGET,
        help=f"scenario budget of the in-suite fuzz smoke "
             f"(default {DEFAULT_FUZZ_BUDGET})",
    )
    group.addoption(
        "--fuzz-seed",
        type=int,
        default=DEFAULT_FUZZ_SEED,
        help=f"master seed of the in-suite fuzz smoke "
             f"(default {DEFAULT_FUZZ_SEED})",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether this run should rewrite the golden snapshots."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def fuzz_budget(request) -> int:
    """Scenario budget for fuzz-driven tests."""
    return int(request.config.getoption("--fuzz-budget"))


@pytest.fixture
def fuzz_seed(request) -> int:
    """Master seed for fuzz-driven tests."""
    return int(request.config.getoption("--fuzz-seed"))
