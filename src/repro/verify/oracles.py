"""The invariant-oracle registry.

An *oracle* is a named checker of one system invariant over a fully-built
:class:`~repro.verify.scenarios.ScenarioRun`. Oracles raise
:class:`OracleViolation` with a human-readable message when the invariant
breaks; :func:`run_oracles` converts violations (and unexpected crashes)
into :class:`OracleFailure` records carrying the scenario's repro dict.

Registered invariants
---------------------
``rank-conservation``
    Concurrent plans assign every grid position to at most one sibling and
    never exceed the grid; sequential plans give every sibling the full
    grid; reported sibling ranks match the clamped rectangles.
``timeline-consistency``
    ``phase_time == r * step`` per sibling, ``sync_wait`` closes the gap to
    the nest phase, ``integration == parent + nest phase``,
    ``total == integration + io``, and the wait breakdown sums.
``monotone-scaling``
    On a fixed workload, per-domain *compute* time never increases as the
    rank count grows, and total iteration time never regresses beyond the
    machine's fixed per-step costs (total time is *not* strictly monotone
    — Fig 2's saturation — so the total gets a bounded-slack check).
``mapping-bijectivity``
    The placement is a bijection of ranks onto distinct slots of real
    torus nodes, re-derived from raw coordinates.
``strategy-bounds``
    Sec 3.2 structure: sequential nest phase is the *sum* of sibling
    phases with zero sync waits; parallel is the *max* with non-negative
    sync waits, at least one of them zero; a single sibling makes the two
    strategies exactly equal (the one-sibling regression guard).
``netsim-parity``
    The vectorized network engine and the scalar oracle agree exactly on
    a halo exchange drawn from the scenario's own placement.
``netsim-streaming-parity``
    Chunked expansion under a deliberately tiny hop limit with sparse
    link-load accumulation reproduces the one-shot dense result — loads,
    summaries, and round estimate — bit-for-bit.
``report-sanity``
    All reported times/waits/hops are finite and non-negative and the
    report's identity fields match the plan and machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.scheduler.strategies import SequentialStrategy
from repro.netsim.engine import SCALAR, VECTOR, route_exchange_streamed
from repro.netsim.metrics import traffic_metrics
from repro.perfsim.simulate import IterationReport, effective_rect, simulate_iteration
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.halo import HaloSpec, halo_messages
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.verify.scenarios import ScenarioRun

__all__ = [
    "OracleViolation",
    "OracleFailure",
    "oracle",
    "all_oracles",
    "get_oracle",
    "run_oracles",
]

#: Relative tolerance for float identities that are algebraic rearrangements.
REL_TOL = 1e-9
#: Bounded-slack allowance for the non-monotone tail of total iteration
#: time (saturation: fixed per-step costs grow with log2 of the ranks).
SCALING_REL_SLACK = 0.10
SCALING_ABS_SLACK = 0.02  # seconds


class OracleViolation(AssertionError):
    """An invariant oracle found a violated system invariant."""


@dataclass(frozen=True)
class OracleFailure:
    """One oracle failure, tied to the scenario that triggered it."""

    oracle: str
    message: str
    scenario: Dict[str, object]

    def render(self) -> str:
        """One-failure summary block."""
        return f"[{self.oracle}] {self.message}\n  repro: {self.scenario}"


OracleFn = Callable[[ScenarioRun], None]

_REGISTRY: Dict[str, OracleFn] = {}


def oracle(name: str) -> Callable[[OracleFn], OracleFn]:
    """Register *fn* as the invariant oracle called *name*."""

    def register(fn: OracleFn) -> OracleFn:
        if name in _REGISTRY:
            raise ValueError(f"oracle {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return register


def all_oracles() -> Dict[str, OracleFn]:
    """Snapshot of the registry (name -> checker)."""
    return dict(_REGISTRY)


def get_oracle(name: str) -> OracleFn:
    """Look up one oracle by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def run_oracles(
    run: ScenarioRun, names: Optional[Sequence[str]] = None
) -> List[OracleFailure]:
    """Run the selected (default: all) oracles against one scenario run.

    Oracle crashes are failures too — an invariant checker that cannot
    even evaluate is reporting a broken system, not a broken test.
    """
    failures: List[OracleFailure] = []
    selected = list(names) if names is not None else sorted(_REGISTRY)
    for name in selected:
        fn = get_oracle(name)
        try:
            fn(run)
        except OracleViolation as exc:
            failures.append(OracleFailure(name, str(exc), run.scenario.params()))
        except Exception as exc:  # noqa: BLE001 — crashes are findings
            failures.append(
                OracleFailure(
                    name,
                    f"oracle crashed: {type(exc).__name__}: {exc}",
                    run.scenario.params(),
                )
            )
    return failures


# ----------------------------------------------------------------- helpers
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise OracleViolation(message)


def _close(a: float, b: float, *, rel: float = REL_TOL, abs_tol: float = 1e-12) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


# ----------------------------------------------------------------- oracles
@oracle("rank-conservation")
def check_rank_conservation(run: ScenarioRun) -> None:
    """No rank serves two siblings at once; no plan exceeds the grid."""
    grid = run.grid
    # Sequential: every sibling gets the full grid.
    full = grid.full_rect()
    for a in run.seq_plan.assignments:
        _require(
            a.rect == full,
            f"sequential assignment {a.domain.name} runs on {a.rect}, "
            f"not the full grid {full}",
        )
    # Concurrent: claimed positions are pairwise distinct and in-bounds.
    positions = run.par_plan.covered_positions()
    _require(
        len(set(positions)) == len(positions),
        "parallel plan assigns at least one rank to two siblings "
        "(duplicated rank in the partition)",
    )
    _require(
        len(positions) <= grid.size,
        f"parallel plan claims {len(positions)} positions on a "
        f"{grid.size}-rank grid",
    )
    for a in run.par_plan.assignments:
        _require(
            a.rect.x1 <= grid.px and a.rect.y1 <= grid.py and a.rect.x0 >= 0,
            f"assignment {a.domain.name} rect {a.rect} exceeds grid "
            f"{grid.px}x{grid.py}",
        )
    # Reports: sibling rank counts equal their clamped rectangles.
    for plan, report in ((run.seq_plan, run.seq_report), (run.par_plan, run.par_report)):
        for a, sib in zip(plan.assignments, report.siblings):
            expect = effective_rect(a.rect, a.domain.nx, a.domain.ny).area
            _require(
                sib.ranks == expect,
                f"{report.strategy} sibling {sib.name} reports {sib.ranks} "
                f"ranks; clamped rectangle has {expect}",
            )


@oracle("timeline-consistency")
def check_timeline_consistency(run: ScenarioRun) -> None:
    """Reported times decompose exactly as the timeline algebra says."""
    for report in run.reports:
        concurrent = report.strategy != "sequential"
        for sib in report.siblings:
            expect = sib.steps_per_iteration * sib.step.total
            _require(
                _close(sib.phase_time, expect),
                f"{report.strategy} sibling {sib.name}: phase_time "
                f"{sib.phase_time!r} != r*step = {expect!r}",
            )
            gap = report.nest_phase_time - sib.phase_time
            expect_sync = gap if concurrent else 0.0
            _require(
                _close(sib.sync_wait, expect_sync, abs_tol=1e-9),
                f"{report.strategy} sibling {sib.name}: sync_wait "
                f"{sib.sync_wait!r} != {expect_sync!r}",
            )
        _require(
            _close(
                report.integration_time,
                report.parent.total + report.nest_phase_time,
            ),
            f"{report.strategy}: integration_time {report.integration_time!r} "
            f"!= parent + nest phase "
            f"{report.parent.total + report.nest_phase_time!r}",
        )
        _require(
            _close(report.total_time, report.integration_time + report.io_time),
            f"{report.strategy}: total_time != integration + io",
        )
        w = report.waits
        _require(
            _close(w.total, w.parent + w.nests + w.sync),
            f"{report.strategy}: wait breakdown does not sum",
        )


@oracle("monotone-scaling")
def check_monotone_scaling(run: ScenarioRun) -> None:
    """More ranks never hurt compute; total time regresses only by fixed costs."""
    base = run.scenario.ranks
    ladder = sorted({max(64, base // 4), max(64, base // 2), base})
    if len(ladder) < 2:
        return
    reports: List[IterationReport] = []
    for ranks in ladder:
        px, py = choose_process_grid(ranks)
        plan = SequentialStrategy().plan(
            ProcessGrid(px, py), run.parent, list(run.siblings)
        )
        reports.append(simulate_iteration(plan, run.machine))
    for prev_ranks, prev, ranks, rep in zip(
        ladder, reports, ladder[1:], reports[1:]
    ):
        pairs = [("parent", prev.parent, rep.parent)] + [
            (s_prev.name, s_prev.step, s_now.step)
            for s_prev, s_now in zip(prev.siblings, rep.siblings)
        ]
        for name, step_prev, step_now in pairs:
            _require(
                step_now.compute.time <= step_prev.compute.time * (1 + REL_TOL),
                f"{name}: compute time grew from {step_prev.compute.time!r} "
                f"({prev_ranks} ranks) to {step_now.compute.time!r} "
                f"({ranks} ranks)",
            )
        bound = prev.integration_time * (1 + SCALING_REL_SLACK) + SCALING_ABS_SLACK
        _require(
            rep.integration_time <= bound,
            f"iteration time regressed beyond fixed-cost slack: "
            f"{prev.integration_time!r} at {prev_ranks} ranks -> "
            f"{rep.integration_time!r} at {ranks} ranks",
        )


@oracle("mapping-bijectivity")
def check_mapping_bijectivity(run: ScenarioRun) -> None:
    """Every rank sits on its own slot of a real torus node."""
    placement = run.placement
    _require(
        len(placement.slots) == run.grid.size,
        f"placement covers {len(placement.slots)} ranks, grid has "
        f"{run.grid.size}",
    )
    try:
        indices = placement.slot_indices()
    except Exception as exc:
        raise OracleViolation(f"placement has out-of-box slots: {exc}") from None
    _require(
        len(set(indices)) == len(indices),
        "placement is not injective: two ranks share a slot",
    )
    torus = placement.space.torus
    for rank, node in enumerate(placement.nodes()):
        _require(
            torus.contains(node),
            f"rank {rank} placed on node {node} outside torus {torus.dims}",
        )


@oracle("strategy-bounds")
def check_strategy_bounds(run: ScenarioRun) -> None:
    """Sequential sums, parallel maxes, and one sibling means no difference."""
    seq, par = run.seq_report, run.par_report
    _require(
        _close(seq.nest_phase_time, sum(s.phase_time for s in seq.siblings)),
        "sequential nest phase is not the sum of sibling phases",
    )
    _require(
        all(s.sync_wait == 0.0 for s in seq.siblings),
        "sequential siblings report non-zero sync waits",
    )
    par_phases = [s.phase_time for s in par.siblings]
    _require(
        _close(par.nest_phase_time, max(par_phases)),
        "parallel nest phase is not the max of sibling phases",
    )
    _require(
        all(s.sync_wait >= -1e-12 for s in par.siblings),
        "parallel sibling has negative sync wait",
    )
    _require(
        min(s.sync_wait for s in par.siblings) <= 1e-9,
        "no parallel sibling is the critical path (all sync waits > 0)",
    )
    if len(run.siblings) == 1:
        # Degenerate case: one sibling on the full grid under the default
        # mapping must price identically under both strategies (the
        # regression PR 1 guarded against).
        alone = simulate_iteration(run.par_plan, run.machine, io_model=run.io_model)
        _require(
            _close(alone.integration_time, seq.integration_time),
            f"one-sibling parallel plan prices {alone.integration_time!r}, "
            f"sequential {seq.integration_time!r} — strategies must agree",
        )


@oracle("netsim-parity")
def check_netsim_parity(run: ScenarioRun) -> None:
    """Scalar and vectorized engines agree on a scenario-drawn exchange."""
    # Smallest sibling rectangle, capped so the scalar oracle stays cheap.
    rect = min(run.par_plan.rects, key=lambda r: r.area)
    a = next(x for x in run.par_plan.assignments if x.rect == rect)
    rect = effective_rect(rect, a.domain.nx, a.domain.ny)
    rect = GridRect(rect.x0, rect.y0, min(rect.width, 16), min(rect.height, 16))
    msgs = halo_messages(run.grid, rect, a.domain.nx, a.domain.ny, HaloSpec())
    if not msgs:  # single-rank rectangle: nothing to route
        return
    torus = run.placement.space.torus
    nodes = run.placement.nodes()

    routed_s, loads_s = SCALAR.route_exchange(torus, nodes, msgs)
    routed_v, loads_v = VECTOR.route_exchange(torus, nodes, msgs)
    m_s = traffic_metrics(routed_s, loads_s)
    m_v = traffic_metrics(routed_v, loads_v)
    _require(
        m_s == m_v,
        f"engines disagree on traffic metrics: scalar {m_s}, vector {m_v}",
    )
    est_s = SCALAR.round_estimate(routed_s, loads_s, run.machine)
    est_v = VECTOR.round_estimate(routed_v, loads_v, run.machine)
    _require(
        est_s == est_v,
        f"engines disagree on round estimate: scalar {est_s}, vector {est_v}",
    )


@oracle("netsim-streaming-parity")
def check_netsim_streaming_parity(run: ScenarioRun) -> None:
    """Streamed sparse routing is bit-identical to the one-shot dense path.

    Routes a scenario-drawn exchange twice: once through the cached
    one-shot dense engine, once through
    :func:`~repro.netsim.engine.route_exchange_streamed` with a hop limit
    small enough to force chunking and sparse accumulation on. The
    per-link load vectors and the round estimate must match exactly —
    the memory budget may change *how* the answer is computed, never the
    answer (see ``docs/cost_model.md``).
    """
    rect = min(run.par_plan.rects, key=lambda r: r.area)
    a = next(x for x in run.par_plan.assignments if x.rect == rect)
    rect = effective_rect(rect, a.domain.nx, a.domain.ny)
    rect = GridRect(rect.x0, rect.y0, min(rect.width, 16), min(rect.height, 16))
    msgs = halo_messages(run.grid, rect, a.domain.nx, a.domain.ny, HaloSpec())
    if not msgs:  # single-rank rectangle: nothing to route
        return
    torus = run.placement.space.torus
    nodes = run.placement.nodes()

    routed_d, loads_d = VECTOR.route_exchange(torus, nodes, msgs)
    routed_c, loads_c = route_exchange_streamed(
        torus, nodes, msgs, max_expand_hops=7, sparse=True
    )
    _require(
        bool((loads_c.array == loads_d.array).all()),
        "streamed sparse link loads differ from the one-shot dense loads",
    )
    _require(
        loads_c.max_load() == loads_d.max_load()
        and loads_c.total_bytes() == loads_d.total_bytes(),
        f"streamed load summary ({loads_c.max_load()}, {loads_c.total_bytes()})"
        f" != dense ({loads_d.max_load()}, {loads_d.total_bytes()})",
    )
    est_d = VECTOR.round_estimate(routed_d, loads_d, run.machine)
    est_c = VECTOR.round_estimate(routed_c, loads_c, run.machine)
    _require(
        est_c == est_d,
        f"streamed round estimate {est_c!r} != one-shot {est_d!r}",
    )


@oracle("report-sanity")
def check_report_sanity(run: ScenarioRun) -> None:
    """Everything reported is finite, non-negative, and self-identifying."""
    for report in run.reports:
        values = {
            "integration_time": report.integration_time,
            "nest_phase_time": report.nest_phase_time,
            "io_time": report.io_time,
            "total_time": report.total_time,
            "mpi_wait": report.mpi_wait,
            "average_hops": report.average_hops,
            "parent.total": report.parent.total,
        }
        for key, value in values.items():
            _require(
                math.isfinite(value) and value >= 0.0,
                f"{report.strategy}: {key} = {value!r} is not a finite "
                "non-negative time",
            )
        _require(
            report.ranks == run.grid.size,
            f"{report.strategy}: report covers {report.ranks} ranks, "
            f"grid has {run.grid.size}",
        )
        _require(
            report.machine == run.machine.name,
            f"{report.strategy}: report machine {report.machine!r} != "
            f"{run.machine.name!r}",
        )
        _require(
            len(report.siblings) == len(run.siblings),
            f"{report.strategy}: {len(report.siblings)} sibling reports for "
            f"{len(run.siblings)} nests",
        )
    _require(
        run.par_report.mapping == run.placement.name,
        f"parallel report mapping {run.par_report.mapping!r} != placement "
        f"{run.placement.name!r}",
    )
