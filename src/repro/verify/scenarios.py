"""Seeded scenario generation for the differential verification subsystem.

A :class:`Scenario` is a *small, serialisable* description of one end-to-end
simulation setup: machine, rank count, parent domain, sibling-generation
seed, topology mapping, and I/O model. ``Scenario.build()`` expands it into
a :class:`ScenarioRun` — both strategies planned, both iterations simulated,
the parallel placement materialised — which is the object every invariant
oracle inspects.

Keeping the description tiny is what makes failure *minimization* work: the
fuzzer shrinks a failing scenario by editing this dict (fewer siblings,
fewer ranks, smaller parent, plainer mapping) and re-running the oracles,
so a failure report ends in a repro dict a human can paste into
``Scenario.from_params(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.mapping.base import Mapping, Placement, SlotSpace
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.core.scheduler.plan import ExecutionPlan
from repro.errors import ConfigurationError
from repro.exec.placementcache import cached_placement
from repro.exec.plancache import parallel_plan, sequential_plan
from repro.iosim.model import IoModel
from repro.perfsim.simulate import IterationReport, simulate_iteration
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P, Machine
from repro.util.rng import SeedLike, make_rng
from repro.workloads.generator import NestSizeRange, random_parent, random_siblings
from repro.wrf.grid import DomainSpec

__all__ = ["Scenario", "ScenarioRun", "random_scenario", "MACHINES", "MAPPINGS"]

MACHINES: Dict[str, Machine] = {"bgl": BLUE_GENE_L, "bgp": BLUE_GENE_P}

MAPPINGS: Dict[str, type] = {
    "oblivious": ObliviousMapping,
    "txyz": TxyzMapping,
    "partition": PartitionMapping,
    "multilevel": MultiLevelMapping,
}

#: Rank counts the fuzzer draws from. Powers of two fill whole nodes in
#: every Blue Gene execution mode; the weight toward small counts keeps a
#: 200-scenario budget inside seconds while still exercising large tori.
RANK_CHOICES: Tuple[int, ...] = (64, 128, 128, 256, 256, 512, 512, 1024, 2048)

IO_CHOICES: Tuple[str, ...] = ("none", "none", "pnetcdf", "split")


@dataclass(frozen=True)
class Scenario:
    """One fuzzable simulation setup, fully determined by its fields."""

    machine: str = "bgl"
    ranks: int = 256
    num_siblings: int = 2
    parent_nx: int = 286
    parent_ny: int = 307
    sibling_seed: int = 0
    mapping: str = "oblivious"
    io: str = "none"

    def __post_init__(self) -> None:
        if self.machine not in MACHINES:
            raise ConfigurationError(f"unknown machine {self.machine!r}")
        if self.mapping not in MAPPINGS:
            raise ConfigurationError(f"unknown mapping {self.mapping!r}")
        if self.io not in ("none", "pnetcdf", "split"):
            raise ConfigurationError(f"unknown io model {self.io!r}")

    # ------------------------------------------------------------------
    def params(self) -> Dict[str, object]:
        """The serialisable repro dict (inverse of :meth:`from_params`)."""
        return {
            "machine": self.machine,
            "ranks": self.ranks,
            "num_siblings": self.num_siblings,
            "parent_nx": self.parent_nx,
            "parent_ny": self.parent_ny,
            "sibling_seed": self.sibling_seed,
            "mapping": self.mapping,
            "io": self.io,
        }

    @classmethod
    def from_params(cls, params: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from a repro dict."""
        return cls(**params)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def domains(self) -> Tuple[DomainSpec, List[DomainSpec]]:
        """The parent and sibling nests this scenario simulates.

        Sibling sizes are scaled to the parent so that the requested
        number of disjoint footprints is always geometrically feasible;
        raises :class:`ConfigurationError` when rejection sampling still
        cannot place them (the fuzzer treats that as "resample", not as
        a failure).
        """
        parent = DomainSpec(
            name="d01", nx=self.parent_nx, ny=self.parent_ny, dx_km=24.0
        )
        refinement = 3
        area_cells = self.parent_nx * self.parent_ny
        # Cap total footprint near half the parent; floor keeps nests
        # meaningfully larger than the 8-point minimum.
        max_fp = max(120, area_cells // (3 * self.num_siblings))
        min_fp = max(100, max_fp // 6)
        size_range = NestSizeRange(
            min_points=min_fp * refinement**2,
            max_points=max_fp * refinement**2,
        )
        siblings = random_siblings(
            parent,
            self.num_siblings,
            seed=self.sibling_seed,
            size_range=size_range,
            refinement=refinement,
        )
        return parent, siblings

    def build(self) -> "ScenarioRun":
        """Expand into plans, placements, and simulated reports."""
        machine = MACHINES[self.machine]
        parent, siblings = self.domains()
        px, py = choose_process_grid(self.ranks)
        grid = ProcessGrid(px, py)

        # Memoized planning: shrink loops rebuild near-identical variants
        # and hit the cache for everything but the first build of a key.
        seq_plan = sequential_plan(grid, parent, siblings)
        par_plan = parallel_plan(
            grid, parent, siblings, [s.points for s in siblings]
        )

        mapping: Mapping = MAPPINGS[self.mapping]()
        rpn = machine.mode(None).ranks_per_node
        torus = machine.torus_for_ranks(self.ranks, None)
        space = SlotSpace(torus, rpn)
        # Memoized placement: the shrink loop revisits the same
        # (mapping, grid, space, rects) key for everything but the
        # dimension being shrunk.
        placement = cached_placement(mapping, grid, space, par_plan.rects)

        io_model = None if self.io == "none" else IoModel(self.io)
        seq_report = simulate_iteration(seq_plan, machine, io_model=io_model)
        par_report = simulate_iteration(
            par_plan, machine, io_model=io_model, placement=placement
        )
        return ScenarioRun(
            scenario=self,
            machine=machine,
            grid=grid,
            parent=parent,
            siblings=tuple(siblings),
            seq_plan=seq_plan,
            par_plan=par_plan,
            placement=placement,
            io_model=io_model,
            seq_report=seq_report,
            par_report=par_report,
        )


@dataclass(frozen=True)
class ScenarioRun:
    """A fully-expanded scenario: what the invariant oracles inspect."""

    scenario: Scenario
    machine: Machine
    grid: ProcessGrid
    parent: DomainSpec
    siblings: Tuple[DomainSpec, ...]
    seq_plan: ExecutionPlan
    par_plan: ExecutionPlan
    placement: Placement
    io_model: Optional[IoModel]
    seq_report: IterationReport
    par_report: IterationReport

    @property
    def reports(self) -> Tuple[IterationReport, ...]:
        """Both strategy reports, sequential first."""
        return (self.seq_report, self.par_report)


def random_scenario(seed: SeedLike = None) -> Scenario:
    """Draw one random scenario from *seed* (int or shared generator)."""
    rng = make_rng(seed)
    parent = random_parent(rng)
    return Scenario(
        machine=str(rng.choice(("bgl", "bgp"))),
        ranks=int(rng.choice(RANK_CHOICES)),
        num_siblings=int(rng.integers(1, 5)),
        parent_nx=parent.nx,
        parent_ny=parent.ny,
        sibling_seed=int(rng.integers(0, 2**31 - 1)),
        mapping=str(rng.choice(tuple(MAPPINGS))),
        io=str(rng.choice(IO_CHOICES)),
    )
