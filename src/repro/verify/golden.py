"""Golden-table snapshots of the paper's key tables and figures.

Each golden regenerates one experiment driver into a *canonical* JSON
structure (dataclasses to dicts, tuples to lists, keys sorted) and diffs
it against the committed snapshot under ``tests/golden/`` with numeric
tolerances. The model is deterministic — every driver seeds its own RNG —
so the default tolerance only has to absorb cross-platform floating-point
noise, not run-to-run variance.

Tolerance policy
----------------
* floats: ``isclose(rel_tol=1e-6, abs_tol=1e-9)`` — libm/BLAS-level slack;
* ints, strings, bools: exact;
* structure (keys, lengths, types): exact.

An intentional model change shifts numbers beyond 1e-6 and fails the
diff; regenerate with ``repro verify --update-goldens`` (or
``pytest tests/verify/test_golden.py --update-goldens``) and commit the
new snapshots alongside the change so the diff is reviewable.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "GOLDEN_SPECS",
    "default_golden_dir",
    "regenerate",
    "canonicalize",
    "diff_values",
    "check_goldens",
    "write_goldens",
]

REL_TOL = 1e-6
ABS_TOL = 1e-9


def _table1():
    from repro.analysis.experiments import table1_wait_improvement

    # Same reduced sweep the CLI `experiment table1` command runs: large
    # enough to pin every (machine, ranks) row, small enough for CI.
    return table1_wait_improvement(num_configs=6)


def _table4():
    from repro.analysis.experiments import table4_fig11_mappings_bgl

    return table4_fig11_mappings_bgl()


def _table5():
    from repro.analysis.experiments import table5_fig12_mappings_bgp

    return table5_fig12_mappings_bgp()


def _fig15():
    from repro.analysis.experiments import fig15_speedup

    return fig15_speedup()


#: name -> zero-argument driver returning the experiment result object.
GOLDEN_SPECS: Dict[str, Callable[[], object]] = {
    "table1": _table1,
    "table4": _table4,
    "table5": _table5,
    "fig15": _fig15,
}


def default_golden_dir() -> Path:
    """The committed snapshot directory, resolved from the working tree.

    The package can be imported from an installed location, so goldens
    are looked up relative to the current working directory (the repo
    root in CI and local runs).
    """
    return Path.cwd() / "tests" / "golden"


# ------------------------------------------------------------ canonical
def canonicalize(obj):
    """Reduce an experiment result to JSON-able canonical form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(f"non-finite value {obj!r} in golden data")
        return obj
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def regenerate(name: str) -> dict:
    """Regenerate the canonical snapshot for golden *name*."""
    try:
        driver = GOLDEN_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown golden {name!r}; available: {sorted(GOLDEN_SPECS)}"
        ) from None
    return {"experiment": name, "data": canonicalize(driver())}


# ----------------------------------------------------------------- diff
def diff_values(
    expected,
    actual,
    *,
    rel_tol: float = REL_TOL,
    abs_tol: float = ABS_TOL,
    path: str = "$",
) -> List[str]:
    """All paths where *actual* deviates from *expected* beyond tolerance."""
    # bool is an int subclass: compare exactly and before the number case.
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            return [f"{path}: expected {expected!r}, got {actual!r}"]
        return []
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if isinstance(expected, int) and isinstance(actual, int):
            if expected != actual:
                return [f"{path}: expected {expected}, got {actual}"]
            return []
        if not math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=abs_tol):
            return [f"{path}: expected {expected!r}, got {actual!r}"]
        return []
    if type(expected) is not type(actual):
        return [
            f"{path}: type changed from {type(expected).__name__} "
            f"to {type(actual).__name__}"
        ]
    if isinstance(expected, dict):
        out: List[str] = []
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        for key in missing:
            out.append(f"{path}.{key}: missing")
        for key in extra:
            out.append(f"{path}.{key}: unexpected")
        for key in sorted(set(expected) & set(actual)):
            out.extend(
                diff_values(expected[key], actual[key], rel_tol=rel_tol,
                            abs_tol=abs_tol, path=f"{path}.{key}")
            )
        return out
    if isinstance(expected, list):
        if len(expected) != len(actual):
            return [
                f"{path}: length changed from {len(expected)} to {len(actual)}"
            ]
        out = []
        for i, (e, a) in enumerate(zip(expected, actual)):
            out.extend(
                diff_values(e, a, rel_tol=rel_tol, abs_tol=abs_tol,
                            path=f"{path}[{i}]")
            )
        return out
    if expected != actual:
        return [f"{path}: expected {expected!r}, got {actual!r}"]
    return []


# ------------------------------------------------------------ check/update
def _golden_path(golden_dir: Path, name: str) -> Path:
    return golden_dir / f"{name}.json"


def write_goldens(
    golden_dir: Optional[Path] = None, names: Optional[Sequence[str]] = None
) -> List[Path]:
    """Regenerate and write the selected (default: all) snapshots."""
    golden_dir = golden_dir or default_golden_dir()
    golden_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in names or sorted(GOLDEN_SPECS):
        path = _golden_path(golden_dir, name)
        path.write_text(
            json.dumps(regenerate(name), indent=2, sort_keys=True) + "\n"
        )
        written.append(path)
    return written


def check_goldens(
    golden_dir: Optional[Path] = None,
    names: Optional[Sequence[str]] = None,
    *,
    rel_tol: float = REL_TOL,
    abs_tol: float = ABS_TOL,
) -> List[str]:
    """Diff regenerated snapshots against the committed goldens.

    Returns a flat list of problems (empty means everything matches).
    """
    golden_dir = golden_dir or default_golden_dir()
    problems: List[str] = []
    for name in names or sorted(GOLDEN_SPECS):
        path = _golden_path(golden_dir, name)
        if not path.exists():
            problems.append(
                f"{name}: missing snapshot {path} "
                "(run `repro verify --update-goldens`)"
            )
            continue
        expected = json.loads(path.read_text())
        actual = regenerate(name)
        problems.extend(
            f"{name}: {line}"
            for line in diff_values(expected, actual, rel_tol=rel_tol,
                                    abs_tol=abs_tol)
        )
    return problems
