"""Differential verification: invariant oracles, fuzzing, golden tables.

Three layers, usable separately:

* :mod:`repro.verify.oracles` — a registry of named invariant checkers
  over built scenarios (plans, placements, iteration reports);
* :mod:`repro.verify.fuzzer` — seeded random scenario generation that
  runs every oracle per scenario and minimizes failures to repro dicts;
* :mod:`repro.verify.golden` — canonical-JSON snapshots of the paper's
  tables/figures with tolerance-aware diffing.

``repro verify`` on the command line and ``tests/verify/`` in the tier-1
suite both drive these layers.
"""

from repro.verify.fuzzer import FuzzFailure, FuzzReport, failures_for, fuzz, shrink
from repro.verify.golden import (
    GOLDEN_SPECS,
    check_goldens,
    diff_values,
    regenerate,
    write_goldens,
)
from repro.verify.oracles import (
    OracleFailure,
    OracleViolation,
    all_oracles,
    get_oracle,
    oracle,
    run_oracles,
)
from repro.verify.scenarios import Scenario, ScenarioRun, random_scenario

__all__ = [
    "Scenario",
    "ScenarioRun",
    "random_scenario",
    "oracle",
    "all_oracles",
    "get_oracle",
    "run_oracles",
    "OracleFailure",
    "OracleViolation",
    "fuzz",
    "shrink",
    "failures_for",
    "FuzzFailure",
    "FuzzReport",
    "GOLDEN_SPECS",
    "regenerate",
    "check_goldens",
    "write_goldens",
    "diff_values",
]
