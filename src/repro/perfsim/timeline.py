"""Execution timelines: where an iteration's time goes, lane by lane.

Builds a per-group Gantt chart from an
:class:`~repro.perfsim.simulate.IterationReport`: one lane for the
parent phase (all ranks) and one lane per sibling's rank group, with
segments for compute, communication, fixed overhead/skew, the feedback
synchronisation wait, and I/O. This turns the aggregate numbers into
the picture the paper describes in prose — under the sequential strategy
every lane stacks end to end; under the parallel strategy sibling lanes
overlap and the fast ones visibly idle at the sync point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SimulationError
from repro.perfsim.simulate import IterationReport

__all__ = ["Segment", "Lane", "IterationTimeline", "build_timeline", "render_gantt"]

#: Segment kinds and their Gantt glyphs.
GLYPHS = {
    "compute": "#",
    "comm": "~",
    "overhead": "o",
    "wait": ".",
    "io": "I",
}


@dataclass(frozen=True)
class Segment:
    """A half-open activity interval ``[start, start + duration)``."""

    kind: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.kind not in GLYPHS:
            raise SimulationError(f"unknown segment kind {self.kind!r}")
        if self.duration < 0 or self.start < 0:
            raise SimulationError(f"invalid segment {self}")

    @property
    def end(self) -> float:
        """``start + duration``."""
        return self.start + self.duration


@dataclass(frozen=True)
class Lane:
    """One rank group's activity over the iteration."""

    label: str
    ranks: int
    segments: Tuple[Segment, ...]

    @property
    def end(self) -> float:
        """Completion time of the last segment."""
        return max((s.end for s in self.segments), default=0.0)

    def time_in(self, kind: str) -> float:
        """Total time spent in segments of *kind*."""
        return sum(s.duration for s in self.segments if s.kind == kind)


@dataclass(frozen=True)
class IterationTimeline:
    """All lanes of one iteration."""

    lanes: Tuple[Lane, ...]
    total_time: float


def _step_segments(step, start: float) -> Tuple[List[Segment], float]:
    """Segments of one integration step starting at *start*."""
    out: List[Segment] = []
    t = start
    if step.compute.time > 0:
        out.append(Segment("compute", t, step.compute.time))
        t += step.compute.time
    if step.comm.time > 0:
        out.append(Segment("comm", t, step.comm.time))
        t += step.comm.time
    fixed = step.overhead + step.skew + step.collectives
    if fixed > 0:
        out.append(Segment("overhead", t, fixed))
        t += fixed
    return out, t


def build_timeline(report: IterationReport) -> IterationTimeline:
    """Build the Gantt lanes of one simulated iteration."""
    lanes: List[Lane] = []

    parent_segments, parent_end = _step_segments(report.parent, 0.0)
    lanes.append(Lane("parent (all ranks)", report.ranks,
                      tuple(parent_segments)))

    sequential = report.strategy == "sequential"
    cursor = parent_end
    nest_phase_end = parent_end + report.nest_phase_time
    for sib in report.siblings:
        segments: List[Segment] = []
        start = cursor if sequential else parent_end
        t = start
        for _ in range(sib.steps_per_iteration):
            step_segs, t = _step_segments(sib.step, t)
            segments.extend(step_segs)
        if sequential:
            cursor = t
        elif sib.sync_wait > 0:
            segments.append(Segment("wait", t, sib.sync_wait))
            t += sib.sync_wait
        lanes.append(Lane(f"{sib.name} ({sib.ranks} ranks)", sib.ranks,
                          tuple(segments)))

    end = max(lane.end for lane in lanes)
    if report.io_time > 0:
        lanes = [
            Lane(lane.label, lane.ranks,
                 lane.segments + ((Segment("io", end, report.io_time),)
                                  if i == 0 else ()))
            for i, lane in enumerate(lanes)
        ]
        end += report.io_time
    return IterationTimeline(lanes=tuple(lanes), total_time=end)


def render_gantt(timeline: IterationTimeline, *, width: int = 72) -> str:
    """ASCII Gantt chart: one row per lane.

    Glyphs: ``#`` compute, ``~`` communication, ``o`` overhead/skew,
    ``.`` synchronisation wait, ``I`` I/O. Blank means the group is not
    in this phase (e.g. siblings during the parent step).
    """
    if timeline.total_time <= 0:
        raise SimulationError("timeline has no duration")
    scale = (width - 1) / timeline.total_time
    label_w = max(len(l.label) for l in timeline.lanes) + 1

    rows = []
    for lane in timeline.lanes:
        canvas = [" "] * width
        for seg in lane.segments:
            a = round(seg.start * scale)
            b = max(a + 1, round(seg.end * scale))
            for i in range(a, min(b, width)):
                canvas[i] = GLYPHS[seg.kind]
        rows.append(f"{lane.label.ljust(label_w)}|{''.join(canvas)}|")
    legend = "  ".join(f"{g} {k}" for k, g in GLYPHS.items())
    ruler = f"0{' ' * (label_w + width - len(f'{timeline.total_time:.3g} s') - 1)}" \
            f"{timeline.total_time:.3g} s"
    return "\n".join(rows + [legend, ruler])
