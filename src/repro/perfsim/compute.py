"""Per-step compute cost of a domain on a processor rectangle."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.perfsim.params import WorkloadParams
from repro.runtime.decomposition import decompose
from repro.topology.machines import Machine

__all__ = ["ComputeCost", "compute_time"]


@dataclass(frozen=True)
class ComputeCost:
    """Compute-phase breakdown of one integration step."""

    #: Wall time of the compute phase (paced by the largest tile).
    time: float
    #: Mean per-rank compute time.
    mean_time: float
    #: Largest tile dimensions ``(w, h)``.
    max_tile: tuple[int, int]
    #: Time the average rank idles waiting for the slowest (imbalance).
    imbalance_wait: float


def compute_time(
    nx: int,
    ny: int,
    px: int,
    py: int,
    machine: Machine,
    workload: WorkloadParams,
) -> ComputeCost:
    """Compute cost of an ``nx x ny`` domain on a ``px x py`` sub-grid.

    The bulk-synchronous step is paced by the largest tile; each tile
    additionally computes a redundant stencil-overlap frame of
    ``halo_compute_overlap`` points, which is what bends strong scaling
    when tiles shrink toward the halo width.
    """
    if px * py > nx * ny:
        raise SimulationError(
            f"{px * py} ranks exceed the {nx * ny} points of a {nx}x{ny} domain"
        )
    dec = decompose(nx, ny, px, py)
    ov = 2 * workload.halo_compute_overlap
    spp = workload.seconds_per_point(machine.sustained_flops_per_core)

    mw, mh = dec.max_tile
    t_max = (mw + ov) * (mh + ov) * spp

    # Mean over ranks (for imbalance wait): E[(w+ov)(h+ov)] factorises
    # because widths and heights are independent across the grid.
    mean_w = sum(dec.col_widths) / px
    mean_h = sum(dec.row_heights) / py
    t_mean = (mean_w + ov) * (mean_h + ov) * spp

    return ComputeCost(
        time=t_max,
        mean_time=t_mean,
        max_tile=(mw, mh),
        imbalance_wait=max(0.0, t_max - t_mean),
    )
