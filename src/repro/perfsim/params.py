"""Workload parameters of the WRF-like cost model.

The numeric anchors come from fitting the paper's own measurements
(Table 2 / Fig 9): sibling step times on 1024 BG/L cores and on their
partitioned sub-grids fit ``t(P) = w * points / P + B`` with
``w ~ 1.4e-3 core-seconds per horizontal point``. With 35 vertical levels
and BG/L's sustained ~0.28 GF/core this corresponds to ~10,000 effective
flops per grid *cell* per step — a realistic figure for WRF dynamics +
physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.halo import HaloSpec
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["WorkloadParams", "OutputParams"]


@dataclass(frozen=True)
class OutputParams:
    """History-output configuration (drives the I/O cost model).

    ``interval_steps`` is the number of outer iterations between history
    writes; the paper's high-frequency runs wrote every 10 simulated
    minutes (a handful of iterations), the BG/L runs hourly.
    """

    #: Bytes written per horizontal grid point of a domain per history
    #: write: levels * output variables * 4 bytes (WRF writes float32).
    bytes_per_point: float = 35 * 8 * 4.0
    #: Outer iterations between history writes.
    interval_steps: int = 6
    #: Whether output is enabled at all.
    enabled: bool = True
    #: Whether the parent domain's history file is written at this
    #: frequency. The paper's high-frequency runs wrote only "the various
    #: regions of interest at the innermost level" every 10 minutes.
    include_parent: bool = True

    def __post_init__(self) -> None:
        check_positive_float(self.bytes_per_point, "bytes_per_point")
        check_positive_int(self.interval_steps, "interval_steps")


@dataclass(frozen=True)
class WorkloadParams:
    """Per-cell work and halo structure of the simulated model."""

    #: Floating-point operations per grid cell (point x level) per step.
    #: (8,000 of useful work; the redundant stencil-overlap frame charged
    #: by the compute model brings the effective per-point cost to the
    #: ~1.4e-3 core-seconds the paper's data implies.)
    flops_per_cell: float = 8_000.0
    #: Vertical levels.
    levels: int = 35
    #: Halo-exchange shape (width, rounds, bytes) — paper Sec 3.3.
    halo: HaloSpec = field(default_factory=HaloSpec)
    #: Extra rows/columns each tile computes redundantly around its halo
    #: (stencil overlap work). Inflates small tiles slightly.
    halo_compute_overlap: int = 1
    #: History output configuration.
    output: OutputParams = field(default_factory=OutputParams)

    def __post_init__(self) -> None:
        check_positive_float(self.flops_per_cell, "flops_per_cell")
        check_positive_int(self.levels, "levels")
        if self.halo_compute_overlap < 0:
            raise ValueError("halo_compute_overlap must be >= 0")
        if self.halo.levels != self.levels:
            # Keep the exchanged-field depth consistent with the compute
            # depth unless the caller deliberately decouples them.
            object.__setattr__(
                self, "halo", HaloSpec(
                    width=self.halo.width,
                    levels=self.levels,
                    bytes_per_value=self.halo.bytes_per_value,
                    rounds_per_step=self.halo.rounds_per_step,
                )
            )

    def seconds_per_point(self, sustained_flops: float) -> float:
        """Core-seconds per horizontal point per step (all levels)."""
        return self.levels * self.flops_per_cell / sustained_flops
