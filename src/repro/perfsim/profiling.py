"""Profiling runs: the step time of a single domain on a fixed grid.

The paper's performance model is fitted from 13 profiling runs "on a
fixed number of processors" (Sec 3.1). This helper is that profiling
harness: it prices one integration step of one domain over a given
process grid, including its halo exchange under a placement.
"""

from __future__ import annotations

from typing import Optional

from repro.core.mapping.base import Mapping, SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.exec.placementcache import cached_placement
from repro.perfsim.commcost import halo_comm_cost
from repro.perfsim.compute import compute_time
from repro.perfsim.iteration import StepCost, step_cost
from repro.perfsim.params import WorkloadParams
from repro.runtime.backend import placement_backend
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import Machine
from repro.wrf.grid import DomainSpec

__all__ = ["profile_step", "profile_step_time", "netsim_profile", "placement_profile"]


def netsim_profile() -> dict:
    """Network-engine counters for the profiling report.

    Reports which routing engine is active and how often the
    placement-keyed route cache short-circuited routing — the dominant
    effect when the same exchange repeats across rounds, timesteps, and
    sweep configurations.
    """
    from repro.netsim.budget import mem_budget_bytes, route_cache_budget_bytes
    from repro.netsim.engine import active_backend, route_cache_stats
    from repro.obs.metrics import registry

    stats = route_cache_stats()
    return {
        "backend": active_backend().name,
        "route_cache_hits": stats.hits,
        "route_cache_misses": stats.misses,
        "route_cache_entries": stats.entries,
        "route_cache_hit_rate": stats.hit_rate,
        "route_cache_evictions": stats.evictions,
        "route_cache_resident_bytes": stats.resident_bytes,
        "route_cache_budget_bytes": route_cache_budget_bytes(),
        "mem_budget_bytes": mem_budget_bytes(),
        # The same counters plus link-load extremes and streaming
        # fan-out, as published into the observability registry (see
        # docs/observability.md).
        "metrics": registry().snapshot("netsim."),
    }


def placement_profile() -> dict:
    """Placement-pipeline counters for the profiling report.

    Mirrors :func:`netsim_profile` for the placement layer: which
    placement backend is active and how often the keyed placement cache
    returned a memoized placement instead of re-running a heuristic.
    """
    from repro.exec.placementcache import placement_cache_stats
    from repro.netsim.budget import placement_cache_budget_bytes
    from repro.obs.metrics import registry
    from repro.runtime.decomposition import decompose_cache_stats

    stats = placement_cache_stats()
    dec = decompose_cache_stats()
    return {
        "backend": placement_backend(),
        "placement_cache_hits": stats.hits,
        "placement_cache_misses": stats.misses,
        "placement_cache_entries": stats.entries,
        "placement_cache_hit_rate": stats.hit_rate,
        "placement_cache_evictions": stats.evictions,
        "placement_cache_resident_bytes": stats.resident_bytes,
        "placement_cache_budget_bytes": placement_cache_budget_bytes(),
        "decompose_cache_hits": dec.hits,
        "decompose_cache_misses": dec.misses,
        "decompose_cache_entries": dec.entries,
        "metrics": registry().snapshot("exec.placement_cache."),
    }


def profile_step(
    spec: DomainSpec,
    grid: ProcessGrid,
    machine: Machine,
    *,
    workload: Optional[WorkloadParams] = None,
    mapping: Optional[Mapping] = None,
    mode: Optional[str] = None,
) -> StepCost:
    """Full cost breakdown of one step of *spec* on *grid*."""
    workload = workload or WorkloadParams()
    rpn = machine.mode(mode).ranks_per_node
    torus = machine.torus_for_ranks(grid.size, mode)
    space = SlotSpace(torus, rpn)
    placement = cached_placement(mapping or ObliviousMapping(), grid, space)
    comp = compute_time(spec.nx, spec.ny, grid.px, grid.py, machine, workload)
    nodes = (
        placement.nodes_array()
        if placement_backend() == "vector"
        else placement.nodes()
    )
    comm = halo_comm_cost(
        grid,
        grid.full_rect(),
        spec.nx,
        spec.ny,
        torus,
        nodes,
        machine,
        workload,
    )
    return step_cost(comp, comm, machine, workload, grid.size)


def profile_step_time(
    spec: DomainSpec,
    num_ranks: int,
    machine: Machine,
    *,
    workload: Optional[WorkloadParams] = None,
    mode: Optional[str] = None,
) -> float:
    """Step time of *spec* on *num_ranks* ranks (grid chosen WRF-style)."""
    px, py = choose_process_grid(num_ranks, domain_aspect=spec.aspect_ratio)
    return profile_step(
        spec, ProcessGrid(px, py), machine, workload=workload, mode=mode
    ).total
