"""MPI_Wait accounting across a full iteration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WaitBreakdown"]


@dataclass(frozen=True)
class WaitBreakdown:
    """Average per-rank MPI_Wait of one outer iteration, by source.

    * ``parent`` — waits during the parent's own step,
    * ``nests`` — waits accumulated inside nest integration steps (skew,
      contention, imbalance); under the sequential strategy every rank
      pays this for *every* sibling,
    * ``sync`` — time ranks of fast siblings idle at the feedback
      synchronisation point waiting for the slowest sibling (parallel
      strategy only).
    """

    parent: float
    nests: float
    sync: float

    @property
    def total(self) -> float:
        """Total average per-rank wait per iteration."""
        return self.parent + self.nests + self.sync
