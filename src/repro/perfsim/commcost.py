"""Per-step halo-communication cost under a placement.

One exchange round's messages are built from the domain decomposition
(:func:`repro.runtime.halo.halo_messages`), routed over the torus, and
priced with the max-link contention model; the step performs
``rounds_per_step`` identical rounds. When several siblings exchange
*concurrently* (the parallel strategy), all their messages share the
network: link loads accumulate across siblings before any message is
priced, so a bad placement of one sibling slows its neighbours — exactly
the congestion effect the paper's mappings relieve.

Routing and pricing go through the active network engine
(:func:`repro.netsim.engine.active_backend`): the vectorized NumPy
engine by default, or the scalar oracle when ``REPRO_NETSIM=scalar``.
Callers may pass ``placement_nodes`` either as a plain coordinate
sequence or pre-wrapped in a
:class:`~repro.netsim.engine.PlacementVector` (as
``simulate_iteration`` does) so one placement digest serves every
exchange of an iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.netsim.contention import CommEstimate
from repro.netsim.engine import PlacementLike, active_backend
from repro.obs.trace import tracer
from repro.perfsim.params import WorkloadParams
from repro.runtime.backend import placement_backend
from repro.runtime.halo import HaloSpec, halo_batch, halo_messages
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import Machine
from repro.topology.torus import Torus3D

__all__ = ["CommCost", "halo_comm_cost", "concurrent_comm_costs"]


@dataclass(frozen=True)
class CommCost:
    """Communication breakdown of one integration step of one domain."""

    #: Wall time of all exchange rounds of the step.
    time: float
    #: Per-step communication floor (no contention, no hops, own bytes).
    ideal_time: float
    #: Mean hops of the domain's halo messages.
    average_hops: float
    #: Per-step MPI_Wait attributable to contention + hop latency.
    contention_wait: float
    #: Max bytes on any link during one round (diagnostic).
    max_link_bytes: int

    @staticmethod
    def zero() -> "CommCost":
        """No communication (single-rank sub-grid)."""
        return CommCost(0.0, 0.0, 0.0, 0.0, 0)


def _build_messages(grid: ProcessGrid, rect: GridRect, nx: int, ny: int, spec: HaloSpec):
    """One exchange round's messages, in the active placement backend's form.

    The vector backend hands the engine a :class:`HaloBatch` (column
    arrays, no per-message objects); the scalar oracle keeps the original
    object list. Both forms digest identically in the route cache.
    """
    if placement_backend() == "vector":
        return halo_batch(grid, rect, nx, ny, spec)
    return halo_messages(grid, rect, nx, ny, spec)


def _cost_from_estimate(est: CommEstimate, rounds: int) -> CommCost:
    return CommCost(
        time=est.time * rounds,
        ideal_time=est.ideal_time * rounds,
        average_hops=est.average_hops,
        contention_wait=est.contention_excess * rounds,
        max_link_bytes=est.max_link_bytes,
    )


def halo_comm_cost(
    grid: ProcessGrid,
    rect: GridRect,
    nx: int,
    ny: int,
    torus: Torus3D,
    placement_nodes: PlacementLike,
    machine: Machine,
    workload: WorkloadParams,
) -> CommCost:
    """Per-step halo cost of one domain exchanging alone on the network."""
    msgs = _build_messages(grid, rect, nx, ny, workload.halo)
    if not msgs:
        return CommCost.zero()
    engine = active_backend()
    tr = tracer()
    if tr.enabled:
        # Attrs are built only on the enabled path: halo_exchange is on
        # the sweep hot path and must stay allocation-free when off.
        with tr.span(
            "netsim.halo_exchange",
            {"nx": nx, "ny": ny, "messages": len(msgs), "backend": engine.name},
        ):
            routed, loads = engine.route_exchange(torus, placement_nodes, msgs)
            est = engine.round_estimate(routed, loads, machine)
    else:
        routed, loads = engine.route_exchange(torus, placement_nodes, msgs)
        est = engine.round_estimate(routed, loads, machine)
    return _cost_from_estimate(est, workload.halo.rounds_per_step)


def concurrent_comm_costs(
    grid: ProcessGrid,
    rects: Sequence[GridRect],
    domains: Sequence[tuple[int, int]],
    torus: Torus3D,
    placement_nodes: PlacementLike,
    machine: Machine,
    workload: WorkloadParams,
) -> List[CommCost]:
    """Per-sibling halo costs when all siblings exchange simultaneously.

    Link loads accumulate over the union of all siblings' messages; each
    sibling's round time is then the max over *its own* messages under
    those shared loads.
    """
    engine = active_backend()
    tr = tracer()
    per_sibling = []
    shared = engine.empty_loads(torus)
    with tr.span("netsim.concurrent_exchange"):
        for rect, (nx, ny) in zip(rects, domains):
            msgs = _build_messages(grid, rect, nx, ny, workload.halo)
            routed, local = engine.route_exchange(torus, placement_nodes, msgs)
            per_sibling.append(routed)
            shared.merge(local)
    out: List[CommCost] = []
    for routed in per_sibling:
        if not len(routed):
            out.append(CommCost.zero())
            continue
        est = engine.round_estimate(routed, shared, machine)
        out.append(_cost_from_estimate(est, workload.halo.rounds_per_step))
    return out
