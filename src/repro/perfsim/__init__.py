"""Performance simulation of nested WRF-like runs on torus machines.

Prices an :class:`~repro.core.scheduler.plan.ExecutionPlan` on a
:class:`~repro.topology.machines.Machine`:

* per-rank compute from the block decomposition (max tile paces the step),
* halo communication routed over the torus with link contention
  (:mod:`repro.netsim`), concurrent siblings contending realistically,
* per-step runtime overhead, per-round synchronisation skew, and a
  logarithmic collective term — together these form the P-independent
  per-step cost whose elimination is the paper's core win,
* MPI_Wait accounting (skew + contention excess + imbalance + the
  sibling synchronisation wait of the parallel strategy),
* optional parallel I/O events (:mod:`repro.iosim`).

Calibration anchors (see DESIGN.md Sec 5) are asserted by
``tests/perfsim/test_calibration.py``.
"""

from repro.perfsim.params import WorkloadParams, OutputParams
from repro.perfsim.compute import ComputeCost, compute_time
from repro.perfsim.commcost import CommCost, halo_comm_cost, concurrent_comm_costs
from repro.perfsim.iteration import StepCost, step_cost
from repro.perfsim.simulate import IterationReport, SiblingReport, simulate_iteration
from repro.perfsim.waits import WaitBreakdown
from repro.perfsim.timeline import build_timeline, render_gantt, IterationTimeline

__all__ = [
    "WorkloadParams",
    "OutputParams",
    "ComputeCost",
    "compute_time",
    "CommCost",
    "halo_comm_cost",
    "concurrent_comm_costs",
    "StepCost",
    "step_cost",
    "IterationReport",
    "SiblingReport",
    "simulate_iteration",
    "WaitBreakdown",
    "build_timeline",
    "render_gantt",
    "IterationTimeline",
]
