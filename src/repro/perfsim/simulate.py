"""The full iteration simulator.

``simulate_iteration`` prices one outer iteration of a nested run —
parent step, then every sibling's ``r`` fine steps, then the feedback
synchronisation, plus amortised history I/O — under a scheduling plan, a
machine, and a topology mapping. This is the function every experiment
in the paper reduces to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.mapping.base import Mapping, Placement, SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.scheduler.plan import ExecutionPlan
from repro.errors import SimulationError
from repro.exec.placementcache import cached_placement
from repro.iosim.model import IoModel
from repro.netsim.engine import as_placement
from repro.runtime.backend import placement_backend
from repro.obs.metrics import sample_rss
from repro.obs.trace import tracer
from repro.perfsim.commcost import CommCost, concurrent_comm_costs, halo_comm_cost
from repro.perfsim.compute import compute_time
from repro.perfsim.iteration import StepCost, step_cost
from repro.perfsim.params import WorkloadParams
from repro.perfsim.waits import WaitBreakdown
from repro.runtime.process_grid import GridRect
from repro.topology.machines import Machine

__all__ = ["SiblingReport", "IterationReport", "simulate_iteration", "effective_rect"]


def effective_rect(rect, nx: int, ny: int):
    """Clamp a processor rectangle to what an ``nx x ny`` domain can use.

    WRF cannot decompose a domain over more rank rows/columns than it has
    grid rows/columns; beyond that point extra ranks idle. Clamping keeps
    the largest feasible sub-grid anchored at the rectangle's origin —
    generous to the sequential baseline, which is the strategy that runs
    small nests on the full machine.
    """
    w = min(rect.width, nx)
    h = min(rect.height, ny)
    if w == rect.width and h == rect.height:
        return rect
    return GridRect(rect.x0, rect.y0, w, h)


@dataclass(frozen=True)
class SiblingReport:
    """Cost of one sibling's nest phase within an iteration."""

    name: str
    ranks: int
    steps_per_iteration: int
    step: StepCost
    #: Wall time of this sibling's whole nest phase (r fine steps).
    phase_time: float
    #: Wait at the feedback sync (parallel strategy; 0 when sequential).
    sync_wait: float


@dataclass(frozen=True)
class IterationReport:
    """Everything the experiments read off one simulated iteration."""

    strategy: str
    mapping: str
    machine: str
    ranks: int
    parent: StepCost
    siblings: Tuple[SiblingReport, ...]
    #: Wall time of the sibling phase (sum under sequential, max under
    #: parallel).
    nest_phase_time: float
    #: Parent step + nest phase (the paper's "integration time").
    integration_time: float
    #: Amortised per-iteration history-output time (0 if disabled).
    io_time: float
    #: Average per-rank MPI_Wait per iteration, by source.
    waits: WaitBreakdown
    #: Message-weighted mean torus hops over all exchanges this iteration.
    average_hops: float

    @property
    def total_time(self) -> float:
        """Integration + I/O per iteration."""
        return self.integration_time + self.io_time

    @property
    def mpi_wait(self) -> float:
        """Average per-rank MPI_Wait per iteration."""
        return self.waits.total


def simulate_iteration(
    plan: ExecutionPlan,
    machine: Machine,
    *,
    mapping: Optional[Mapping] = None,
    mode: Optional[str] = None,
    workload: Optional[WorkloadParams] = None,
    io_model: Optional[IoModel] = None,
    placement: Optional[Placement] = None,
) -> IterationReport:
    """Price one outer iteration of *plan* on *machine*.

    Parameters
    ----------
    mapping:
        Topology mapping heuristic; defaults to the Blue Gene XYZT
        default (topology-oblivious). Ignored when *placement* is given.
    mode:
        Machine execution mode name (default: the machine's default,
        VN on both Blue Genes as in the paper).
    io_model:
        ``None`` disables history output entirely; pass
        ``IoModel("pnetcdf")`` or ``IoModel("split")`` to include it.
    placement:
        Pre-computed placement (lets callers share one across repeated
        simulations of the same configuration).
    """
    tr = tracer()
    if not tr.enabled:
        return _simulate(plan, machine, mapping, mode, workload, io_model, placement)
    with tr.span(
        "perfsim.simulate_iteration",
        {"strategy": plan.strategy, "machine": machine.name,
         "ranks": plan.grid.size},
    ):
        report = _simulate(
            plan, machine, mapping, mode, workload, io_model, placement
        )
        _emit_phases(tr, plan.concurrent, report)
        # Memory high-water observability: one RSS sample per traced
        # iteration keeps proc.rss.peak_bytes tracking the simulation's
        # working set (routing expansion, caches) with no measurable
        # overhead on the untraced fast path.
        # Throttled: procfs reads on every traced simulate would blow
        # the tracing-overhead budget (bench_obs_overhead.py).
        rss = sample_rss(throttle_s=0.05)
        if rss is not None:
            tr.event(
                "perfsim.rss", {"current": rss["current"], "peak": rss["peak"]}
            )
    return report


def _emit_phases(tr, concurrent: bool, report: IterationReport) -> None:
    """Publish the iteration's model-time phase samples to the tracer.

    Per-sibling wait contributions repeat the exact expressions of the
    wait accounting below, so the profile report can re-aggregate
    ``mpi_wait`` from the trace and reconcile with the report to 1e-9.
    """
    common = {
        "strategy": report.strategy,
        "machine": report.machine,
        "ranks": report.ranks,
        "concurrent": concurrent,
    }
    ranks = report.ranks
    tr.phase("parent", report.parent.total, {**common, "wait": report.parent.wait})
    for s in report.siblings:
        share = s.ranks / ranks if concurrent else 1.0
        tr.phase(
            "nest",
            s.phase_time,
            {
                **common,
                "sibling": s.name,
                "sibling_ranks": s.ranks,
                "steps": s.steps_per_iteration,
                "wait_contrib": share * s.steps_per_iteration * s.step.wait,
                "sync_contrib": share * s.sync_wait if concurrent else 0.0,
            },
        )
    tr.phase("io", report.io_time, common)
    tr.event(
        "perfsim.waits",
        {**common, "parent": report.waits.parent, "nests": report.waits.nests,
         "sync": report.waits.sync, "total": report.waits.total},
    )


def _simulate(
    plan: ExecutionPlan,
    machine: Machine,
    mapping: Optional[Mapping],
    mode: Optional[str],
    workload: Optional[WorkloadParams],
    io_model: Optional[IoModel],
    placement: Optional[Placement],
) -> IterationReport:
    """The untraced pricing body of :func:`simulate_iteration`."""
    tr = tracer()
    workload = workload or WorkloadParams()
    grid = plan.grid
    ranks = grid.size

    if placement is None:
        rpn = machine.mode(mode).ranks_per_node
        torus = machine.torus_for_ranks(ranks, mode)
        space = SlotSpace(torus, rpn)
        mapping = mapping or ObliviousMapping()
        placement = cached_placement(
            mapping, grid, space, plan.rects if plan.concurrent else None
        )
    torus = placement.space.torus
    # One PlacementVector serves the parent and every sibling exchange:
    # the coordinate array and cache digest are computed once per
    # iteration instead of once per comm-cost call. Under the array
    # backend the (N, 3) node array feeds the engine directly; the
    # scalar oracle goes through the original tuple list.
    if placement_backend() == "vector":
        nodes = as_placement(torus, placement.nodes_array())
    else:
        nodes = as_placement(torus, placement.nodes())

    # ------------------------------------------------------------ parent
    with tr.span("perfsim.parent_step"):
        parent = plan.parent
        parent_rect = effective_rect(grid.full_rect(), parent.nx, parent.ny)
        p_comp = compute_time(
            parent.nx, parent.ny, parent_rect.width, parent_rect.height,
            machine, workload
        )
        p_comm = halo_comm_cost(
            grid, parent_rect, parent.nx, parent.ny, torus, nodes, machine, workload
        )
        parent_cost = step_cost(p_comp, p_comm, machine, workload, parent_rect.area)

    # ---------------------------------------------------------- siblings
    with tr.span("perfsim.sibling_steps"):
        sib_rects = [
            effective_rect(a.rect, a.domain.nx, a.domain.ny)
            for a in plan.assignments
        ]
        sib_domains = [(a.domain.nx, a.domain.ny) for a in plan.assignments]
        if plan.concurrent:
            comms = concurrent_comm_costs(
                grid, sib_rects, sib_domains, torus, nodes, machine, workload
            )
        else:
            comms = [
                halo_comm_cost(
                    grid, rect, a.domain.nx, a.domain.ny, torus, nodes,
                    machine, workload
                )
                for a, rect in zip(plan.assignments, sib_rects)
            ]

        sib_steps: List[StepCost] = []
        phase_times: List[float] = []
        for a, rect, comm in zip(plan.assignments, sib_rects, comms):
            comp = compute_time(
                a.domain.nx, a.domain.ny, rect.width, rect.height, machine, workload
            )
            sc = step_cost(comp, comm, machine, workload, rect.area)
            sib_steps.append(sc)
            phase_times.append(a.domain.steps_per_parent_step * sc.total)

    if plan.concurrent:
        nest_phase = max(phase_times, default=0.0)
        sync_waits = [nest_phase - t for t in phase_times]
    else:
        nest_phase = sum(phase_times)
        sync_waits = [0.0] * len(phase_times)

    siblings = tuple(
        SiblingReport(
            name=a.domain.name,
            ranks=rect.area,
            steps_per_iteration=a.domain.steps_per_parent_step,
            step=sc,
            phase_time=pt,
            sync_wait=sw,
        )
        for a, rect, sc, pt, sw in zip(
            plan.assignments, sib_rects, sib_steps, phase_times, sync_waits
        )
    )

    # ------------------------------------------------------------- waits
    if plan.concurrent:
        # A rank belongs to exactly one sibling: weight by rank share.
        nest_wait = sum(
            (s.ranks / ranks) * s.steps_per_iteration * s.step.wait for s in siblings
        )
        sync_wait = sum((s.ranks / ranks) * s.sync_wait for s in siblings)
    else:
        nest_wait = sum(s.steps_per_iteration * s.step.wait for s in siblings)
        sync_wait = 0.0
    waits = WaitBreakdown(parent=parent_cost.wait, nests=nest_wait, sync=sync_wait)

    # --------------------------------------------------------------- I/O
    io_time = 0.0
    if io_model is not None and workload.output.enabled:
        with tr.span("perfsim.history_io"):
            file_bytes = [
                a.domain.points * workload.output.bytes_per_point
                for a in plan.assignments
            ]
            writers = [
                rect.area if plan.concurrent else ranks for rect in sib_rects
            ]
            if workload.output.include_parent:
                file_bytes.insert(0, parent.points * workload.output.bytes_per_point)
                writers.insert(0, ranks)
            elif plan.concurrent:
                # event_cost treats the first file as the all-ranks parent
                # write; without one, siblings simply overlap.
                file_bytes.insert(0, 0.0)
                writers.insert(0, 1)
            event = io_model.event_cost(
                file_bytes, writers, concurrent=plan.concurrent, machine=machine
            )
            io_time = event.time / workload.output.interval_steps

    # --------------------------------------------------------- avg hops
    weights = [1.0] + [float(s.steps_per_iteration) for s in siblings]
    hop_values = [p_comm.average_hops] + [c.average_hops for c in comms]
    wsum = sum(weights)
    avg_hops = sum(w * h for w, h in zip(weights, hop_values)) / wsum if wsum else 0.0

    return IterationReport(
        strategy=plan.strategy,
        mapping=placement.name,
        machine=machine.name,
        ranks=ranks,
        parent=parent_cost,
        siblings=siblings,
        nest_phase_time=nest_phase,
        integration_time=parent_cost.total + nest_phase,
        io_time=io_time,
        waits=waits,
        average_hops=avg_hops,
    )
