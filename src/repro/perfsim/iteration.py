"""Assembly of one domain's full integration-step cost."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfsim.commcost import CommCost
from repro.perfsim.compute import ComputeCost
from repro.perfsim.params import WorkloadParams
from repro.topology.machines import Machine

__all__ = ["StepCost", "step_cost"]


@dataclass(frozen=True)
class StepCost:
    """Complete cost of one integration step of one domain.

    ``total = compute + comm + overhead + skew + collectives``. The last
    three are (nearly) independent of the processor count — the cost the
    paper's parallel-siblings strategy stops paying once per nest.
    """

    compute: ComputeCost
    comm: CommCost
    #: Fixed runtime overhead (BC processing, control flow).
    overhead: float
    #: Accumulated per-round synchronisation skew.
    skew: float
    #: Collective-operation cost (grows with log2 of the rank count).
    collectives: float
    #: Ranks participating in the step.
    ranks: int

    @property
    def total(self) -> float:
        """Wall time of the step."""
        return self.compute.time + self.comm.time + self.overhead + self.skew + self.collectives

    @property
    def wait(self) -> float:
        """Per-rank MPI_Wait accrued during the step.

        Round skew is spent inside ``MPI_Wait`` by definition; contention
        excess is the time messages sit behind shared links; compute
        imbalance parks the faster ranks in the next round's wait.
        """
        return self.skew + self.comm.contention_wait + self.compute.imbalance_wait


def step_cost(
    compute: ComputeCost,
    comm: CommCost,
    machine: Machine,
    workload: WorkloadParams,
    ranks: int,
) -> StepCost:
    """Combine phase costs with the machine's per-step fixed costs.

    Single-rank domains skip skew and collectives (nothing to wait for).
    """
    if ranks <= 1:
        skew = 0.0
        collectives = 0.0
    else:
        skew = machine.round_skew * workload.halo.rounds_per_step
        collectives = machine.collective_cost * math.log2(ranks)
    return StepCost(
        compute=compute,
        comm=comm,
        overhead=machine.step_overhead,
        skew=skew,
        collectives=collectives,
        ranks=ranks,
    )
