"""Planner-as-a-service: a zero-dependency HTTP planning API.

Endpoints (all JSON; schemas in :mod:`repro.service.schemas`):

* ``POST /recommend`` — capacity planning
  (:func:`repro.analysis.planner.recommend`); identical in-flight
  requests are coalesced and the response carries
  ``X-Repro-Coalesced: 1`` when it shared another caller's computation.
* ``POST /simulate`` — price one iteration under both strategies
  (:func:`repro.perfsim.simulate.simulate_iteration`).
* ``POST /plan`` — the raw execution plan (one memoized plan-cache
  lookup; the cheapest cacheable request, used by the sharded router
  as its cache-affinity probe).
* ``POST /verify`` — run the invariant oracles over a fuzzed scenario
  budget (:func:`repro.verify.fuzz`).
* ``GET /healthz`` — liveness and coarse counters.
* ``GET /metrics`` — the observability registry snapshot plus
  plan/placement/route cache statistics.

The server is stdlib :class:`~http.server.ThreadingHTTPServer` — one
thread per connection over the shared :class:`ServiceState`. Response
**bodies are a pure function of the request** (canonical JSON, no
timestamps), so concurrent traffic is byte-identical to a
single-threaded run; per-request operational facts ride in headers.
Every request is measured into ``service.<endpoint>.latency_s``
histograms and counted into ``service.*`` counters, with a
``service.request`` span when tracing is enabled.

Errors are structured: malformed payloads yield ``400`` with a stable
kebab-case code (:class:`ErrorResponse`), never a traceback; unexpected
failures yield ``500 internal-error`` with the exception message only.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import counter, histogram
from repro.obs.trace import tracer
from repro.service.schemas import (
    ErrorResponse,
    PlanRequest,
    RecommendRequest,
    SchemaError,
    SimulateRequest,
    VerifyRequest,
    canonical_json,
    dump_bytes,
    parse_payload,
)
from repro.service.state import LATENCY_BOUNDS, ServicePolicy, ServiceState

__all__ = ["PlanningServer", "PlanningHTTPServer", "MAX_BODY_BYTES"]

#: Request bodies above this are rejected with ``413 payload-too-large``.
MAX_BODY_BYTES = 1 << 20

_CONTENT_TYPE = "application/json"


class _ServiceError(Exception):
    """Internal: carries an HTTP status + stable error code to the edge."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


def _error_body(code: str, message: str) -> bytes:
    return dump_bytes(ErrorResponse(error=code, message=message))


class PlanningHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns one :class:`ServiceState`."""

    daemon_threads = True
    # The default backlog (5) resets connections under a burst of
    # concurrent clients; the load bench fires dozens at once.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], state: ServiceState):
        super().__init__(address, _Handler)
        self.state = state


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-planner/1"
    protocol_version = "HTTP/1.1"
    # The response goes out as two segments (header block, then body).
    # With Nagle on, the body segment waits for the client's delayed
    # ACK on long-lived keep-alive connections — a flat ~40ms stall on
    # every pooled request. Fresh connections dodge it only because
    # Linux starts them in quickack mode, which is why the bug hides
    # from connection-per-request clients.
    disable_nagle_algorithm = True

    # Routes: (method, path) -> unbound handler returning
    # (status, body_bytes, extra_headers).
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:
        """Access logs go to the tracer (if enabled), never to stderr."""
        tr = tracer()
        if tr.enabled:
            tr.event("service.access_log", {"line": format % args})

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        state: ServiceState = self.server.state
        path = self.path.split("?", 1)[0]
        endpoint = path.strip("/").replace("/", ".") or "root"
        routes: Dict[Tuple[str, str], Callable[[ServiceState], Tuple[int, bytes, Dict[str, str]]]] = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/plan"): self._handle_plan,
            ("POST", "/recommend"): self._handle_recommend,
            ("POST", "/simulate"): self._handle_simulate,
            ("POST", "/verify"): self._handle_verify,
        }
        t0 = time.perf_counter()
        tr = tracer()
        with tr.span(
            "service.request",
            {"method": method, "path": path} if tr.enabled else None,
        ):
            try:
                handler = routes.get((method, path))
                if handler is None:
                    if any(p == path for (_, p) in routes):
                        raise _ServiceError(
                            405, "method-not-allowed",
                            f"{method} not supported on {path}",
                        )
                    raise _ServiceError(404, "not-found", f"no route for {path}")
                status, body, extra = handler(state)
            except _ServiceError as exc:
                status, body, extra = exc.status, _error_body(exc.code, str(exc)), {}
            except SchemaError as exc:
                status, body, extra = 400, _error_body(exc.code, str(exc)), {}
            except ReproError as exc:
                status, body, extra = 400, _error_body("invalid-request", str(exc)), {}
            except Exception as exc:  # noqa: BLE001 - edge of the service
                status, body, extra = 500, _error_body("internal-error", str(exc)), {}
        # Internal metric scrapes (the sharded router's fan-out and the
        # shard supervisor's monitor) must be invisible to the service's
        # own accounting, or merged counters could never reconcile
        # exactly against per-shard scrapes: snapshotting the registry
        # would perturb the registry being snapshotted.
        internal_scrape = (
            endpoint == "metrics"
            and self.headers.get("X-Repro-Scrape") == "internal"
        )
        if not internal_scrape:
            self._account(endpoint, status, body, time.perf_counter() - t0)
        try:
            self.send_response(status)
            self.send_header("Content-Type", _CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            for name, value in extra.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def _account(
        self, endpoint: str, status: int, body: bytes, elapsed_s: float
    ) -> None:
        counter("service.requests").inc()
        counter(f"service.{endpoint}.requests").inc()
        counter(f"service.{endpoint}.response_bytes").inc(len(body))
        histogram(f"service.{endpoint}.latency_s", LATENCY_BOUNDS).observe(
            elapsed_s
        )
        if status >= 400:
            counter("service.errors").inc()

    # ------------------------------------------------------------------
    def _read_request(self, cls: type) -> Any:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise _ServiceError(411, "length-required", "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise _ServiceError(
                400, "invalid-length", f"bad Content-Length {length_header!r}"
            ) from None
        if length > MAX_BODY_BYTES:
            # Drain (bounded) so the client can finish sending and read
            # the 413 instead of dying on a broken pipe; then drop the
            # connection rather than resync a half-read stream.
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            raise _ServiceError(
                413, "payload-too-large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _ServiceError(400, "invalid-json", f"bad JSON: {exc}") from None
        return parse_payload(cls, payload)

    def _handle_healthz(self, state: ServiceState):
        return 200, dump_bytes(state.health()), {}

    def _handle_metrics(self, state: ServiceState):
        body = canonical_json(state.metrics_payload()).encode("utf-8")
        return 200, body, {}

    def _handle_recommend(self, state: ServiceState):
        req = self._read_request(RecommendRequest)
        state.maybe_expire()
        response, coalesced = state.recommend(req)
        headers = {"X-Repro-Coalesced": "1" if coalesced else "0"}
        return 200, dump_bytes(response), headers

    def _handle_plan(self, state: ServiceState):
        req = self._read_request(PlanRequest)
        state.maybe_expire()
        return 200, dump_bytes(state.plan(req)), {}

    def _handle_simulate(self, state: ServiceState):
        req = self._read_request(SimulateRequest)
        state.maybe_expire()
        return 200, dump_bytes(state.simulate(req)), {}

    def _handle_verify(self, state: ServiceState):
        req = self._read_request(VerifyRequest)
        state.maybe_expire()
        return 200, dump_bytes(state.verify(req)), {}


class PlanningServer:
    """A planning service bound to a host/port, served from a thread.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`). Use as a context manager in tests and benchmarks::

        with PlanningServer() as server:
            client = ServiceClient(server.url)
            client.healthz()
    """

    def __init__(
        self,
        state: Optional[ServiceState] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[ServicePolicy] = None,
    ) -> None:
        self.state = state or ServiceState(policy)
        self._httpd = PlanningHTTPServer((host, port), self.state)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PlanningServer":
        """Serve from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"planning-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving, release the socket, detach cache policies."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.state.close()

    def __enter__(self) -> "PlanningServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
