"""Shard workers for the sharded planning service.

One **shard** is a full single-process :class:`PlanningServer` — its own
:class:`ServiceState`, its own plan/placement/route caches, its own
metrics registry — listening on an ephemeral loopback port inside a
dedicated OS process. N shards give the service N times the planning
CPU without touching the GIL-bound single-process hot path; the router
(:mod:`repro.service.router`) keeps each request class pinned to one
shard so its caches stay warm.

:class:`ShardSupervisor` owns the fleet:

* **spawn** — shards start via :class:`repro.exec.procs.SupervisedProcess`
  (spawn context, readiness handshake): the child binds its port, runs
  warm-start preloading when enabled, and only then announces the port
  — a shard never takes traffic cold;
* **monitor** — a background thread watches for dead shard processes
  and **restarts them with the same warm-start**, while the router
  fails open to the remaining live shards through the ring's
  deterministic preference order;
* **exact metrics across restarts** — the supervisor caches each
  shard's last metrics scrape; when a generation dies, that snapshot
  is folded into a *retired* aggregate (associative
  :func:`~repro.obs.metrics.merge_snapshots`), so the router's merged
  ``/metrics`` never double-counts a restarted shard (its new
  generation starts from zero) and loses at most the dead shard's
  counts since its final scrape.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.exec.procs import SupervisedProcess
from repro.obs.metrics import counter, gauge, labelled, merge_snapshots
from repro.service.client import ServiceClient, ServiceConnectionError

__all__ = ["ShardSupervisor", "NoLiveShardError", "shard_server_main"]


class NoLiveShardError(ReproError):
    """Every shard was down or unreachable for a forwarded request."""


def shard_server_main(
    ready_conn,
    host: str,
    ttls: Tuple[Optional[float], Optional[float], Optional[float]],
    warm: bool,
    warm_max_ranks: int,
) -> None:
    """Child entry point: serve one :class:`PlanningServer` forever.

    Runs in a spawn-context process. Binds an ephemeral port, warm
    starts when asked (so a restarted shard re-enters rotation with hot
    caches), *then* sends the bound port as the readiness payload. The
    supervisor terminates the shard with SIGTERM.
    """
    # Imports happen in the child: a spawned interpreter is clean, and
    # keeping them here keeps the parent's module graph out of the
    # pickled closure.
    from repro.service.app import PlanningServer
    from repro.service.state import ServicePolicy, ServiceState

    policy = ServicePolicy(
        plan_ttl_s=ttls[0], placement_ttl_s=ttls[1], route_ttl_s=ttls[2]
    )
    state = ServiceState(policy)
    server = PlanningServer(state, host=host, port=0)
    if warm:
        state.warm_start(max_ranks=warm_max_ranks)
    ready_conn.send(server.port)
    ready_conn.close()
    server.serve_forever()


class _ShardHandle:
    """Supervisor-side view of one shard slot across generations."""

    def __init__(self, slot: int, proc: SupervisedProcess, pool_size: int,
                 timeout_s: float) -> None:
        self.slot = slot
        self.shard_id = f"shard-{slot}"
        self.proc = proc
        self.pool_size = pool_size
        self.timeout_s = timeout_s
        self.port: Optional[int] = None
        self.client: Optional[ServiceClient] = None
        self.up = False
        self.last_metrics: Optional[Dict[str, Any]] = None
        self.lock = threading.Lock()

    def attach(self, port: int) -> None:
        """Point the handle at a freshly readied generation."""
        with self.lock:
            old = self.client
            self.port = port
            self.client = ServiceClient(
                f"http://127.0.0.1:{port}",
                timeout_s=self.timeout_s,
                pool_size=self.pool_size,
            )
            self.last_metrics = None
            self.up = True
        if old is not None:
            old.close()

    def current_client(self) -> Optional[ServiceClient]:
        with self.lock:
            return self.client if self.up else None


class ShardSupervisor:
    """Spawns, monitors, and restarts the shard fleet."""

    def __init__(
        self,
        shards: int,
        *,
        host: str = "127.0.0.1",
        ttls: Tuple[Optional[float], Optional[float], Optional[float]] = (
            None, None, None,
        ),
        warm: bool = True,
        warm_max_ranks: int = 256,
        pool_size: int = 8,
        timeout_s: float = 120.0,
        ready_timeout_s: float = 180.0,
        monitor_interval_s: float = 0.2,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.warm = warm
        self._host = host
        self._monitor_interval_s = monitor_interval_s
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._retired_lock = threading.Lock()
        self._retired_metrics: Dict[str, Dict[str, Any]] = {}
        self.handles: List[_ShardHandle] = []
        for slot in range(shards):
            proc = SupervisedProcess(
                shard_server_main,
                (host, ttls, warm, warm_max_ranks),
                name=f"planning-shard-{slot}",
                ready_timeout_s=ready_timeout_s,
            )
            self.handles.append(
                _ShardHandle(slot, proc, pool_size, timeout_s)
            )
        self._by_id = {h.shard_id: h for h in self.handles}

    # ------------------------------------------------------------ fleet
    @property
    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(h.shard_id for h in self.handles)

    def live_shards(self) -> Tuple[str, ...]:
        return tuple(h.shard_id for h in self.handles if h.up)

    def start(self) -> "ShardSupervisor":
        """Spawn every shard (concurrently) and start the monitor."""
        errors: List[BaseException] = []

        def boot(handle: _ShardHandle) -> None:
            try:
                handle.attach(handle.proc.start())
                gauge(labelled("service.shard.up", shard=handle.shard_id)).set(1)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=boot, args=(h,), daemon=True)
            for h in self.handles
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            self.stop()
            raise errors[0]
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        for handle in self.handles:
            with handle.lock:
                handle.up = False
                client, handle.client = handle.client, None
            if client is not None:
                client.close()
            handle.proc.terminate()

    # ---------------------------------------------------------- monitor
    def mark_down(self, shard_id: str) -> None:
        """Router-side hint: a forward to *shard_id* failed at transport."""
        handle = self._by_id[shard_id]
        with handle.lock:
            handle.up = False
        gauge(labelled("service.shard.up", shard=shard_id)).set(0)

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._monitor_interval_s):
            for handle in self.handles:
                if self._stop.is_set():
                    return
                if not handle.proc.is_alive():
                    self._restart(handle)
                elif not handle.up:
                    # Marked down by the router but the process lives —
                    # probe and heal (a transient connect race, not a
                    # crash).
                    self._probe(handle)

    def _probe(self, handle: _ShardHandle) -> None:
        with handle.lock:
            client = handle.client
        if client is None:
            return
        try:
            if client.healthz().status == 200:
                with handle.lock:
                    handle.up = True
                gauge(
                    labelled("service.shard.up", shard=handle.shard_id)
                ).set(1)
        except ServiceConnectionError:
            # Still unreachable; the process may be seconds from dying —
            # leave it down and let the next sweep decide.
            pass

    def _restart(self, handle: _ShardHandle) -> None:
        """Fold the dead generation's metrics, then respawn warm."""
        with handle.lock:
            handle.up = False
            final = handle.last_metrics
        gauge(labelled("service.shard.up", shard=handle.shard_id)).set(0)
        if final is not None:
            with self._retired_lock:
                self._retired_metrics = merge_snapshots(
                    self._retired_metrics, final
                )
        counter("service.router.restarts").inc()
        counter(
            labelled("service.shard.restarts", shard=handle.shard_id)
        ).inc()
        try:
            handle.attach(handle.proc.respawn())
        except ReproError:
            # Spawn failed (resource pressure); stay down, retry on the
            # next monitor sweep — the router keeps failing open.
            return
        gauge(labelled("service.shard.up", shard=handle.shard_id)).set(1)

    # -------------------------------------------------------- forwarding
    def forward(
        self,
        preference: Tuple[str, ...],
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[Any, str, int]:
        """Send one request down the ring's preference order.

        Returns ``(reply, shard_id, failovers)``. A transport failure
        marks the shard down and moves to the next preference — the
        fail-open path; every service request is a pure function of its
        body, so replaying it on another shard is safe. Raises
        :class:`NoLiveShardError` when every shard is unreachable.
        """
        failovers = 0
        attempted = set()
        # Two passes: live shards in preference order, then (fail open
        # harder) any shard regardless of its `up` flag — it may have
        # healed since the flag was set.
        for pass_live_only in (True, False):
            for shard_id in preference:
                if shard_id in attempted:
                    continue
                handle = self._by_id[shard_id]
                if pass_live_only:
                    client = handle.current_client()
                else:
                    with handle.lock:
                        client = handle.client
                if client is None:
                    continue
                try:
                    if method == "GET":
                        reply = client.get(path, headers=headers)
                    else:
                        reply = client.post(path, raw=body, headers=headers)
                except ServiceConnectionError:
                    self.mark_down(shard_id)
                    counter("service.router.failovers").inc()
                    failovers += 1
                    attempted.add(shard_id)
                    continue
                return reply, shard_id, failovers
        raise NoLiveShardError(
            f"no live shard for {method} {path} "
            f"(tried {', '.join(sorted(attempted)) or 'none'})"
        )

    # ----------------------------------------------------------- metrics
    def scrape(self, handle: _ShardHandle) -> Optional[Dict[str, Any]]:
        """One shard's ``/metrics`` payload via the internal scrape path.

        Internal scrapes carry ``X-Repro-Scrape: internal`` so the
        shard does not account them — scraping must not perturb the
        counters being scraped, or merged aggregates could never
        reconcile exactly against a later per-shard scrape. The metrics
        sub-dict is cached on the handle as the generation's
        last-known state (folded into the retired aggregate if this
        generation dies).
        """
        client = handle.current_client()
        if client is None:
            return None
        try:
            reply = client.get(
                "/metrics", headers={"X-Repro-Scrape": "internal"}
            )
        except ServiceConnectionError:
            self.mark_down(handle.shard_id)
            return None
        if reply.status != 200:
            return None
        payload = reply.json
        with handle.lock:
            handle.last_metrics = payload.get("metrics", {})
        return payload

    def aggregate_metrics(self) -> Dict[str, Any]:
        """Fan out to every live shard and fold the snapshots exactly.

        ``metrics`` is the associative fold of each live shard's
        registry snapshot plus the retired aggregate from dead
        generations; ``caches`` sums the live shards' cache counters
        field by field. Both reconcile exactly against per-shard
        scrapes taken while traffic is quiet (the determinism suite's
        check), because internal scrapes are accounting-invisible.
        """
        per_shard: Dict[str, Dict[str, Any]] = {}
        merged: Dict[str, Dict[str, Any]] = {}
        caches: Dict[str, Dict[str, float]] = {}
        requests_served = 0
        for handle in self.handles:
            payload = self.scrape(handle)
            info: Dict[str, Any] = {
                "up": handle.up,
                "port": handle.port,
                "generation": handle.proc.generation,
                "restarts": handle.proc.restarts,
            }
            if payload is not None:
                info["requests_served"] = payload.get("requests_served", 0)
                info["uptime_s"] = payload.get("uptime_s", 0.0)
                requests_served += payload.get("requests_served", 0)
                merged = merge_snapshots(merged, payload.get("metrics", {}))
                for name, stats in payload.get("caches", {}).items():
                    slot = caches.setdefault(name, {})
                    for field, value in stats.items():
                        if isinstance(value, (int, float)):
                            slot[field] = slot.get(field, 0) + value
            per_shard[handle.shard_id] = info
        with self._retired_lock:
            retired = dict(self._retired_metrics)
        return {
            "per_shard": per_shard,
            "metrics": merge_snapshots(merged, retired),
            "retired_metrics": retired,
            "caches": caches,
            "requests_served": requests_served,
        }

    def restarts(self) -> int:
        return sum(h.proc.restarts for h in self.handles)
