"""Versioned request/response schemas for the planning service.

Every payload that crosses the HTTP boundary is a **frozen dataclass**
with a declarative field spec (``_SPEC``) and strict JSON
(de)serialization:

* :func:`parse_payload` rejects unknown fields, wrong types (``bool``
  is never accepted where a number is expected), out-of-range values,
  and unsupported schema versions — each with a stable kebab-case
  error code carried on :class:`SchemaError`, never a traceback;
* :func:`to_payload` / :func:`dump_bytes` emit **canonical JSON**
  (sorted keys, minimal separators, ``allow_nan=False``), so
  serialize → parse → serialize is byte-stable and identical requests
  hash to identical coalescing keys.

``schema_version`` is embedded in every request and response; bumping
:data:`SCHEMA_VERSION` is a wire-format change and parsers reject
versions they do not speak (``unsupported-schema-version``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from math import isfinite
from typing import Any, Dict, Mapping, Optional, Tuple, Type, Union

from repro.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "parse_payload",
    "to_payload",
    "dump_bytes",
    "canonical_json",
    "CONFIG_NAMES",
    "MACHINE_NAMES",
    "MAPPING_NAMES",
    "IO_NAMES",
    "STRATEGY_NAMES",
    "RecommendRequest",
    "SimulateRequest",
    "VerifyRequest",
    "PlanRequest",
    "PlanAssignmentPayload",
    "PlanResponse",
    "PlanOptionPayload",
    "RecommendResponse",
    "IterationPayload",
    "SimulateResponse",
    "VerifyFailurePayload",
    "VerifyResponse",
    "HealthResponse",
    "ErrorResponse",
    "REQUEST_SCHEMAS",
    "RESPONSE_SCHEMAS",
    "ALL_SCHEMAS",
]

#: Wire-format version embedded in every request and response.
SCHEMA_VERSION = 1

#: Built-in paper configurations the service can plan (the same set the
#: CLI exposes via ``--config``).
CONFIG_NAMES: Tuple[str, ...] = ("fig2", "fig10", "fig15", "table2")
MACHINE_NAMES: Tuple[str, ...] = ("bgl", "bgp")
MAPPING_NAMES: Tuple[str, ...] = ("multilevel", "oblivious", "partition", "txyz")
IO_NAMES: Tuple[str, ...] = ("none", "pnetcdf", "split")
STRATEGY_NAMES: Tuple[str, ...] = ("sequential", "parallel")

#: Hard cap on ranks accepted over the wire (well past the 131k
#: strong-scaling ceiling; anything larger is a client bug, not a plan).
MAX_RANKS = 1 << 22
#: Hard cap on the fuzz budget a single /verify request may spend.
MAX_VERIFY_BUDGET = 500


class SchemaError(ReproError):
    """A payload violated a schema; carries a stable error code.

    ``code`` is one of: ``invalid-payload``, ``unknown-field``,
    ``missing-field``, ``invalid-type``, ``invalid-choice``,
    ``out-of-range``, ``invalid-value``, ``unsupported-schema-version``.
    """

    def __init__(self, code: str, message: str, field: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.field = field


_MISSING = object()


@dataclass(frozen=True)
class _Field:
    """Declarative spec of one schema field.

    ``kind`` is ``"int"``/``"float"``/``"str"``/``"bool"``, a schema
    dataclass (nested object), ``("tuple", kind)`` (homogeneous array),
    or ``"params"`` (a flat string-keyed dict of JSON scalars — the
    scenario repro-dict shape).
    """

    kind: Any
    default: Any = _MISSING
    choices: Optional[Tuple[Any, ...]] = None
    lo: Optional[float] = None
    hi: Optional[float] = None


def _type_error(name: str, expected: str, value: Any) -> SchemaError:
    return SchemaError(
        "invalid-type",
        f"field {name!r} must be {expected}, got {type(value).__name__}",
        field=name,
    )


def _parse_value(spec: _Field, name: str, value: Any) -> Any:
    kind = spec.kind
    if isinstance(kind, tuple) and kind[0] == "tuple":
        if not isinstance(value, (list, tuple)):
            raise _type_error(name, "an array", value)
        sub = _Field(kind[1], choices=spec.choices, lo=spec.lo, hi=spec.hi)
        return tuple(
            _parse_value(sub, f"{name}[{i}]", v) for i, v in enumerate(value)
        )
    if isinstance(kind, type) and hasattr(kind, "_SPEC"):
        if not isinstance(value, Mapping):
            raise _type_error(name, "an object", value)
        try:
            return parse_payload(kind, value)
        except SchemaError as exc:
            # Prefix the nested path so clients see e.g. "options[0].efficiency".
            path = f"{name}.{exc.field}" if exc.field else name
            raise SchemaError(exc.code, str(exc), field=path) from None
    if kind == "params":
        if not isinstance(value, Mapping):
            raise _type_error(name, "an object", value)
        out: Dict[str, Any] = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise _type_error(name, "string-keyed", k)
            if isinstance(v, float) and not isfinite(v):
                raise SchemaError(
                    "invalid-value", f"field {name}.{k} must be finite", field=name
                )
            if not isinstance(v, (str, bool, int, float)):
                raise _type_error(f"{name}.{k}", "a JSON scalar", v)
            out[k] = v
        return out
    if kind == "bool":
        if not isinstance(value, bool):
            raise _type_error(name, "a boolean", value)
        return value
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise _type_error(name, "an integer", value)
    elif kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _type_error(name, "a number", value)
        value = float(value)
        if not isfinite(value):
            raise SchemaError(
                "invalid-value", f"field {name!r} must be finite", field=name
            )
    elif kind == "str":
        if not isinstance(value, str):
            raise _type_error(name, "a string", value)
    else:  # pragma: no cover - spec bug, not reachable from payloads
        raise AssertionError(f"unknown field kind {kind!r}")
    if spec.choices is not None and value not in spec.choices:
        raise SchemaError(
            "invalid-choice",
            f"field {name!r} must be one of {sorted(spec.choices)}, "
            f"got {value!r}",
            field=name,
        )
    if spec.lo is not None and value < spec.lo:
        raise SchemaError(
            "out-of-range",
            f"field {name!r} must be >= {spec.lo}, got {value!r}",
            field=name,
        )
    if spec.hi is not None and value > spec.hi:
        raise SchemaError(
            "out-of-range",
            f"field {name!r} must be <= {spec.hi}, got {value!r}",
            field=name,
        )
    return value


def parse_payload(cls: Type[Any], payload: Any) -> Any:
    """Strictly parse *payload* into schema dataclass *cls*.

    Raises :class:`SchemaError` (with a stable ``code``) on any
    violation; never lets a stray ``KeyError``/``TypeError`` escape.
    """
    spec: Dict[str, _Field] = cls._SPEC
    if not isinstance(payload, Mapping):
        raise SchemaError(
            "invalid-payload",
            f"{cls.__name__} payload must be a JSON object, "
            f"got {type(payload).__name__}",
        )
    for key in payload:
        if not isinstance(key, str) or key not in spec:
            raise SchemaError(
                "unknown-field",
                f"{cls.__name__} does not accept field {key!r}",
                field=str(key),
            )
    kwargs: Dict[str, Any] = {}
    for name, field_spec in spec.items():
        if name in payload:
            value = _parse_value(field_spec, name, payload[name])
        elif field_spec.default is not _MISSING:
            value = field_spec.default
        else:
            raise SchemaError(
                "missing-field",
                f"{cls.__name__} requires field {name!r}",
                field=name,
            )
        if name == "schema_version" and value != SCHEMA_VERSION:
            raise SchemaError(
                "unsupported-schema-version",
                f"this server speaks schema_version {SCHEMA_VERSION}, "
                f"got {value!r}",
                field=name,
            )
        kwargs[name] = value
    obj = cls(**kwargs)
    validate = getattr(obj, "validate", None)
    if validate is not None:
        validate()
    return obj


def _value_payload(value: Any) -> Any:
    if hasattr(type(value), "_SPEC"):
        return to_payload(value)
    if isinstance(value, tuple):
        return [_value_payload(v) for v in value]
    if isinstance(value, dict):
        return {k: _value_payload(v) for k, v in value.items()}
    return value


def to_payload(obj: Any) -> Dict[str, Any]:
    """The JSON-able dict form of a schema dataclass (tuples -> lists)."""
    return {f.name: _value_payload(getattr(obj, f.name)) for f in fields(obj)}


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, minimal separators, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def dump_bytes(obj: Any) -> bytes:
    """The canonical UTF-8 wire form of a schema dataclass."""
    return canonical_json(to_payload(obj)).encode("utf-8")


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecommendRequest:
    """``POST /recommend`` — wrap :func:`repro.analysis.planner.recommend`."""

    config: str = "table2"
    machine: str = "bgl"
    min_ranks: int = 64
    max_ranks: int = 1024
    efficiency_floor: float = 0.5
    mapping: str = "multilevel"
    io: str = "none"
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "config": _Field("str", default="table2", choices=CONFIG_NAMES),
        "machine": _Field("str", default="bgl", choices=MACHINE_NAMES),
        "min_ranks": _Field("int", default=64, lo=1, hi=MAX_RANKS),
        "max_ranks": _Field("int", default=1024, lo=1, hi=MAX_RANKS),
        "efficiency_floor": _Field("float", default=0.5, lo=0.0, hi=1.0),
        "mapping": _Field("str", default="multilevel", choices=MAPPING_NAMES),
        "io": _Field("str", default="none", choices=IO_NAMES),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }

    def validate(self) -> None:
        if self.max_ranks < self.min_ranks:
            raise SchemaError(
                "invalid-value",
                f"max_ranks ({self.max_ranks}) must be >= min_ranks "
                f"({self.min_ranks})",
                field="max_ranks",
            )
        if self.efficiency_floor <= 0.0:
            raise SchemaError(
                "out-of-range",
                "efficiency_floor must be in (0, 1]",
                field="efficiency_floor",
            )


@dataclass(frozen=True)
class SimulateRequest:
    """``POST /simulate`` — price one iteration under both strategies."""

    config: str = "table2"
    machine: str = "bgl"
    ranks: int = 256
    mapping: str = "oblivious"
    io: str = "none"
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "config": _Field("str", default="table2", choices=CONFIG_NAMES),
        "machine": _Field("str", default="bgl", choices=MACHINE_NAMES),
        "ranks": _Field("int", default=256, lo=1, hi=MAX_RANKS),
        "mapping": _Field("str", default="oblivious", choices=MAPPING_NAMES),
        "io": _Field("str", default="none", choices=IO_NAMES),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class VerifyRequest:
    """``POST /verify`` — run the invariant oracles over fuzzed scenarios."""

    budget: int = 25
    seed: int = 7
    oracles: Tuple[str, ...] = ()
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "budget": _Field("int", default=25, lo=1, hi=MAX_VERIFY_BUDGET),
        "seed": _Field("int", default=7, lo=0, hi=2**31 - 1),
        "oracles": _Field(("tuple", "str"), default=()),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class PlanRequest:
    """``POST /plan`` — the raw execution plan for one configuration.

    The cheapest cacheable request the service answers: one plan-cache
    lookup (no simulation, no sweep), which makes it the natural probe
    for shard cache affinity in the sharded router.
    """

    config: str = "table2"
    machine: str = "bgl"
    ranks: int = 256
    strategy: str = "parallel"
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "config": _Field("str", default="table2", choices=CONFIG_NAMES),
        "machine": _Field("str", default="bgl", choices=MACHINE_NAMES),
        "ranks": _Field("int", default=256, lo=1, hi=MAX_RANKS),
        "strategy": _Field(
            "str", default="parallel", choices=STRATEGY_NAMES
        ),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanOptionPayload:
    """One evaluated (ranks, strategy, mapping) combination."""

    ranks: int
    strategy: str
    mapping: str
    time_per_iteration: float
    core_seconds: float
    efficiency: float

    _SPEC = {
        "ranks": _Field("int", lo=1),
        "strategy": _Field("str", choices=("sequential", "parallel")),
        "mapping": _Field("str"),
        "time_per_iteration": _Field("float", lo=0.0),
        "core_seconds": _Field("float", lo=0.0),
        "efficiency": _Field("float", lo=0.0, hi=1.0),
    }


@dataclass(frozen=True)
class RecommendResponse:
    """Ranked sweep results, fastest first."""

    config: str
    machine: str
    efficiency_floor: float
    options: Tuple[PlanOptionPayload, ...]
    fastest: PlanOptionPayload
    recommended: PlanOptionPayload
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "config": _Field("str"),
        "machine": _Field("str"),
        "efficiency_floor": _Field("float", lo=0.0, hi=1.0),
        "options": _Field(("tuple", PlanOptionPayload)),
        "fastest": _Field(PlanOptionPayload),
        "recommended": _Field(PlanOptionPayload),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class IterationPayload:
    """One simulated iteration, the fields clients plot."""

    total_time: float
    integration_time: float
    io_time: float
    mpi_wait: float
    average_hops: float

    _SPEC = {
        "total_time": _Field("float", lo=0.0),
        "integration_time": _Field("float", lo=0.0),
        "io_time": _Field("float", lo=0.0),
        "mpi_wait": _Field("float", lo=0.0),
        "average_hops": _Field("float", lo=0.0),
    }


@dataclass(frozen=True)
class SimulateResponse:
    """Both strategies priced on one configuration and rank count."""

    config: str
    machine: str
    ranks: int
    mapping: str
    io: str
    sequential: IterationPayload
    parallel: IterationPayload
    #: ``100 * (1 - parallel/sequential)`` on total time (may be < 0).
    improvement_percent: float
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "config": _Field("str"),
        "machine": _Field("str"),
        "ranks": _Field("int", lo=1),
        "mapping": _Field("str"),
        "io": _Field("str"),
        "sequential": _Field(IterationPayload),
        "parallel": _Field(IterationPayload),
        "improvement_percent": _Field("float"),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class PlanAssignmentPayload:
    """One sibling nest and the processor rectangle it runs on."""

    domain: str
    nx: int
    ny: int
    x0: int
    y0: int
    width: int
    height: int
    processors: int

    _SPEC = {
        "domain": _Field("str"),
        "nx": _Field("int", lo=1),
        "ny": _Field("int", lo=1),
        "x0": _Field("int", lo=0),
        "y0": _Field("int", lo=0),
        "width": _Field("int", lo=1),
        "height": _Field("int", lo=1),
        "processors": _Field("int", lo=1),
    }


@dataclass(frozen=True)
class PlanResponse:
    """The raw execution plan: grid, parent, per-sibling rectangles."""

    config: str
    machine: str
    ranks: int
    strategy: str
    grid_px: int
    grid_py: int
    concurrent: bool
    parent_nx: int
    parent_ny: int
    assignments: Tuple[PlanAssignmentPayload, ...]
    #: Predicted execution-time ratios that drove the allocation
    #: (empty for the sequential strategy).
    ratios: Tuple[float, ...] = ()
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "config": _Field("str"),
        "machine": _Field("str"),
        "ranks": _Field("int", lo=1),
        "strategy": _Field("str", choices=STRATEGY_NAMES),
        "grid_px": _Field("int", lo=1),
        "grid_py": _Field("int", lo=1),
        "concurrent": _Field("bool"),
        "parent_nx": _Field("int", lo=1),
        "parent_ny": _Field("int", lo=1),
        "assignments": _Field(("tuple", PlanAssignmentPayload)),
        "ratios": _Field(("tuple", "float"), default=(), lo=0.0),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class VerifyFailurePayload:
    """One minimized oracle failure."""

    oracle: str
    message: str
    scenario: Dict[str, Any]
    minimized: Dict[str, Any]

    _SPEC = {
        "oracle": _Field("str"),
        "message": _Field("str"),
        "scenario": _Field("params"),
        "minimized": _Field("params"),
    }


@dataclass(frozen=True)
class VerifyResponse:
    """Outcome of one oracle run over fuzzed scenarios."""

    ok: bool
    budget: int
    seed: int
    scenarios_run: int
    infeasible_skips: int
    oracles: Tuple[str, ...]
    failures: Tuple[VerifyFailurePayload, ...]
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "ok": _Field("bool"),
        "budget": _Field("int", lo=1),
        "seed": _Field("int", lo=0),
        "scenarios_run": _Field("int", lo=0),
        "infeasible_skips": _Field("int", lo=0),
        "oracles": _Field(("tuple", "str")),
        "failures": _Field(("tuple", VerifyFailurePayload)),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class HealthResponse:
    """``GET /healthz`` — liveness plus coarse service counters."""

    status: str
    uptime_s: float
    requests_served: int
    warmed: bool
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "status": _Field("str", choices=("ok",)),
        "uptime_s": _Field("float", lo=0.0),
        "requests_served": _Field("int", lo=0),
        "warmed": _Field("bool"),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


@dataclass(frozen=True)
class ErrorResponse:
    """Structured error body; ``error`` is a stable kebab-case code."""

    error: str
    message: str
    schema_version: int = SCHEMA_VERSION

    _SPEC = {
        "error": _Field("str"),
        "message": _Field("str"),
        "schema_version": _Field("int", default=SCHEMA_VERSION),
    }


REQUEST_SCHEMAS: Tuple[type, ...] = (
    RecommendRequest,
    SimulateRequest,
    VerifyRequest,
    PlanRequest,
)
RESPONSE_SCHEMAS: Tuple[type, ...] = (
    PlanOptionPayload,
    PlanAssignmentPayload,
    PlanResponse,
    RecommendResponse,
    IterationPayload,
    SimulateResponse,
    VerifyFailurePayload,
    VerifyResponse,
    HealthResponse,
    ErrorResponse,
)
ALL_SCHEMAS: Tuple[type, ...] = REQUEST_SCHEMAS + RESPONSE_SCHEMAS
