"""Resident cross-request state for the planning service.

One :class:`ServiceState` lives for the whole life of a server process
and owns everything requests share:

* the **plan / placement / route caches** (PRs 1/4/5/6) as cross-request
  state, governed by a :class:`ServicePolicy` — per-entry TTLs on the
  plan and placement caches, whole-cache TTL flushes on the route cache
  (its entries are bulk arrays; the byte budget already bounds
  residency, so a wholesale flush is the right freshness granularity);
* **request coalescing**: identical in-flight ``recommend`` requests
  (keyed by their canonical JSON bytes) share one computation — the
  leader computes, followers block on an event and receive the *same*
  response object;
* **warm-start preloading**: :meth:`ServiceState.warm_start` runs the
  planner over the built-in paper configurations once so the first
  real request hits warm caches.

Every computation is a pure function of the request, and the caches
return bit-identical objects whether warm or cold, so response bodies
are byte-identical at any concurrency level — the contract the
concurrency-determinism suite (``tests/service/test_determinism.py``)
asserts at 1, 8, and 32 clients.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.exec.placementcache import (
    placement_cache_stats,
    set_placement_cache_policy,
)
from repro.exec.plancache import (
    parallel_plan,
    plan_cache_stats,
    sequential_plan,
    set_plan_cache_policy,
)
from repro.iosim.model import IoModel
from repro.netsim.engine import reset_route_cache, route_cache_stats
from repro.obs.metrics import counter, histogram, registry
from repro.obs.trace import tracer
from repro.perfsim.simulate import IterationReport, simulate_iteration
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.service.schemas import (
    SCHEMA_VERSION,
    HealthResponse,
    IterationPayload,
    PlanAssignmentPayload,
    PlanOptionPayload,
    PlanRequest,
    PlanResponse,
    RecommendRequest,
    RecommendResponse,
    SimulateRequest,
    SimulateResponse,
    VerifyFailurePayload,
    VerifyRequest,
    VerifyResponse,
    dump_bytes,
)
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P, Machine
from repro.workloads.regions import Configuration

__all__ = [
    "ServicePolicy",
    "ServiceState",
    "LATENCY_BOUNDS",
]

#: Latency histogram boundaries (seconds) for every endpoint.
LATENCY_BOUNDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
)

_MACHINES: Dict[str, Machine] = {"bgl": BLUE_GENE_L, "bgp": BLUE_GENE_P}


def _builtin_config(name: str) -> Configuration:
    from repro.workloads.paper_configs import (
        fig2_domains,
        fig10_domains,
        fig15_domains,
        table2_domains,
    )

    builders = {
        "fig2": fig2_domains,
        "fig10": fig10_domains,
        "fig15": fig15_domains,
        "table2": table2_domains,
    }
    try:
        return builders[name]()
    except KeyError:
        raise ConfigurationError(f"unknown configuration {name!r}") from None


def _mapping_instance(name: str):
    from repro.verify.scenarios import MAPPINGS

    return MAPPINGS[name]()


@dataclass(frozen=True)
class ServicePolicy:
    """Freshness policy for the shared caches.

    ``None`` disables a TTL (the historical keep-until-evicted
    behaviour); byte budgets stay governed by the ``REPRO_NETSIM_MEM_MB``
    family of knobs (:mod:`repro.netsim.budget`).
    """

    plan_ttl_s: Optional[float] = None
    placement_ttl_s: Optional[float] = None
    route_ttl_s: Optional[float] = None


class _InFlight:
    """One leader-computed recommend shared with coalesced followers."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[RecommendResponse] = None
        self.error: Optional[BaseException] = None


class ServiceState:
    """Everything the planning service shares across requests."""

    def __init__(
        self,
        policy: Optional[ServicePolicy] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or ServicePolicy()
        self._clock = clock
        self._started = clock()
        self._route_flushed = clock()
        self._lock = threading.Lock()
        self._inflight: Dict[bytes, _InFlight] = {}
        self.warmed = False
        set_plan_cache_policy(ttl_s=self.policy.plan_ttl_s)
        set_placement_cache_policy(ttl_s=self.policy.placement_ttl_s)
        self._requests = counter("service.requests")
        self._coalesce_hits = counter("service.coalesce.hits")
        self._coalesce_misses = counter("service.coalesce.misses")

    def close(self) -> None:
        """Detach the state's cache policies (tests, clean shutdown)."""
        set_plan_cache_policy(ttl_s=None)
        set_placement_cache_policy(ttl_s=None)

    # ------------------------------------------------------------- caches
    def maybe_expire(self) -> bool:
        """Flush the route cache when its TTL has lapsed.

        Called on request entry; returns True when a flush happened.
        The plan and placement caches expire per entry on lookup, so
        they need no sweep here.
        """
        ttl = self.policy.route_ttl_s
        if ttl is None:
            return False
        with self._lock:
            if self._clock() - self._route_flushed <= ttl:
                return False
            self._route_flushed = self._clock()
        reset_route_cache()
        return True

    # --------------------------------------------------------- endpoints
    def recommend(self, req: RecommendRequest) -> Tuple[RecommendResponse, bool]:
        """Plan *req*, coalescing identical in-flight requests.

        Returns ``(response, coalesced)`` — ``coalesced`` is True when
        this call shared another caller's in-flight computation (the
        response object is *the same object* the leader produced).
        """
        key = dump_bytes(req)
        with self._lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = _InFlight()
                self._inflight[key] = entry
        if not leader:
            self._coalesce_hits.inc()
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            assert entry.response is not None
            return entry.response, True
        self._coalesce_misses.inc()
        try:
            entry.response = self._compute_recommend(req)
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._lock:
                del self._inflight[key]
            entry.event.set()
        return entry.response, False

    def _compute_recommend(self, req: RecommendRequest) -> RecommendResponse:
        from repro.analysis.planner import recommend

        tr = tracer()
        with tr.span(
            "service.recommend.compute",
            {"config": req.config, "machine": req.machine}
            if tr.enabled else None,
        ):
            rec = recommend(
                _builtin_config(req.config),
                _MACHINES[req.machine],
                max_ranks=req.max_ranks,
                min_ranks=req.min_ranks,
                efficiency_floor=req.efficiency_floor,
                mapping=_mapping_instance(req.mapping),
                io_model=None if req.io == "none" else IoModel(req.io),
                jobs=1,
            )
        def payload(o) -> PlanOptionPayload:
            return PlanOptionPayload(
                ranks=o.ranks,
                strategy=o.strategy,
                mapping=o.mapping,
                time_per_iteration=o.time_per_iteration,
                core_seconds=o.core_seconds,
                efficiency=o.efficiency,
            )

        return RecommendResponse(
            config=req.config,
            machine=req.machine,
            efficiency_floor=req.efficiency_floor,
            options=tuple(payload(o) for o in rec.options),
            fastest=payload(rec.fastest),
            recommended=payload(rec.recommended),
        )

    def simulate(self, req: SimulateRequest) -> SimulateResponse:
        """Price one iteration of *req* under both strategies."""
        config = _builtin_config(req.config)
        machine = _MACHINES[req.machine]
        px, py = choose_process_grid(req.ranks)
        grid = ProcessGrid(px, py)
        siblings = list(config.siblings)
        seq_plan = sequential_plan(grid, config.parent, siblings)
        par_plan = parallel_plan(
            grid, config.parent, siblings, [s.points for s in siblings]
        )
        mapping = (
            None if req.mapping == "oblivious" else _mapping_instance(req.mapping)
        )
        io_model = None if req.io == "none" else IoModel(req.io)
        seq = simulate_iteration(seq_plan, machine, io_model=io_model)
        par = simulate_iteration(
            par_plan, machine, mapping=mapping, io_model=io_model
        )

        def payload(rep: IterationReport) -> IterationPayload:
            return IterationPayload(
                total_time=rep.total_time,
                integration_time=rep.integration_time,
                io_time=rep.io_time,
                mpi_wait=rep.mpi_wait,
                average_hops=rep.average_hops,
            )

        return SimulateResponse(
            config=req.config,
            machine=req.machine,
            ranks=req.ranks,
            mapping=req.mapping,
            io=req.io,
            sequential=payload(seq),
            parallel=payload(par),
            improvement_percent=100.0 * (1.0 - par.total_time / seq.total_time),
        )

    def plan(self, req: PlanRequest) -> PlanResponse:
        """The raw execution plan for one configuration and rank count.

        One memoized plan-cache lookup — the cheapest cacheable request
        the service answers, and the router's affinity probe.
        """
        config = _builtin_config(req.config)
        px, py = choose_process_grid(req.ranks)
        grid = ProcessGrid(px, py)
        siblings = list(config.siblings)
        if req.strategy == "sequential":
            plan = sequential_plan(grid, config.parent, siblings)
        else:
            plan = parallel_plan(
                grid, config.parent, siblings, [s.points for s in siblings]
            )
        return PlanResponse(
            config=req.config,
            machine=req.machine,
            ranks=req.ranks,
            strategy=req.strategy,
            grid_px=plan.grid.px,
            grid_py=plan.grid.py,
            concurrent=plan.concurrent,
            parent_nx=plan.parent.nx,
            parent_ny=plan.parent.ny,
            assignments=tuple(
                PlanAssignmentPayload(
                    domain=a.domain.name,
                    nx=a.domain.nx,
                    ny=a.domain.ny,
                    x0=a.rect.x0,
                    y0=a.rect.y0,
                    width=a.rect.width,
                    height=a.rect.height,
                    processors=a.processors,
                )
                for a in plan.assignments
            ),
            ratios=() if plan.ratios is None else tuple(plan.ratios),
        )

    def verify(self, req: VerifyRequest) -> VerifyResponse:
        """Run the invariant oracles over a fuzzed scenario budget."""
        from repro.verify import all_oracles, fuzz

        registered = all_oracles()
        for name in req.oracles:
            if name not in registered:
                raise ConfigurationError(
                    f"unknown oracle {name!r}; registered: "
                    f"{', '.join(sorted(registered))}"
                )
        report = fuzz(
            req.budget,
            seed=req.seed,
            oracle_names=list(req.oracles) or None,
            jobs=1,
        )
        return VerifyResponse(
            ok=report.ok,
            budget=report.budget,
            seed=report.seed,
            scenarios_run=report.scenarios_run,
            infeasible_skips=report.infeasible_skips,
            oracles=tuple(report.oracle_names),
            failures=tuple(
                VerifyFailurePayload(
                    oracle=f.oracle,
                    message=f.message,
                    scenario=dict(f.scenario),
                    minimized=dict(f.minimized),
                )
                for f in report.failures
            ),
        )

    # ------------------------------------------------------ introspection
    def health(self) -> HealthResponse:
        """Liveness payload for ``GET /healthz``."""
        return HealthResponse(
            status="ok",
            uptime_s=self._clock() - self._started,
            requests_served=int(self._requests.value),
            warmed=self.warmed,
        )

    def metrics_payload(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: registry snapshot + cache stats."""
        return {
            "schema_version": SCHEMA_VERSION,
            "uptime_s": self._clock() - self._started,
            "requests_served": int(self._requests.value),
            "caches": {
                "plan": asdict(plan_cache_stats()),
                "placement": asdict(placement_cache_stats()),
                "route": asdict(route_cache_stats()),
            },
            "metrics": registry().snapshot(),
        }

    # ---------------------------------------------------------- warm-up
    def warm_start(
        self,
        configs: Tuple[str, ...] = ("fig2", "fig10", "fig15", "table2"),
        *,
        machine: str = "bgl",
        max_ranks: int = 256,
    ) -> Dict[str, Any]:
        """Preload the shared caches from the built-in paper configs.

        Runs one small recommend sweep per configuration through the
        exact request path, so plans, placements, and routes for the
        popular configurations are resident before the first client
        arrives. Returns a summary of what got warmed.
        """
        tr = tracer()
        with tr.span("service.warm_start"):
            for name in configs:
                self._compute_recommend(
                    RecommendRequest(
                        config=name, machine=machine, min_ranks=64,
                        max_ranks=max_ranks,
                    )
                )
        self.warmed = True
        return {
            "configs": list(configs),
            "machine": machine,
            "max_ranks": max_ranks,
            "plan_cache_entries": plan_cache_stats().entries,
            "placement_cache_entries": placement_cache_stats().entries,
            "route_cache_entries": route_cache_stats().entries,
        }
