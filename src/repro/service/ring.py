"""Consistent-hash ring: stable request-class -> shard affinity.

The sharded planning service scales by running N independent shard
processes, each a full :class:`~repro.service.app.PlanningServer` with
its own plan/placement/route caches. Throughput comes from the
processes; *latency* comes from cache affinity — a request class must
keep landing on the shard whose caches already hold its plans,
placements, and routes. The ring provides that affinity:

* each shard id is hashed onto the ring at :data:`DEFAULT_VNODES`
  points (virtual nodes), smoothing the per-shard share of the key
  space to within a few percent of ``1/N``;
* a key (the request's canonical affinity bytes — strategy, grid
  dimensions, sibling signature, machine; see
  :func:`repro.service.router.affinity_key`) is hashed once and owned
  by the first shard point at or after it, wrapping around;
* adding or removing one shard remaps only the keys the changed shard
  owns (~``1/N`` of the space) — every other request class keeps its
  warm shard, which is the whole point of consistent hashing over
  modulo hashing.

Hashing is :func:`hashlib.blake2b` (unseeded, 8-byte digests), so the
assignment is deterministic across processes, runs, and machines —
the router and any future client-side router agree on placement
without coordination.

:meth:`HashRing.preference` returns the full failover order: the
distinct shards in ring order starting at the key's owner. The router
walks it when a shard is down, so failover is deterministic too.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, Iterable, List, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per shard. 160 keeps the max/min owned-share ratio
#: comfortably under 2 for any realistic shard count (the ring test
#: suite pins the bound by hypothesis).
DEFAULT_VNODES = 160


def _point(data: bytes) -> int:
    """A deterministic 64-bit ring position for *data*."""
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """An immutable consistent-hash ring over string shard ids."""

    __slots__ = ("members", "vnodes", "_points", "_owners")

    def __init__(self, members: Iterable[str], *, vnodes: int = DEFAULT_VNODES):
        ids: Tuple[str, ...] = tuple(members)
        if not ids:
            raise ValueError("ring needs at least one member")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate ring members: {ids}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.members = ids
        self.vnodes = vnodes
        marks: List[Tuple[int, str]] = []
        for member in ids:
            for replica in range(vnodes):
                marks.append(
                    (_point(f"{member}#{replica}".encode("utf-8")), member)
                )
        # Ties (64-bit collisions) resolve by member id so the ring is a
        # pure function of its member set, never of insertion order.
        marks.sort()
        self._points: Tuple[int, ...] = tuple(p for p, _ in marks)
        self._owners: Tuple[str, ...] = tuple(m for _, m in marks)

    # ------------------------------------------------------------------
    def _index_for(self, key: bytes) -> int:
        # First point strictly after the key's position, wrapping: the
        # owner of the arc the key falls on.
        return bisect_right(self._points, _point(key)) % len(self._points)

    def shard_for(self, key: bytes) -> str:
        """The shard owning *key* — stable for the life of the member set."""
        return self._owners[self._index_for(key)]

    def preference(self, key: bytes) -> Tuple[str, ...]:
        """All members in failover order for *key*.

        The first entry is :meth:`shard_for`; the rest are the distinct
        members encountered walking the ring clockwise. The router
        tries them in order when shards are down, so two routers (or a
        router before and after a restart) always agree on the fallback
        target as well as the primary.
        """
        start = self._index_for(key)
        order: List[str] = []
        seen = set()
        n = len(self._owners)
        for offset in range(n):
            member = self._owners[(start + offset) % n]
            if member not in seen:
                seen.add(member)
                order.append(member)
                if len(order) == len(self.members):
                    break
        return tuple(order)

    # ------------------------------------------------------------------
    def owned_share(self) -> Dict[str, float]:
        """Fraction of the 64-bit key space each member owns.

        The analytical load balance (what a uniform key population
        converges to); the ring tests bound its max/min ratio.
        """
        space = float(1 << 64)
        shares = {m: 0.0 for m in self.members}
        prev = 0
        for point, owner in zip(self._points, self._owners):
            shares[owner] += (point - prev) / space
            prev = point
        # The wrap-around arc from the last point back to the first
        # belongs to the first point's owner.
        shares[self._owners[0]] += ((1 << 64) - prev) / space
        return shares

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(members={self.members!r}, vnodes={self.vnodes})"
