"""Front-door router for the sharded planning service.

The router owns the listening socket; every planning request is
forwarded over a **persistent keep-alive connection** to one of N shard
processes (:mod:`repro.service.shard`), each a full single-process
:class:`PlanningServer` with its own plan/placement/route caches.

Shard selection is a **consistent-hash ring** (:mod:`repro.service.ring`)
over the request's canonical cache key — strategy + grid dims + sibling
signature (config) + machine, exactly the fields the shard-side caches
key on. Affinity is the whole performance argument: the same request
class always lands on the same shard, so that shard's caches stay warm
and the fleet's aggregate cache capacity is the *sum* of the shards,
not N copies of the same entries. Since every response body is a pure
function of the request (the single-process byte-determinism contract),
routing is invisible in the body: a 4-shard service answers
byte-identically to a 1-shard one. Operational facts ride in headers
(``X-Repro-Shard``, plus the shard's own ``X-Repro-Coalesced``).

Failure semantics: a transport error on a forward marks the shard down,
bumps ``service.router.failovers``, and retries the request on the next
shard in the ring's deterministic preference order — safe because
requests are pure. The supervisor restarts dead shards with warm-start
preloading; until then the router **fails open** to the live shards.

``GET /metrics`` fans out to every shard (internal scrapes, invisible
to shard accounting) and folds the snapshots with the associative
:func:`~repro.obs.metrics.merge_snapshots`, plus the retired snapshots
of dead generations — so the merged aggregate reconciles **exactly**
with per-shard scrapes.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import counter, histogram, labelled, registry
from repro.obs.trace import tracer
from repro.service.app import MAX_BODY_BYTES, _error_body
from repro.service.ring import HashRing
from repro.service.schemas import (
    SCHEMA_VERSION,
    HealthResponse,
    PlanRequest,
    RecommendRequest,
    SchemaError,
    SimulateRequest,
    VerifyRequest,
    canonical_json,
    dump_bytes,
    parse_payload,
)
from repro.service.shard import NoLiveShardError, ShardSupervisor
from repro.service.state import LATENCY_BOUNDS, ServicePolicy

__all__ = ["ShardedPlanningService", "affinity_key"]

_CONTENT_TYPE = "application/json"

#: Parsed request schema per forwarded path (also the route table).
_REQUEST_SCHEMA = {
    "/recommend": RecommendRequest,
    "/simulate": SimulateRequest,
    "/plan": PlanRequest,
    "/verify": VerifyRequest,
}

#: Fields that make up each endpoint's affinity class. These mirror the
#: shard-side cache keys: ``/recommend`` drops the sweep window
#: (min/max ranks, efficiency floor) so overlapping sweeps of one
#: configuration share a warm shard; ``/simulate`` and ``/plan`` are
#: per-rank-count (distinct plan-cache entries); ``/verify`` keys on
#: the fuzz budget/seed/oracles that define its workload.
_AFFINITY_FIELDS = {
    "/recommend": ("config", "machine", "mapping", "io"),
    "/simulate": ("config", "machine", "mapping", "io", "ranks"),
    "/plan": ("config", "machine", "strategy", "ranks"),
    "/verify": ("budget", "seed", "oracles"),
}


def affinity_key(path: str, raw: bytes) -> bytes:
    """The ring key for one request: canonical cache-class bytes.

    Parsing applies schema defaults, so ``{}`` and an explicit
    ``{"config": "table2"}`` hash to the same shard. Unparseable bodies
    fall back to hashing the raw bytes — the shard will produce the
    (deterministic) 400, and identical malformed bodies still coalesce
    on one shard.
    """
    cls = _REQUEST_SCHEMA.get(path)
    if cls is not None:
        try:
            payload = json.loads(raw)
            req = parse_payload(cls, payload)
        except (ValueError, SchemaError):
            pass
        else:
            fields = {
                name: getattr(req, name) for name in _AFFINITY_FIELDS[path]
            }
            return canonical_json({"path": path, **fields}).encode("utf-8")
    return b"raw\x00" + raw


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        supervisor: ShardSupervisor,
        ring: HashRing,
    ):
        super().__init__(address, _RouterHandler)
        self.supervisor = supervisor
        self.ring = ring
        self.started = time.monotonic()
        self.requests_served = 0
        self.requests_lock = threading.Lock()


class _RouterHandler(BaseHTTPRequestHandler):
    server_version = "repro-router/1"
    protocol_version = "HTTP/1.1"
    # Same keep-alive Nagle/delayed-ACK stall as the shard handler: the
    # relayed body must not wait on the client's delayed ACK.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:
        tr = tracer()
        if tr.enabled:
            tr.event("service.router.access_log", {"line": format % args})

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        endpoint = path.strip("/").replace("/", ".") or "root"
        t0 = time.perf_counter()
        extra: Dict[str, str] = {}
        tr = tracer()
        with tr.span(
            "service.router.request",
            {"method": method, "path": path} if tr.enabled else None,
        ):
            try:
                if method == "GET" and path == "/healthz":
                    status, body = self._handle_healthz()
                elif method == "GET" and path == "/metrics":
                    status, body = self._handle_metrics()
                elif method == "POST" and path in _REQUEST_SCHEMA:
                    status, body, extra = self._forward(path)
                elif path == "/healthz" or path == "/metrics" or path in _REQUEST_SCHEMA:
                    # Mirror the single-process server's wording so error
                    # bodies stay byte-identical across shard counts.
                    status = 405
                    body = _error_body(
                        "method-not-allowed", f"{method} not supported on {path}"
                    )
                else:
                    status = 404
                    body = _error_body("not-found", f"no route for {path}")
            except _RouterError as exc:
                status, body = exc.status, _error_body(exc.code, str(exc))
                if exc.close:
                    self.close_connection = True
            except NoLiveShardError as exc:
                status, body = 503, _error_body("no-live-shard", str(exc))
            except Exception as exc:  # noqa: BLE001 - edge of the router
                status, body = 500, _error_body("internal-error", str(exc))
        self._account(endpoint, status, time.perf_counter() - t0)
        try:
            self.send_response(status)
            self.send_header("Content-Type", _CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            for name, value in extra.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _account(self, endpoint: str, status: int, elapsed_s: float) -> None:
        server: _RouterHTTPServer = self.server
        with server.requests_lock:
            server.requests_served += 1
        counter("service.router.requests").inc()
        histogram(
            f"service.router.{endpoint}.latency_s", LATENCY_BOUNDS
        ).observe(elapsed_s)
        if status >= 400:
            counter("service.router.errors").inc()

    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        """Read the POST body, mirroring the shard's edge checks.

        The length checks must happen here (the router cannot forward a
        request it cannot frame), with the single-process server's exact
        status codes and messages so the error bodies stay
        byte-identical at every shard count.
        """
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise _RouterError(411, "length-required", "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise _RouterError(
                400, "invalid-length", f"bad Content-Length {length_header!r}"
            ) from None
        if length > MAX_BODY_BYTES:
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _RouterError(
                413, "payload-too-large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
                close=True,
            )
        return self.rfile.read(length)

    def _forward(self, path: str) -> Tuple[int, bytes, Dict[str, str]]:
        server: _RouterHTTPServer = self.server
        body = self._read_body()
        key = affinity_key(path, body)
        preference = server.ring.preference(key)
        reply, shard_id, failovers = server.supervisor.forward(
            preference,
            "POST",
            path,
            body,
            {"Content-Type": _CONTENT_TYPE},
        )
        counter("service.router.forwarded").inc()
        counter(labelled("service.router.shard.requests", shard=shard_id)).inc()
        extra = {"X-Repro-Shard": shard_id}
        coalesced = reply.headers.get("X-Repro-Coalesced")
        if coalesced is not None:
            extra["X-Repro-Coalesced"] = coalesced
        if failovers:
            extra["X-Repro-Failovers"] = str(failovers)
        return reply.status, reply.body, extra

    # ------------------------------------------------------------------
    def _handle_healthz(self) -> Tuple[int, bytes]:
        server: _RouterHTTPServer = self.server
        live = server.supervisor.live_shards()
        if not live:
            return 503, _error_body(
                "no-live-shard", "no shard is currently serving"
            )
        with server.requests_lock:
            served = server.requests_served
        payload = HealthResponse(
            status="ok",
            uptime_s=time.monotonic() - server.started,
            requests_served=served,
            warmed=server.supervisor.warm,
        )
        return 200, dump_bytes(payload)

    def _handle_metrics(self) -> Tuple[int, bytes]:
        """Fan out to every shard and fold the snapshots exactly."""
        server: _RouterHTTPServer = self.server
        aggregate = server.supervisor.aggregate_metrics()
        with server.requests_lock:
            served = server.requests_served
        payload = {
            "schema_version": SCHEMA_VERSION,
            "uptime_s": time.monotonic() - server.started,
            # Drop-in for the single-process payload: total requests the
            # *shards* accounted (live generations; dead generations'
            # counts live on in metrics["service.requests"]).
            "requests_served": aggregate["requests_served"],
            "caches": aggregate["caches"],
            "metrics": aggregate["metrics"],
            "shards": aggregate["per_shard"],
            "retired_metrics": aggregate["retired_metrics"],
            "router": {
                "requests_served": served,
                "shards": len(server.supervisor.handles),
                "live_shards": list(server.supervisor.live_shards()),
                "restarts": server.supervisor.restarts(),
                "metrics": registry().snapshot("service.router."),
            },
        }
        return 200, canonical_json(payload).encode("utf-8")


class _RouterError(Exception):
    """Internal: HTTP status + stable code raised before forwarding."""

    def __init__(self, status: int, code: str, message: str, *, close: bool = False):
        super().__init__(message)
        self.status = status
        self.code = code
        self.close = close


class ShardedPlanningService:
    """N shard processes behind one consistent-hash router socket.

    Drop-in for :class:`~repro.service.app.PlanningServer` from a
    client's point of view — same endpoints, byte-identical bodies —
    with ``shards`` planning processes behind the front door::

        with ShardedPlanningService(shards=4) as service:
            client = ServiceClient(service.url)
            client.recommend({"config": "fig10"})

    ``warm=True`` warm-starts every shard before it takes traffic
    (including respawned shards after a crash).
    """

    def __init__(
        self,
        shards: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        policy: Optional[ServicePolicy] = None,
        warm: bool = True,
        warm_max_ranks: int = 256,
        pool_size: int = 8,
        vnodes: Optional[int] = None,
        ready_timeout_s: float = 180.0,
    ) -> None:
        policy = policy or ServicePolicy()
        self.supervisor = ShardSupervisor(
            shards,
            host="127.0.0.1",
            ttls=(
                policy.plan_ttl_s,
                policy.placement_ttl_s,
                policy.route_ttl_s,
            ),
            warm=warm,
            warm_max_ranks=warm_max_ranks,
            pool_size=pool_size,
            ready_timeout_s=ready_timeout_s,
        )
        ring_kwargs = {} if vnodes is None else {"vnodes": vnodes}
        self.ring = HashRing(self.supervisor.shard_ids, **ring_kwargs)
        self._address = (host, port)
        self._httpd: Optional[_RouterHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        assert self._httpd is not None, "service not started"
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        assert self._httpd is not None, "service not started"
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def shards(self) -> int:
        return len(self.supervisor.handles)

    def start(self) -> "ShardedPlanningService":
        """Spawn the shard fleet, then open the front door."""
        if self._httpd is not None:
            raise RuntimeError("service already started")
        self.supervisor.start()
        self._httpd = _RouterHTTPServer(
            self._address, self.supervisor, self.ring
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"planning-router:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def wait(self) -> None:
        """Block until the router thread exits (the CLI path)."""
        thread = self._thread
        if thread is not None:
            thread.join()

    def close(self) -> None:
        """Stop the router, then terminate every shard."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd = None
        self.supervisor.stop()

    def __enter__(self) -> "ShardedPlanningService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
