"""Minimal stdlib client for the planning service.

Tests, the load benchmark, and scripts drive the HTTP API through this
thin :mod:`urllib.request` wrapper. It never raises on HTTP error
statuses — every call returns a :class:`ServiceReply` carrying the
status, headers, and raw body, because the error *body* (its stable
``error`` code) is part of the API surface under test.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.service.schemas import canonical_json

__all__ = ["ServiceReply", "ServiceClient"]


@dataclass(frozen=True)
class ServiceReply:
    """One HTTP exchange: status, response headers, raw body bytes."""

    status: int
    headers: Dict[str, str]
    body: bytes

    @property
    def json(self) -> Any:
        """The decoded JSON body."""
        return json.loads(self.body)

    @property
    def coalesced(self) -> bool:
        """Whether the server coalesced this request into another's."""
        return self.headers.get("X-Repro-Coalesced") == "1"


class ServiceClient:
    """Blocking JSON client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _exchange(self, req: urllib.request.Request) -> ServiceReply:
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return ServiceReply(
                    status=resp.status,
                    headers=dict(resp.headers.items()),
                    body=resp.read(),
                )
        except urllib.error.HTTPError as exc:
            return ServiceReply(
                status=exc.code,
                headers=dict(exc.headers.items()) if exc.headers else {},
                body=exc.read(),
            )

    def get(self, path: str) -> ServiceReply:
        """``GET path``."""
        return self._exchange(
            urllib.request.Request(self.base_url + path, method="GET")
        )

    def post(self, path: str, payload: Optional[Mapping[str, Any]] = None,
             *, raw: Optional[bytes] = None) -> ServiceReply:
        """``POST path`` with a canonical-JSON *payload* (or *raw* bytes)."""
        body = raw if raw is not None else canonical_json(
            dict(payload or {})
        ).encode("utf-8")
        return self._exchange(
            urllib.request.Request(
                self.base_url + path,
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
        )

    # Convenience wrappers -------------------------------------------------
    def healthz(self) -> ServiceReply:
        return self.get("/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The decoded ``GET /metrics`` snapshot."""
        return self.get("/metrics").json

    def recommend(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        return self.post("/recommend", payload)

    def simulate(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        return self.post("/simulate", payload)

    def verify(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        return self.post("/verify", payload)
