"""Stdlib client for the planning service, with keep-alive pooling.

Tests, the router's shard forwarding, and the load benchmark all drive
the HTTP API through this wrapper. Two contracts:

* it never raises on HTTP error *statuses* — every completed exchange
  returns a :class:`ServiceReply` carrying the status, headers, and raw
  body, because the error body (its stable ``error`` code) is part of
  the API surface under test;
* transport failures (connection refused, reset mid-exchange) raise
  :class:`ServiceConnectionError` so callers that can fail over — the
  sharded router — can tell "the shard said 400" from "the shard is
  gone".

Connection pooling
------------------
Every :class:`ServiceClient` owns a bounded pool of persistent
HTTP/1.1 connections to its host (``pool_size``, default 8). Requests
reuse an idle connection when one is available and open a fresh one
otherwise; connections are retired (closed, not pooled) when the
server answers ``Connection: close``, when the response errors
mid-read, or when the idle pool is already full. A request that fails
on a *reused* connection before any response bytes arrive is retried
once on a fresh connection — the stale-keep-alive race every pooled
client has to absorb; a fresh connection's failure propagates.

The pool is thread-safe: the load bench fires one shared client from
dozens of threads. :meth:`ServiceClient.pool_stats` reports
created/reused/retired counts so benchmarks can show the connect
overhead that pooling removed.
"""

from __future__ import annotations

import http.client
import socket
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.service.schemas import canonical_json

__all__ = [
    "ServiceReply",
    "ServiceClient",
    "ServiceConnectionError",
    "PoolStats",
]

import json


class ServiceConnectionError(ReproError):
    """The service could not be reached or died mid-exchange."""


@dataclass(frozen=True)
class ServiceReply:
    """One HTTP exchange: status, response headers, raw body bytes."""

    status: int
    headers: Dict[str, str]
    body: bytes

    @property
    def json(self) -> Any:
        """The decoded JSON body."""
        return json.loads(self.body)

    @property
    def coalesced(self) -> bool:
        """Whether the server coalesced this request into another's."""
        return self.headers.get("X-Repro-Coalesced") == "1"

    @property
    def shard(self) -> Optional[str]:
        """The shard id that answered (sharded service only)."""
        return self.headers.get("X-Repro-Shard")


@dataclass(frozen=True)
class PoolStats:
    """Connection-pool counters for benchmarks and tests."""

    created: int
    reused: int
    retired: int
    idle: int


class ServiceClient:
    """Blocking JSON client bound to one service base URL.

    Usable as a context manager; :meth:`close` drains the idle pool.
    A client left unclosed only holds idle sockets, which the OS
    reclaims with the process — fine for tests, rude for daemons.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 60.0,
        pool_size: int = 8,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.pool_size = pool_size
        split = urlsplit(self.base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"expected an http://host[:port] URL, got {base_url!r}")
        self._host = split.hostname
        self._port = split.port or 80
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self._created = 0
        self._reused = 0
        self._retired = 0
        self._closed = False

    # ------------------------------------------------------------- pool
    def _acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """An idle pooled connection, or a fresh one. Returns (conn, fresh)."""
        with self._lock:
            if self._idle:
                self._reused += 1
                return self._idle.pop(), False
            self._created += 1
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout_s
        )
        # Connect eagerly so Nagle can be disabled before the first
        # request: pooled connections outlive Linux's initial quickack
        # grace, after which a Nagle-delayed segment stalls ~40ms on
        # the peer's delayed ACK.
        try:
            conn.connect()
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        except OSError:
            pass  # surfaces as ServiceConnectionError in _exchange
        return conn, True

    def _release(self, conn: http.client.HTTPConnection, reusable: bool) -> None:
        with self._lock:
            if reusable and not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(conn)
                return
            self._retired += 1
        conn.close()

    def _discard(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            self._retired += 1
        conn.close()

    def pool_stats(self) -> PoolStats:
        """Connection counters since the client was created."""
        with self._lock:
            return PoolStats(
                created=self._created,
                reused=self._reused,
                retired=self._retired,
                idle=len(self._idle),
            )

    def close(self) -> None:
        """Close every idle pooled connection."""
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
            self._retired += len(idle)
        for conn in idle:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ---------------------------------------------------------- exchange
    def _exchange(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Mapping[str, str],
    ) -> ServiceReply:
        attempts = 2  # one retry, and only for a stale reused connection
        for attempt in range(attempts):
            conn, fresh = self._acquire()
            try:
                conn.request(method, path, body=body, headers=dict(headers))
                resp = conn.getresponse()
                data = resp.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._discard(conn)
                if not fresh and attempt < attempts - 1:
                    # The server closed an idle keep-alive connection
                    # between our reuse check and the request; requests
                    # are pure, so retrying on a fresh socket is safe.
                    continue
                raise ServiceConnectionError(
                    f"{method} {self.base_url}{path} failed: {exc}"
                ) from exc
            reusable = not resp.will_close
            self._release(conn, reusable)
            return ServiceReply(
                status=resp.status,
                headers=dict(resp.getheaders()),
                body=data,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def get(self, path: str, *, headers: Optional[Mapping[str, str]] = None) -> ServiceReply:
        """``GET path``."""
        return self._exchange("GET", path, None, headers or {})

    def post(self, path: str, payload: Optional[Mapping[str, Any]] = None,
             *, raw: Optional[bytes] = None,
             headers: Optional[Mapping[str, str]] = None) -> ServiceReply:
        """``POST path`` with a canonical-JSON *payload* (or *raw* bytes)."""
        body = raw if raw is not None else canonical_json(
            dict(payload or {})
        ).encode("utf-8")
        all_headers = {"Content-Type": "application/json"}
        if headers:
            all_headers.update(headers)
        return self._exchange("POST", path, body, all_headers)

    # Convenience wrappers -------------------------------------------------
    def healthz(self) -> ServiceReply:
        return self.get("/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The decoded ``GET /metrics`` snapshot."""
        return self.get("/metrics").json

    def recommend(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        return self.post("/recommend", payload)

    def simulate(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        return self.post("/simulate", payload)

    def verify(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        return self.post("/verify", payload)

    def plan(self, payload: Optional[Mapping[str, Any]] = None) -> ServiceReply:
        """``POST /plan`` — the raw execution plan for one configuration."""
        return self.post("/plan", payload)
