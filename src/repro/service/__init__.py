"""Planner-as-a-service: the resident-process front door.

The paper's divide-and-conquer planner answers "how should I place
these nests?"; this package answers it as a **long-lived service**
instead of a CLI invocation per question:

* :mod:`repro.service.schemas` — versioned frozen-dataclass
  request/response schemas with strict canonical-JSON (de)serialization;
* :mod:`repro.service.state` — the shared cross-request state: the
  plan/placement/route caches under TTL + byte-budget policies,
  request coalescing, and warm-start preloading from paper configs;
* :mod:`repro.service.app` — the zero-dependency HTTP server
  (``POST /recommend``, ``POST /simulate``, ``POST /verify``,
  ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.service.client` — a stdlib client for tests and the
  ``benchmarks/bench_service.py`` load harness.

``repro serve`` on the command line runs it; see ``docs/service.md``
for endpoint schemas, cache-policy knobs, and the load-test howto.
"""

from repro.service.app import MAX_BODY_BYTES, PlanningHTTPServer, PlanningServer
from repro.service.client import ServiceClient, ServiceReply
from repro.service.schemas import (
    SCHEMA_VERSION,
    ErrorResponse,
    HealthResponse,
    IterationPayload,
    PlanOptionPayload,
    RecommendRequest,
    RecommendResponse,
    SchemaError,
    SimulateRequest,
    SimulateResponse,
    VerifyFailurePayload,
    VerifyRequest,
    VerifyResponse,
    dump_bytes,
    parse_payload,
    to_payload,
)
from repro.service.state import ServicePolicy, ServiceState

__all__ = [
    "SCHEMA_VERSION",
    "MAX_BODY_BYTES",
    "PlanningServer",
    "PlanningHTTPServer",
    "ServiceClient",
    "ServiceReply",
    "ServicePolicy",
    "ServiceState",
    "SchemaError",
    "parse_payload",
    "to_payload",
    "dump_bytes",
    "RecommendRequest",
    "RecommendResponse",
    "SimulateRequest",
    "SimulateResponse",
    "VerifyRequest",
    "VerifyResponse",
    "VerifyFailurePayload",
    "PlanOptionPayload",
    "IterationPayload",
    "HealthResponse",
    "ErrorResponse",
]
