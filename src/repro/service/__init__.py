"""Planner-as-a-service: the resident-process front door.

The paper's divide-and-conquer planner answers "how should I place
these nests?"; this package answers it as a **long-lived service**
instead of a CLI invocation per question:

* :mod:`repro.service.schemas` — versioned frozen-dataclass
  request/response schemas with strict canonical-JSON (de)serialization;
* :mod:`repro.service.state` — the shared cross-request state: the
  plan/placement/route caches under TTL + byte-budget policies,
  request coalescing, and warm-start preloading from paper configs;
* :mod:`repro.service.app` — the zero-dependency HTTP server
  (``POST /recommend``, ``POST /simulate``, ``POST /plan``,
  ``POST /verify``, ``GET /healthz``, ``GET /metrics``);
* :mod:`repro.service.client` — a stdlib keep-alive client with a
  bounded per-host connection pool, for tests and the
  ``benchmarks/bench_service.py`` load harness;
* :mod:`repro.service.ring` — the consistent-hash ring that pins each
  request class to a shard for cache affinity;
* :mod:`repro.service.shard` / :mod:`repro.service.router` — the
  multi-process deployment: N supervised shard processes (each a full
  :class:`PlanningServer`) behind one router socket, with warm
  restarts, fail-open forwarding, and exact cross-shard ``/metrics``.

``repro serve`` on the command line runs it (``--shards N`` for the
sharded deployment); see ``docs/service.md`` for endpoint schemas,
cache-policy knobs, sharding semantics, and the load-test howto.
"""

from repro.service.app import MAX_BODY_BYTES, PlanningHTTPServer, PlanningServer
from repro.service.client import (
    PoolStats,
    ServiceClient,
    ServiceConnectionError,
    ServiceReply,
)
from repro.service.ring import HashRing
from repro.service.router import ShardedPlanningService, affinity_key
from repro.service.schemas import (
    SCHEMA_VERSION,
    ErrorResponse,
    HealthResponse,
    IterationPayload,
    PlanAssignmentPayload,
    PlanOptionPayload,
    PlanRequest,
    PlanResponse,
    RecommendRequest,
    RecommendResponse,
    SchemaError,
    SimulateRequest,
    SimulateResponse,
    VerifyFailurePayload,
    VerifyRequest,
    VerifyResponse,
    dump_bytes,
    parse_payload,
    to_payload,
)
from repro.service.shard import NoLiveShardError, ShardSupervisor
from repro.service.state import ServicePolicy, ServiceState

__all__ = [
    "SCHEMA_VERSION",
    "MAX_BODY_BYTES",
    "PlanningServer",
    "PlanningHTTPServer",
    "ShardedPlanningService",
    "ShardSupervisor",
    "NoLiveShardError",
    "HashRing",
    "affinity_key",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceReply",
    "PoolStats",
    "ServicePolicy",
    "ServiceState",
    "SchemaError",
    "parse_payload",
    "to_payload",
    "dump_bytes",
    "RecommendRequest",
    "RecommendResponse",
    "SimulateRequest",
    "SimulateResponse",
    "PlanRequest",
    "PlanResponse",
    "PlanAssignmentPayload",
    "VerifyRequest",
    "VerifyResponse",
    "VerifyFailurePayload",
    "PlanOptionPayload",
    "IterationPayload",
    "HealthResponse",
    "ErrorResponse",
]
