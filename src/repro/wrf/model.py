"""The full nested-model integration loop.

:class:`NestedModel` reproduces the control flow the paper schedules
(Sec 1): per outer iteration, the parent advances one coarse step, then
every sibling nest advances ``r`` fine steps against the updated parent,
then feeds back. Whether the siblings run one-after-another (the WRF
default the paper calls *sequential*) or side-by-side on disjoint
processor sets (the paper's contribution) changes only *timing*, never
*results*, because siblings are mutually independent — their footprints
do not overlap and each reads only parent data. ``sibling_order``
lets tests prove exactly that invariance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.nest import Nest
from repro.wrf.physics import PhysicsParams, apply_physics
from repro.wrf.solver import ShallowWaterSolver, SolverParams

__all__ = ["NestedModel"]


def _footprints_overlap(a: DomainSpec, b: DomainSpec) -> bool:
    """Whether two sibling nests overlap in parent-grid coordinates."""
    assert a.parent_start is not None and b.parent_start is not None
    ai, aj = a.parent_start
    aw, ah = a.parent_extent()
    bi, bj = b.parent_start
    bw, bh = b.parent_extent()
    return not (ai + aw <= bi or bi + bw <= ai or aj + ah <= bj or bj + bh <= aj)


class NestedModel:
    """Parent domain plus sibling nests, advanced in lock step.

    Parameters
    ----------
    parent_spec:
        The coarse domain.
    sibling_specs:
        Zero or more first-level nests. Their footprints must be disjoint
        (siblings track *different* regions of interest).
    initial_state:
        Parent initial condition; defaults to two seeded depressions.
    two_way:
        Whether nests feed back into the parent (WRF default: yes).
    """

    def __init__(
        self,
        parent_spec: DomainSpec,
        sibling_specs: Sequence[DomainSpec] = (),
        *,
        initial_state: Optional[ModelState] = None,
        solver_params: Optional[SolverParams] = None,
        physics: Optional[PhysicsParams] = None,
        two_way: bool = True,
        seed: int | None = None,
    ):
        if parent_spec.is_nest:
            raise ConfigurationError("parent_spec must be a top-level domain")
        for i, a in enumerate(sibling_specs):
            for b in list(sibling_specs)[i + 1 :]:
                if _footprints_overlap(a, b):
                    raise ConfigurationError(
                        f"sibling nests {a.name!r} and {b.name!r} overlap"
                    )
        self.parent_spec = parent_spec
        self.params = solver_params or SolverParams(dx_m=parent_spec.dx_km * 1000.0)
        self.solver = ShallowWaterSolver(self.params)
        self.physics = physics
        self.two_way = two_way
        self.state = (
            initial_state.copy()
            if initial_state is not None
            else ModelState.with_disturbances(
                parent_spec.nx, parent_spec.ny, seed=seed
            )
        )
        self.nests: Dict[str, Nest] = {}
        for spec in sibling_specs:
            nest = Nest(
                spec,
                parent_spec,
                solver_params=self.params,
                physics=physics,
            )
            nest.spawn(self.state)
            self.nests[spec.name] = nest
        self.iteration = 0

    # ------------------------------------------------------------------
    @property
    def sibling_names(self) -> List[str]:
        """Names of the sibling nests in declaration order."""
        return list(self.nests)

    def stable_dt(self) -> float:
        """A parent time step stable for parent and (conservatively) nests."""
        return self.solver.stable_dt(self.state)

    # ------------------------------------------------------------------
    def advance(
        self,
        dt: Optional[float] = None,
        *,
        sibling_order: Optional[Sequence[str]] = None,
    ) -> float:
        """One outer iteration: parent step, then every sibling's r steps.

        Returns the parent dt used. ``sibling_order`` permutes sibling
        execution (default: declaration order); results are identical for
        every permutation because siblings are independent.
        """
        step_dt = dt if dt is not None else self.stable_dt()
        self.state = self.solver.step(self.state, step_dt)
        if self.physics is not None:
            apply_physics(self.state, step_dt, self.physics)

        order = list(sibling_order) if sibling_order is not None else self.sibling_names
        if sorted(order) != sorted(self.sibling_names):
            raise ConfigurationError(
                f"sibling_order {order} must be a permutation of {self.sibling_names}"
            )
        for name in order:
            self.nests[name].advance(self.state, step_dt)
        # Feedback happens after all siblings finish — the synchronisation
        # point the paper's allocator balances toward.
        if self.two_way:
            for name in order:
                self.nests[name].feedback(self.state)
        self.iteration += 1
        return step_dt

    def run(self, num_iterations: int, dt: Optional[float] = None) -> None:
        """Advance *num_iterations* outer iterations."""
        if num_iterations < 0:
            raise ConfigurationError("num_iterations must be >= 0")
        for _ in range(num_iterations):
            self.advance(dt)

    # ------------------------------------------------------------------
    def total_mass(self) -> float:
        """Parent total mass (diagnostic)."""
        return self.state.total_mass()
