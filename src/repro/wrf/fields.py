"""Prognostic model state for the shallow-water proxy.

The state mirrors (in miniature) a weather model's prognostic variables:

* ``h`` — fluid depth (stands in for pressure/geopotential),
* ``u``, ``v`` — horizontal velocity components,
* ``q`` — a passive tracer (stands in for moisture).

All fields are C-contiguous ``float64`` arrays of shape ``(ny, nx)``
(row-major: y is the slow axis), matching the guide's advice to keep the
inner loop over the contiguous axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng

__all__ = ["ModelState"]


@dataclass
class ModelState:
    """The four prognostic fields of one domain."""

    h: np.ndarray
    u: np.ndarray
    v: np.ndarray
    q: np.ndarray

    def __post_init__(self) -> None:
        shape = self.h.shape
        for nm in ("u", "v", "q"):
            arr = getattr(self, nm)
            if arr.shape != shape:
                raise ConfigurationError(
                    f"field {nm} has shape {arr.shape}, expected {shape}"
                )
        for nm in ("h", "u", "v", "q"):
            arr = np.ascontiguousarray(getattr(self, nm), dtype=np.float64)
            setattr(self, nm, arr)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(ny, nx)``."""
        return self.h.shape  # type: ignore[return-value]

    @property
    def nx(self) -> int:
        """Points in x (fast axis)."""
        return self.h.shape[1]

    @property
    def ny(self) -> int:
        """Points in y (slow axis)."""
        return self.h.shape[0]

    @classmethod
    def at_rest(cls, nx: int, ny: int, *, depth: float = 10.0) -> "ModelState":
        """A motionless state of uniform depth."""
        shape = (ny, nx)
        return cls(
            h=np.full(shape, float(depth)),
            u=np.zeros(shape),
            v=np.zeros(shape),
            q=np.zeros(shape),
        )

    @classmethod
    def with_disturbances(
        cls,
        nx: int,
        ny: int,
        *,
        depth: float = 10.0,
        num_depressions: int = 2,
        amplitude: float = 0.8,
        seed: SeedLike = None,
    ) -> "ModelState":
        """A state seeded with Gaussian low-pressure systems ("depressions").

        This mimics the paper's motivating scenario (Fig 1): multiple
        depressions over the Pacific, each of which would trigger a nest.
        """
        rng = make_rng(seed)
        state = cls.at_rest(nx, ny, depth=depth)
        yy, xx = np.mgrid[0:ny, 0:nx]
        for _ in range(num_depressions):
            cx = rng.uniform(0.2 * nx, 0.8 * nx)
            cy = rng.uniform(0.2 * ny, 0.8 * ny)
            sigma = rng.uniform(0.04, 0.10) * min(nx, ny)
            blob = np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * sigma**2))
            state.h -= amplitude * blob
            state.q += blob  # moist core
        return state

    # ------------------------------------------------------------------
    def copy(self) -> "ModelState":
        """Deep copy of all fields."""
        return ModelState(self.h.copy(), self.u.copy(), self.v.copy(), self.q.copy())

    def total_mass(self) -> float:
        """Sum of ``h`` — conserved by the dynamics under periodic BCs."""
        return float(self.h.sum())

    def max_wave_speed(self, gravity: float) -> float:
        """CFL-relevant speed ``max(|u|, |v|) + sqrt(g * max(h))``."""
        hmax = float(self.h.max(initial=0.0))
        cg = float(np.sqrt(max(gravity * hmax, 0.0)))
        umax = float(np.abs(self.u).max(initial=0.0))
        vmax = float(np.abs(self.v).max(initial=0.0))
        return max(umax, vmax) + cg

    def allclose(self, other: "ModelState", *, atol: float = 1e-12) -> bool:
        """Field-wise comparison — used to prove schedule-order invariance."""
        return (
            np.allclose(self.h, other.h, atol=atol)
            and np.allclose(self.u, other.u, atol=atol)
            and np.allclose(self.v, other.v, atol=atol)
            and np.allclose(self.q, other.q, atol=atol)
        )
