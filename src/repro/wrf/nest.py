"""A running nest bound to its parent region.

A :class:`Nest` owns the fine-grid state of one nested domain plus the
transfer machinery: spawn-time initialisation by interpolation from the
parent, per-parent-step boundary refresh, ``r`` fine integration steps,
and feedback restriction into the parent fields (two-way nesting).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.interp import bilinear_sample, nest_coords_in_parent, restrict_mean
from repro.wrf.physics import PhysicsParams, apply_physics
from repro.wrf.solver import BoundaryValues, ShallowWaterSolver, SolverParams

__all__ = ["Nest"]

_FIELDS = ("h", "u", "v", "q")


class Nest:
    """One nested domain: fine state + parent coupling.

    Parameters
    ----------
    spec:
        The nest's :class:`~repro.wrf.grid.DomainSpec` (must be a nest).
    parent_spec:
        The parent's spec — used to validate the footprint and to scale
        the fine grid spacing.
    physics:
        Optional physics parameters; ``None`` disables physics.
    boundary_zone_width:
        Width of the specified+relaxation boundary zone (WRF's
        ``spec_bdy_width``); 1 = hard specified ring only.
    """

    def __init__(
        self,
        spec: DomainSpec,
        parent_spec: DomainSpec,
        *,
        solver_params: Optional[SolverParams] = None,
        physics: Optional[PhysicsParams] = None,
        boundary_zone_width: int = 1,
    ):
        if not spec.is_nest:
            raise ConfigurationError(f"{spec.name!r} is not a nest")
        if spec.parent != parent_spec.name:
            raise ConfigurationError(
                f"nest {spec.name!r} declares parent {spec.parent!r}, "
                f"got {parent_spec.name!r}"
            )
        if not spec.fits_in(parent_spec):
            raise ConfigurationError(
                f"nest {spec.name!r} footprint does not fit inside parent "
                f"{parent_spec.name!r} ({parent_spec.nx}x{parent_spec.ny})"
            )
        self.spec = spec
        self.parent_spec = parent_spec
        base = solver_params or SolverParams(dx_m=parent_spec.dx_km * 1000.0)
        # The nest runs at r-times finer spacing than the parent.
        self.solver = ShallowWaterSolver(
            SolverParams(
                gravity=base.gravity,
                dx_m=base.dx_m / spec.refinement,
                cfl=base.cfl,
            )
        )
        self.physics = physics
        if boundary_zone_width < 1:
            raise ConfigurationError("boundary_zone_width must be >= 1")
        self.boundary_zone_width = boundary_zone_width
        assert spec.parent_start is not None
        i0, j0 = spec.parent_start
        self._xs, self._ys = nest_coords_in_parent(
            spec.nx, spec.ny, i0, j0, spec.refinement
        )
        self.state: Optional[ModelState] = None

    # ------------------------------------------------------------------
    def _sample_parent(self, parent_state: ModelState) -> ModelState:
        """Interpolate all parent fields onto the nest grid."""
        return ModelState(
            *(
                bilinear_sample(getattr(parent_state, f), self._xs, self._ys)
                for f in _FIELDS
            )
        )

    def spawn(self, parent_state: ModelState) -> None:
        """Initialise the nest state by interpolation from the parent."""
        self.state = self._sample_parent(parent_state)

    # ------------------------------------------------------------------
    def advance(self, parent_state: ModelState, parent_dt: float) -> int:
        """Run ``r`` fine steps of length ``parent_dt / r``.

        The boundary ring is refreshed from the (already advanced) parent
        state before the fine steps, matching WRF's once-per-parent-step
        boundary interpolation. Returns the number of fine steps taken.
        """
        if self.state is None:
            raise ConfigurationError(
                f"nest {self.spec.name!r} must be spawned before advancing"
            )
        r = self.spec.refinement
        fine_dt = parent_dt / r
        bc_state = self._sample_parent(parent_state)
        boundary = BoundaryValues(
            bc_state.h, bc_state.u, bc_state.v, bc_state.q,
            zone_width=self.boundary_zone_width,
        )
        for _ in range(r):
            self.state = self.solver.step(self.state, fine_dt, boundary=boundary)
            if self.physics is not None:
                apply_physics(self.state, fine_dt, self.physics)
        return r

    # ------------------------------------------------------------------
    def feedback(self, parent_state: ModelState) -> None:
        """Two-way feedback: restrict nest fields into the parent region."""
        if self.state is None:
            raise ConfigurationError(
                f"nest {self.spec.name!r} must be spawned before feedback"
            )
        assert self.spec.parent_start is not None
        i0, j0 = self.spec.parent_start
        w, h = self.spec.parent_extent()
        r = self.spec.refinement
        for f in _FIELDS:
            coarse = restrict_mean(getattr(self.state, f), r)
            target = getattr(parent_state, f)
            target[j0 : j0 + h, i0 : i0 + w] = coarse[:h, :w]

    # ------------------------------------------------------------------
    def interior_rms_tendency(self, reference: np.ndarray) -> float:
        """RMS difference of nest depth vs a reference — a test diagnostic."""
        if self.state is None:
            raise ConfigurationError("nest not spawned")
        diff = self.state.h - reference
        return float(np.sqrt(np.mean(diff * diff)))
