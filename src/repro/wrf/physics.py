"""Toy physics parameterisations.

WRF spends a large fraction of each step in column physics (the paper's
runs used Kain-Fritsch convection, Thompson microphysics, RRTM radiation,
YSU boundary layer, Noah land surface). We model the same *structural*
role — extra per-point work applied once per step, no horizontal data
dependencies — with three simple processes:

* **radiative relaxation** of the depth field toward a reference value
  (Newtonian cooling),
* **surface drag** on the winds (Rayleigh friction),
* **convective adjustment**: where the tracer exceeds a saturation
  threshold, the excess "rains out" and locally deepens the fluid —
  a crude latent-heat feedback.

Because physics is column-local it adds compute cost but no communication,
exactly like the real parameterisations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_in_range, check_positive_float
from repro.wrf.fields import ModelState

__all__ = ["PhysicsParams", "apply_physics"]


@dataclass(frozen=True)
class PhysicsParams:
    """Coefficients of the toy physics suite (all per-second rates)."""

    #: Newtonian relaxation rate of h toward reference_depth.
    relaxation_rate: float = 1e-5
    reference_depth: float = 10.0
    #: Rayleigh friction rate on u, v.
    drag_rate: float = 5e-6
    #: Tracer saturation threshold for convective adjustment.
    saturation: float = 0.7
    #: Fraction of super-saturation removed per adjustment.
    rainout_fraction: float = 0.5
    #: Depth added per unit tracer rained out (latent-heat proxy).
    latent_factor: float = 0.1

    def __post_init__(self) -> None:
        check_positive_float(self.relaxation_rate, "relaxation_rate")
        check_positive_float(self.reference_depth, "reference_depth")
        check_positive_float(self.drag_rate, "drag_rate")
        check_positive_float(self.saturation, "saturation")
        check_in_range(self.rainout_fraction, "rainout_fraction", 0.0, 1.0)
        check_positive_float(self.latent_factor, "latent_factor", allow_zero=True)


def apply_physics(state: ModelState, dt: float, params: PhysicsParams) -> ModelState:
    """Apply the physics tendencies in place and return *state*.

    All operations are column-local (element-wise), so — like WRF physics —
    this step requires no halo exchange.
    """
    check_positive_float(dt, "dt")

    # Radiative relaxation: h -> reference_depth with rate k.
    k = params.relaxation_rate * dt
    state.h += k * (params.reference_depth - state.h)

    # Surface drag: exponential decay of momentum.
    decay = 1.0 - params.drag_rate * dt
    if decay < 0.0:
        decay = 0.0
    state.u *= decay
    state.v *= decay

    # Convective adjustment / rainout.
    excess = state.q - params.saturation
    np.clip(excess, 0.0, None, out=excess)
    rained = params.rainout_fraction * excess
    state.q -= rained
    state.h += params.latent_factor * rained

    return state
