"""Parent <-> nest grid transfer operators.

Two operators connect a nest at refinement ratio ``r`` to its parent
(paper Sec 1): at the start of each parent step, nest fields/boundaries are
*interpolated* from the overlapping parent region (bilinear, the WRF
default); after the nest's ``r`` fine steps, the nest solution is *fed
back* by restriction — each parent cell receives the mean of the ``r x r``
nest cells covering it, which is conservative for cell-mean quantities.

Grid registration: nest point ``(i, j)`` (0-based, x fast) sits at parent
coordinate ``(i0 + (i + 0.5)/r - 0.5, j0 + (j + 0.5)/r - 0.5)`` where
``(i0, j0)`` is the nest's lower-left parent cell — i.e. cell centres of an
``r``-times finer grid overlaid on the parent cells.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.util.validation import check_positive_int

__all__ = ["bilinear_sample", "nest_coords_in_parent", "restrict_mean"]


def nest_coords_in_parent(
    nest_nx: int, nest_ny: int, i0: int, j0: int, refinement: int
) -> tuple[np.ndarray, np.ndarray]:
    """Fractional parent coordinates of every nest point.

    Returns ``(xs, ys)`` where ``xs`` has shape ``(nest_nx,)`` and ``ys``
    shape ``(nest_ny,)``; the full coordinate field is their outer product
    (the mapping is separable).
    """
    check_positive_int(nest_nx, "nest_nx")
    check_positive_int(nest_ny, "nest_ny")
    check_positive_int(refinement, "refinement")
    r = float(refinement)
    xs = i0 + (np.arange(nest_nx) + 0.5) / r - 0.5
    ys = j0 + (np.arange(nest_ny) + 0.5) / r - 0.5
    return xs, ys


def bilinear_sample(field: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Sample *field* (shape ``(ny, nx)``) at the grid ``ys x xs``.

    Coordinates are clamped to the field extent (nests touching the parent
    edge extrapolate flatly, as WRF's interpolation does at domain borders).
    The result has shape ``(len(ys), len(xs))``.
    """
    if field.ndim != 2:
        raise GeometryError(f"field must be 2-D, got shape {field.shape}")
    ny, nx = field.shape
    x = np.clip(np.asarray(xs, dtype=np.float64), 0.0, nx - 1.0)
    y = np.clip(np.asarray(ys, dtype=np.float64), 0.0, ny - 1.0)

    x0 = np.floor(x).astype(np.intp)
    y0 = np.floor(y).astype(np.intp)
    x1 = np.minimum(x0 + 1, nx - 1)
    y1 = np.minimum(y0 + 1, ny - 1)
    fx = (x - x0)[np.newaxis, :]
    fy = (y - y0)[:, np.newaxis]

    f00 = field[np.ix_(y0, x0)]
    f01 = field[np.ix_(y0, x1)]
    f10 = field[np.ix_(y1, x0)]
    f11 = field[np.ix_(y1, x1)]

    top = f00 * (1.0 - fx) + f01 * fx
    bot = f10 * (1.0 - fx) + f11 * fx
    return top * (1.0 - fy) + bot * fy


def restrict_mean(fine: np.ndarray, refinement: int) -> np.ndarray:
    """Restrict a fine-grid field to the parent grid by block averaging.

    Each parent cell receives the mean of the ``r x r`` fine cells covering
    it. Partial blocks at the high edges (when the fine extent is not a
    multiple of ``r``) average over the cells that exist.
    """
    check_positive_int(refinement, "refinement")
    if fine.ndim != 2:
        raise GeometryError(f"fine field must be 2-D, got shape {fine.shape}")
    r = refinement
    ny, nx = fine.shape
    out_ny = -(-ny // r)
    out_nx = -(-nx // r)
    out = np.empty((out_ny, out_nx), dtype=np.float64)

    full_ny = (ny // r) * r
    full_nx = (nx // r) * r
    if full_ny and full_nx:
        core = fine[:full_ny, :full_nx].reshape(ny // r, r, nx // r, r)
        out[: ny // r, : nx // r] = core.mean(axis=(1, 3))
    # Ragged right column / bottom row / corner.
    if full_nx < nx:
        for jb in range(out_ny):
            block = fine[jb * r : min((jb + 1) * r, ny), full_nx:nx]
            out[jb, out_nx - 1] = block.mean()
    if full_ny < ny:
        for ib in range(out_nx):
            block = fine[full_ny:ny, ib * r : min((ib + 1) * r, nx)]
            out[out_ny - 1, ib] = block.mean()
    if full_nx < nx and full_ny < ny:
        out[out_ny - 1, out_nx - 1] = fine[full_ny:, full_nx:].mean()
    return out
