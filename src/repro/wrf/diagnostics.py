"""Physical diagnostics of a model state.

Operational models print a handful of scalars each step to monitor the
integration: total mass, energy, maximum winds, CFL number. These are
the quantities the steering layer and the tests use to judge whether a
run is healthy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive_float
from repro.wrf.fields import ModelState
from repro.wrf.solver import SolverParams

__all__ = ["StateDiagnostics", "diagnose"]


@dataclass(frozen=True)
class StateDiagnostics:
    """Scalar health indicators of one state."""

    total_mass: float
    #: Kinetic energy  0.5 * h * (u^2 + v^2), summed.
    kinetic_energy: float
    #: Available potential energy 0.5 * g * (h - mean)^2, summed.
    potential_energy: float
    max_wind: float
    min_depth: float
    max_depth: float
    #: Courant number at the given (dt, dx): < 1 means stable stepping.
    cfl: float

    @property
    def total_energy(self) -> float:
        """Kinetic + available potential energy."""
        return self.kinetic_energy + self.potential_energy

    @property
    def healthy(self) -> bool:
        """Basic sanity: positive depth, finite fields, stable CFL."""
        return (
            self.min_depth > 0.0
            and np.isfinite(self.total_energy)
            and self.cfl < 1.0
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mass={self.total_mass:.6g} E={self.total_energy:.4g} "
            f"maxwind={self.max_wind:.3g} m/s depth=[{self.min_depth:.3g}, "
            f"{self.max_depth:.3g}] CFL={self.cfl:.3f}"
        )


def diagnose(
    state: ModelState, dt: float, params: SolverParams | None = None
) -> StateDiagnostics:
    """Compute the diagnostics of *state* for a step of length *dt*."""
    check_positive_float(dt, "dt")
    params = params or SolverParams()
    h, u, v = state.h, state.u, state.v
    speed2 = u * u + v * v
    mean_h = float(h.mean())
    ke = float(0.5 * np.sum(h * speed2))
    pe = float(0.5 * params.gravity * np.sum((h - mean_h) ** 2))
    return StateDiagnostics(
        total_mass=float(h.sum()),
        kinetic_energy=ke,
        potential_energy=pe,
        max_wind=float(np.sqrt(speed2.max(initial=0.0))),
        min_depth=float(h.min(initial=np.inf)),
        max_depth=float(h.max(initial=-np.inf)),
        cfl=dt * state.max_wave_speed(params.gravity) / params.dx_m,
    )
