"""Tiled (distributed-memory style) execution of the shallow-water solver.

This is the in-process analogue of WRF's MPI execution: the domain is
block-decomposed over a virtual process grid
(:func:`repro.runtime.decomposition.decompose`), every step first
performs a **halo exchange** — each tile receives one ring of points
from its four neighbours (periodic across the domain edge) — and then
each tile advances independently using exactly the same Lax-Friedrichs
kernel as the global solver.

Because the kernel's stencil radius is 1 and the exchanged halo ring has
width 1, the tiled result is *bit-identical* to the global solve — the
property the test suite asserts, and the reason WRF's answers don't
depend on the processor count. The per-step exchange ledger (message
count and bytes) is exactly what the performance model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.decomposition import decompose
from repro.runtime.process_grid import ProcessGrid
from repro.util.validation import check_positive_float
from repro.wrf.fields import ModelState
from repro.wrf.solver import ShallowWaterSolver, SolverParams

__all__ = ["ExchangeLedger", "TiledSolver"]

_FIELDS = ("h", "u", "v", "q")


@dataclass
class ExchangeLedger:
    """Running totals of the simulated halo communication."""

    messages: int = 0
    bytes: int = 0
    steps: int = 0

    def charge(self, messages: int, nbytes: int) -> None:
        """Record one exchange round's traffic."""
        self.messages += messages
        self.bytes += nbytes


class TiledSolver:
    """Distributed-style integration over a virtual process grid.

    Parameters
    ----------
    grid:
        The virtual process grid (``px * py`` simulated ranks).
    params:
        Solver parameters shared with the global reference solver.
    """

    def __init__(self, grid: ProcessGrid, params: SolverParams | None = None):
        self.grid = grid
        self.params = params or SolverParams()
        self._kernel = ShallowWaterSolver(self.params)
        self.ledger = ExchangeLedger()

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------
    def scatter(self, state: ModelState) -> Dict[Tuple[int, int], ModelState]:
        """Split *state* into per-rank tiles (owned points only)."""
        dec = decompose(state.nx, state.ny, self.grid.px, self.grid.py)
        tiles: Dict[Tuple[int, int], ModelState] = {}
        for py in range(self.grid.py):
            for px in range(self.grid.px):
                i0, j0, w, h = dec.tile_of(px, py)
                tiles[(px, py)] = ModelState(
                    *(getattr(state, f)[j0:j0 + h, i0:i0 + w].copy()
                      for f in _FIELDS)
                )
        return tiles

    def gather(
        self, tiles: Dict[Tuple[int, int], ModelState], nx: int, ny: int
    ) -> ModelState:
        """Reassemble the global state from tiles."""
        dec = decompose(nx, ny, self.grid.px, self.grid.py)
        out = ModelState.at_rest(nx, ny)
        for (px, py), tile in tiles.items():
            i0, j0, w, h = dec.tile_of(px, py)
            for f in _FIELDS:
                getattr(out, f)[j0:j0 + h, i0:i0 + w] = getattr(tile, f)
        return out

    # ------------------------------------------------------------------
    # Halo exchange
    # ------------------------------------------------------------------
    def _padded(
        self, tiles: Dict[Tuple[int, int], ModelState], fname: str
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Each tile's field extended by a 1-point halo ring.

        Neighbour indices wrap around the process grid, implementing the
        global periodic boundary; each received strip is charged to the
        exchange ledger as one message.
        """
        px_n, py_n = self.grid.px, self.grid.py
        padded: Dict[Tuple[int, int], np.ndarray] = {}
        for (px, py), tile in tiles.items():
            src = getattr(tile, fname)
            h, w = src.shape
            ext = np.empty((h + 2, w + 2), dtype=src.dtype)
            ext[1:-1, 1:-1] = src

            west = getattr(tiles[((px - 1) % px_n, py)], fname)
            east = getattr(tiles[((px + 1) % px_n, py)], fname)
            north = getattr(tiles[(px, (py - 1) % py_n)], fname)
            south = getattr(tiles[(px, (py + 1) % py_n)], fname)

            ext[1:-1, 0] = west[:, -1]
            ext[1:-1, -1] = east[:, 0]
            ext[0, 1:-1] = north[-1, :]
            ext[-1, 1:-1] = south[0, :]
            # Corner points (needed only so np.roll in the kernel has
            # defined values; the 4-point stencil never reads them into
            # owned results).
            ext[0, 0] = ext[0, 1]
            ext[0, -1] = ext[0, -2]
            ext[-1, 0] = ext[-1, 1]
            ext[-1, -1] = ext[-1, -2]

            self.ledger.charge(
                messages=4,
                nbytes=(2 * h + 2 * w) * src.itemsize,
            )
            padded[(px, py)] = ext
        return padded

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_tiles(
        self, tiles: Dict[Tuple[int, int], ModelState], dt: float
    ) -> Dict[Tuple[int, int], ModelState]:
        """One synchronized step: exchange halos, advance every tile."""
        check_positive_float(dt, "dt")
        padded = {
            f: self._padded(tiles, f) for f in _FIELDS
        }
        out: Dict[Tuple[int, int], ModelState] = {}
        for pos in tiles:
            ext_state = ModelState(
                padded["h"][pos], padded["u"][pos],
                padded["v"][pos], padded["q"][pos],
            )
            stepped = self._kernel.step(ext_state, dt)
            out[pos] = ModelState(
                *(getattr(stepped, f)[1:-1, 1:-1].copy() for f in _FIELDS)
            )
        self.ledger.steps += 1
        return out

    def run(self, state: ModelState, num_steps: int, dt: float) -> ModelState:
        """Scatter, advance *num_steps* synchronized steps, gather.

        The result is bit-identical to
        ``ShallowWaterSolver(params).run(state, num_steps, dt=dt)``.
        """
        if num_steps < 0:
            raise ConfigurationError("num_steps must be >= 0")
        if self.grid.px > state.nx or self.grid.py > state.ny:
            raise ConfigurationError(
                f"grid {self.grid.shape} too fine for a "
                f"{state.nx}x{state.ny} domain"
            )
        tiles = self.scatter(state)
        for _ in range(num_steps):
            tiles = self.step_tiles(tiles, dt)
        return self.gather(tiles, state.nx, state.ny)
