"""Domain specifications for nested weather simulations.

A :class:`DomainSpec` describes one simulation domain: the parent covers
the whole region of interest at coarse resolution; each nested child
("sibling" when several share a parent) covers a sub-rectangle at ``r``
times finer resolution and is integrated ``r`` times per parent step.

The performance-prediction features of Sec 3.1 — total points ``nx*ny``
and aspect ratio ``nx/ny`` — are exposed here via :func:`domain_features`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["DomainSpec", "domain_features"]


@dataclass(frozen=True)
class DomainSpec:
    """One simulation domain (parent or nest).

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"d01"`` for the parent, ``"d02"``...
        for nests — WRF's naming convention.
    nx, ny:
        Grid points in the west-east and south-north directions.
    dx_km:
        Horizontal resolution in kilometres.
    parent:
        Name of the parent domain, or ``None`` for the top-level domain.
    parent_start:
        ``(i, j)`` of this nest's lower-left corner in *parent* grid
        coordinates. Required for nests.
    refinement:
        Spatial/temporal refinement ratio ``r`` relative to the parent
        (WRF uses 3 for 24 km -> 8 km and 4.5 km -> 1.5 km uses 3 too).
    level:
        Nesting depth: 0 for the parent, 1 for its children, 2 for
        second-level nests (three SE-Asia configurations use level 2).
    """

    name: str
    nx: int
    ny: int
    dx_km: float
    parent: Optional[str] = None
    parent_start: Optional[Tuple[int, int]] = None
    refinement: int = 3
    level: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.nx, "nx")
        check_positive_int(self.ny, "ny")
        check_positive_float(self.dx_km, "dx_km")
        check_positive_int(self.refinement, "refinement")
        if self.level < 0:
            raise ConfigurationError(f"level must be >= 0, got {self.level}")
        if (self.parent is None) != (self.level == 0):
            raise ConfigurationError(
                f"domain {self.name!r}: exactly the level-0 domain has no parent "
                f"(parent={self.parent!r}, level={self.level})"
            )
        if self.parent is not None and self.parent_start is None:
            raise ConfigurationError(
                f"nest {self.name!r} needs parent_start coordinates"
            )
        if self.parent is None and self.parent_start is not None:
            raise ConfigurationError(
                f"top-level domain {self.name!r} must not set parent_start"
            )

    # ------------------------------------------------------------------
    @property
    def points(self) -> int:
        """Total horizontal grid points ``nx * ny`` (prediction feature 1)."""
        return self.nx * self.ny

    @property
    def aspect_ratio(self) -> float:
        """``nx / ny`` (prediction feature 2)."""
        return self.nx / self.ny

    @property
    def is_nest(self) -> bool:
        """Whether this domain has a parent."""
        return self.parent is not None

    @property
    def steps_per_parent_step(self) -> int:
        """Fine steps this domain runs per *top-level* parent step.

        A first-level nest runs ``r`` steps; a second-level nest runs
        ``r`` steps per first-level step, i.e. ``r**2`` per top-level
        step (assuming uniform refinement down the chain).
        """
        return self.refinement ** self.level

    def parent_extent(self) -> Tuple[int, int]:
        """Size of the parent-grid region this nest overlays.

        A nest of ``nx x ny`` points at refinement ``r`` covers
        ``ceil(nx/r) x ceil(ny/r)`` parent cells.
        """
        if not self.is_nest:
            raise ConfigurationError(f"{self.name!r} is not a nest")
        r = self.refinement
        return (-(-self.nx // r), -(-self.ny // r))

    def fits_in(self, parent: "DomainSpec") -> bool:
        """Whether this nest's footprint lies inside *parent*'s grid."""
        if not self.is_nest or self.parent_start is None:
            return False
        i0, j0 = self.parent_start
        w, h = self.parent_extent()
        return 0 <= i0 and 0 <= j0 and i0 + w <= parent.nx and j0 + h <= parent.ny

    def scaled(self, factor: float, *, name: Optional[str] = None) -> "DomainSpec":
        """A copy with both extents scaled by ``sqrt(factor)`` in area.

        Used by the prediction experiments that "scale up the number of
        points in each sibling, while retaining the aspect ratio"
        (paper Sec 3.1).
        """
        check_positive_float(factor, "factor")
        s = factor ** 0.5
        return DomainSpec(
            name=name or self.name,
            nx=max(1, round(self.nx * s)),
            ny=max(1, round(self.ny * s)),
            dx_km=self.dx_km,
            parent=self.parent,
            parent_start=self.parent_start,
            refinement=self.refinement,
            level=self.level,
        )


def domain_features(spec: DomainSpec) -> Tuple[float, float]:
    """The paper's 2-D prediction feature vector ``(aspect_ratio, points)``.

    The x-coordinate is the aspect ratio and the y-coordinate the total
    point count, exactly as in Fig 3(a).
    """
    return (spec.aspect_ratio, float(spec.points))
