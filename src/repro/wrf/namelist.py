"""WRF-namelist-style configuration.

Real WRF runs are configured through a Fortran namelist (``namelist.input``)
whose ``&domains`` group lists per-domain columns::

    &domains
     max_dom           = 3,
     e_we              = 287, 415, 233,
     e_sn              = 308, 445, 203,
     dx                = 24000,
     parent_id         = 0, 1, 1,
     i_parent_start    = 1, 30, 120,
     j_parent_start    = 1, 40, 80,
     parent_grid_ratio = 1, 3, 3,
    /

This module parses that format (a practical subset: groups, scalar and
comma-separated values, ``!`` comments, logical/int/float/string literals)
and converts a ``&domains`` group into :class:`~repro.wrf.grid.DomainSpec`
objects. Indices follow WRF conventions: domains and parent ids are
1-based, ``parent_id = 0`` (or 1 pointing at itself) marks the top level,
and ``i/j_parent_start`` are 1-based grid coordinates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import ConfigurationError
from repro.wrf.grid import DomainSpec

__all__ = [
    "Namelist",
    "parse_namelist",
    "domains_from_namelist",
    "namelist_from_domains",
    "render_namelist",
]

_GROUP_RE = re.compile(r"^\s*&(\w+)\s*$")
_END_RE = re.compile(r"^\s*/\s*$")
_ASSIGN_RE = re.compile(r"^\s*(\w+)\s*=\s*(.*?)\s*,?\s*$")


def _parse_scalar(token: str) -> Any:
    """Parse one namelist literal: logical, int, float or string."""
    t = token.strip()
    if not t:
        raise ConfigurationError("empty value in namelist")
    low = t.lower()
    if low in (".true.", "t", "true"):
        return True
    if low in (".false.", "f", "false"):
        return False
    if (t[0] == t[-1]) and t[0] in "'\"" and len(t) >= 2:
        return t[1:-1]
    try:
        return int(t)
    except ValueError:
        pass
    try:
        return float(t)
    except ValueError:
        pass
    return t  # bare word


@dataclass
class Namelist:
    """Parsed namelist: group name -> {key -> value or list of values}."""

    groups: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def group(self, name: str) -> Dict[str, Any]:
        """Fetch a group, raising a helpful error when missing."""
        try:
            return self.groups[name]
        except KeyError:
            raise ConfigurationError(
                f"namelist has no &{name} group; groups: {sorted(self.groups)}"
            ) from None

    def get(self, group: str, key: str, default: Any = None) -> Any:
        """Fetch ``groups[group][key]`` with a default."""
        return self.groups.get(group, {}).get(key, default)


def parse_namelist(text: str) -> Namelist:
    """Parse namelist *text* into a :class:`Namelist`."""
    groups: Dict[str, Dict[str, Any]] = {}
    current: Dict[str, Any] | None = None
    current_name = ""
    for raw_line in text.splitlines():
        line = raw_line.split("!", 1)[0].rstrip()
        if not line.strip():
            continue
        m = _GROUP_RE.match(line)
        if m:
            if current is not None:
                raise ConfigurationError(
                    f"nested group &{m.group(1)} inside &{current_name}"
                )
            current_name = m.group(1).lower()
            current = groups.setdefault(current_name, {})
            continue
        if _END_RE.match(line):
            if current is None:
                raise ConfigurationError("group terminator '/' outside any group")
            current = None
            continue
        m = _ASSIGN_RE.match(line)
        if not m:
            raise ConfigurationError(f"cannot parse namelist line: {raw_line!r}")
        if current is None:
            raise ConfigurationError(f"assignment outside any group: {raw_line!r}")
        key = m.group(1).lower()
        values = [_parse_scalar(v) for v in m.group(2).split(",") if v.strip()]
        current[key] = values[0] if len(values) == 1 else values
    if current is not None:
        raise ConfigurationError(f"unterminated group &{current_name}")
    return Namelist(groups)


def _column(group: Dict[str, Any], key: str, n: int, default: Any = None) -> List[Any]:
    """A per-domain column of length *n*, broadcasting scalars."""
    if key not in group:
        if default is None:
            raise ConfigurationError(f"&domains is missing {key}")
        value: Any = default
    else:
        value = group[key]
    if not isinstance(value, list):
        value = [value] * n
    if len(value) < n:
        value = value + [value[-1]] * (n - len(value))
    return value[:n]


def domains_from_namelist(nl: Namelist) -> List[DomainSpec]:
    """Build :class:`DomainSpec` objects from the ``&domains`` group.

    The first domain is the parent; ``dx`` gives its resolution in metres
    (WRF convention) and nest resolutions follow from the cumulative
    refinement ratios.
    """
    g = nl.group("domains")
    n = g.get("max_dom")
    if not isinstance(n, int) or n < 1:
        raise ConfigurationError(f"&domains max_dom must be a positive int, got {n!r}")
    e_we = _column(g, "e_we", n)
    e_sn = _column(g, "e_sn", n)
    parent_id = _column(g, "parent_id", n, default=0)
    i_start = _column(g, "i_parent_start", n, default=1)
    j_start = _column(g, "j_parent_start", n, default=1)
    ratio = _column(g, "parent_grid_ratio", n, default=1)
    dx_m = g.get("dx", 24000)
    if isinstance(dx_m, list):
        dx_m = dx_m[0]

    specs: List[DomainSpec] = []
    dx_km: List[float] = []
    levels: List[int] = []
    for d in range(n):
        name = f"d{d + 1:02d}"
        pid = parent_id[d]
        is_top = d == 0 or pid in (0, d + 1)
        if d == 0 and not is_top:
            raise ConfigurationError("first domain must be the top-level parent")
        if is_top:
            dx_km.append(float(dx_m) / 1000.0)
            levels.append(0)
            specs.append(
                DomainSpec(name=name, nx=int(e_we[d]), ny=int(e_sn[d]), dx_km=dx_km[0])
            )
            continue
        if not (1 <= pid <= d):
            raise ConfigurationError(
                f"domain {name}: parent_id {pid} must reference an earlier domain"
            )
        p = pid - 1
        r = int(ratio[d])
        dx_km.append(dx_km[p] / r)
        levels.append(levels[p] + 1)
        specs.append(
            DomainSpec(
                name=name,
                nx=int(e_we[d]),
                ny=int(e_sn[d]),
                dx_km=dx_km[d],
                parent=specs[p].name,
                parent_start=(int(i_start[d]) - 1, int(j_start[d]) - 1),
                refinement=r,
                level=levels[d],
            )
        )
    return specs


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return ".true." if value else ".false."
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def render_namelist(nl: Namelist) -> str:
    """Serialise a :class:`Namelist` back to namelist text.

    ``parse_namelist(render_namelist(nl))`` reproduces *nl* exactly —
    property-tested round trip.
    """
    lines: List[str] = []
    for group, entries in nl.groups.items():
        lines.append(f"&{group}")
        width = max((len(k) for k in entries), default=0)
        for key, value in entries.items():
            if isinstance(value, list):
                rendered = ", ".join(_render_value(v) for v in value)
            else:
                rendered = _render_value(value)
            lines.append(f" {key.ljust(width)} = {rendered},")
        lines.append("/")
    return "\n".join(lines) + "\n"


def namelist_from_domains(specs: List[DomainSpec], *, history_interval: int = 60) -> Namelist:
    """Build a WRF-style ``&domains`` namelist from domain specs.

    The inverse of :func:`domains_from_namelist` (verified by round-trip
    tests): the first spec must be the top-level parent, nests must
    reference earlier specs by name.
    """
    if not specs or specs[0].is_nest:
        raise ConfigurationError("first spec must be the top-level parent")
    index = {spec.name: i + 1 for i, spec in enumerate(specs)}
    parent_ids: List[int] = []
    ratios: List[int] = []
    i_starts: List[int] = []
    j_starts: List[int] = []
    for spec in specs:
        if spec.is_nest:
            if spec.parent not in index:
                raise ConfigurationError(
                    f"nest {spec.name!r} references unknown parent {spec.parent!r}"
                )
            parent_ids.append(index[spec.parent])
            ratios.append(spec.refinement)
            assert spec.parent_start is not None
            i_starts.append(spec.parent_start[0] + 1)
            j_starts.append(spec.parent_start[1] + 1)
        else:
            parent_ids.append(0)
            ratios.append(1)
            i_starts.append(1)
            j_starts.append(1)
    domains = {
        "max_dom": len(specs),
        "e_we": [s.nx for s in specs],
        "e_sn": [s.ny for s in specs],
        "dx": int(round(specs[0].dx_km * 1000)),
        "parent_id": parent_ids,
        "i_parent_start": i_starts,
        "j_parent_start": j_starts,
        "parent_grid_ratio": ratios,
    }
    # Single-domain lists collapse to scalars on reparse; keep the
    # canonical list form only when meaningful.
    if len(specs) == 1:
        domains = {k: (v[0] if isinstance(v, list) else v)
                   for k, v in domains.items()}
    return Namelist({
        "domains": domains,
        "time_control": {"history_interval": history_interval},
    })
