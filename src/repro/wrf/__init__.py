"""A WRF-like nested weather-simulation proxy.

The paper's scheduling problem is defined by the *structure* of a nested
WRF run: a coarse parent domain advances one step, then each nested child
("sibling") advances ``r`` finer steps over its region of interest, pulling
boundary data interpolated from the parent and feeding its solution back.
This package implements that structure around a genuine (if small) PDE
integrator so the schedulers exercise a real numerical workload:

* :mod:`~repro.wrf.grid` — :class:`DomainSpec`: sizes, resolution, nesting
  geometry, the (aspect ratio, points) features the predictor uses.
* :mod:`~repro.wrf.fields` — the prognostic state (height, winds, tracer).
* :mod:`~repro.wrf.solver` — a 2-D shallow-water solver (the "dynamics").
* :mod:`~repro.wrf.physics` — toy parameterisations (relaxation, drag,
  convective adjustment) standing in for WRF's physics suite.
* :mod:`~repro.wrf.interp` — bilinear parent->nest interpolation and
  conservative nest->parent feedback restriction.
* :mod:`~repro.wrf.nest` — a running nest bound to its parent region.
* :mod:`~repro.wrf.model` — :class:`NestedModel`: the full parent+siblings
  integration loop with pluggable sibling execution order.
* :mod:`~repro.wrf.namelist` — WRF-namelist-style configuration parsing.
"""

from repro.wrf.grid import DomainSpec, domain_features
from repro.wrf.fields import ModelState
from repro.wrf.solver import ShallowWaterSolver, SolverParams
from repro.wrf.physics import PhysicsParams, apply_physics
from repro.wrf.interp import bilinear_sample, restrict_mean
from repro.wrf.nest import Nest
from repro.wrf.model import NestedModel
from repro.wrf.namelist import (
    Namelist,
    parse_namelist,
    domains_from_namelist,
    namelist_from_domains,
    render_namelist,
)
from repro.wrf.parallel import TiledSolver
from repro.wrf.diagnostics import StateDiagnostics, diagnose

__all__ = [
    "DomainSpec",
    "domain_features",
    "ModelState",
    "ShallowWaterSolver",
    "SolverParams",
    "PhysicsParams",
    "apply_physics",
    "bilinear_sample",
    "restrict_mean",
    "Nest",
    "NestedModel",
    "Namelist",
    "parse_namelist",
    "domains_from_namelist",
    "namelist_from_domains",
    "render_namelist",
    "TiledSolver",
    "StateDiagnostics",
    "diagnose",
]
