"""A 2-D shallow-water solver — the "dynamics" of the WRF proxy.

The scheme is a Lax-Friedrichs finite-difference integrator for the
conservative shallow-water equations plus passive tracer advection:

.. math::

    h_t = -(hu)_x - (hv)_y \\qquad
    u_t = -u u_x - v u_y - g h_x \\qquad
    v_t = -u v_x - v v_y - g h_y

It is deliberately simple (first order, diffusive) but it is a *real*
PDE integrator: stable under the usual CFL condition, exactly
mass-conserving under periodic boundaries, and with the same 4-neighbour
stencil data dependencies that WRF's halo exchanges serve. Those data
dependencies are what the paper's mapping heuristics optimise.

Boundary handling:

* ``"periodic"`` — the parent domain wraps (convenient for long test runs).
* ``"open"`` — boundary ring values are supplied externally each step; this
  is how nests consume parent-interpolated boundary conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.util.validation import check_positive_float
from repro.wrf.fields import ModelState

__all__ = ["SolverParams", "ShallowWaterSolver", "BoundaryValues"]


@dataclass(frozen=True)
class SolverParams:
    """Physical and numerical parameters of the dynamics."""

    gravity: float = 9.81
    #: Grid spacing in metres (set from DomainSpec.dx_km by callers).
    dx_m: float = 24_000.0
    #: CFL safety factor applied when choosing stable time steps.
    cfl: float = 0.4

    def __post_init__(self) -> None:
        check_positive_float(self.gravity, "gravity")
        check_positive_float(self.dx_m, "dx_m")
        check_positive_float(self.cfl, "cfl")
        if self.cfl >= 1.0:
            raise SimulationError(f"cfl must be < 1 for stability, got {self.cfl}")


@dataclass
class BoundaryValues:
    """Boundary values for an open-boundary (nested) domain.

    Each array covers the full field shape ``(ny, nx)``; only the
    outermost ``zone_width`` frame is read. Produced by parent->nest
    interpolation.

    ``zone_width = 1`` is a hard specified boundary (the outermost ring
    is overwritten). Larger widths enable WRF's *relaxation zone*: the
    specified row plus a blend region where the solution is nudged
    toward the parent values with weights decaying inward — the standard
    treatment that suppresses reflections at nest boundaries.
    """

    h: np.ndarray
    u: np.ndarray
    v: np.ndarray
    q: np.ndarray
    zone_width: int = 1

    def __post_init__(self) -> None:
        if self.zone_width < 1:
            raise SimulationError(
                f"zone_width must be >= 1, got {self.zone_width}"
            )

    def blend_weights(self) -> np.ndarray:
        """Per-offset weights: 1.0 at the specified row, decaying inward.

        Offset 0 (the outermost ring) is fully specified; offsets
        ``1 .. zone_width-1`` relax with exponentially decreasing
        strength, matching WRF's specified+relaxation split.
        """
        w = np.empty(self.zone_width)
        w[0] = 1.0
        for k in range(1, self.zone_width):
            w[k] = np.exp(-1.0 * k)
        return w


def _roll_pm(a: np.ndarray, axis: int) -> tuple[np.ndarray, np.ndarray]:
    """``(a shifted +1, a shifted -1)`` along *axis* with wraparound."""
    return np.roll(a, -1, axis=axis), np.roll(a, 1, axis=axis)


class ShallowWaterSolver:
    """Integrates a :class:`~repro.wrf.fields.ModelState` in time."""

    def __init__(self, params: SolverParams | None = None):
        self.params = params or SolverParams()

    # ------------------------------------------------------------------
    def stable_dt(self, state: ModelState) -> float:
        """The largest CFL-stable time step for *state*."""
        speed = state.max_wave_speed(self.params.gravity)
        if speed <= 0.0:
            # A motionless fluid: any step works; pick something finite.
            speed = np.sqrt(self.params.gravity)
        return self.params.cfl * self.params.dx_m / speed

    # ------------------------------------------------------------------
    def step(
        self,
        state: ModelState,
        dt: float,
        *,
        boundary: Optional[BoundaryValues] = None,
    ) -> ModelState:
        """Advance *state* by *dt* and return the new state.

        With ``boundary=None`` the domain is periodic. With boundary
        values given, the outermost ring of every field is overwritten
        after the update — the stencil radius is 1, so wraparound
        contamination never reaches the interior.
        """
        check_positive_float(dt, "dt")
        g = self.params.gravity
        dx = self.params.dx_m
        h, u, v, q = state.h, state.u, state.v, state.q
        if np.any(h <= 0.0):
            raise SimulationError("shallow-water depth became non-positive")

        c = dt / (2.0 * dx)

        # Neighbour values (axis 1 = x fast axis, axis 0 = y).
        h_e, h_w = _roll_pm(h, 1)
        h_n, h_s = _roll_pm(h, 0)
        u_e, u_w = _roll_pm(u, 1)
        u_n, u_s = _roll_pm(u, 0)
        v_e, v_w = _roll_pm(v, 1)
        v_n, v_s = _roll_pm(v, 0)
        q_e, q_w = _roll_pm(q, 1)
        q_n, q_s = _roll_pm(q, 0)

        avg4 = lambda a_e, a_w, a_n, a_s: 0.25 * (a_e + a_w + a_n + a_s)

        # Continuity: h_t = -(hu)_x - (hv)_y, flux form keeps mass exact.
        flux_x = h_e * u_e - h_w * u_w
        flux_y = h_n * v_n - h_s * v_s
        h_new = avg4(h_e, h_w, h_n, h_s) - c * (flux_x + flux_y)

        # Momentum (advective form with the pressure-gradient force).
        u_new = avg4(u_e, u_w, u_n, u_s) - c * (
            u * (u_e - u_w) + v * (u_n - u_s) + g * (h_e - h_w)
        )
        v_new = avg4(v_e, v_w, v_n, v_s) - c * (
            u * (v_e - v_w) + v * (v_n - v_s) + g * (h_n - h_s)
        )

        # Passive tracer advection.
        q_new = avg4(q_e, q_w, q_n, q_s) - c * (u * (q_e - q_w) + v * (q_n - q_s))

        out = ModelState(h_new, u_new, v_new, q_new)
        if boundary is not None:
            self._impose_boundary(out, boundary)
        if not np.isfinite(out.h).all():
            raise SimulationError(
                "solver diverged (non-finite depth); reduce dt below "
                f"stable_dt={self.stable_dt(state):.3g}s"
            )
        return out

    # ------------------------------------------------------------------
    @staticmethod
    def _impose_boundary(state: ModelState, bc: BoundaryValues) -> None:
        """Impose the specified+relaxation boundary zone from *bc*.

        Offset 0 is replaced outright; deeper offsets blend the computed
        solution toward the boundary values with decaying weights
        (no-op beyond ``bc.zone_width``).
        """
        weights = bc.blend_weights()
        for name in ("h", "u", "v", "q"):
            dst = getattr(state, name)
            src = getattr(bc, name)
            if src.shape != dst.shape:
                raise SimulationError(
                    f"boundary field {name} has shape {src.shape}, "
                    f"state has {dst.shape}"
                )
            ny, nx = dst.shape
            for k, w in enumerate(weights):
                if 2 * k >= min(nx, ny):
                    break
                lo, hi = k, -k - 1
                # Top and bottom rows of this offset frame.
                dst[lo, k:nx - k] += w * (src[lo, k:nx - k] - dst[lo, k:nx - k])
                dst[hi, k:nx - k] += w * (src[hi, k:nx - k] - dst[hi, k:nx - k])
                # Left and right columns (excluding the corners done above).
                if ny - k - 2 > k:
                    dst[k + 1:hi, lo] += w * (src[k + 1:hi, lo] - dst[k + 1:hi, lo])
                    dst[k + 1:hi, hi] += w * (src[k + 1:hi, hi] - dst[k + 1:hi, hi])

    # ------------------------------------------------------------------
    def run(
        self,
        state: ModelState,
        num_steps: int,
        dt: Optional[float] = None,
    ) -> ModelState:
        """Advance *num_steps* periodic steps (auto-choosing dt if None)."""
        if num_steps < 0:
            raise SimulationError(f"num_steps must be >= 0, got {num_steps}")
        cur = state
        for _ in range(num_steps):
            step_dt = dt if dt is not None else self.stable_dt(cur)
            cur = self.step(cur, step_dt)
        return cur
