"""Memory budgeting for the streaming network engine.

The vectorized engine's peak working set is the per-hop route expansion
(:mod:`repro.netsim.engine`): a handful of flat ``int64`` arrays whose
length is the *total hop count* of an exchange. At 4k ranks that is a
few megabytes; at 131k+ ranks it grows into the hundreds of megabytes —
so the engine bounds it against one configurable budget:

    REPRO_NETSIM_MEM_MB=512        # total netsim working-set budget

From that single knob the engine derives

* the **expansion hop limit** — the largest per-hop expansion built in
  one shot; exchanges whose total hops exceed it are processed in
  bounded chunks (bit-identical to the one-shot path, see
  ``docs/cost_model.md``),
* the **route-cache byte budget** (override:
  ``REPRO_NETSIM_ROUTE_CACHE_MB``) — cached routed exchanges are evicted
  LRU-first once their resident bytes exceed it,
* the **placement-cache byte budget** (override:
  ``REPRO_PLACEMENT_CACHE_MB``) used by
  :mod:`repro.exec.placementcache`.

Sparse link-load accumulation has its own tri-state switch because it
changes the *representation*, never the values:

    REPRO_NETSIM_SPARSE=auto       # sparse once the dense per-link
                                   # vector would exceed its budget share
    REPRO_NETSIM_SPARSE=always     # force sparse (tests, huge tori)
    REPRO_NETSIM_SPARSE=never      # force the dense vector

All parsing errors raise :class:`~repro.errors.ConfigurationError`.
This module sits below the engine (imports only stdlib + errors) so the
exec-layer caches can share the budget without import cycles.
"""

from __future__ import annotations

import math
import os

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_MEM_MB",
    "EXPANSION_BYTES_PER_HOP",
    "mem_budget_bytes",
    "expansion_hop_limit",
    "sparse_mode",
    "route_cache_budget_bytes",
    "placement_cache_budget_bytes",
]

#: Default overall working-set budget when ``REPRO_NETSIM_MEM_MB`` is
#: unset. Large enough that every paper-sized (<=8k rank) exchange takes
#: the one-shot dense path, so default results and performance are
#: unchanged; 131k-rank exchanges stream.
DEFAULT_MEM_MB = 512.0

#: Transient bytes per flat hop of the one-shot route expansion: the
#: index-algebra kernel materialises ~12 ``int64``-wide intermediates
#: (message ids, in-route positions, per-dimension selectors, node
#: coordinates, link ids). Used to convert the byte budget into a hop
#: count.
EXPANSION_BYTES_PER_HOP = 96

#: Fraction of the budget the route expansion may occupy (the rest is
#: headroom for message columns, accumulators, and cached results).
_EXPANSION_SHARE = 0.5

#: Never chunk below this many hops: tiny chunks would turn the array
#: kernel back into a Python loop.
_MIN_CHUNK_HOPS = 1024

#: Fraction of the budget one dense per-link load vector may occupy
#: before ``REPRO_NETSIM_SPARSE=auto`` switches to the sparse form.
_DENSE_LOADS_SHARE = 1 / 16

#: Default cache shares of the budget (each overridable by its own env).
_ROUTE_CACHE_SHARE = 0.25
_PLACEMENT_CACHE_SHARE = 0.125


def _mb_env(name: str, default_mb: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default_mb
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name}={raw!r}: expected a megabyte count"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name}={raw!r}: budget must be positive")
    return value


def mem_budget_bytes() -> int:
    """The netsim working-set budget (``REPRO_NETSIM_MEM_MB``), in bytes."""
    return int(_mb_env("REPRO_NETSIM_MEM_MB", DEFAULT_MEM_MB) * 2**20)


def expansion_hop_limit(budget_bytes: int | None = None) -> int:
    """Largest one-shot per-hop expansion the budget allows, in hops.

    Exchanges whose total hop count exceeds this are expanded in chunks
    of at most this many hops (one pair minimum per chunk).
    """
    if budget_bytes is None:
        budget_bytes = mem_budget_bytes()
    limit = int(budget_bytes * _EXPANSION_SHARE) // EXPANSION_BYTES_PER_HOP
    return max(_MIN_CHUNK_HOPS, limit)


def sparse_mode(num_links: int, budget_bytes: int | None = None) -> bool:
    """Whether link loads should accumulate sparsely for *num_links*.

    ``REPRO_NETSIM_SPARSE`` forces the answer (``always``/``never``);
    ``auto`` switches to sparse once the dense ``int64`` per-link vector
    would exceed its share of the budget.
    """
    raw = os.environ.get("REPRO_NETSIM_SPARSE", "auto").strip().lower() or "auto"
    if raw == "always":
        return True
    if raw == "never":
        return False
    if raw != "auto":
        raise ConfigurationError(
            f"REPRO_NETSIM_SPARSE={raw!r}: expected auto, always, or never"
        )
    if budget_bytes is None:
        budget_bytes = mem_budget_bytes()
    return num_links * 8 > budget_bytes * _DENSE_LOADS_SHARE


def route_cache_budget_bytes() -> int:
    """Byte budget of the netsim route cache.

    ``REPRO_NETSIM_ROUTE_CACHE_MB`` when set, else a quarter of the
    overall budget.
    """
    raw = os.environ.get("REPRO_NETSIM_ROUTE_CACHE_MB")
    if raw is not None and raw.strip():
        return int(_mb_env("REPRO_NETSIM_ROUTE_CACHE_MB", 0.0) * 2**20)
    return int(mem_budget_bytes() * _ROUTE_CACHE_SHARE)


def placement_cache_budget_bytes() -> int:
    """Byte budget of the placement cache.

    ``REPRO_PLACEMENT_CACHE_MB`` when set, else an eighth of the overall
    budget.
    """
    raw = os.environ.get("REPRO_PLACEMENT_CACHE_MB")
    if raw is not None and raw.strip():
        return int(_mb_env("REPRO_PLACEMENT_CACHE_MB", 0.0) * 2**20)
    return int(mem_budget_bytes() * _PLACEMENT_CACHE_SHARE)
