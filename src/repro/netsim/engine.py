"""Vectorized torus network engine.

The scalar simulator (:mod:`repro.netsim.traffic` /
:mod:`repro.netsim.contention`) routes every halo message hop-by-hop in
Python and accumulates loads in a per-link dict — O(messages x hops)
interpreter work repeated identically every round, timestep, and sweep
configuration. This module replaces that hot path with NumPy array
kernels that are bit-identical to the scalar oracle:

* **Dense link ids.** Each directed link is an integer
  ``(node_index * 3 + dim) * 2 + direction_bit`` (``direction_bit`` 0 for
  the positive ring direction, 1 for the negative), so per-link state is a
  flat integer vector of length ``num_nodes * 6`` instead of a dict of
  :class:`~repro.topology.torus.Link` keys.
* **Closed-form routing.** Dimension-ordered routes are computed for the
  whole message set at once: per-dimension direction/hop-count via modular
  ring arithmetic (:func:`repro.topology.routing.ring_steps_array`), then
  expanded to a flat ``(message, link_id)`` array with ``repeat``/
  ``cumsum`` index algebra — no per-hop Python loop.
* **Memory-bounded streaming.** The per-hop expansion is the engine's
  peak working set; it grows with *total hops*, which at 131k+ ranks
  reaches hundreds of megabytes. Exchanges whose expansion would exceed
  the ``REPRO_NETSIM_MEM_MB`` budget (:mod:`repro.netsim.budget`) are
  expanded in bounded pair chunks instead, accumulating link loads
  incrementally — bit-identical to the one-shot path for **any** chunk
  size, because all byte totals are exact integers below ``2**53`` (a
  guard raises :class:`OverflowError` rather than ever letting the
  float64 accumulators round).
* **Sparse link loads.** At high rank counts the dense ``num_nodes * 6``
  load vector itself becomes a liability when only a fraction of links
  carry traffic. :class:`LinkLoadVector` therefore has two
  representations behind one interface: the dense vector, and a sparse
  (sorted unique link ids + totals) form selected by
  ``REPRO_NETSIM_SPARSE`` — identical values either way.
* **Dtype-width audit.** Retained route columns (link ids, hop counts,
  pair indices) are stored as ``int32`` whenever the torus and message
  count allow (guarded, falling back to ``int64`` — never wrapping);
  byte counts stay ``int64`` throughout.
* **Array pricing.** Round link loads come from ``np.bincount``; each
  message's worst-link bytes from a sorted-segment
  ``np.maximum.reduceat``; ``round_time`` / ``CommEstimate`` from array
  reductions, with the exact floating-point operation order of the scalar
  model so results match bit for bit.
* **Route cache.** The identical exchange repeats every round, timestep,
  and sweep config, so routed exchanges are memoised under
  ``(torus dims, placement digest, message-set digest)``; eviction is
  **byte-budgeted** (LRU above :func:`repro.netsim.budget.
  route_cache_budget_bytes`), so cache residency scales with the
  configured memory, not the rank count. Counters are exposed for the
  profiling report via :func:`route_cache_stats`.

The scalar implementation remains available as a parity oracle: set
``REPRO_NETSIM=scalar`` to route every exchange through it (the
hypothesis suites in ``tests/netsim/test_engine_parity.py`` and
``tests/netsim/test_streaming_parity.py`` prove all paths agree
exactly).
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.netsim.budget import (
    expansion_hop_limit,
    route_cache_budget_bytes,
    sparse_mode,
)
from repro.netsim.contention import CommEstimate, round_time
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import gauge as _obs_gauge
from repro.obs.metrics import histogram as _obs_histogram
from repro.netsim.traffic import LinkLoads, RoutedMessage, route_messages
from repro.runtime.halo import HaloBatch, HaloMessage
from repro.topology.routing import ring_steps_array
from repro.topology.torus import Link, Torus3D, TorusCoord

__all__ = [
    "LINKS_PER_NODE",
    "EXACT_BYTES_LIMIT",
    "link_id_of",
    "link_of_id",
    "PlacementVector",
    "as_placement",
    "RoutedExchange",
    "LinkLoadVector",
    "VectorBackend",
    "ScalarBackend",
    "VECTOR",
    "SCALAR",
    "active_backend",
    "route_exchange_streamed",
    "RouteCacheStats",
    "route_cache_stats",
    "reset_route_cache",
]

#: Directed links encoded per node: 3 dimensions x 2 directions.
LINKS_PER_NODE = 6

#: Largest per-link byte total the engine accumulates exactly: loads run
#: through float64 ``bincount`` accumulators, which represent every
#: integer below ``2**53`` exactly. Totals at or above this raise
#: :class:`OverflowError` instead of silently rounding (the int64
#: representation itself widens far beyond ``2**31`` without wrapping).
EXACT_BYTES_LIMIT = 2**53

# Metrics published into the observability registry. Bound once at import
# (registry resets zero in place, so these references never go stale) and
# incremented unconditionally: one attribute add per exchange is far below
# the digest hashing that keys the cache. The hit/miss/eviction counters
# are zeroed together with the cache by :func:`reset_route_cache`, so they
# match :func:`route_cache_stats` exactly at all times.
_HITS = _obs_counter("netsim.route_cache.hits")
_MISSES = _obs_counter("netsim.route_cache.misses")
_EVICTIONS = _obs_counter("netsim.route_cache.evictions")
_CACHE_BYTES = _obs_gauge("netsim.route_cache.resident_bytes")
_MAX_LINK_BYTES = _obs_gauge("netsim.link_load.max_bytes")
#: Streaming fan-out: exchanges that exceeded the one-shot expansion
#: budget, and the bounded chunks they were expanded in.
_STREAMED = _obs_counter("netsim.route_expand.streamed")
_CHUNKS = _obs_counter("netsim.route_expand.chunks")
#: Per routed (cache-miss) exchange: worst-link bytes, power-of-4 buckets.
_LINK_EXTREMES = _obs_histogram(
    "netsim.exchange.max_link_bytes",
    [4 ** k for k in range(2, 16)],
)


# ----------------------------------------------------------------------
# Link id encoding
# ----------------------------------------------------------------------
def link_id_of(torus: Torus3D, link: Link) -> int:
    """Dense integer id of a directed link."""
    node = torus.rank_of(link.src)
    direction_bit = 0 if link.direction == 1 else 1
    return (node * 3 + link.dim) * 2 + direction_bit


def link_of_id(torus: Torus3D, link_id: int) -> Link:
    """Inverse of :func:`link_id_of`."""
    direction_bit = link_id & 1
    dim = (link_id >> 1) % 3
    node = link_id // LINKS_PER_NODE
    return Link(
        src=torus.coord_of(int(node)),
        dim=int(dim),
        direction=1 if direction_bit == 0 else -1,
    )


# ----------------------------------------------------------------------
# Placement vector
# ----------------------------------------------------------------------
class PlacementVector:
    """A rank placement prepared for array routing.

    Holds the per-rank node coordinates both as the original sequence (for
    the scalar oracle) and as an ``(N, 3)`` ``int64`` array, plus a digest
    of the coordinate bytes that keys the route cache. Build one per
    placement (``simulate_iteration`` does) so the conversion and digest
    are shared by the parent and every sibling exchange.
    """

    __slots__ = ("torus", "_nodes", "coords", "node_ranks", "digest")

    def __init__(
        self, torus: Torus3D, nodes: Union[np.ndarray, Sequence[TorusCoord]]
    ):
        self.torus = torus
        if isinstance(nodes, np.ndarray):
            # Array pipeline: take the (N, 3) coordinate array directly;
            # the tuple form is materialised lazily (scalar oracle only).
            self._nodes = None
            self.coords = np.ascontiguousarray(nodes, dtype=np.int64).reshape(
                len(nodes), 3
            )
        else:
            self._nodes = nodes
            self.coords = np.asarray(nodes, dtype=np.int64).reshape(len(nodes), 3)
        x_dim, y_dim, _ = torus.dims
        self.node_ranks = self.coords[:, 0] + x_dim * (
            self.coords[:, 1] + y_dim * self.coords[:, 2]
        )
        self.digest = hashlib.blake2b(
            self.coords.tobytes(), digest_size=16
        ).digest()

    @property
    def nodes(self) -> Sequence[TorusCoord]:
        """Per-rank node coordinates as tuples (for the scalar oracle)."""
        if self._nodes is None:
            self._nodes = [tuple(row) for row in self.coords.tolist()]
        return self._nodes

    def __len__(self) -> int:
        return len(self.coords)


PlacementLike = Union[PlacementVector, np.ndarray, Sequence[TorusCoord]]


def as_placement(torus: Torus3D, nodes: PlacementLike) -> PlacementVector:
    """Wrap *nodes* for the engine (pass-through if already wrapped)."""
    if isinstance(nodes, PlacementVector):
        return nodes
    return PlacementVector(torus, nodes)


def _plain_nodes(nodes: PlacementLike) -> Sequence[TorusCoord]:
    if isinstance(nodes, PlacementVector):
        return nodes.nodes
    if isinstance(nodes, np.ndarray):
        return [tuple(row) for row in nodes.tolist()]
    return nodes


# ----------------------------------------------------------------------
# Link loads: one interface, dense or sparse representation
# ----------------------------------------------------------------------
def _merge_sparse(
    a_ids: np.ndarray, a_vals: np.ndarray, b_ids: np.ndarray, b_vals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Add two (sorted unique ids, int64 totals) load sets exactly."""
    ids = np.concatenate([a_ids, b_ids])
    vals = np.concatenate([a_vals, b_vals])
    uniq, inverse = np.unique(ids, return_inverse=True)
    out = np.zeros(len(uniq), dtype=np.int64)
    # int64 scatter-add: exact at any magnitude the guard admits.
    np.add.at(out, inverse, vals)
    return uniq, out


class LinkLoadVector:
    """Accumulated bytes per directed link.

    Mirrors the :class:`~repro.netsim.traffic.LinkLoads` API so pricing
    and tests can treat both uniformly. Two representations live behind
    the one interface:

    * **dense** — a flat ``int64`` vector indexed by the dense link id
      (the original form, default);
    * **sparse** — sorted unique link ids plus their ``int64`` totals,
      selected by ``REPRO_NETSIM_SPARSE`` (see
      :func:`repro.netsim.budget.sparse_mode`) when most of the
      ``num_nodes * 6`` links carry no traffic.

    Every query (``max_load``/``total_bytes``/``merge``/pricing lookups)
    returns identical values on either representation.
    """

    __slots__ = ("torus", "_loads", "_ids")

    def __init__(
        self,
        torus: Torus3D,
        loads: np.ndarray | None = None,
        *,
        link_ids: np.ndarray | None = None,
    ):
        self.torus = torus
        if loads is None:
            loads = np.zeros(torus.num_nodes * LINKS_PER_NODE, dtype=np.int64)
        self._loads = loads
        self._ids = link_ids

    @classmethod
    def empty(cls, torus: Torus3D, *, sparse: bool = False) -> "LinkLoadVector":
        """A zeroed accumulator in the requested representation."""
        if sparse:
            return cls(
                torus,
                np.zeros(0, dtype=np.int64),
                link_ids=np.zeros(0, dtype=np.int64),
            )
        return cls(torus)

    @classmethod
    def from_link_totals(
        cls, torus: Torus3D, link_ids: np.ndarray, totals: np.ndarray
    ) -> "LinkLoadVector":
        """Sparse loads from sorted unique *link_ids* and their totals."""
        return cls(
            torus,
            np.ascontiguousarray(totals, dtype=np.int64),
            link_ids=np.ascontiguousarray(link_ids, dtype=np.int64),
        )

    @property
    def is_sparse(self) -> bool:
        """Whether this accumulator uses the sparse representation."""
        return self._ids is not None

    @property
    def array(self) -> np.ndarray:
        """The dense per-link byte vector (index = dense link id).

        Sparse accumulators materialise it on demand — O(num_links)
        memory, meant for parity tests and small tori, not the 131k-rank
        hot path (pricing goes through :meth:`lookup` instead).
        """
        if self._ids is None:
            return self._loads
        dense = np.zeros(self.torus.num_nodes * LINKS_PER_NODE, dtype=np.int64)
        dense[self._ids] = self._loads
        return dense

    def lookup(self, link_ids: np.ndarray) -> np.ndarray:
        """Per-link byte totals of *link_ids* (0 for untouched links)."""
        if self._ids is None:
            return self._loads[link_ids]
        if not len(self._ids):
            return np.zeros(len(link_ids), dtype=np.int64)
        pos = np.searchsorted(self._ids, link_ids)
        pos = np.minimum(pos, len(self._ids) - 1)
        found = self._ids[pos] == link_ids
        return np.where(found, self._loads[pos], 0)

    def load(self, link: Link) -> int:
        """Bytes accumulated on *link*."""
        lid = link_id_of(self.torus, link)
        if self._ids is None:
            return int(self._loads[lid])
        return int(self.lookup(np.asarray([lid], dtype=np.int64))[0])

    def max_load(self) -> int:
        """The heaviest link's byte count (0 when no traffic)."""
        return int(self._loads.max(initial=0))

    def total_bytes(self) -> int:
        """Total link-byte volume (equals hop-bytes of the message set)."""
        return int(self._loads.sum())

    def num_loaded_links(self) -> int:
        """Number of links that carried any traffic."""
        return int(np.count_nonzero(self._loads))

    def items(self):
        """Iterate ``(link, bytes)`` pairs over loaded links."""
        if self._ids is None:
            for lid in np.flatnonzero(self._loads):
                yield link_of_id(self.torus, int(lid)), int(self._loads[lid])
            return
        for lid, val in zip(self._ids.tolist(), self._loads.tolist()):
            if val:
                yield link_of_id(self.torus, lid), val

    def as_dict(self) -> dict[Link, int]:
        """Loaded links as a dict (parity-test convenience)."""
        return dict(self.items())

    def merge(self, other: "LinkLoadVector") -> None:
        """Accumulate another load set into this one (concurrent traffic)."""
        if self._ids is None and other._ids is None:
            self._loads = self._loads + other._loads
        elif self._ids is not None and other._ids is not None:
            self._ids, self._loads = _merge_sparse(
                self._ids, self._loads, other._ids, other._loads
            )
        else:
            # Mixed representations (the sparse switch changed between
            # exchanges): fall back to the dense sum.
            dense = self.array + other.array
            self._ids = None
            self._loads = dense

    @property
    def resident_nbytes(self) -> int:
        """Bytes this accumulator keeps resident (cache accounting)."""
        total = self._loads.nbytes
        if self._ids is not None:
            total += self._ids.nbytes
        return total

    def __len__(self) -> int:
        return self.num_loaded_links()


# ----------------------------------------------------------------------
# The array routing kernel
# ----------------------------------------------------------------------
def _message_arrays(
    messages: Union[HaloBatch, Sequence[HaloMessage]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if isinstance(messages, HaloBatch):
        return messages.src, messages.dst, messages.nbytes
    n = len(messages)
    src = np.fromiter((m.src for m in messages), dtype=np.int64, count=n)
    dst = np.fromiter((m.dst for m in messages), dtype=np.int64, count=n)
    nbytes = np.fromiter((m.nbytes for m in messages), dtype=np.int64, count=n)
    return src, dst, nbytes


def _message_digest(messages, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray) -> bytes:
    """Digest of the message columns (identical for list/batch/shared forms)."""
    if isinstance(messages, HaloBatch):
        # Batches memoise their digest; shared-memory batches arrive with
        # it pre-seeded by the publisher, so workers never rehash the
        # columns (see repro.exec.shm).
        return messages.digest()
    digest = hashlib.blake2b(digest_size=16)
    digest.update(src.tobytes())
    digest.update(dst.tobytes())
    digest.update(nbytes.tobytes())
    return digest.digest()


def _coords_of_ranks(dims: tuple[int, int, int], ranks: np.ndarray) -> np.ndarray:
    """Decode linear node ranks to ``(N, 3)`` coordinates (x fastest)."""
    x_dim, y_dim, _ = dims
    out = np.empty((len(ranks), 3), dtype=np.int64)
    out[:, 0] = ranks % x_dim
    out[:, 1] = (ranks // x_dim) % y_dim
    out[:, 2] = ranks // (x_dim * y_dim)
    return out


def _expand_links(
    dims: tuple[int, int, int],
    src_c: np.ndarray,
    dst_c: np.ndarray,
    step: np.ndarray,
    count: np.ndarray,
    hops: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fully expand the routes of one pair slice.

    Returns ``(starts, link_ids)`` where ``starts`` is the exclusive
    prefix sum of *hops* (length ``len(src_c) + 1``) and ``link_ids`` the
    concatenated dense link ids (dimension order, hop order preserved).
    The geometry (``step``/``count`` from
    :func:`~repro.topology.routing.ring_steps_array`) is passed in so
    streaming callers compute it once per exchange, not once per chunk.
    """
    m = len(src_c)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(hops, out=starts[1:])
    total = int(starts[-1])
    if total == 0:
        return starts, np.zeros(0, dtype=np.int64)

    # Flat hop index algebra: msg[f] is the pair of flat hop f and t[f]
    # its position within that pair's route.
    msg = np.repeat(np.arange(m, dtype=np.int64), hops)
    t = np.arange(total, dtype=np.int64) - np.repeat(starts[:-1], hops)

    # Which dimension is being traversed at hop t (routes go x, y, z).
    c0 = count[msg, 0]
    c01 = c0 + count[msg, 1]
    dim_sel = (t >= c0).astype(np.int64) + (t >= c01)
    # Hop index within the selected dimension's run.
    j = t - np.where(dim_sel >= 1, c0, 0) - np.where(dim_sel == 2, count[msg, 1], 0)

    # Source node of each hop: dimensions before the selected one are
    # already at the destination, later ones still at the source.
    x_dim, y_dim, z_dim = (int(d) for d in dims)
    x = np.where(
        dim_sel == 0, (src_c[msg, 0] + j * step[msg, 0]) % x_dim, dst_c[msg, 0]
    )
    y = np.where(
        dim_sel == 0,
        src_c[msg, 1],
        np.where(
            dim_sel == 1, (src_c[msg, 1] + j * step[msg, 1]) % y_dim, dst_c[msg, 1]
        ),
    )
    z = np.where(dim_sel == 2, (src_c[msg, 2] + j * step[msg, 2]) % z_dim, src_c[msg, 2])

    node = x + x_dim * (y + y_dim * z)
    direction_bit = (step[msg, dim_sel] < 0).astype(np.int64)
    link_ids = (node * 3 + dim_sel) * 2 + direction_bit
    return starts, link_ids


def _route_arrays(
    dims: tuple[int, int, int], src_c: np.ndarray, dst_c: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dimension-ordered routes of a pair set, fully expanded.

    Returns ``(hops, starts, link_ids)``; used for one-shot expansion and
    for decoding single routes of streamed exchanges.
    """
    dims_a = np.asarray(dims, dtype=np.int64)
    step, count = ring_steps_array(src_c, dst_c, dims_a)  # (M, 3) each
    hops = count.sum(axis=1)
    starts, link_ids = _expand_links(dims, src_c, dst_c, step, count, hops)
    return hops, starts, link_ids


def _chunk_bounds(pair_hops: np.ndarray, hop_limit: int) -> np.ndarray:
    """Pair-index boundaries of chunks of at most *hop_limit* total hops.

    Greedy and deterministic: every chunk holds at least one pair (a
    single pair's route is never split), so the plan is a pure function
    of ``(pair_hops, hop_limit)`` and link-load accumulation over the
    chunks is bit-identical to the one-shot expansion for any limit.
    """
    cum = np.cumsum(pair_hops, dtype=np.int64)
    n = len(pair_hops)
    bounds = [0]
    start = 0
    base = 0
    while start < n:
        end = int(np.searchsorted(cum, base + hop_limit, side="right"))
        if end <= start:
            end = start + 1
        bounds.append(end)
        base = int(cum[end - 1])
        start = end
    return np.asarray(bounds, dtype=np.int64)


def _freeze(*arrays: Optional[np.ndarray]) -> None:
    for a in arrays:
        if a is not None:
            a.flags.writeable = False


# ----------------------------------------------------------------------
# Routed exchange (array form, one-shot or streamed)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoutedExchange:
    """One exchange round routed in array form.

    Routes are stored per *unique* ``(src node, dst node)`` pair — with
    several ranks per node, many messages share a pair, so routing work
    and storage shrink accordingly. Message *i* uses the route of pair
    ``pair_inverse[i]``.

    Two storage forms share this type:

    * **one-shot** — ``pair_link_ids`` holds every route's dense link
      ids; pair *p*'s route is the slice
      ``pair_link_ids[pair_starts[p]:pair_starts[p + 1]]``.
    * **streamed** — the expansion exceeded the memory budget, so
      ``pair_link_ids``/``pair_starts`` are ``None`` and routes are
      re-expanded in bounded chunks (``chunk_bounds`` pair boundaries)
      from the stored pair coordinates whenever pricing needs them
      (:meth:`iter_link_chunks`).

    All arrays are read-only: routed exchanges live in the route cache
    and are shared between callers.
    """

    torus: Torus3D
    src_ranks: np.ndarray
    dst_ranks: np.ndarray
    nbytes: np.ndarray
    #: Per-message route length (== torus distance of its node pair).
    hops: np.ndarray
    #: Per-message index into the unique-pair arrays.
    pair_inverse: np.ndarray
    pair_hops: np.ndarray
    #: Unique-pair endpoint coordinates, ``(U, 3)`` each.
    pair_src: np.ndarray
    pair_dst: np.ndarray
    #: One-shot form only (``None`` when streamed).
    pair_starts: Optional[np.ndarray]
    pair_link_ids: Optional[np.ndarray]
    #: Streamed form only: pair-index chunk boundaries (``None`` one-shot).
    chunk_bounds: Optional[np.ndarray]

    def __len__(self) -> int:
        return len(self.nbytes)

    @property
    def num_messages(self) -> int:
        return len(self.nbytes)

    @property
    def streamed(self) -> bool:
        """Whether routes are re-expanded in chunks instead of stored."""
        return self.pair_link_ids is None

    @property
    def num_chunks(self) -> int:
        """Expansion chunks pricing iterates over (1 when one-shot)."""
        if self.chunk_bounds is None:
            return 1
        return len(self.chunk_bounds) - 1

    @property
    def resident_nbytes(self) -> int:
        """Bytes this exchange keeps resident (cache accounting)."""
        total = 0
        for arr in (
            self.src_ranks,
            self.dst_ranks,
            self.nbytes,
            self.hops,
            self.pair_inverse,
            self.pair_hops,
            self.pair_src,
            self.pair_dst,
            self.pair_starts,
            self.pair_link_ids,
            self.chunk_bounds,
        ):
            if arr is not None:
                total += arr.nbytes
        return total

    def iter_link_chunks(
        self,
    ) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(pair_lo, pair_hi, starts, link_ids)`` per chunk.

        One-shot exchanges yield their stored arrays once; streamed
        exchanges re-expand each bounded chunk from the pair coordinates
        (same index algebra, so the ids are identical to what a one-shot
        expansion would have produced for that slice).
        """
        if self.pair_link_ids is not None:
            yield 0, len(self.pair_hops), self.pair_starts, self.pair_link_ids
            return
        dims_a = np.asarray(self.torus.dims, dtype=np.int64)
        step, count = ring_steps_array(self.pair_src, self.pair_dst, dims_a)
        bounds = self.chunk_bounds
        for i in range(len(bounds) - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            starts, link_ids = _expand_links(
                self.torus.dims,
                self.pair_src[lo:hi],
                self.pair_dst[lo:hi],
                step[lo:hi],
                count[lo:hi],
                self.pair_hops[lo:hi],
            )
            yield lo, hi, starts, link_ids

    def message_links(self, i: int) -> List[Link]:
        """Decode message *i*'s route back to :class:`Link` objects."""
        p = int(self.pair_inverse[i])
        if self.pair_link_ids is not None:
            lo, hi = int(self.pair_starts[p]), int(self.pair_starts[p + 1])
            ids = self.pair_link_ids[lo:hi]
        else:
            _, _, ids = _route_arrays(
                self.torus.dims,
                self.pair_src[p : p + 1],
                self.pair_dst[p : p + 1],
            )
        return [link_of_id(self.torus, int(lid)) for lid in ids]


# ----------------------------------------------------------------------
# Route cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouteCacheStats:
    """Route-cache counters for the profiling report."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0
    resident_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _RouteCache:
    """Byte-budgeted LRU of routed exchanges.

    Keyed by ``(torus dims, placement digest, message-set digest)`` — the
    exact identity of an exchange round. Values are immutable
    (read-only arrays), so cache hits are shared, not copied. Eviction
    is LRU-first once resident bytes exceed
    :func:`repro.netsim.budget.route_cache_budget_bytes` (re-read each
    insert, so tests and long-lived services can retune it); an entry
    larger than the whole budget is never retained at all — the budget
    wins over the warm path.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._data: "OrderedDict[tuple, tuple[RoutedExchange, LinkLoadVector, int]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0
        # Request threads in the planning service share this cache;
        # every operation (reset included) holds the lock so concurrent
        # lookups can never tear the LRU order or the counters.
        self._lock = threading.Lock()

    def get(self, key: tuple):
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                _MISSES.inc()
                return None
            self.hits += 1
            _HITS.inc()
            self._data.move_to_end(key)
            return entry[0], entry[1]

    def put(self, key: tuple, routed: RoutedExchange, loads: LinkLoadVector) -> None:
        nbytes = routed.resident_nbytes + loads.resident_nbytes
        budget = route_cache_budget_bytes()
        with self._lock:
            if nbytes > budget:
                self.evictions += 1
                _EVICTIONS.inc()
                return
            old = self._data.pop(key, None)
            if old is not None:
                self.bytes -= old[2]
            self._data[key] = (routed, loads, nbytes)
            self.bytes += nbytes
            while self._data and (
                len(self._data) > self.maxsize or self.bytes > budget
            ):
                _, (_, _, evicted_nbytes) = self._data.popitem(last=False)
                self.bytes -= evicted_nbytes
                self.evictions += 1
                _EVICTIONS.inc()
            _CACHE_BYTES.set(self.bytes)

    def stats(self) -> RouteCacheStats:
        with self._lock:
            return RouteCacheStats(
                hits=self.hits,
                misses=self.misses,
                entries=len(self._data),
                evictions=self.evictions,
                resident_bytes=self.bytes,
            )

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes = 0
            _HITS.reset()
            _MISSES.reset()
            _EVICTIONS.reset()
            _CACHE_BYTES.reset()


_ROUTE_CACHE = _RouteCache()


def route_cache_stats() -> RouteCacheStats:
    """Current route-cache counters."""
    return _ROUTE_CACHE.stats()


def reset_route_cache() -> None:
    """Drop all cached routes and zero the counters (tests, benchmarks)."""
    _ROUTE_CACHE.clear()


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class VectorBackend:
    """The NumPy array engine (default)."""

    name = "vector"

    def route_exchange(
        self,
        torus: Torus3D,
        placement_nodes: PlacementLike,
        messages: Iterable[HaloMessage],
    ) -> tuple[RoutedExchange, LinkLoadVector]:
        """Route one exchange round; loads are read-only (cache-shared)."""
        placement = as_placement(torus, placement_nodes)
        if not isinstance(messages, (list, tuple, HaloBatch)):
            messages = list(messages)
        src, dst, nbytes = _message_arrays(messages)

        key = (torus.dims, placement.digest, _message_digest(messages, src, dst, nbytes))
        cached = _ROUTE_CACHE.get(key)
        if cached is not None:
            return cached

        num_links = torus.num_nodes * LINKS_PER_NODE
        routed, loads = self._route_uncached(
            torus,
            placement,
            src,
            dst,
            nbytes,
            hop_limit=expansion_hop_limit(),
            sparse=sparse_mode(num_links),
        )
        _ROUTE_CACHE.put(key, routed, loads)
        return routed, loads

    def _route_uncached(
        self,
        torus: Torus3D,
        placement: PlacementVector,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        *,
        hop_limit: int,
        sparse: bool,
    ) -> tuple[RoutedExchange, LinkLoadVector]:
        """The routing pipeline with explicit streaming parameters."""
        # Dedup to unique (src node, dst node) pairs: co-located ranks and
        # symmetric halo patterns make pairs far fewer than messages.
        n_nodes = torus.num_nodes
        num_links = n_nodes * LINKS_PER_NODE
        pair_key = placement.node_ranks[src] * n_nodes + placement.node_ranks[dst]
        uniq, inverse = np.unique(pair_key, return_inverse=True)
        pair_src = _coords_of_ranks(torus.dims, uniq // n_nodes)
        pair_dst = _coords_of_ranks(torus.dims, uniq % n_nodes)
        dims_a = np.asarray(torus.dims, dtype=np.int64)
        step, count = ring_steps_array(pair_src, pair_dst, dims_a)
        pair_hops64 = count.sum(axis=1)
        total = int(pair_hops64.sum())

        # Dtype-width audit: link ids, hop counts, and pair indices fit
        # int32 on any torus below 2**31 directed links (~357M nodes);
        # the guard falls back to int64 instead of ever wrapping. Byte
        # columns stay int64 throughout.
        narrow = num_links < 2**31 and len(src) < 2**31
        idx_t = np.int32 if narrow else np.int64
        pair_hops = pair_hops64.astype(idx_t)
        inverse = inverse.astype(idx_t)
        hops = pair_hops[inverse]

        # Per-pair byte totals. Integer counts stay exact through the
        # float64 bincount accumulators below EXACT_BYTES_LIMIT (guarded
        # after accumulation).
        if len(uniq):
            pair_bytes = np.bincount(inverse, weights=nbytes, minlength=len(uniq))
        else:
            pair_bytes = np.zeros(0)

        if total <= hop_limit:
            # One-shot expansion: the original dense path.
            starts, link_ids64 = _expand_links(
                torus.dims, pair_src, pair_dst, step, count, pair_hops64
            )
            chunk_bounds = None
            if sparse:
                if link_ids64.size:
                    u, inv = np.unique(link_ids64, return_inverse=True)
                    vals = np.bincount(
                        inv,
                        weights=np.repeat(pair_bytes, pair_hops64),
                        minlength=len(u),
                    ).astype(np.int64)
                else:
                    u = np.zeros(0, dtype=np.int64)
                    vals = np.zeros(0, dtype=np.int64)
                loads = LinkLoadVector.from_link_totals(torus, u, vals)
            else:
                if link_ids64.size:
                    load_arr = np.bincount(
                        link_ids64,
                        weights=np.repeat(pair_bytes, pair_hops64),
                        minlength=num_links,
                    ).astype(np.int64)
                else:
                    load_arr = np.zeros(num_links, dtype=np.int64)
                loads = LinkLoadVector(torus, load_arr)
            link_ids = link_ids64.astype(idx_t)
        else:
            # Streaming expansion: bounded chunks, incremental loads.
            chunk_bounds = _chunk_bounds(pair_hops64, hop_limit)
            starts = link_ids = None
            if sparse:
                acc_ids = np.zeros(0, dtype=np.int64)
                acc_vals = np.zeros(0, dtype=np.int64)
            else:
                load_arr = np.zeros(num_links, dtype=np.int64)
            n_chunks = len(chunk_bounds) - 1
            for i in range(n_chunks):
                lo, hi = int(chunk_bounds[i]), int(chunk_bounds[i + 1])
                _, c_ids = _expand_links(
                    torus.dims,
                    pair_src[lo:hi],
                    pair_dst[lo:hi],
                    step[lo:hi],
                    count[lo:hi],
                    pair_hops64[lo:hi],
                )
                if not c_ids.size:
                    continue
                weights = np.repeat(pair_bytes[lo:hi], pair_hops64[lo:hi])
                if sparse:
                    u, inv = np.unique(c_ids, return_inverse=True)
                    vals = np.bincount(inv, weights=weights, minlength=len(u)).astype(
                        np.int64
                    )
                    acc_ids, acc_vals = _merge_sparse(acc_ids, acc_vals, u, vals)
                else:
                    load_arr += np.bincount(
                        c_ids, weights=weights, minlength=num_links
                    ).astype(np.int64)
            if sparse:
                loads = LinkLoadVector.from_link_totals(torus, acc_ids, acc_vals)
            else:
                loads = LinkLoadVector(torus, load_arr)
            _STREAMED.inc()
            _CHUNKS.inc(n_chunks)

        max_link = loads.max_load()
        if max_link >= EXACT_BYTES_LIMIT:
            raise OverflowError(
                f"link load {max_link} bytes reaches 2**53, beyond the exact "
                "range of the engine's float64 accumulators; results would "
                "round instead of wrapping. Split the exchange or use "
                "REPRO_NETSIM=scalar (exact arbitrary-precision integers)."
            )
        _MAX_LINK_BYTES.set_max(max_link)
        _LINK_EXTREMES.observe(max_link)
        _freeze(
            src,
            dst,
            nbytes,
            hops,
            inverse,
            pair_hops,
            pair_src,
            pair_dst,
            starts,
            link_ids,
            chunk_bounds,
            loads._loads,
            loads._ids,
        )
        routed = RoutedExchange(
            torus=torus,
            src_ranks=src,
            dst_ranks=dst,
            nbytes=nbytes,
            hops=hops,
            pair_inverse=inverse,
            pair_hops=pair_hops,
            pair_src=pair_src,
            pair_dst=pair_dst,
            pair_starts=starts,
            pair_link_ids=link_ids,
            chunk_bounds=chunk_bounds,
        )
        return routed, loads

    def empty_loads(self, torus: Torus3D) -> LinkLoadVector:
        """A zeroed accumulator for concurrent (multi-sibling) traffic."""
        return LinkLoadVector.empty(
            torus, sparse=sparse_mode(torus.num_nodes * LINKS_PER_NODE)
        )

    def round_estimate(
        self, routed: RoutedExchange, loads: LinkLoadVector, machine
    ) -> CommEstimate:
        """Array form of :func:`repro.netsim.contention.round_time`.

        Bit-identical to the scalar model: every elementwise expression
        reproduces the scalar operation order. Streamed exchanges
        re-expand their routes chunk by chunk; the per-pair worst-link
        maximum is order-independent, so the result is identical to the
        one-shot form.
        """
        m = routed.num_messages
        if m == 0:
            return CommEstimate(
                time=0.0, ideal_time=0.0, average_hops=0.0, max_link_bytes=0
            )
        worst_pair = np.zeros(len(routed.pair_hops), dtype=np.int64)
        for lo, hi, starts, link_ids in routed.iter_link_chunks():
            if not link_ids.size:
                continue
            nonzero = routed.pair_hops[lo:hi] > 0
            per_hop = loads.lookup(link_ids)
            # Segments are contiguous and zero-hop segments are empty, so
            # the starts of the non-empty segments partition the flat
            # array exactly.
            view = worst_pair[lo:hi]
            view[nonzero] = np.maximum.reduceat(per_hop, starts[:-1][nonzero])
        worst = worst_pair[routed.pair_inverse]
        t = machine.software_latency + routed.hops * machine.per_hop_latency
        t = t + worst / machine.link_bandwidth
        ideal = machine.software_latency + routed.nbytes / machine.link_bandwidth
        return CommEstimate(
            time=float(t.max()),
            ideal_time=float(ideal.max()),
            average_hops=int(routed.hops.sum()) / m,
            max_link_bytes=loads.max_load(),
        )


class ScalarBackend:
    """The original pure-Python implementation, kept as a parity oracle."""

    name = "scalar"

    def route_exchange(
        self,
        torus: Torus3D,
        placement_nodes: PlacementLike,
        messages: Iterable[HaloMessage],
    ) -> tuple[List[RoutedMessage], LinkLoads]:
        if isinstance(messages, HaloBatch):
            messages = messages.to_messages()
        return route_messages(torus, _plain_nodes(placement_nodes), messages)

    def empty_loads(self, torus: Torus3D) -> LinkLoads:
        return LinkLoads()

    def round_estimate(
        self, routed: Sequence[RoutedMessage], loads: LinkLoads, machine
    ) -> CommEstimate:
        return round_time(routed, loads, machine)


VECTOR = VectorBackend()
SCALAR = ScalarBackend()

_BACKENDS = {"vector": VECTOR, "scalar": SCALAR}


def route_exchange_streamed(
    torus: Torus3D,
    placement_nodes: PlacementLike,
    messages: Iterable[HaloMessage],
    *,
    max_expand_hops: Optional[int] = None,
    sparse: bool = False,
) -> tuple[RoutedExchange, LinkLoadVector]:
    """Route one exchange with forced streaming parameters, uncached.

    The parity surface of the streaming engine: tests and the
    ``netsim-streaming-parity`` verify oracle call this with arbitrary
    chunk limits and representations and assert the result is
    bit-identical to :meth:`VectorBackend.route_exchange` (and to the
    scalar oracle). Bypasses the route cache so a cached one-shot entry
    can never mask the streamed code path.
    """
    placement = as_placement(torus, placement_nodes)
    if not isinstance(messages, (list, tuple, HaloBatch)):
        messages = list(messages)
    src, dst, nbytes = _message_arrays(messages)
    if max_expand_hops is None:
        hop_limit = expansion_hop_limit()
    else:
        hop_limit = max(1, int(max_expand_hops))
    return VECTOR._route_uncached(
        torus, placement, src, dst, nbytes, hop_limit=hop_limit, sparse=sparse
    )


def active_backend() -> VectorBackend | ScalarBackend:
    """The engine selected by ``REPRO_NETSIM`` (default: ``vector``)."""
    name = os.environ.get("REPRO_NETSIM", "vector").strip().lower() or "vector"
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"REPRO_NETSIM={name!r}: expected one of {sorted(_BACKENDS)}"
        ) from None
