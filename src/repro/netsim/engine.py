"""Vectorized torus network engine.

The scalar simulator (:mod:`repro.netsim.traffic` /
:mod:`repro.netsim.contention`) routes every halo message hop-by-hop in
Python and accumulates loads in a per-link dict — O(messages x hops)
interpreter work repeated identically every round, timestep, and sweep
configuration. This module replaces that hot path with NumPy array
kernels that are bit-identical to the scalar oracle:

* **Dense link ids.** Each directed link is an integer
  ``(node_index * 3 + dim) * 2 + direction_bit`` (``direction_bit`` 0 for
  the positive ring direction, 1 for the negative), so per-link state is a
  flat ``int64`` vector of length ``num_nodes * 6`` instead of a dict of
  :class:`~repro.topology.torus.Link` keys.
* **Closed-form routing.** Dimension-ordered routes are computed for the
  whole message set at once: per-dimension direction/hop-count via modular
  ring arithmetic (:func:`repro.topology.routing.ring_steps_array`), then
  expanded to a flat ``(message, link_id)`` array with ``repeat``/
  ``cumsum`` index algebra — no per-hop Python loop.
* **Array pricing.** Round link loads come from ``np.bincount``; each
  message's worst-link bytes from a sorted-segment
  ``np.maximum.reduceat``; ``round_time`` / ``CommEstimate`` from array
  reductions, with the exact floating-point operation order of the scalar
  model so results match bit for bit.
* **Route cache.** The identical exchange repeats every round, timestep,
  and sweep config, so routed exchanges are memoised under
  ``(torus dims, placement digest, message-set digest)``; hit counters are
  exposed for the profiling report via :func:`route_cache_stats`.

The scalar implementation remains available as a parity oracle: set
``REPRO_NETSIM=scalar`` to route every exchange through it (the
hypothesis suite in ``tests/netsim/test_engine_parity.py`` proves the two
agree exactly).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.netsim.contention import CommEstimate, round_time
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import gauge as _obs_gauge
from repro.obs.metrics import histogram as _obs_histogram
from repro.netsim.traffic import LinkLoads, RoutedMessage, route_messages
from repro.runtime.halo import HaloBatch, HaloMessage
from repro.topology.routing import ring_steps_array
from repro.topology.torus import Link, Torus3D, TorusCoord

__all__ = [
    "LINKS_PER_NODE",
    "link_id_of",
    "link_of_id",
    "PlacementVector",
    "as_placement",
    "RoutedExchange",
    "LinkLoadVector",
    "VectorBackend",
    "ScalarBackend",
    "VECTOR",
    "SCALAR",
    "active_backend",
    "RouteCacheStats",
    "route_cache_stats",
    "reset_route_cache",
]

#: Directed links encoded per node: 3 dimensions x 2 directions.
LINKS_PER_NODE = 6

# Metrics published into the observability registry. Bound once at import
# (registry resets zero in place, so these references never go stale) and
# incremented unconditionally: one attribute add per exchange is far below
# the digest hashing that keys the cache. The hit/miss counters are zeroed
# together with the cache by :func:`reset_route_cache`, so they match
# :func:`route_cache_stats` exactly at all times.
_HITS = _obs_counter("netsim.route_cache.hits")
_MISSES = _obs_counter("netsim.route_cache.misses")
_MAX_LINK_BYTES = _obs_gauge("netsim.link_load.max_bytes")
#: Per routed (cache-miss) exchange: worst-link bytes, power-of-4 buckets.
_LINK_EXTREMES = _obs_histogram(
    "netsim.exchange.max_link_bytes",
    [4 ** k for k in range(2, 16)],
)


# ----------------------------------------------------------------------
# Link id encoding
# ----------------------------------------------------------------------
def link_id_of(torus: Torus3D, link: Link) -> int:
    """Dense integer id of a directed link."""
    node = torus.rank_of(link.src)
    direction_bit = 0 if link.direction == 1 else 1
    return (node * 3 + link.dim) * 2 + direction_bit


def link_of_id(torus: Torus3D, link_id: int) -> Link:
    """Inverse of :func:`link_id_of`."""
    direction_bit = link_id & 1
    dim = (link_id >> 1) % 3
    node = link_id // LINKS_PER_NODE
    return Link(
        src=torus.coord_of(int(node)),
        dim=int(dim),
        direction=1 if direction_bit == 0 else -1,
    )


# ----------------------------------------------------------------------
# Placement vector
# ----------------------------------------------------------------------
class PlacementVector:
    """A rank placement prepared for array routing.

    Holds the per-rank node coordinates both as the original sequence (for
    the scalar oracle) and as an ``(N, 3)`` ``int64`` array, plus a digest
    of the coordinate bytes that keys the route cache. Build one per
    placement (``simulate_iteration`` does) so the conversion and digest
    are shared by the parent and every sibling exchange.
    """

    __slots__ = ("torus", "_nodes", "coords", "node_ranks", "digest")

    def __init__(
        self, torus: Torus3D, nodes: Union[np.ndarray, Sequence[TorusCoord]]
    ):
        self.torus = torus
        if isinstance(nodes, np.ndarray):
            # Array pipeline: take the (N, 3) coordinate array directly;
            # the tuple form is materialised lazily (scalar oracle only).
            self._nodes = None
            self.coords = np.ascontiguousarray(nodes, dtype=np.int64).reshape(
                len(nodes), 3
            )
        else:
            self._nodes = nodes
            self.coords = np.asarray(nodes, dtype=np.int64).reshape(len(nodes), 3)
        x_dim, y_dim, _ = torus.dims
        self.node_ranks = self.coords[:, 0] + x_dim * (
            self.coords[:, 1] + y_dim * self.coords[:, 2]
        )
        self.digest = hashlib.blake2b(
            self.coords.tobytes(), digest_size=16
        ).digest()

    @property
    def nodes(self) -> Sequence[TorusCoord]:
        """Per-rank node coordinates as tuples (for the scalar oracle)."""
        if self._nodes is None:
            self._nodes = [tuple(row) for row in self.coords.tolist()]
        return self._nodes

    def __len__(self) -> int:
        return len(self.coords)


PlacementLike = Union[PlacementVector, np.ndarray, Sequence[TorusCoord]]


def as_placement(torus: Torus3D, nodes: PlacementLike) -> PlacementVector:
    """Wrap *nodes* for the engine (pass-through if already wrapped)."""
    if isinstance(nodes, PlacementVector):
        return nodes
    return PlacementVector(torus, nodes)


def _plain_nodes(nodes: PlacementLike) -> Sequence[TorusCoord]:
    if isinstance(nodes, PlacementVector):
        return nodes.nodes
    if isinstance(nodes, np.ndarray):
        return [tuple(row) for row in nodes.tolist()]
    return nodes


# ----------------------------------------------------------------------
# Routed exchange + link loads (array form)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoutedExchange:
    """One exchange round routed in array form.

    Routes are stored per *unique* ``(src node, dst node)`` pair — with
    several ranks per node, many messages share a pair, so routing work
    and storage shrink accordingly. Message *i* uses the route of pair
    ``pair_inverse[i]``, whose dense link ids are the slice
    ``pair_link_ids[pair_starts[p]:pair_starts[p + 1]]`` (dimension
    order, hop order preserved). All arrays are read-only: routed
    exchanges live in the route cache and are shared between callers.
    """

    torus: Torus3D
    src_ranks: np.ndarray
    dst_ranks: np.ndarray
    nbytes: np.ndarray
    #: Per-message route length (== torus distance of its node pair).
    hops: np.ndarray
    #: Per-message index into the unique-pair arrays.
    pair_inverse: np.ndarray
    pair_hops: np.ndarray
    pair_starts: np.ndarray
    pair_link_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.nbytes)

    @property
    def num_messages(self) -> int:
        return len(self.nbytes)

    def message_links(self, i: int) -> List[Link]:
        """Decode message *i*'s route back to :class:`Link` objects."""
        p = int(self.pair_inverse[i])
        lo, hi = int(self.pair_starts[p]), int(self.pair_starts[p + 1])
        return [
            link_of_id(self.torus, int(lid)) for lid in self.pair_link_ids[lo:hi]
        ]


class LinkLoadVector:
    """Accumulated bytes per directed link, as a dense ``int64`` vector.

    Mirrors the :class:`~repro.netsim.traffic.LinkLoads` API so pricing
    and tests can treat both uniformly. Indexed by the dense link id.
    """

    __slots__ = ("torus", "_loads")

    def __init__(self, torus: Torus3D, loads: np.ndarray | None = None):
        self.torus = torus
        if loads is None:
            loads = np.zeros(torus.num_nodes * LINKS_PER_NODE, dtype=np.int64)
        self._loads = loads

    @property
    def array(self) -> np.ndarray:
        """The dense per-link byte vector (index = dense link id)."""
        return self._loads

    def load(self, link: Link) -> int:
        """Bytes accumulated on *link*."""
        return int(self._loads[link_id_of(self.torus, link)])

    def max_load(self) -> int:
        """The heaviest link's byte count (0 when no traffic)."""
        return int(self._loads.max(initial=0))

    def total_bytes(self) -> int:
        """Total link-byte volume (equals hop-bytes of the message set)."""
        return int(self._loads.sum())

    def num_loaded_links(self) -> int:
        """Number of links that carried any traffic."""
        return int(np.count_nonzero(self._loads))

    def items(self):
        """Iterate ``(link, bytes)`` pairs over loaded links."""
        for lid in np.flatnonzero(self._loads):
            yield link_of_id(self.torus, int(lid)), int(self._loads[lid])

    def as_dict(self) -> dict[Link, int]:
        """Loaded links as a dict (parity-test convenience)."""
        return dict(self.items())

    def merge(self, other: "LinkLoadVector") -> None:
        """Accumulate another load set into this one (concurrent traffic)."""
        self._loads = self._loads + other._loads

    def __len__(self) -> int:
        return self.num_loaded_links()


# ----------------------------------------------------------------------
# The array routing kernel
# ----------------------------------------------------------------------
def _message_arrays(
    messages: Union[HaloBatch, Sequence[HaloMessage]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if isinstance(messages, HaloBatch):
        return messages.src, messages.dst, messages.nbytes
    n = len(messages)
    src = np.fromiter((m.src for m in messages), dtype=np.int64, count=n)
    dst = np.fromiter((m.dst for m in messages), dtype=np.int64, count=n)
    nbytes = np.fromiter((m.nbytes for m in messages), dtype=np.int64, count=n)
    return src, dst, nbytes


def _coords_of_ranks(dims: tuple[int, int, int], ranks: np.ndarray) -> np.ndarray:
    """Decode linear node ranks to ``(N, 3)`` coordinates (x fastest)."""
    x_dim, y_dim, _ = dims
    out = np.empty((len(ranks), 3), dtype=np.int64)
    out[:, 0] = ranks % x_dim
    out[:, 1] = (ranks // x_dim) % y_dim
    out[:, 2] = ranks // (x_dim * y_dim)
    return out


def _route_arrays(
    dims: tuple[int, int, int], src_c: np.ndarray, dst_c: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dimension-ordered routes of all messages, fully expanded.

    Returns ``(hops, starts, link_ids)`` where ``hops[i]`` is message
    *i*'s route length, ``starts`` the exclusive prefix sum (length
    ``M + 1``), and ``link_ids`` the concatenated dense link ids.
    """
    m = len(src_c)
    dims_a = np.asarray(dims, dtype=np.int64)
    step, count = ring_steps_array(src_c, dst_c, dims_a)  # (M, 3) each
    hops = count.sum(axis=1)
    starts = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(hops, out=starts[1:])
    total = int(starts[-1])
    if total == 0:
        return hops, starts, np.zeros(0, dtype=np.int64)

    # Flat hop index algebra: msg[f] is the message of flat hop f and
    # t[f] its position within that message's route.
    msg = np.repeat(np.arange(m, dtype=np.int64), hops)
    t = np.arange(total, dtype=np.int64) - np.repeat(starts[:-1], hops)

    # Which dimension is being traversed at hop t (routes go x, y, z).
    c0 = count[msg, 0]
    c01 = c0 + count[msg, 1]
    dim_sel = (t >= c0).astype(np.int64) + (t >= c01)
    # Hop index within the selected dimension's run.
    j = t - np.where(dim_sel >= 1, c0, 0) - np.where(dim_sel == 2, count[msg, 1], 0)

    # Source node of each hop: dimensions before the selected one are
    # already at the destination, later ones still at the source.
    x_dim, y_dim, z_dim = (int(d) for d in dims)
    x = np.where(
        dim_sel == 0, (src_c[msg, 0] + j * step[msg, 0]) % x_dim, dst_c[msg, 0]
    )
    y = np.where(
        dim_sel == 0,
        src_c[msg, 1],
        np.where(
            dim_sel == 1, (src_c[msg, 1] + j * step[msg, 1]) % y_dim, dst_c[msg, 1]
        ),
    )
    z = np.where(dim_sel == 2, (src_c[msg, 2] + j * step[msg, 2]) % z_dim, src_c[msg, 2])

    node = x + x_dim * (y + y_dim * z)
    direction_bit = (step[msg, dim_sel] < 0).astype(np.int64)
    link_ids = (node * 3 + dim_sel) * 2 + direction_bit
    return hops, starts, link_ids


def _freeze(*arrays: np.ndarray) -> None:
    for a in arrays:
        a.flags.writeable = False


# ----------------------------------------------------------------------
# Route cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouteCacheStats:
    """Route-cache counters for the profiling report."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _RouteCache:
    """Bounded LRU of routed exchanges.

    Keyed by ``(torus dims, placement digest, message-set digest)`` — the
    exact identity of an exchange round. Values are immutable
    (read-only arrays), so cache hits are shared, not copied.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._data: "OrderedDict[tuple, tuple[RoutedExchange, LinkLoadVector]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            _MISSES.inc()
            return None
        self.hits += 1
        _HITS.inc()
        self._data.move_to_end(key)
        return entry

    def put(self, key: tuple, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def stats(self) -> RouteCacheStats:
        return RouteCacheStats(
            hits=self.hits, misses=self.misses, entries=len(self._data)
        )

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
        _HITS.reset()
        _MISSES.reset()


_ROUTE_CACHE = _RouteCache()


def route_cache_stats() -> RouteCacheStats:
    """Current route-cache counters."""
    return _ROUTE_CACHE.stats()


def reset_route_cache() -> None:
    """Drop all cached routes and zero the counters (tests, benchmarks)."""
    _ROUTE_CACHE.clear()


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class VectorBackend:
    """The NumPy array engine (default)."""

    name = "vector"

    def route_exchange(
        self,
        torus: Torus3D,
        placement_nodes: PlacementLike,
        messages: Iterable[HaloMessage],
    ) -> tuple[RoutedExchange, LinkLoadVector]:
        """Route one exchange round; loads are read-only (cache-shared)."""
        placement = as_placement(torus, placement_nodes)
        if not isinstance(messages, (list, tuple, HaloBatch)):
            messages = list(messages)
        src, dst, nbytes = _message_arrays(messages)

        digest = hashlib.blake2b(digest_size=16)
        digest.update(src.tobytes())
        digest.update(dst.tobytes())
        digest.update(nbytes.tobytes())
        key = (torus.dims, placement.digest, digest.digest())
        cached = _ROUTE_CACHE.get(key)
        if cached is not None:
            return cached

        # Dedup to unique (src node, dst node) pairs: co-located ranks and
        # symmetric halo patterns make pairs far fewer than messages.
        n_nodes = torus.num_nodes
        pair_key = placement.node_ranks[src] * n_nodes + placement.node_ranks[dst]
        uniq, inverse = np.unique(pair_key, return_inverse=True)
        pair_hops, pair_starts, link_ids = _route_arrays(
            torus.dims,
            _coords_of_ranks(torus.dims, uniq // n_nodes),
            _coords_of_ranks(torus.dims, uniq % n_nodes),
        )
        hops = pair_hops[inverse]
        num_links = n_nodes * LINKS_PER_NODE
        if link_ids.size:
            # Integer byte counts stay exact through the float64 bincount
            # accumulators (loads are far below 2**53).
            pair_bytes = np.bincount(inverse, weights=nbytes, minlength=len(uniq))
            load_arr = np.bincount(
                link_ids, weights=np.repeat(pair_bytes, pair_hops), minlength=num_links
            ).astype(np.int64)
        else:
            load_arr = np.zeros(num_links, dtype=np.int64)
        max_link = int(load_arr.max(initial=0))
        _MAX_LINK_BYTES.set_max(max_link)
        _LINK_EXTREMES.observe(max_link)
        _freeze(src, dst, nbytes, hops, inverse, pair_hops, pair_starts, link_ids, load_arr)
        routed = RoutedExchange(
            torus=torus,
            src_ranks=src,
            dst_ranks=dst,
            nbytes=nbytes,
            hops=hops,
            pair_inverse=inverse,
            pair_hops=pair_hops,
            pair_starts=pair_starts,
            pair_link_ids=link_ids,
        )
        loads = LinkLoadVector(torus, load_arr)
        _ROUTE_CACHE.put(key, (routed, loads))
        return routed, loads

    def empty_loads(self, torus: Torus3D) -> LinkLoadVector:
        """A zeroed accumulator for concurrent (multi-sibling) traffic."""
        return LinkLoadVector(torus)

    def round_estimate(
        self, routed: RoutedExchange, loads: LinkLoadVector, machine
    ) -> CommEstimate:
        """Array form of :func:`repro.netsim.contention.round_time`.

        Bit-identical to the scalar model: every elementwise expression
        reproduces the scalar operation order.
        """
        m = routed.num_messages
        if m == 0:
            return CommEstimate(
                time=0.0, ideal_time=0.0, average_hops=0.0, max_link_bytes=0
            )
        load_arr = loads.array
        worst_pair = np.zeros(len(routed.pair_hops), dtype=np.int64)
        if routed.pair_link_ids.size:
            nonzero = routed.pair_hops > 0
            per_hop = load_arr[routed.pair_link_ids]
            # Segments are contiguous and zero-hop segments are empty, so
            # the starts of the non-empty segments partition the flat
            # array exactly.
            worst_pair[nonzero] = np.maximum.reduceat(
                per_hop, routed.pair_starts[:-1][nonzero]
            )
        worst = worst_pair[routed.pair_inverse]
        t = machine.software_latency + routed.hops * machine.per_hop_latency
        t = t + worst / machine.link_bandwidth
        ideal = machine.software_latency + routed.nbytes / machine.link_bandwidth
        return CommEstimate(
            time=float(t.max()),
            ideal_time=float(ideal.max()),
            average_hops=int(routed.hops.sum()) / m,
            max_link_bytes=int(load_arr.max(initial=0)),
        )


class ScalarBackend:
    """The original pure-Python implementation, kept as a parity oracle."""

    name = "scalar"

    def route_exchange(
        self,
        torus: Torus3D,
        placement_nodes: PlacementLike,
        messages: Iterable[HaloMessage],
    ) -> tuple[List[RoutedMessage], LinkLoads]:
        if isinstance(messages, HaloBatch):
            messages = messages.to_messages()
        return route_messages(torus, _plain_nodes(placement_nodes), messages)

    def empty_loads(self, torus: Torus3D) -> LinkLoads:
        return LinkLoads()

    def round_estimate(
        self, routed: Sequence[RoutedMessage], loads: LinkLoads, machine
    ) -> CommEstimate:
        return round_time(routed, loads, machine)


VECTOR = VectorBackend()
SCALAR = ScalarBackend()

_BACKENDS = {"vector": VECTOR, "scalar": SCALAR}


def active_backend() -> VectorBackend | ScalarBackend:
    """The engine selected by ``REPRO_NETSIM`` (default: ``vector``)."""
    name = os.environ.get("REPRO_NETSIM", "vector").strip().lower() or "vector"
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"REPRO_NETSIM={name!r}: expected one of {sorted(_BACKENDS)}"
        ) from None
