"""Aggregate traffic metrics for reports (Fig 12-style numbers).

Works on either engine's output: a scalar list of
:class:`~repro.netsim.traffic.RoutedMessage` with dict-backed
:class:`~repro.netsim.traffic.LinkLoads`, or the vectorized
:class:`~repro.netsim.engine.RoutedExchange` with a dense
:class:`~repro.netsim.engine.LinkLoadVector` — both reduce to the same
:class:`TrafficMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.netsim.traffic import LinkLoads, RoutedMessage

__all__ = ["TrafficMetrics", "traffic_metrics"]


@dataclass(frozen=True)
class TrafficMetrics:
    """Summary of a routed message set."""

    num_messages: int
    total_bytes: int
    average_hops: float
    max_hops: int
    hop_bytes: int
    max_link_bytes: int
    loaded_links: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"msgs={self.num_messages} avg_hops={self.average_hops:.3f} "
            f"max_link={self.max_link_bytes}B links={self.loaded_links}"
        )


def _scalar_metrics(
    routed: Sequence[RoutedMessage], loads: LinkLoads
) -> TrafficMetrics:
    hops = [m.hops for m in routed]
    return TrafficMetrics(
        num_messages=len(routed),
        total_bytes=sum(m.nbytes for m in routed),
        average_hops=sum(hops) / len(hops),
        max_hops=max(hops),
        hop_bytes=sum(m.hops * m.nbytes for m in routed),
        max_link_bytes=loads.max_load(),
        loaded_links=loads.num_loaded_links(),
    )


def _vector_metrics(routed, loads) -> TrafficMetrics:
    return TrafficMetrics(
        num_messages=routed.num_messages,
        total_bytes=int(routed.nbytes.sum()),
        average_hops=int(routed.hops.sum()) / routed.num_messages,
        max_hops=int(routed.hops.max()),
        hop_bytes=int((routed.hops * routed.nbytes).sum()),
        max_link_bytes=loads.max_load(),
        loaded_links=loads.num_loaded_links(),
    )


def traffic_metrics(
    routed: Union[Sequence[RoutedMessage], "RoutedExchange"],  # noqa: F821
    loads: Union[LinkLoads, "LinkLoadVector"],  # noqa: F821
) -> TrafficMetrics:
    """Summarise *routed* messages and their *loads* (either engine)."""
    if not len(routed):
        return TrafficMetrics(0, 0, 0.0, 0, 0, 0, 0)
    from repro.netsim.engine import RoutedExchange

    if isinstance(routed, RoutedExchange):
        return _vector_metrics(routed, loads)
    return _scalar_metrics(routed, loads)
