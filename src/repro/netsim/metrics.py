"""Aggregate traffic metrics for reports (Fig 12-style numbers)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.netsim.traffic import LinkLoads, RoutedMessage

__all__ = ["TrafficMetrics", "traffic_metrics"]


@dataclass(frozen=True)
class TrafficMetrics:
    """Summary of a routed message set."""

    num_messages: int
    total_bytes: int
    average_hops: float
    max_hops: int
    hop_bytes: int
    max_link_bytes: int
    loaded_links: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"msgs={self.num_messages} avg_hops={self.average_hops:.3f} "
            f"max_link={self.max_link_bytes}B links={self.loaded_links}"
        )


def traffic_metrics(routed: Sequence[RoutedMessage], loads: LinkLoads) -> TrafficMetrics:
    """Summarise *routed* messages and their *loads*."""
    if not routed:
        return TrafficMetrics(0, 0, 0.0, 0, 0, 0, 0)
    hops = [m.hops for m in routed]
    return TrafficMetrics(
        num_messages=len(routed),
        total_bytes=sum(m.nbytes for m in routed),
        average_hops=sum(hops) / len(hops),
        max_hops=max(hops),
        hop_bytes=sum(m.hops * m.nbytes for m in routed),
        max_link_bytes=loads.max_load(),
        loaded_links=loads.num_loaded_links(),
    )
