"""Message routing and per-link traffic accumulation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.runtime.halo import HaloMessage
from repro.topology.routing import path_links
from repro.topology.torus import Link, Torus3D, TorusCoord

__all__ = ["RoutedMessage", "LinkLoads", "route_messages"]


@dataclass(frozen=True)
class RoutedMessage:
    """A halo message with its torus route resolved."""

    src_rank: int
    dst_rank: int
    nbytes: int
    links: tuple[Link, ...]

    @property
    def hops(self) -> int:
        """Number of torus links traversed (0 = intra-node)."""
        return len(self.links)


class LinkLoads:
    """Accumulated bytes per directed torus link."""

    __slots__ = ("_loads",)

    def __init__(self) -> None:
        self._loads: Counter[Link] = Counter()

    def add(self, link: Link, nbytes: int) -> None:
        """Charge *nbytes* against *link*."""
        self._loads[link] = self._loads.get(link, 0) + nbytes

    def load(self, link: Link) -> int:
        """Bytes accumulated on *link*."""
        return self._loads.get(link, 0)

    def max_load(self) -> int:
        """The heaviest link's byte count (0 when no traffic)."""
        return max(self._loads.values(), default=0)

    def total_bytes(self) -> int:
        """Total link-byte volume (equals hop-bytes of the message set)."""
        return sum(self._loads.values())

    def num_loaded_links(self) -> int:
        """Number of links that carried any traffic."""
        return len(self._loads)

    def items(self):
        """Iterate ``(link, bytes)`` pairs."""
        return self._loads.items()

    def merge(self, other: "LinkLoads") -> None:
        """Accumulate another load set into this one (concurrent traffic).

        Bulk ``Counter.update`` — this runs once per sibling inside
        ``concurrent_comm_costs``, so a per-key Python loop is hot.
        """
        self._loads.update(other._loads)

    def __len__(self) -> int:
        return len(self._loads)


def route_messages(
    torus: Torus3D,
    placement_nodes: Sequence[TorusCoord],
    messages: Iterable[HaloMessage],
) -> tuple[List[RoutedMessage], LinkLoads]:
    """Route *messages* between ranks placed at *placement_nodes*.

    Returns the routed messages and the per-link loads they induce.
    Messages between co-located ranks produce no link traffic.
    """
    loads = LinkLoads()
    routed: List[RoutedMessage] = []
    # Route cache: many ranks share node pairs (co-located ranks), and the
    # same exchange repeats every round — avoid recomputing paths. The
    # second level reuses whole RoutedMessage objects (they are frozen)
    # when an identical message recurs, instead of allocating a fresh
    # tuple-of-links wrapper per occurrence.
    cache: Dict[tuple[TorusCoord, TorusCoord], tuple[Link, ...]] = {}
    msg_cache: Dict[tuple[int, int, int], RoutedMessage] = {}
    for msg in messages:
        mkey = (msg.src, msg.dst, msg.nbytes)
        rm = msg_cache.get(mkey)
        if rm is None:
            src = placement_nodes[msg.src]
            dst = placement_nodes[msg.dst]
            key = (src, dst)
            links = cache.get(key)
            if links is None:
                links = tuple(path_links(torus, src, dst))
                cache[key] = links
            rm = RoutedMessage(
                src_rank=msg.src, dst_rank=msg.dst, nbytes=msg.nbytes, links=links
            )
            msg_cache[mkey] = rm
        for link in rm.links:
            loads.add(link, msg.nbytes)
        routed.append(rm)
    return routed, loads
