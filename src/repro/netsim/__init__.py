"""Network simulation: routing, per-link traffic, contention.

Every halo message of a simulated step is routed over the torus with
dimension-ordered routing; bytes accumulate on each traversed link. The
cost of a message is its serialisation time on the *most loaded* link of
its route (bandwidth is shared), plus software and per-hop latencies —
the standard max-link-contention estimate. A communication *round* (one
of WRF's 36 per step) completes when its slowest message completes.

Two engines implement this model: the vectorized NumPy engine
(:mod:`repro.netsim.engine`, the default) and the scalar pure-Python
oracle (:mod:`repro.netsim.traffic` / :mod:`repro.netsim.contention`).
``REPRO_NETSIM=scalar`` selects the oracle; the two are bit-identical on
every shared metric.
"""

from repro.netsim.traffic import LinkLoads, route_messages, RoutedMessage
from repro.netsim.contention import round_time, message_time, CommEstimate
from repro.netsim.metrics import traffic_metrics, TrafficMetrics
from repro.netsim.budget import (
    expansion_hop_limit,
    mem_budget_bytes,
    placement_cache_budget_bytes,
    route_cache_budget_bytes,
    sparse_mode,
)
from repro.netsim.engine import (
    LinkLoadVector,
    PlacementVector,
    RoutedExchange,
    RouteCacheStats,
    active_backend,
    as_placement,
    link_id_of,
    link_of_id,
    reset_route_cache,
    route_cache_stats,
    route_exchange_streamed,
)

__all__ = [
    "expansion_hop_limit",
    "mem_budget_bytes",
    "placement_cache_budget_bytes",
    "route_cache_budget_bytes",
    "route_exchange_streamed",
    "sparse_mode",
    "LinkLoads",
    "route_messages",
    "RoutedMessage",
    "round_time",
    "message_time",
    "CommEstimate",
    "traffic_metrics",
    "TrafficMetrics",
    "LinkLoadVector",
    "PlacementVector",
    "RoutedExchange",
    "RouteCacheStats",
    "active_backend",
    "as_placement",
    "link_id_of",
    "link_of_id",
    "reset_route_cache",
    "route_cache_stats",
]
