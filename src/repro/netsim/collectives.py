"""Collective-operation cost models on torus networks.

WRF's integration step includes a handful of collectives (reductions for
CFL/stability checks, broadcasts of boundary metadata). The iteration
simulator charges a calibrated ``collective_cost * log2(P)`` for them;
this module provides the first-principles estimates that constant
abstracts, so the calibration can be sanity-checked and so studies that
vary the network (e.g. the BG/Q prototype) can price collectives
directly.

Models (software-tree based, as MPI implementations of the era were):

* **barrier** — a binary-tree gather + release: ``2 * ceil(log2 P)``
  latency terms, each stretched by the mean per-hop distance of a tree
  edge on the torus.
* **broadcast** — binomial tree: ``ceil(log2 P)`` rounds, each paying
  latency plus serialisation of the full payload.
* **allreduce** — recursive doubling: ``ceil(log2 P)`` rounds of
  exchange + local combine.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.topology.machines import Machine
from repro.topology.torus import Torus3D
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["tree_edge_hops", "barrier_time", "broadcast_time", "allreduce_time"]


def tree_edge_hops(torus: Torus3D) -> float:
    """Mean hop distance of a binomial-tree edge on *torus*.

    In round *k* of a binomial tree over ranks in coordinate order,
    partners are ``2**k`` ranks apart; averaged over rounds this works
    out close to a quarter of the torus diameter, which we use directly
    (the exact value depends on the rank ordering; this estimate is
    within ~20% for the rack shapes used here).
    """
    diameter = sum(d // 2 for d in torus.dims)
    return max(1.0, diameter / 4.0)


def _rounds(participants: int) -> int:
    check_positive_int(participants, "participants")
    return max(1, math.ceil(math.log2(participants))) if participants > 1 else 0


def barrier_time(torus: Torus3D, participants: int, machine: Machine) -> float:
    """Software-tree barrier: gather up, release down."""
    rounds = _rounds(participants)
    per_round = machine.software_latency + tree_edge_hops(torus) * machine.per_hop_latency
    return 2 * rounds * per_round


def broadcast_time(
    torus: Torus3D, participants: int, nbytes: float, machine: Machine
) -> float:
    """Binomial-tree broadcast of *nbytes*."""
    check_positive_float(nbytes, "nbytes", allow_zero=True)
    rounds = _rounds(participants)
    per_round = (
        machine.software_latency
        + tree_edge_hops(torus) * machine.per_hop_latency
        + nbytes / machine.link_bandwidth
    )
    return rounds * per_round


def allreduce_time(
    torus: Torus3D, participants: int, nbytes: float, machine: Machine
) -> float:
    """Recursive-doubling allreduce of *nbytes* (sum-combine)."""
    check_positive_float(nbytes, "nbytes", allow_zero=True)
    rounds = _rounds(participants)
    per_round = (
        machine.software_latency
        + tree_edge_hops(torus) * machine.per_hop_latency
        + nbytes / machine.link_bandwidth
    )
    return rounds * per_round


def step_collectives_estimate(
    torus: Torus3D,
    participants: int,
    machine: Machine,
    *,
    num_reductions: int = 2,
    reduction_bytes: float = 64.0,
) -> float:
    """First-principles estimate of one step's collective cost.

    WRF performs a couple of small allreduces per step (stability and
    diagnostics). This is what ``machine.collective_cost * log2(P)``
    calibrates; the two agree within an order of magnitude, which the
    test suite checks.
    """
    return num_reductions * allreduce_time(
        torus, participants, reduction_bytes, machine
    )
