"""Contention-aware communication time estimates.

Model: the messages of one exchange round are in flight simultaneously.
A directed link delivering ``L`` bytes of round traffic needs ``L / bw``
seconds, so a message completes no sooner than the busiest link on its
route allows. Message time:

.. math::

    t_{msg} = t_{sw} + hops \\cdot t_{hop} + \\max_{l \\in route}(L_l) / bw

and the round completes at the max over messages — the value the
bulk-synchronous halo exchange waits for. Intra-node messages cost the
software latency only (memory copies are folded into the compute term).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.netsim.traffic import LinkLoads, RoutedMessage
from repro.topology.machines import Machine

__all__ = ["CommEstimate", "message_time", "round_time"]


@dataclass(frozen=True)
class CommEstimate:
    """The cost breakdown of one exchange round."""

    #: Wall time of the round (slowest message).
    time: float
    #: Round time in a contention- and hop-free network (latency + own
    #: bytes at full bandwidth) — the lower bound actual waits compare to.
    ideal_time: float
    #: Mean hops over the round's messages.
    average_hops: float
    #: Max bytes accumulated on any one link.
    max_link_bytes: int

    @property
    def contention_excess(self) -> float:
        """Time lost to sharing links and hop latency (``time - ideal``)."""
        return max(0.0, self.time - self.ideal_time)


def message_time(msg: RoutedMessage, loads: LinkLoads, machine: Machine) -> float:
    """Completion time of one routed message under *loads*."""
    t = machine.software_latency + msg.hops * machine.per_hop_latency
    if msg.links:
        worst = max(loads.load(link) for link in msg.links)
        t += worst / machine.link_bandwidth
    return t


def round_time(
    routed: Sequence[RoutedMessage], loads: LinkLoads, machine: Machine
) -> CommEstimate:
    """Cost of one exchange round (all messages concurrent)."""
    if not routed:
        return CommEstimate(time=0.0, ideal_time=0.0, average_hops=0.0, max_link_bytes=0)
    worst = 0.0
    ideal = 0.0
    hops_total = 0
    for msg in routed:
        worst = max(worst, message_time(msg, loads, machine))
        ideal = max(
            ideal,
            machine.software_latency + msg.nbytes / machine.link_bandwidth,
        )
        hops_total += msg.hops
    return CommEstimate(
        time=worst,
        ideal_time=ideal,
        average_hops=hops_total / len(routed),
        max_link_bytes=loads.max_load(),
    )
