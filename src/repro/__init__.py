"""repro — divide-and-conquer scheduling of nested weather simulations.

A full reimplementation of Malakar et al., *"A divide and conquer
strategy for scaling weather simulations with multiple regions of
interest"* (SC 2012): performance prediction by Delaunay/barycentric
interpolation, Huffman-tree processor allocation, topology-aware 2D->3D
torus mapping — plus every substrate the evaluation needs (a WRF-like
nested shallow-water model, Blue Gene/L and /P machine models with a
contention-aware torus network simulator, and parallel-I/O cost models).

Quickstart::

    from repro import (
        BLUE_GENE_L, DomainSpec, ProcessGrid,
        SequentialStrategy, ParallelSiblingsStrategy, simulate_iteration,
    )

    parent = DomainSpec("d01", 286, 307, dx_km=24.0)
    nests = [
        DomainSpec("d02", 394, 418, 8.0, parent="d01", parent_start=(10, 10), level=1),
        DomainSpec("d03", 313, 337, 8.0, parent="d01", parent_start=(160, 160), level=1),
    ]
    grid = ProcessGrid(32, 32)  # 1024 ranks

    default = simulate_iteration(
        SequentialStrategy().plan(grid, parent, nests), BLUE_GENE_L)
    ours = simulate_iteration(
        ParallelSiblingsStrategy().plan(grid, parent, nests,
                                        ratios=[s.points for s in nests]),
        BLUE_GENE_L)
    print(default.integration_time, "->", ours.integration_time)
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    GeometryError,
    PredictionError,
    AllocationError,
    MappingError,
    TopologyError,
    SimulationError,
)
from repro.topology import (
    Torus3D,
    Machine,
    BLUE_GENE_L,
    BLUE_GENE_P,
    blue_gene_l,
    blue_gene_p,
)
from repro.runtime import ProcessGrid, GridRect, Communicator
from repro.wrf import DomainSpec, NestedModel, ModelState, ShallowWaterSolver
from repro.core import (
    PerformanceModel,
    NaivePointsModel,
    partition_grid,
    naive_strip_partition,
    equal_partition,
    ObliviousMapping,
    TxyzMapping,
    PartitionMapping,
    MultiLevelMapping,
    SlotSpace,
    ExecutionPlan,
    SequentialStrategy,
    ParallelSiblingsStrategy,
)
from repro.perfsim import simulate_iteration, WorkloadParams, IterationReport
from repro.iosim import IoModel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "PredictionError",
    "AllocationError",
    "MappingError",
    "TopologyError",
    "SimulationError",
    # machines and topology
    "Torus3D",
    "Machine",
    "BLUE_GENE_L",
    "BLUE_GENE_P",
    "blue_gene_l",
    "blue_gene_p",
    # runtime
    "ProcessGrid",
    "GridRect",
    "Communicator",
    # wrf proxy
    "DomainSpec",
    "NestedModel",
    "ModelState",
    "ShallowWaterSolver",
    # core contribution
    "PerformanceModel",
    "NaivePointsModel",
    "partition_grid",
    "naive_strip_partition",
    "equal_partition",
    "ObliviousMapping",
    "TxyzMapping",
    "PartitionMapping",
    "MultiLevelMapping",
    "SlotSpace",
    "ExecutionPlan",
    "SequentialStrategy",
    "ParallelSiblingsStrategy",
    # simulation
    "simulate_iteration",
    "WorkloadParams",
    "IterationReport",
    "IoModel",
]
