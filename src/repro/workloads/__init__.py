"""Workload generators and the paper's named configurations.

* :mod:`~repro.workloads.regions` — the two experimental regions of
  Sec 4.1: the Pacific Ocean typhoon-season setup (random nest
  configurations over a 286x307 parent at 24 km) and the South East Asia
  business-centre setup (4.5 km parent, 1.5 km siblings, some second
  level nests).
* :mod:`~repro.workloads.generator` — random sibling-configuration
  sampling with disjoint footprints (seeded, reproducible).
* :mod:`~repro.workloads.paper_configs` — the specific configurations
  behind each table/figure (Table 2's four siblings, Fig 10's three
  large siblings, Fig 15's twin 259x229 nests, ...).
"""

from repro.workloads.generator import random_siblings, NestSizeRange
from repro.workloads.regions import (
    pacific_parent,
    pacific_configurations,
    southeast_asia_configurations,
)
from repro.workloads.paper_configs import (
    fig2_domains,
    table2_domains,
    table2_rects,
    fig10_domains,
    table3_configurations,
    table4_configurations,
    table5_configurations,
    fig15_domains,
)

__all__ = [
    "random_siblings",
    "NestSizeRange",
    "pacific_parent",
    "pacific_configurations",
    "southeast_asia_configurations",
    "fig2_domains",
    "table2_domains",
    "table2_rects",
    "fig10_domains",
    "table3_configurations",
    "table4_configurations",
    "table5_configurations",
    "fig15_domains",
]
