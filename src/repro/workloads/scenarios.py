"""Beyond weather: the Sec 5 generality scenarios.

The paper argues the approach "can improve the throughput of
applications with multiple simultaneous simulations within a main
simulation", naming two examples:

* **crack propagation with LAMMPS** — multiple atomistic regions
  simulated inside a continuum solid. Atomistic regions are *far* more
  expensive per point than the continuum parent and sub-cycle heavily
  (many MD steps per continuum step) — structurally identical to nested
  weather domains with a large per-cell cost and refinement ratio.
* **nested coastal circulation with ROMS** — high-resolution coastal
  nests inside a basin-scale ocean model; fewer vertical levels and a
  longer time step than the atmosphere, otherwise the same shape.

These builders return :class:`~repro.workloads.regions.Configuration`
objects plus matching :class:`~repro.perfsim.params.WorkloadParams`, so
every scheduler, mapping, and simulator in this library applies
unchanged — which is precisely the paper's point.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.perfsim.params import OutputParams, WorkloadParams
from repro.runtime.halo import HaloSpec
from repro.util.rng import SeedLike, make_rng
from repro.workloads.generator import NestSizeRange, random_siblings
from repro.workloads.regions import Configuration
from repro.wrf.grid import DomainSpec

__all__ = [
    "crack_propagation_configuration",
    "crack_propagation_workload",
    "coastal_circulation_configuration",
    "coastal_circulation_workload",
]


def crack_propagation_configuration(
    num_cracks: int = 3, *, seed: SeedLike = 1337
) -> Configuration:
    """A continuum plate with *num_cracks* atomistic refinement regions.

    The "parent" is a 600x600 continuum mesh; each crack-tip region is a
    small, dense atomistic patch at 10x spatial refinement (MD cells per
    continuum cell). Patches are placed disjointly like sibling nests.
    """
    parent = DomainSpec(name="plate", nx=600, ny=600, dx_km=1.0)
    rng = make_rng(seed)
    cracks = random_siblings(
        parent,
        num_cracks,
        seed=rng,
        size_range=NestSizeRange(
            min_points=150 * 150, max_points=320 * 320,
            min_aspect=0.7, max_aspect=1.4,
        ),
        refinement=10,
    )
    renamed = [
        DomainSpec(
            name=f"crack{i + 1}", nx=c.nx, ny=c.ny, dx_km=c.dx_km,
            parent=parent.name, parent_start=c.parent_start,
            refinement=c.refinement, level=1,
        )
        for i, c in enumerate(cracks)
    ]
    return Configuration("crack-propagation", parent, tuple(renamed))


def crack_propagation_workload() -> WorkloadParams:
    """MD-like cost structure: no vertical column, huge per-cell cost.

    An atomistic cell carries ~hundreds of atoms with neighbour-list
    force evaluations — orders of magnitude more work per "point" than a
    stencil update — and exchanges ghost atoms every step (fewer, larger
    rounds than WRF's 36).
    """
    return WorkloadParams(
        flops_per_cell=2.5e6,
        levels=1,
        halo=HaloSpec(width=2, levels=1, bytes_per_value=48,
                      rounds_per_step=6),
        halo_compute_overlap=2,
        output=OutputParams(bytes_per_point=96.0, interval_steps=50),
    )


def coastal_circulation_configuration(
    num_coasts: int = 2, *, seed: SeedLike = 404
) -> Configuration:
    """A basin-scale ocean model with high-resolution coastal nests."""
    parent = DomainSpec(name="basin", nx=400, ny=320, dx_km=9.0)
    rng = make_rng(seed)
    nests = random_siblings(
        parent,
        num_coasts,
        seed=rng,
        size_range=NestSizeRange(
            min_points=200 * 180, max_points=360 * 300,
            min_aspect=0.8, max_aspect=1.6,
        ),
        refinement=3,
    )
    renamed = [
        DomainSpec(
            name=f"coast{i + 1}", nx=c.nx, ny=c.ny, dx_km=c.dx_km,
            parent=parent.name, parent_start=c.parent_start,
            refinement=c.refinement, level=1,
        )
        for i, c in enumerate(nests)
    ]
    return Configuration("coastal-circulation", parent, tuple(renamed))


def coastal_circulation_workload() -> WorkloadParams:
    """ROMS-like cost structure: ~30 sigma levels, lighter physics."""
    return WorkloadParams(
        flops_per_cell=3_000.0,
        levels=30,
        halo=HaloSpec(width=2, levels=30, rounds_per_step=24),
        output=OutputParams(bytes_per_point=30 * 4 * 4.0, interval_steps=12),
    )
