"""The paper's two experimental regions (Sec 4.1).

**Pacific Ocean** (Sec 4.1.2): 100E-180E, 10S-50N for the July 2010
typhoon season. Parent 286x307 at 24 km; nests at 8 km (refinement 3);
85 random configurations with 2-4 siblings, nest sizes 94x124..415x445,
aspect 0.5-1.5.

**South East Asia** (Sec 4.1.1): parent at 4.5 km with 1.5 km siblings
over regional business centres; eight configurations, three of which nest
to a second level. The paper does not print the exact SE-Asia sizes, so
the configurations here are plausible reconstructions within the paper's
stated bounds (min nest 178x202, max 925x820) — documented as a
substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.rng import SeedLike, make_rng
from repro.workloads.generator import NestSizeRange, random_siblings
from repro.wrf.grid import DomainSpec

__all__ = [
    "Configuration",
    "pacific_parent",
    "pacific_configurations",
    "southeast_asia_configurations",
]


@dataclass(frozen=True)
class Configuration:
    """One experiment configuration: a parent and its sibling nests."""

    name: str
    parent: DomainSpec
    siblings: Tuple[DomainSpec, ...]

    @property
    def num_siblings(self) -> int:
        """Number of first-level siblings."""
        return len(self.siblings)

    @property
    def max_nest_points(self) -> int:
        """Point count of the largest sibling."""
        return max(s.points for s in self.siblings)


def pacific_parent() -> DomainSpec:
    """The Pacific parent domain: 286x307 at 24 km."""
    return DomainSpec(name="d01", nx=286, ny=307, dx_km=24.0)


def pacific_configurations(
    count: int = 85, *, seed: SeedLike = 2010
) -> List[Configuration]:
    """The 85 random Pacific configurations (2-4 siblings each)."""
    rng = make_rng(seed)
    parent = pacific_parent()
    out: List[Configuration] = []
    for i in range(count):
        k = int(rng.integers(2, 5))  # 2..4 siblings
        siblings = random_siblings(parent, k, seed=rng)
        out.append(
            Configuration(name=f"pacific{i:03d}", parent=parent, siblings=tuple(siblings))
        )
    return out


def _se_asia_parent() -> DomainSpec:
    """SE-Asia parent at 4.5 km covering the South China Sea region."""
    return DomainSpec(name="d01", nx=511, ny=481, dx_km=4.5)


def southeast_asia_configurations() -> List[Configuration]:
    """Eight SE-Asia configurations; the last three nest two levels deep.

    First-level siblings run at 1.5 km over major business centres
    (Singapore, Kuala Lumpur, Bangkok, Ho Chi Minh City, Manila, Brunei);
    the two-level configurations hang a 0.5 km urban core inside one of
    them. Level-2 nests exercise the schedulers' multi-level handling.
    """
    parent = _se_asia_parent()

    def nest(name: str, nx: int, ny: int, at: Tuple[int, int], *, parent_name: str = "d01",
             dx: float = 1.5, level: int = 1) -> DomainSpec:
        return DomainSpec(
            name=name, nx=nx, ny=ny, dx_km=dx, parent=parent_name,
            parent_start=at, refinement=3, level=level,
        )

    configs: List[Configuration] = []
    # Single-level configurations (varying sibling counts and sizes).
    configs.append(Configuration(
        "seasia0", parent,
        (nest("d02", 178, 202, (20, 30)), nest("d03", 241, 223, (300, 60))),
    ))
    configs.append(Configuration(
        "seasia1", parent,
        (nest("d02", 265, 250, (40, 40)), nest("d03", 202, 232, (260, 200)),
         nest("d04", 190, 205, (360, 30))),
    ))
    configs.append(Configuration(
        "seasia2", parent,
        (nest("d02", 313, 337, (30, 120)), nest("d03", 232, 256, (320, 40))),
    ))
    configs.append(Configuration(
        "seasia3", parent,
        (nest("d02", 205, 223, (10, 10)), nest("d03", 205, 223, (200, 160)),
         nest("d04", 205, 223, (360, 10)), nest("d05", 205, 223, (100, 300))),
    ))
    configs.append(Configuration(
        "seasia4", parent,
        (nest("d02", 415, 445, (40, 60)), nest("d03", 232, 202, (330, 260))),
    ))
    # Two-level configurations: a 0.5 km core inside the first sibling.
    for idx, (w, h) in enumerate(((265, 250), (313, 337), (415, 445))):
        d02 = nest("d02", w, h, (30, 40))
        d03 = nest("d03", 202, 232, (330, 280))
        core = DomainSpec(
            name="d04", nx=150, ny=150, dx_km=0.5, parent="d02",
            parent_start=(15, 20), refinement=3, level=2,
        )
        configs.append(
            Configuration(f"seasia{5 + idx}", parent, (d02, d03, core))
        )
    return configs
