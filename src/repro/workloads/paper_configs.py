"""The specific domain configurations behind each table and figure.

Sizes are taken verbatim from the paper wherever printed; placements
inside the parent (which the paper does not print) are chosen to keep
footprints disjoint. Configurations whose nests are too large for the
Pacific parent (Fig 10's and Table 3's large nests) use a proportionally
larger parent, documented in DESIGN.md as a substitution.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.runtime.process_grid import GridRect
from repro.workloads.regions import Configuration, pacific_parent
from repro.wrf.grid import DomainSpec

__all__ = [
    "fig2_domains",
    "table2_domains",
    "table2_rects",
    "fig10_domains",
    "table3_configurations",
    "table4_configurations",
    "table5_configurations",
    "fig15_domains",
]


def _nest(
    name: str,
    nx: int,
    ny: int,
    at: Tuple[int, int],
    *,
    parent: str = "d01",
    dx_km: float = 8.0,
    refinement: int = 3,
) -> DomainSpec:
    return DomainSpec(
        name=name, nx=nx, ny=ny, dx_km=dx_km, parent=parent,
        parent_start=at, refinement=refinement, level=1,
    )


def fig2_domains() -> Configuration:
    """Fig 2: parent 286x307 with one 415x445 subdomain (BG/L scaling)."""
    parent = pacific_parent()
    return Configuration(
        "fig2", parent, (_nest("d02", 415, 445, (60, 70)),)
    )


def table2_domains() -> Configuration:
    """Table 2 / Fig 9: the four-sibling BG/L configuration."""
    parent = pacific_parent()
    return Configuration(
        "table2",
        parent,
        (
            _nest("d02", 394, 418, (10, 10)),
            _nest("d03", 232, 202, (160, 10)),
            _nest("d04", 232, 256, (10, 160)),
            _nest("d05", 313, 337, (160, 160)),
        ),
    )


def table2_rects() -> List[GridRect]:
    """Table 2's printed allocation on the 32x32 grid.

    18x24, 18x8, 14x12 and 14x20 processor rectangles.
    """
    return [
        GridRect(0, 0, 18, 24),
        GridRect(0, 24, 18, 8),
        GridRect(18, 0, 14, 12),
        GridRect(18, 12, 14, 20),
    ]


def fig10_domains() -> Configuration:
    """Fig 10: three large siblings (586x643, 856x919, 925x850).

    These nests' footprints exceed the 286x307 Pacific parent, so a
    770x800 parent at the same 24 km resolution hosts them (substitution:
    only the nest workloads matter to the experiment).
    """
    parent = DomainSpec(name="d01", nx=770, ny=800, dx_km=24.0)
    return Configuration(
        "fig10",
        parent,
        (
            _nest("d02", 586, 643, (10, 10)),
            _nest("d03", 856, 919, (220, 10)),
            _nest("d04", 925, 850, (220, 330)),
        ),
    )


def table3_configurations() -> List[Configuration]:
    """Table 3: three configurations with growing maximum nest size.

    Maximum nest sizes 205x223, 394x418 and 925x820; each configuration
    has three siblings (the paper reports per-configuration improvements
    on up to 8192 BG/P cores).
    """
    small_parent = pacific_parent()
    big_parent = DomainSpec(name="d01", nx=770, ny=800, dx_km=24.0)
    return [
        Configuration(
            "table3-small",
            small_parent,
            (
                _nest("d02", 205, 223, (10, 10)),
                _nest("d03", 190, 205, (120, 10)),
                _nest("d04", 178, 202, (10, 120)),
            ),
        ),
        Configuration(
            "table3-medium",
            small_parent,
            (
                _nest("d02", 394, 418, (10, 10)),
                _nest("d03", 265, 250, (160, 10)),
                _nest("d04", 241, 223, (10, 160)),
            ),
        ),
        Configuration(
            "table3-large",
            big_parent,
            (
                _nest("d02", 925, 820, (10, 10)),
                _nest("d03", 586, 643, (330, 10)),
                _nest("d04", 415, 445, (10, 300)),
            ),
        ),
    ]


def table4_configurations() -> List[Configuration]:
    """Table 4 / Fig 11: five BG/L configurations (2, 2, 2, 3, 4 siblings)."""
    parent = pacific_parent()
    return [
        Configuration(
            "table4-a", parent,
            (_nest("d02", 313, 337, (10, 10)), _nest("d03", 313, 337, (130, 130))),
        ),
        Configuration(
            "table4-b", parent,
            (_nest("d02", 415, 445, (10, 10)), _nest("d03", 394, 418, (150, 150))),
        ),
        Configuration(
            "table4-c", parent,
            (_nest("d02", 394, 418, (10, 10)), _nest("d03", 232, 256, (160, 160))),
        ),
        Configuration(
            "table4-d", parent,
            (
                _nest("d02", 394, 418, (10, 10)),
                _nest("d03", 313, 337, (160, 10)),
                _nest("d04", 232, 256, (10, 160)),
            ),
        ),
        Configuration("table4-e", parent, table2_domains().siblings),
    ]


def table5_configurations() -> List[Configuration]:
    """Table 5 / Fig 12: three BG/P 4096-core configurations (4, 4, 3 siblings)."""
    parent = pacific_parent()
    return [
        Configuration("table5-a", parent, table2_domains().siblings),
        Configuration(
            "table5-b", parent,
            (
                _nest("d02", 415, 445, (10, 10)),
                _nest("d03", 313, 337, (160, 10)),
                _nest("d04", 265, 250, (10, 170)),
                _nest("d05", 241, 223, (170, 170)),
            ),
        ),
        Configuration(
            "table5-c", parent,
            (
                _nest("d02", 415, 445, (10, 10)),
                _nest("d03", 394, 418, (152, 10)),
                _nest("d04", 313, 337, (10, 170)),
            ),
        ),
    ]


def fig15_domains() -> Configuration:
    """Fig 15: two sibling nests of 259x229 (scalability/speedup study)."""
    parent = pacific_parent()
    return Configuration(
        "fig15",
        parent,
        (_nest("d02", 259, 229, (10, 10)), _nest("d03", 259, 229, (150, 150))),
    )
