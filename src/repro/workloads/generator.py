"""Random sibling-configuration sampling.

The paper's Pacific experiments used 85 randomly generated configurations
with nest sizes from 94x124 to 415x445 and aspect ratios 0.5-1.5, with
2-4 siblings per configuration. Footprints must be disjoint (each sibling
tracks a different depression), which we enforce by rejection sampling of
placements inside the parent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng
from repro.wrf.grid import DomainSpec

__all__ = ["NestSizeRange", "random_parent", "random_siblings"]


@dataclass(frozen=True)
class NestSizeRange:
    """Sampling ranges for random nests (paper Sec 4.1.2 defaults)."""

    min_points: int = 94 * 124
    max_points: int = 415 * 445
    min_aspect: float = 0.5
    max_aspect: float = 1.5

    def __post_init__(self) -> None:
        if self.min_points <= 0 or self.max_points < self.min_points:
            raise ConfigurationError("invalid point range")
        if self.min_aspect <= 0 or self.max_aspect < self.min_aspect:
            raise ConfigurationError("invalid aspect range")


def random_parent(
    seed: SeedLike = None,
    *,
    min_dim: int = 80,
    max_dim: int = 320,
    dx_km: float = 24.0,
    name: str = "d01",
) -> DomainSpec:
    """Sample a random top-level parent domain.

    Dimensions are drawn uniformly from ``[min_dim, max_dim]`` in each
    direction — wide enough to cover both degenerate small parents and
    paper-scale regions like the 286x307 Pacific domain.
    """
    if min_dim < 8 or max_dim < min_dim:
        raise ConfigurationError(f"invalid parent dim range [{min_dim}, {max_dim}]")
    rng = make_rng(seed)
    nx = int(rng.integers(min_dim, max_dim + 1))
    ny = int(rng.integers(min_dim, max_dim + 1))
    return DomainSpec(name=name, nx=nx, ny=ny, dx_km=dx_km)


def _sample_size(rng, size_range: NestSizeRange) -> Tuple[int, int]:
    aspect = rng.uniform(size_range.min_aspect, size_range.max_aspect)
    points = rng.uniform(size_range.min_points, size_range.max_points)
    nx = max(8, round((points * aspect) ** 0.5))
    ny = max(8, round(nx / aspect))
    return nx, ny


def _overlaps(a: Tuple[int, int, int, int], b: Tuple[int, int, int, int]) -> bool:
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    return not (ax + aw <= bx or bx + bw <= ax or ay + ah <= by or by + bh <= ay)


def random_siblings(
    parent: DomainSpec,
    num_siblings: int,
    *,
    seed: SeedLike = None,
    size_range: Optional[NestSizeRange] = None,
    refinement: int = 3,
    max_attempts: int = 2000,
) -> List[DomainSpec]:
    """Sample *num_siblings* disjoint nests inside *parent*.

    Nest sizes/aspects follow *size_range*; sizes are clipped so each
    footprint fits the parent. Raises after *max_attempts* rejected
    placements (parent too small for the requested configuration).
    """
    if num_siblings < 1:
        raise ConfigurationError("num_siblings must be >= 1")
    rng = make_rng(seed)
    size_range = size_range or NestSizeRange()
    placed: List[Tuple[int, int, int, int]] = []
    specs: List[DomainSpec] = []
    attempts = 0
    while len(specs) < num_siblings:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                f"could not place {num_siblings} disjoint nests in "
                f"{parent.nx}x{parent.ny} after {max_attempts} attempts"
            )
        nx, ny = _sample_size(rng, size_range)
        # Footprint in parent cells.
        fw = -(-nx // refinement)
        fh = -(-ny // refinement)
        if fw >= parent.nx or fh >= parent.ny:
            # Clip oversized samples to 80% of the parent extent.
            scale = 0.8 * min(parent.nx / fw, parent.ny / fh)
            nx = max(8, int(nx * scale))
            ny = max(8, int(ny * scale))
            fw = -(-nx // refinement)
            fh = -(-ny // refinement)
        i0 = int(rng.integers(0, parent.nx - fw + 1))
        j0 = int(rng.integers(0, parent.ny - fh + 1))
        footprint = (i0, j0, fw, fh)
        if any(_overlaps(footprint, other) for other in placed):
            continue
        placed.append(footprint)
        specs.append(
            DomainSpec(
                name=f"d{len(specs) + 2:02d}",
                nx=nx,
                ny=ny,
                dx_km=parent.dx_km / refinement,
                parent=parent.name,
                parent_start=(i0, j0),
                refinement=refinement,
                level=parent.level + 1,
            )
        )
    return specs
